//! BiCGSTAB case study (§5.2.2): solve a dense nonsymmetric system with
//! the Adaptic-compiled solver and compare against the CUBLAS-composed
//! implementation and the CPU reference.
//!
//! ```sh
//! cargo run --release --example bicgstab_solver
//! ```

use adaptic_repro::adaptic::CompileOptions;
use adaptic_repro::apps::bicgstab::{self, AdapticBicgstab};
use adaptic_repro::gpu_sim::{DeviceSpec, ExecMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 256usize;
    let iters = 4usize;
    let (a, b) = bicgstab::synth_system(n, 42);
    let device = DeviceSpec::tesla_c2050();

    let reference = bicgstab::solve_reference(&a, &b, n, iters);
    let (cublas_x, cublas_us) = bicgstab::solve_cublas(&device, &a, &b, n, iters, ExecMode::Full);

    let solver = AdapticBicgstab::compile(&device, 64, 4096, CompileOptions::default())?;
    let (adaptic_x, adaptic_us) = solver.solve(&a, &b, n, iters, ExecMode::Full)?;

    let err = |x: &[f32]| -> f32 {
        x.iter()
            .zip(&reference)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0, f32::max)
    };
    println!("system: {n}x{n}, {iters} BiCGSTAB iterations");
    println!(
        "CUBLAS-composed: {cublas_us:>8.1} us  (max |err| vs CPU: {:.2e})",
        err(&cublas_x)
    );
    println!(
        "Adaptic:         {adaptic_us:>8.1} us  (max |err| vs CPU: {:.2e})",
        err(&adaptic_x)
    );
    println!("speedup: {:.2}x", cublas_us / adaptic_us.max(1e-9));

    // The optimization breakdown of Figure 11, at this size.
    for (name, opts) in [
        ("baseline        ", CompileOptions::baseline()),
        (
            "+segmentation   ",
            CompileOptions {
                segmentation: true,
                memory: false,
                integration: false,
                probes: 9,
            },
        ),
        ("+memory+integr. ", CompileOptions::default()),
    ] {
        let s = AdapticBicgstab::compile(&device, 64, 4096, opts)?;
        let (_, us) = s.solve(&a, &b, n, iters, ExecMode::SampledExec(256))?;
        println!(
            "{name} {:>8.1} us ({:.2}x vs CUBLAS)",
            us,
            cublas_us / us.max(1e-9)
        );
    }
    Ok(())
}
