//! The paper's running case study (§5.2.1): transposed matrix–vector
//! multiplication across matrix shapes, input-aware vs input-unaware.
//!
//! ```sh
//! cargo run --release --example tmv_sweep
//! ```

use adaptic_repro::adaptic::{compile, InputAxis, StateBinding};
use adaptic_repro::apps::programs;
use adaptic_repro::baselines;
use adaptic_repro::gpu_sim::{DeviceSpec, ExecMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = DeviceSpec::tesla_c2050();
    let total: usize = 1 << 20; // fixed element count, shape swept

    let bench = programs::tmv();
    let t = total as i64;
    let axis = InputAxis::new("rows", 4, t / 4, move |rows| {
        adaptic_repro::streamir::graph::bindings(&[("rows", rows), ("cols", t / rows)])
    })
    .with_items(move |_| t);
    let compiled = compile(&bench.program, &device, &axis)?;
    println!(
        "compiled TMV once for all shapes: {} variants\n",
        compiled.variant_count()
    );
    println!(
        "{:>12} {:>12} {:>12} {:>9}",
        "shape", "cublas", "adaptic", "speedup"
    );

    let mut rows = 4usize;
    while rows <= total / 4 {
        let cols = total / rows;
        let a: Vec<f32> = (0..total).map(|i| ((i * 13) % 7) as f32 - 3.0).collect();
        let x: Vec<f32> = (0..cols).map(|i| ((i * 5) % 9) as f32 - 4.0).collect();

        let base = baselines::tmv::tmv(&device, &a, &x, rows, cols, ExecMode::SampledExec(256));
        let rep = compiled.run_with(
            rows as i64,
            &a,
            &[StateBinding::new("RowDot", "x", x)],
            ExecMode::SampledExec(256),
        )?;
        println!(
            "{:>12} {:>9.2} GF {:>9.2} GF {:>8.2}x",
            format!("{rows}x{cols}"),
            base.gflops(),
            rep.gflops(),
            base.time_us / rep.time_us.max(1e-9)
        );
        rows *= 16;
    }
    Ok(())
}
