//! Quickstart: write a streaming program, compile it for a range of input
//! sizes, inspect the variant table, and run it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use adaptic_repro::adaptic::{compile, InputAxis};
use adaptic_repro::gpu_sim::DeviceSpec;
use adaptic_repro::streamir::parse::parse_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A platform-independent streaming program: the same source serves
    //    every input size.
    let program = parse_program(
        r#"pipeline MeanSquare(N) {
            actor Square(pop 1, push 1) {
                x = pop();
                push(x * x);
            }
            actor Mean(pop N, push 1) {
                acc = 0.0;
                for i in 0..N { acc = acc + pop(); }
                push(acc / N);
            }
        }"#,
    )?;

    // 2. Compile for a Tesla C2050-class device over a range of interest.
    let device = DeviceSpec::tesla_c2050();
    let axis = InputAxis::total_size("N", 1 << 8, 1 << 22);
    let compiled = compile(&program, &device, &axis)?;

    println!(
        "segments after integration: {:?}",
        compiled.segment_labels()
    );
    println!("variant table ({} entries):", compiled.variant_count());
    for (i, v) in compiled.variants.iter().enumerate() {
        println!(
            "  v{i}: [{:>8}, {:>8}]  {:?}  tags {:?}",
            v.lo, v.hi, v.choices, v.tags
        );
    }

    // 3. Run at several sizes — the runtime picks the right variant.
    for n in [512usize, 1 << 14, 1 << 20] {
        let input: Vec<f32> = (0..n).map(|i| (i % 100) as f32 * 0.1).collect();
        let report = compiled.run(n as i64, &input)?;
        let expected: f32 = input.iter().map(|x| x * x).sum::<f32>() / n as f32;
        println!(
            "N = {n:>8}: mean square = {:.4} (expected {expected:.4}), variant v{}, \
             {} kernel(s), est {:.1} us",
            report.output[0],
            report.variant_index,
            report.kernels.len(),
            report.time_us
        );
    }

    // 4. Inspect the generated CUDA for one input size.
    println!(
        "\n--- generated CUDA for N = 1M ---\n{}",
        compiled.cuda_source(1 << 20)
    );
    Ok(())
}
