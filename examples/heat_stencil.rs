//! Heat diffusion on a 2-D plate: a neighboring-access program (§4.1.2)
//! stepped through time by re-running the compiled stencil, with the
//! super-tile geometry chosen per grid size.
//!
//! ```sh
//! cargo run --release --example heat_stencil
//! ```

use adaptic_repro::adaptic::{compile, InputAxis, SegChoice};
use adaptic_repro::gpu_sim::DeviceSpec;
use adaptic_repro::streamir::parse::parse_program;

const HEAT: &str = r#"pipeline Heat(rows, cols) {
    actor Diffuse(pop rows*cols, push rows*cols, peek rows*cols) {
        for idx in 0..rows*cols {
            r = idx / cols;
            c = idx % cols;
            if (r > 0 && r < rows - 1 && c > 0 && c < cols - 1) {
                push(peek(idx)
                    + 0.2 * (peek(idx - 1) + peek(idx + 1)
                        + peek(idx - cols) + peek(idx + cols)
                        - 4.0 * peek(idx)));
            } else {
                push(peek(idx));
            }
        }
    }
}"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(HEAT)?;
    let device = DeviceSpec::tesla_c2050();
    let axis = InputAxis::new("side", 16, 2048, |s| {
        adaptic_repro::streamir::graph::bindings(&[("rows", s), ("cols", s)])
    });
    let compiled = compile(&program, &device, &axis)?;

    for side in [32usize, 256, 1024] {
        // A hot square in the middle of a cold plate.
        let mut grid = vec![0.0f32; side * side];
        for r in side / 3..2 * side / 3 {
            for c in side / 3..2 * side / 3 {
                grid[r * side + c] = 100.0;
            }
        }
        let initial_heat: f32 = grid.iter().sum();

        let (_, variant) = compiled.variant_for(side as i64);
        let tile = variant
            .choices
            .iter()
            .find_map(|c| match c {
                SegChoice::Stencil { tile } => Some(*tile),
                _ => None,
            })
            .expect("stencil segment");

        let steps = 20;
        let mut time_us = 0.0;
        for _ in 0..steps {
            let report = compiled.run(side as i64, &grid)?;
            grid = report.output;
            time_us += report.time_us;
        }
        let final_heat: f32 = grid.iter().sum();
        println!(
            "{side:>5}x{side:<5} super tile {}x{:<3} {steps} steps in {time_us:>9.1} us; \
             heat {initial_heat:.0} -> {final_heat:.0} (diffusion conserves interior heat)",
            tile.0, tile.1
        );
    }
    Ok(())
}
