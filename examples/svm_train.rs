//! SVM training case study (§5.2.3): the Adaptic-compiled trainer vs the
//! hand-optimized GPUSVM with its application-specific kernel-row cache.
//!
//! ```sh
//! cargo run --release --example svm_train
//! ```

use adaptic_repro::adaptic::CompileOptions;
use adaptic_repro::apps::datasets::dataset;
use adaptic_repro::apps::svm::AdapticSvm;
use adaptic_repro::baselines::gpusvm::{self, SvmConfig};
use adaptic_repro::gpu_sim::{DeviceSpec, ExecMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = DeviceSpec::tesla_c2050();
    let ds = dataset("Adult", 32); // scaled-down Adult-shaped set
    let cfg = SvmConfig {
        iterations: 12,
        cache_rows: 64,
        lr: 0.2,
        ..SvmConfig::default()
    };
    println!(
        "dataset: {} ({} samples x {} features)",
        ds.name, ds.n, ds.d
    );

    let base = gpusvm::train(
        &device,
        &ds.data,
        &ds.labels,
        ds.n,
        ds.d,
        &cfg,
        ExecMode::SampledExec(128),
    );
    println!(
        "GPUSVM:  {:>9.1} us, {} launches, {} kernel-row cache hits",
        base.time_us, base.launches, base.cache_hits
    );

    let svm = AdapticSvm::compile(&device, 64, ds.n as i64, ds.d, CompileOptions::default())?;
    let nocache = SvmConfig {
        cache_rows: 0,
        ..cfg
    };
    let run = svm.train(
        &ds.data,
        &ds.labels,
        ds.n,
        &nocache,
        ExecMode::SampledExec(128),
    )?;
    println!(
        "Adaptic: {:>9.1} us, {} launches (no cache — outside the compiler's reach)",
        run.time_us, run.launches
    );
    println!(
        "relative performance: {:.2} (the paper's Figure 12 averages ~0.65)",
        base.time_us / run.time_us.max(1e-9)
    );

    // Both trainers follow the identical deterministic trajectory.
    assert_eq!(base.alphas, run.alphas);
    let support = run.alphas.iter().filter(|a| **a > 0.0).count();
    println!("support vectors found: {support}");
    Ok(())
}
