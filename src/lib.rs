//! Umbrella crate for the Adaptic reproduction workspace.
//!
//! Re-exports the main entry points of each member crate so the examples
//! and integration tests can use a single dependency. See `README.md` for
//! an architecture overview and `DESIGN.md` for the experiment index.

pub use adaptic;
pub use adaptic_apps as apps;
pub use adaptic_baselines as baselines;
pub use adaptic_serve as serve;
pub use gpu_sim;
pub use perfmodel;
pub use streamir;
