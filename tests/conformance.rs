//! Cross-engine conformance suite: every template family, on both device
//! presets, must produce **bit-identical** outputs, stream cursors and
//! kernel statistics under all four execution engines — serial bytecode,
//! parallel bytecode, serial AST-oracle, parallel AST-oracle.
//!
//! The engines are different evaluators of the same plan, so any
//! divergence is a bug by definition; comparing at the bit level (not
//! within-epsilon) is what lets the deterministic-parallel claim and the
//! bytecode compiler be trusted at all.
//!
//! Inputs come from the replayable seed corpus in
//! `tests/corpus/conformance_seeds.txt`: each seed drives a deterministic
//! LCG, and every failure message names the family, device, engine, seed
//! and size, so a red run replays exactly.

use adaptic_repro::adaptic::{
    compile_with_options, CompileOptions, CompiledProgram, ExecMode, ExecPolicy, InputAxis,
    RunOptions, StateBinding,
};
use adaptic_repro::apps::programs;
use adaptic_repro::gpu_sim::DeviceSpec;
use adaptic_repro::streamir::graph::Program;
use adaptic_repro::streamir::parse::parse_program;

/// The checked-in seed corpus (one u64 per line, `#` comments).
fn corpus_seeds() -> Vec<u64> {
    let text = include_str!("corpus/conformance_seeds.txt");
    let seeds: Vec<u64> = text
        .lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(|l| {
            if let Some(hex) = l.strip_prefix("0x").or_else(|| l.strip_prefix("0X")) {
                u64::from_str_radix(hex, 16).expect("hex seed")
            } else {
                l.parse().expect("decimal seed")
            }
        })
        .collect();
    assert!(!seeds.is_empty(), "seed corpus must not be empty");
    seeds
}

/// Deterministic pseudo-random stream in [-1, 1) — same LCG as the bench
/// harness, so corpus seeds mean the same data everywhere.
fn data(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        })
        .collect()
}

/// One conformance case: a program exercising one template family.
struct Case {
    family: &'static str,
    program: Program,
    opts: CompileOptions,
    /// Axis values to run at (small enough for `ExecMode::Full`).
    sizes: &'static [i64],
    /// Stream length for axis value `x`.
    items: fn(i64) -> usize,
    /// Axis for compilation.
    axis: fn() -> InputAxis,
    /// State bindings, if the program needs them.
    state: fn() -> Vec<StateBinding>,
}

fn no_state() -> Vec<StateBinding> {
    Vec::new()
}

fn cases() -> Vec<Case> {
    vec![
        // Unit (map) template: elementwise records with bound state.
        Case {
            family: "unit-map",
            program: programs::black_scholes().program,
            opts: CompileOptions::default(),
            sizes: &[64, 1024],
            items: |x| 3 * x as usize,
            axis: || InputAxis::total_size("N", 16, 1 << 16),
            state: || vec![StateBinding::new("Price", "rv", vec![0.02, 0.3])],
        },
        // Reduce template: single accumulation over the stream.
        Case {
            family: "reduce",
            program: programs::sasum().program,
            opts: CompileOptions::default(),
            sizes: &[256, 8192],
            items: |x| x as usize,
            axis: || InputAxis::total_size("N", 256, 1 << 18),
            state: no_state,
        },
        // Stencil template: neighboring access over a 2-D grid.
        Case {
            family: "stencil",
            program: parse_program(
                r#"pipeline Heat(rows, cols) {
                    actor Diffuse(pop rows*cols, push rows*cols, peek rows*cols) {
                        for idx in 0..rows*cols {
                            r = idx / cols;
                            c = idx % cols;
                            if (r > 0 && r < rows - 1 && c > 0 && c < cols - 1) {
                                push(peek(idx)
                                    + 0.2 * (peek(idx - 1) + peek(idx + 1)
                                        + peek(idx - cols) + peek(idx + cols)
                                        - 4.0 * peek(idx)));
                            } else {
                                push(peek(idx));
                            }
                        }
                    }
                }"#,
            )
            .unwrap(),
            opts: CompileOptions::default(),
            sizes: &[24, 48],
            items: |x| (x * x) as usize,
            axis: || {
                InputAxis::new("side", 16, 256, |s| {
                    adaptic_repro::streamir::graph::bindings(&[("rows", s), ("cols", s)])
                })
            },
            state: no_state,
        },
        // HFused template: duplicate splitjoin of two reductions fused
        // into one kernel.
        Case {
            family: "hfused",
            program: parse_program(
                r#"pipeline MaxSum(N) {
                    splitjoin {
                        split duplicate;
                        actor MaxA(pop N, push 1) {
                            m = -100000.0;
                            for i in 0..N { m = max(m, pop()); }
                            push(m);
                        }
                        actor SumA(pop N, push 1) {
                            s = 0.0;
                            for i in 0..N { s = s + pop(); }
                            push(s);
                        }
                        join roundrobin(1, 1);
                    }
                }"#,
            )
            .unwrap(),
            opts: CompileOptions::default(),
            sizes: &[512, 4096],
            items: |x| x as usize,
            axis: || InputAxis::total_size("N", 256, 1 << 18),
            state: no_state,
        },
        // MapSiblings template: the same splitjoin shape over maps, with
        // horizontal integration disabled so the sibling-branch engine
        // (not the fused kernel) runs.
        Case {
            family: "map-siblings",
            program: parse_program(
                r#"pipeline SinCos(N) {
                    splitjoin {
                        split duplicate;
                        actor SinA(pop 1, push 1) { push(sin(pop())); }
                        actor CosA(pop 1, push 1) { push(cos(pop())); }
                        join roundrobin(1, 1);
                    }
                }"#,
            )
            .unwrap(),
            opts: CompileOptions {
                integration: false,
                ..CompileOptions::default()
            },
            sizes: &[512, 2048],
            items: |x| x as usize,
            axis: || InputAxis::total_size("N", 64, 1 << 16),
            state: no_state,
        },
    ]
}

fn devices() -> Vec<DeviceSpec> {
    vec![DeviceSpec::tesla_c2050(), DeviceSpec::gtx285()]
}

/// The four engines under test. Serial bytecode is the baseline the other
/// three are compared against.
fn engines() -> Vec<(&'static str, RunOptions)> {
    vec![
        ("serial-bytecode", RunOptions::serial(ExecMode::Full)),
        (
            "parallel-bytecode",
            RunOptions {
                policy: ExecPolicy::Parallel(4),
                ..RunOptions::serial(ExecMode::Full)
            },
        ),
        (
            "serial-ast",
            RunOptions::serial(ExecMode::Full).with_ast_oracle(true),
        ),
        (
            "parallel-ast",
            RunOptions {
                policy: ExecPolicy::Parallel(4),
                ..RunOptions::serial(ExecMode::Full)
            }
            .with_ast_oracle(true),
        ),
    ]
}

fn compiled_for(case: &Case, device: &DeviceSpec) -> CompiledProgram {
    compile_with_options(&case.program, device, &(case.axis)(), case.opts)
        .unwrap_or_else(|e| panic!("{} fails to compile for {}: {e}", case.family, device.name))
}

#[test]
fn engines_are_bit_identical_across_families_devices_and_seeds() {
    let seeds = corpus_seeds();
    for case in cases() {
        for device in devices() {
            let compiled = compiled_for(&case, &device);
            for &x in case.sizes {
                for &seed in &seeds {
                    let input = data((case.items)(x), seed);
                    let state = (case.state)();
                    let ctx = format!(
                        "family={} device={} x={x} seed={seed}",
                        case.family, device.name
                    );

                    let engines = engines();
                    let (_, base_opts) = engines[0];
                    let base = compiled
                        .run_opts(x, &input, &state, base_opts, None)
                        .unwrap_or_else(|e| panic!("{ctx}: baseline run failed: {e}"));

                    for (engine, opts) in &engines[1..] {
                        let got = compiled
                            .run_opts(x, &input, &state, *opts, None)
                            .unwrap_or_else(|e| panic!("{ctx} engine={engine}: {e}"));

                        // Output stream: identical cursor (length) and
                        // bit-identical values.
                        assert_eq!(
                            got.output.len(),
                            base.output.len(),
                            "{ctx} engine={engine}: output cursor diverged"
                        );
                        for (i, (g, b)) in got.output.iter().zip(&base.output).enumerate() {
                            assert_eq!(
                                g.to_bits(),
                                b.to_bits(),
                                "{ctx} engine={engine}: output[{i}] {g} vs {b}"
                            );
                        }

                        // Selection and kernel statistics.
                        assert_eq!(
                            got.variant_index, base.variant_index,
                            "{ctx} engine={engine}: variant diverged"
                        );
                        assert_eq!(
                            got.kernels.len(),
                            base.kernels.len(),
                            "{ctx} engine={engine}: launch count diverged"
                        );
                        for (g, b) in got.kernels.iter().zip(&base.kernels) {
                            assert_eq!(g.name, b.name, "{ctx} engine={engine}");
                            assert_eq!(
                                g.stats, b.stats,
                                "{ctx} engine={engine} kernel={}: stats diverged",
                                g.name
                            );
                            assert_eq!(
                                g.estimate, b.estimate,
                                "{ctx} engine={engine} kernel={}: estimate diverged",
                                g.name
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn conformance_covers_every_template_family() {
    // The suite's coverage claim, pinned: if a new template family is
    // added to the compiler, this test reminds the author to extend the
    // conformance matrix.
    use adaptic_repro::adaptic::SegChoice;
    let mut seen = std::collections::BTreeSet::new();
    let device = DeviceSpec::tesla_c2050();
    for case in cases() {
        let compiled = compiled_for(&case, &device);
        for v in &compiled.variants {
            for c in &v.choices {
                seen.insert(match c {
                    SegChoice::Reduce { .. } => "reduce",
                    SegChoice::Map { .. } => "unit-map",
                    SegChoice::Stencil { .. } => "stencil",
                    SegChoice::HFused { .. } => "hfused",
                    SegChoice::MapSiblings => "map-siblings",
                    SegChoice::Opaque => "host",
                });
            }
        }
    }
    for family in ["unit-map", "reduce", "stencil", "hfused", "map-siblings"] {
        assert!(seen.contains(family), "family {family} not exercised");
    }
}
