//! Cross-engine conformance suite: every template family, on both device
//! presets, must produce **bit-identical** outputs, stream cursors and
//! kernel statistics under all six execution engines — {warp-batched,
//! scalar bytecode, AST-oracle} × {serial, parallel}.
//!
//! The engines are different evaluators of the same plan, so any
//! divergence is a bug by definition; comparing at the bit level (not
//! within-epsilon) is what lets the deterministic-parallel claim and the
//! bytecode compiler be trusted at all.
//!
//! Inputs come from the replayable seed corpus in
//! `tests/corpus/conformance_seeds.txt` via the shared harness in
//! `tests/common/mod.rs` (also driven by the chaos suite): each seed
//! drives a deterministic LCG, and every failure message names the
//! family, device, engine, seed and size, so a red run replays exactly.

mod common;

use adaptic_repro::adaptic::{EvalBackend, ExecMode, ExecPolicy, RunOptions};
use adaptic_repro::gpu_sim::DeviceSpec;
use common::{cases, compiled_for, corpus_seeds, data, devices};

/// The six engines under test. Serial warp-batched (the default) is the
/// baseline the other five are compared against.
fn engines() -> Vec<(String, RunOptions<'static>)> {
    let mut v = Vec::new();
    for (backend, tag) in [
        (EvalBackend::Warp, "warp"),
        (EvalBackend::Scalar, "bytecode"),
        (EvalBackend::Ast, "ast"),
    ] {
        v.push((
            format!("serial-{tag}"),
            RunOptions::serial(ExecMode::Full).with_backend(backend),
        ));
        v.push((
            format!("parallel-{tag}"),
            RunOptions {
                policy: ExecPolicy::Parallel(4),
                ..RunOptions::serial(ExecMode::Full)
            }
            .with_backend(backend),
        ));
    }
    v
}

#[test]
fn engines_are_bit_identical_across_families_devices_and_seeds() {
    let seeds = corpus_seeds();
    for case in cases() {
        for device in devices() {
            let compiled = compiled_for(&case, &device);
            for &x in case.sizes {
                for &seed in &seeds {
                    let input = data((case.items)(x), seed);
                    let state = (case.state)();
                    let ctx = format!(
                        "family={} device={} x={x} seed={seed}",
                        case.family, device.name
                    );

                    let engines = engines();
                    let (_, base_opts) = &engines[0];
                    let base = compiled
                        .run_opts(x, &input, &state, *base_opts, None)
                        .unwrap_or_else(|e| panic!("{ctx}: baseline run failed: {e}"));

                    for (engine, opts) in &engines[1..] {
                        let got = compiled
                            .run_opts(x, &input, &state, *opts, None)
                            .unwrap_or_else(|e| panic!("{ctx} engine={engine}: {e}"));

                        // Output stream: identical cursor (length) and
                        // bit-identical values.
                        assert_eq!(
                            got.output.len(),
                            base.output.len(),
                            "{ctx} engine={engine}: output cursor diverged"
                        );
                        for (i, (g, b)) in got.output.iter().zip(&base.output).enumerate() {
                            assert_eq!(
                                g.to_bits(),
                                b.to_bits(),
                                "{ctx} engine={engine}: output[{i}] {g} vs {b}"
                            );
                        }

                        // Selection and kernel statistics.
                        assert_eq!(
                            got.variant_index, base.variant_index,
                            "{ctx} engine={engine}: variant diverged"
                        );
                        assert_eq!(
                            got.kernels.len(),
                            base.kernels.len(),
                            "{ctx} engine={engine}: launch count diverged"
                        );
                        for (g, b) in got.kernels.iter().zip(&base.kernels) {
                            assert_eq!(g.name, b.name, "{ctx} engine={engine}");
                            assert_eq!(
                                g.stats, b.stats,
                                "{ctx} engine={engine} kernel={}: stats diverged",
                                g.name
                            );
                            assert_eq!(
                                g.estimate, b.estimate,
                                "{ctx} engine={engine} kernel={}: estimate diverged",
                                g.name
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Dynamic-rate conformance: the same regime-flip trace through a
/// [`DynamicRegion`] per engine. Re-scheduling must be invisible to the
/// engine choice — every firing (in-window, clamped, and the ones that
/// trigger a re-plan) stays bit-identical across all six engines, and the
/// governor trajectory (re-plan points, committed windows) is identical
/// because it observes rates, not execution.
#[test]
fn dynamic_rate_regions_are_bit_identical_across_engines() {
    use adaptic_repro::adaptic::{CompileOptions, DynamicRegion, ReschedPolicy};
    use adaptic_repro::apps::programs;
    use adaptic_repro::perfmodel::Hysteresis;
    use adaptic_repro::streamir::RateInterval;

    // Recalibration feeds on wall-clock measurements; frozen boundaries
    // keep variant selection identical across the six engine passes.
    let frozen = Hysteresis {
        min_rel_shift: f64::INFINITY,
        min_abs_shift: i64::MAX,
    };

    let mut program = programs::sasum().program;
    let declared = RateInterval::new(64, 8192).unwrap();
    program
        .actors
        .iter_mut()
        .find(|a| a.name == "Asum")
        .unwrap()
        .dyn_rates
        .insert("N".into(), declared);
    let policy = ReschedPolicy {
        exit_streak: 2,
        cooldown: 4,
        spread: 4.0,
        alpha: 0.5,
    };
    // Two dwells per regime: tiny, huge, tiny — each flip re-plans after
    // a 2-firing streak, so the trace exercises in-window serving,
    // clamped transients and two plan swaps.
    let trace: Vec<i64> = [64, 96, 128, 8192, 4096, 6144, 2048, 96, 64, 128]
        .iter()
        .flat_map(|&x| [x, x])
        .collect();
    let input = data(8192, 11);

    struct EnginePass {
        engine: String,
        outs: Vec<Vec<f32>>,
        resched: Vec<u64>,
        variants: Vec<usize>,
    }

    for device in devices() {
        let engines = engines();
        let mut outputs: Vec<EnginePass> = Vec::new();
        for (engine, opts) in &engines {
            let mut region = DynamicRegion::new(
                &program,
                &device,
                CompileOptions::default(),
                policy,
                trace[0],
                None,
            )
            .unwrap_or_else(|e| panic!("device={} engine={engine}: {e}", device.name))
            .with_kmu_hysteresis(frozen);
            let mut outs = Vec::new();
            let mut resched = Vec::new();
            let mut variants = Vec::new();
            for (t, &x) in trace.iter().enumerate() {
                let rep = region
                    .run(x, &input[..x as usize], &[], *opts)
                    .unwrap_or_else(|e| {
                        panic!(
                            "device={} engine={engine} firing {t} (x={x}): {e}",
                            device.name
                        )
                    });
                outs.push(rep.output);
                variants.push(rep.variant_index);
            }
            resched.push(region.reschedules());
            assert!(
                region.reschedules() >= 2,
                "device={} engine={engine}: the flips must re-plan (got {})",
                device.name,
                region.reschedules()
            );
            outputs.push(EnginePass {
                engine: engine.clone(),
                outs,
                resched,
                variants,
            });
        }

        let base = &outputs[0];
        let base_name = &base.engine;
        for EnginePass {
            engine,
            outs,
            resched,
            variants,
        } in &outputs[1..]
        {
            assert_eq!(
                resched, &base.resched,
                "device={}: governor trajectory diverged between {base_name} and {engine}",
                device.name
            );
            assert_eq!(
                variants, &base.variants,
                "device={}: variant selection diverged between {base_name} and {engine}",
                device.name
            );
            for (t, (got, base)) in outs.iter().zip(&base.outs).enumerate() {
                assert_eq!(
                    got.len(),
                    base.len(),
                    "device={} engine={engine} firing {t}: output cursor diverged",
                    device.name
                );
                for (i, (g, b)) in got.iter().zip(base).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        b.to_bits(),
                        "device={} engine={engine} firing {t}: output[{i}] {g} vs {b}",
                        device.name
                    );
                }
            }
        }
    }
}

#[test]
fn conformance_covers_every_template_family() {
    // The suite's coverage claim, pinned: if a new template family is
    // added to the compiler, this test reminds the author to extend the
    // conformance matrix.
    use adaptic_repro::adaptic::SegChoice;
    let mut seen = std::collections::BTreeSet::new();
    let device = DeviceSpec::tesla_c2050();
    for case in cases() {
        let compiled = compiled_for(&case, &device);
        for v in &compiled.variants {
            for c in &v.choices {
                seen.insert(match c {
                    SegChoice::Reduce { .. } => "reduce",
                    SegChoice::Map { .. } => "unit-map",
                    SegChoice::Stencil { .. } => "stencil",
                    SegChoice::HFused { .. } => "hfused",
                    SegChoice::MapSiblings => "map-siblings",
                    SegChoice::Opaque => "host",
                });
            }
        }
    }
    for family in ["unit-map", "reduce", "stencil", "hfused", "map-siblings"] {
        assert!(seen.contains(family), "family {family} not exercised");
    }
}
