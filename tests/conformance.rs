//! Cross-engine conformance suite: every template family, on both device
//! presets, must produce **bit-identical** outputs, stream cursors and
//! kernel statistics under all six execution engines — {warp-batched,
//! scalar bytecode, AST-oracle} × {serial, parallel}.
//!
//! The engines are different evaluators of the same plan, so any
//! divergence is a bug by definition; comparing at the bit level (not
//! within-epsilon) is what lets the deterministic-parallel claim and the
//! bytecode compiler be trusted at all.
//!
//! Inputs come from the replayable seed corpus in
//! `tests/corpus/conformance_seeds.txt` via the shared harness in
//! `tests/common/mod.rs` (also driven by the chaos suite): each seed
//! drives a deterministic LCG, and every failure message names the
//! family, device, engine, seed and size, so a red run replays exactly.

mod common;

use adaptic_repro::adaptic::{EvalBackend, ExecMode, ExecPolicy, RunOptions};
use adaptic_repro::gpu_sim::DeviceSpec;
use common::{cases, compiled_for, corpus_seeds, data, devices};

/// The six engines under test. Serial warp-batched (the default) is the
/// baseline the other five are compared against.
fn engines() -> Vec<(String, RunOptions<'static>)> {
    let mut v = Vec::new();
    for (backend, tag) in [
        (EvalBackend::Warp, "warp"),
        (EvalBackend::Scalar, "bytecode"),
        (EvalBackend::Ast, "ast"),
    ] {
        v.push((
            format!("serial-{tag}"),
            RunOptions::serial(ExecMode::Full).with_backend(backend),
        ));
        v.push((
            format!("parallel-{tag}"),
            RunOptions {
                policy: ExecPolicy::Parallel(4),
                ..RunOptions::serial(ExecMode::Full)
            }
            .with_backend(backend),
        ));
    }
    v
}

#[test]
fn engines_are_bit_identical_across_families_devices_and_seeds() {
    let seeds = corpus_seeds();
    for case in cases() {
        for device in devices() {
            let compiled = compiled_for(&case, &device);
            for &x in case.sizes {
                for &seed in &seeds {
                    let input = data((case.items)(x), seed);
                    let state = (case.state)();
                    let ctx = format!(
                        "family={} device={} x={x} seed={seed}",
                        case.family, device.name
                    );

                    let engines = engines();
                    let (_, base_opts) = &engines[0];
                    let base = compiled
                        .run_opts(x, &input, &state, *base_opts, None)
                        .unwrap_or_else(|e| panic!("{ctx}: baseline run failed: {e}"));

                    for (engine, opts) in &engines[1..] {
                        let got = compiled
                            .run_opts(x, &input, &state, *opts, None)
                            .unwrap_or_else(|e| panic!("{ctx} engine={engine}: {e}"));

                        // Output stream: identical cursor (length) and
                        // bit-identical values.
                        assert_eq!(
                            got.output.len(),
                            base.output.len(),
                            "{ctx} engine={engine}: output cursor diverged"
                        );
                        for (i, (g, b)) in got.output.iter().zip(&base.output).enumerate() {
                            assert_eq!(
                                g.to_bits(),
                                b.to_bits(),
                                "{ctx} engine={engine}: output[{i}] {g} vs {b}"
                            );
                        }

                        // Selection and kernel statistics.
                        assert_eq!(
                            got.variant_index, base.variant_index,
                            "{ctx} engine={engine}: variant diverged"
                        );
                        assert_eq!(
                            got.kernels.len(),
                            base.kernels.len(),
                            "{ctx} engine={engine}: launch count diverged"
                        );
                        for (g, b) in got.kernels.iter().zip(&base.kernels) {
                            assert_eq!(g.name, b.name, "{ctx} engine={engine}");
                            assert_eq!(
                                g.stats, b.stats,
                                "{ctx} engine={engine} kernel={}: stats diverged",
                                g.name
                            );
                            assert_eq!(
                                g.estimate, b.estimate,
                                "{ctx} engine={engine} kernel={}: estimate diverged",
                                g.name
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn conformance_covers_every_template_family() {
    // The suite's coverage claim, pinned: if a new template family is
    // added to the compiler, this test reminds the author to extend the
    // conformance matrix.
    use adaptic_repro::adaptic::SegChoice;
    let mut seen = std::collections::BTreeSet::new();
    let device = DeviceSpec::tesla_c2050();
    for case in cases() {
        let compiled = compiled_for(&case, &device);
        for v in &compiled.variants {
            for c in &v.choices {
                seen.insert(match c {
                    SegChoice::Reduce { .. } => "reduce",
                    SegChoice::Map { .. } => "unit-map",
                    SegChoice::Stencil { .. } => "stencil",
                    SegChoice::HFused { .. } => "hfused",
                    SegChoice::MapSiblings => "map-siblings",
                    SegChoice::Opaque => "host",
                });
            }
        }
    }
    for family in ["unit-map", "reduce", "stencil", "hfused", "map-siblings"] {
        assert!(seen.contains(family), "family {family} not exercised");
    }
}
