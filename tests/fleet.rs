//! Fleet suite: heterogeneous scheduling end to end. Cost-predicted
//! placement must beat round-robin on a skewed mix, "few fit most"
//! pruning must hold its overhead bound on real app programs across every
//! device preset, the telemetry rollup must not double-count a shared
//! artifact store, and — the safety property — learned KMU state must
//! never cross-pollinate between devices with different fingerprints.

mod common;

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use adaptic_repro::adaptic::{
    compile, ArtifactKey, ArtifactStore, ExecMode, Fleet, InputAxis, KernelManager, LearnedState,
    PlacementPolicy, RunOptions, TelemetrySnapshot,
};
use adaptic_repro::apps::programs;
use adaptic_repro::gpu_sim::DeviceSpec;
use common::data;

fn axis() -> InputAxis {
    InputAxis::total_size("N", 256, 1 << 18)
}

fn opts() -> RunOptions<'static> {
    RunOptions {
        mode: ExecMode::SampledExec(32),
        ..RunOptions::default()
    }
}

/// A unique empty store directory (test binaries run concurrently).
fn temp_store(tag: &str) -> (PathBuf, ArtifactStore) {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "adaptic_fleet_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ArtifactStore::new(&dir);
    (dir, store)
}

/// The demo's skewed mix in miniature: mostly tiny, a tail of huge.
fn skewed_sizes() -> Vec<i64> {
    let mut sizes = Vec::new();
    for i in 0..60i64 {
        sizes.push(256 + (i * 37) % 768); // tiny
    }
    for i in 0..12i64 {
        sizes.push((1 << 17) + i * 4096); // huge
    }
    sizes
}

fn fleet() -> Fleet {
    Fleet::compile(&programs::sasum().program, &axis(), &DeviceSpec::presets()).unwrap()
}

fn drive(fleet: &Fleet, policy: PlacementPolicy) -> f64 {
    let sizes = skewed_sizes();
    let input = data(1 << 18, 11);
    let placements: Vec<_> = sizes
        .iter()
        .map(|&x| fleet.admit(x, policy).unwrap())
        .collect();
    for (&x, p) in sizes.iter().zip(placements) {
        fleet
            .settle(p, x, &input[..x as usize], &[], opts())
            .unwrap();
    }
    fleet.makespan_us()
}

#[test]
fn cost_predicted_beats_round_robin_on_skewed_mix() {
    let cp = drive(&fleet(), PlacementPolicy::CostPredicted);
    let rr = drive(&fleet(), PlacementPolicy::RoundRobin);
    assert!(
        cp <= rr,
        "cost-predicted makespan {cp:.1} us must not lose to round-robin {rr:.1} us"
    );
}

#[test]
fn pruning_bound_holds_on_every_preset_for_real_programs() {
    for bench in [programs::sasum(), programs::snrm2()] {
        for device in DeviceSpec::presets() {
            let compiled = compile(&bench.program, &device, &axis()).unwrap();
            let (_, costs) = compiled.sample_cost_matrix(48, |_| 1.0);
            let sel = adaptic_repro::perfmodel::prune_variant_set(&costs, 0.10);
            let ctx = format!("{} on {}", bench.name, device.name);
            assert!(
                sel.max_overhead <= 0.10 + 1e-9,
                "{ctx}: overhead {} breaks the bound",
                sel.max_overhead
            );
            let pruned = compiled
                .prune_to(&sel.kept)
                .unwrap_or_else(|e| panic!("{ctx}: {e}"));
            assert!(pruned.variant_count() <= compiled.variant_count(), "{ctx}");
            assert!(
                pruned.export_plan().byte_size() <= compiled.export_plan().byte_size(),
                "{ctx}: pruning must never grow the artifact"
            );
            // The pruned table still tiles the whole axis and runs.
            let input = data(1024, 3);
            let report = pruned
                .run(1024, &input)
                .unwrap_or_else(|e| panic!("{ctx}: pruned table must still run: {e}"));
            assert!(report.time_us > 0.0, "{ctx}");
        }
    }
}

#[test]
fn learned_state_does_not_cross_pollinate_between_fingerprints() {
    let program = programs::sasum().program;
    let igpu = compile(&program, &DeviceSpec::igpu_small(), &axis()).unwrap();
    let hpc = compile(&program, &DeviceSpec::hpc_wide(), &axis()).unwrap();
    assert_ne!(igpu.artifact_key(), hpc.artifact_key());

    let kmu = KernelManager::new(igpu.clone());
    let input = data(4096, 5);
    for _ in 0..4 {
        kmu.run(4096, &input, &[], opts()).unwrap();
    }
    let learned = kmu.export_learned();
    let bytes = learned.to_bytes(igpu.artifact_key());

    // Decoding under the other device's key must fail closed: the file
    // key embeds the device fingerprint.
    let err = LearnedState::from_bytes(&bytes, hpc.artifact_key())
        .expect_err("cross-device learned bytes must be rejected");
    let msg = err.to_string();
    assert!(!msg.is_empty());
    // Same bytes under the right key decode fine.
    let back = LearnedState::from_bytes(&bytes, igpu.artifact_key()).unwrap();
    assert_eq!(back.boundaries, learned.boundaries);

    // A doctored key (right content, wrong device) is also rejected —
    // the fingerprint alone is enough to fence state.
    let doctored = ArtifactKey {
        content: igpu.artifact_key().content,
        device: hpc.artifact_key().device,
    };
    assert!(LearnedState::from_bytes(&bytes, doctored).is_err());
}

#[test]
fn shared_store_keeps_learned_state_per_device() {
    let (dir, store) = temp_store("hetero");
    let store = Arc::new(store);
    let program = programs::sasum().program;
    let input = data(4096, 5);

    // Two heterogeneous managers share ONE store; each persists its own
    // learned state under its own key.
    let keys: Vec<ArtifactKey> = [DeviceSpec::igpu_small(), DeviceSpec::hpc_wide()]
        .into_iter()
        .map(|device| {
            let compiled = compile(&program, &device, &axis()).unwrap();
            let key = compiled.artifact_key();
            let kmu = KernelManager::new(compiled).with_artifacts(Arc::clone(&store));
            kmu.run(4096, &input, &[], opts()).unwrap();
            kmu.persist_learned().unwrap();
            key
        })
        .collect();

    // Two distinct .learned files: the device fingerprint is part of the
    // file stem, so the entries can never collide.
    let learned_files = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "kmu"))
        .count();
    assert_eq!(learned_files, 2, "one learned file per device");

    // Each device loads exactly its own state under its own key.
    for (&key, device) in keys
        .iter()
        .zip([DeviceSpec::igpu_small(), DeviceSpec::hpc_wide()])
    {
        let compiled = compile(&program, &device, &axis()).unwrap();
        let own = store
            .load_learned(key, compiled.variant_count(), 256, 1 << 18)
            .expect("own learned state must load");
        assert_eq!(own.histograms.len(), compiled.variant_count());
    }

    // A fingerprint nothing persisted under (same content hash, third
    // device) is a clean miss — never a neighbour's bytes.
    let third = compile(&program, &DeviceSpec::gtx480(), &axis()).unwrap();
    let foreign = ArtifactKey {
        content: keys[0].content,
        device: third.artifact_key().device,
    };
    let misses_before = store.counters().misses;
    assert!(
        store
            .load_learned(foreign, third.variant_count(), 256, 1 << 18)
            .is_none(),
        "unpersisted fingerprint must miss"
    );
    assert_eq!(store.counters().misses, misses_before + 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_rollup_over_shared_store_counts_artifacts_once() {
    let (dir, store) = temp_store("rollup");
    let store = Arc::new(store);
    let program = programs::sasum().program;
    let input = data(4096, 5);

    let nodes: Vec<KernelManager> = DeviceSpec::presets()
        .into_iter()
        .map(|device| {
            let compiled = compile(&program, &device, &axis()).unwrap();
            KernelManager::new(compiled).with_artifacts(Arc::clone(&store))
        })
        .collect();
    for kmu in &nodes {
        kmu.run(4096, &input, &[], opts()).unwrap();
        kmu.persist_learned().unwrap();
    }
    // Warm-start a second generation of managers off the shared store so
    // the store-wide hit counter is non-zero and identical in every
    // snapshot.
    let second: Vec<KernelManager> = DeviceSpec::presets()
        .into_iter()
        .map(|device| {
            let compiled = compile(&program, &device, &axis()).unwrap();
            KernelManager::new(compiled).with_artifacts(Arc::clone(&store))
        })
        .collect();
    let snaps: Vec<TelemetrySnapshot> = second.iter().map(|k| k.telemetry()).collect();
    let store_hits = store.counters().hits;
    assert!(store_hits > 0, "warm boot must hit the store");
    for s in &snaps {
        assert_eq!(
            s.artifact_hits, store_hits,
            "every snapshot over a shared store reports the store-wide tally"
        );
    }
    let fleet = TelemetrySnapshot::fleet_rollup(&snaps, true).unwrap();
    assert_eq!(
        fleet.artifact_hits, store_hits,
        "shared-store rollup must count each hit once, not once per node"
    );
    let naive = TelemetrySnapshot::fleet_rollup(&snaps, false).unwrap();
    assert_eq!(
        naive.artifact_hits,
        store_hits * snaps.len() as u64,
        "summing would multiply by fleet size — the hazard the flag exists for"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
