//! Chaos suite: the conformance corpus re-run under seeded fault
//! injection, pinning the resilient launch pipeline's recovery guarantee.
//!
//! Every template family runs with a [`FaultPlan`] drawn from the same
//! replayable seed corpus the conformance suite uses (plus an optional
//! `ADAPTIC_CHAOS_SEED` from the environment — the CI chaos job sweeps
//! three fixed seeds through it). The pinned invariants:
//!
//! * **Completion** — the degradation ladder (retry → variant fallback →
//!   quarantine → serial last resort) absorbs every injected fault; a run
//!   that exhausts the whole ladder is a test failure.
//! * **Bit-identical recovery** — a run that succeeds after faults
//!   produces the exact output bytes and kernel statistics of a
//!   fault-free run of the variant that completed. (Different variants
//!   reduce in different orders, so cross-variant agreement is only
//!   within rounding — recovery is compared per variant, which is the
//!   strongest claim a variant-switching pipeline can make.)
//! * **Determinism** — the same seed replays the same fault schedule,
//!   the same recovery path and the same bytes, so a red chaos run in CI
//!   reproduces locally by exporting the seed it names.

mod common;

use std::collections::HashSet;
use std::sync::Mutex;

use adaptic_repro::adaptic::{
    CompiledProgram, ExecMode, ExecutionReport, Fault, FaultInjector, FaultKind, FaultPlan,
    KernelManager, RetryPolicy, RunOptions, StateBinding,
};
use adaptic_repro::gpu_sim::DeviceSpec;
use adaptic_repro::perfmodel::Hysteresis;
use adaptic_repro::streamir::error::Error;
use common::{cases, compiled_for, corpus_seeds, data, Case};
use proptest::prelude::*;

/// Corpus seeds plus the CI-provided `ADAPTIC_CHAOS_SEED`, if any.
fn chaos_seeds() -> Vec<u64> {
    let mut seeds = corpus_seeds();
    if let Ok(raw) = std::env::var("ADAPTIC_CHAOS_SEED") {
        let raw = raw.trim();
        let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16)
        } else {
            raw.parse()
        };
        seeds.push(parsed.unwrap_or_else(|_| panic!("bad ADAPTIC_CHAOS_SEED: {raw:?}")));
    }
    seeds
}

/// A [`FaultPlan`] wrapper that records which fault kinds it handed out,
/// so the suite can assert the schedule actually exercised the taxonomy.
#[derive(Debug)]
struct KindTally {
    plan: FaultPlan,
    kinds: Mutex<HashSet<FaultKind>>,
}

impl KindTally {
    fn new(plan: FaultPlan) -> KindTally {
        KindTally {
            plan,
            kinds: Mutex::new(HashSet::new()),
        }
    }

    fn kinds(&self) -> HashSet<FaultKind> {
        self.kinds.lock().unwrap().clone()
    }
}

impl FaultInjector for KindTally {
    fn on_launch(&self, kernel: &str) -> Option<Fault> {
        let fault = self.plan.on_launch(kernel);
        if let Some(f) = fault {
            self.kinds.lock().unwrap().insert(f.kind());
        }
        fault
    }

    fn injected(&self) -> u64 {
        self.plan.injected()
    }
}

/// Fault-free reference run of every variant at `(x, input, state)`:
/// recovery is bit-identical *to the variant that completed*.
fn variant_baselines(
    compiled: &CompiledProgram,
    x: i64,
    input: &[f32],
    state: &[StateBinding],
) -> Vec<ExecutionReport> {
    (0..compiled.variant_count())
        .map(|v| {
            compiled
                .run_opts(
                    x,
                    input,
                    state,
                    RunOptions::serial(ExecMode::Full).with_variant(v),
                    None,
                )
                .unwrap_or_else(|e| panic!("fault-free baseline of variant {v} failed: {e}"))
        })
        .collect()
}

/// Assert `rep` matches the fault-free baseline of the variant it
/// completed on: output cursor, output bits, launch schedule and kernel
/// statistics.
fn assert_bit_identical(ctx: &str, rep: &ExecutionReport, baselines: &[ExecutionReport]) {
    let base = &baselines[rep.variant_index];
    assert_eq!(
        rep.output.len(),
        base.output.len(),
        "{ctx}: output cursor diverged after recovery"
    );
    for (i, (g, b)) in rep.output.iter().zip(&base.output).enumerate() {
        assert_eq!(
            g.to_bits(),
            b.to_bits(),
            "{ctx}: output[{i}] {g} vs {b} after recovery"
        );
    }
    assert_eq!(
        rep.kernels.len(),
        base.kernels.len(),
        "{ctx}: launch count diverged after recovery"
    );
    for (g, b) in rep.kernels.iter().zip(&base.kernels) {
        assert_eq!(g.name, b.name, "{ctx}: launch schedule diverged");
        assert_eq!(
            g.stats, b.stats,
            "{ctx} kernel={}: stats diverged after recovery",
            g.name
        );
    }
}

fn reduce_case() -> Case {
    cases()
        .into_iter()
        .find(|c| c.family == "reduce")
        .expect("corpus has a reduce case")
}

#[test]
fn chaos_recovery_is_bit_identical_across_the_corpus() {
    let device = DeviceSpec::tesla_c2050();
    let seeds = chaos_seeds();
    let mut kinds_seen: HashSet<FaultKind> = HashSet::new();
    let mut total_injected = 0u64;
    let mut total_retries = 0u64;
    for case in cases() {
        let compiled = compiled_for(&case, &device);
        let kmu = KernelManager::new(compiled);
        for &x in case.sizes {
            let state = (case.state)();
            for &seed in &seeds {
                let input = data((case.items)(x), seed);
                let baselines = variant_baselines(kmu.program(), x, &input, &state);
                let inj = KindTally::new(FaultPlan::new(seed).with_rate(0.35));
                let ctx = format!("family={} x={x} seed={seed}", case.family);
                let rep = kmu
                    .run(
                        x,
                        &input,
                        &state,
                        RunOptions::serial(ExecMode::Full).with_faults(&inj),
                    )
                    .unwrap_or_else(|e| panic!("{ctx}: ladder failed to complete: {e}"));
                assert_bit_identical(&ctx, &rep, &baselines);
                kinds_seen.extend(inj.kinds());
                total_injected += inj.injected();
            }
        }
        total_retries += kmu.telemetry().retries;
    }
    assert!(total_injected > 0, "the schedule must actually inject");
    assert!(total_retries > 0, "some faults must have been retried away");
    assert!(
        kinds_seen.len() >= 3,
        "schedule must exercise >=3 fault kinds, saw {kinds_seen:?}"
    );
}

#[test]
fn chaos_replays_identically_for_a_fixed_seed() {
    let device = DeviceSpec::tesla_c2050();
    let case = reduce_case();
    let compiled = compiled_for(&case, &device);
    let x = case.sizes[0];
    let input = data((case.items)(x), 42);

    // Boundaries frozen: recalibration feeds on wall-clock measurements,
    // which must not be allowed to change variant selection between the
    // two passes — everything else is schedule-driven and deterministic.
    let frozen = Hysteresis {
        min_rel_shift: f64::INFINITY,
        min_abs_shift: i64::MAX,
    };
    let run_pass = || {
        let kmu = KernelManager::new(compiled.clone()).with_hysteresis(frozen);
        let plan = FaultPlan::new(0xDEADBEEF).with_rate(0.5);
        let mut trace: Vec<u64> = Vec::new();
        for _ in 0..4 {
            let rep = kmu
                .run(
                    x,
                    &input,
                    &[],
                    RunOptions::serial(ExecMode::Full).with_faults(&plan),
                )
                .expect("the ladder must complete");
            trace.push(rep.variant_index as u64);
            trace.extend(rep.output.iter().map(|v| u64::from(v.to_bits())));
        }
        let snap = kmu.telemetry();
        trace.extend([
            plan.injected(),
            plan.consulted(),
            snap.faults_observed,
            snap.retries,
            snap.fallbacks,
            snap.quarantines,
        ]);
        trace
    };
    assert_eq!(
        run_pass(),
        run_pass(),
        "the same seed must replay the same faults, path and bytes"
    );
}

#[test]
fn hard_fault_window_quarantines_then_readmits() {
    let device = DeviceSpec::tesla_c2050();
    let case = reduce_case();
    let compiled = compiled_for(&case, &device);
    assert!(compiled.variant_count() >= 2, "need a fallback target");
    let kmu = KernelManager::new(compiled).with_quarantine(1, 2);
    let x = kmu.telemetry().boundaries[0].0; // the table's primary is variant 0
    let input = data(x as usize, 7);
    let baselines = variant_baselines(kmu.program(), x, &input, &[]);

    // Reject exactly the primary's whole attempt budget, then go inert.
    let budget = u64::from(RetryPolicy::default().max_attempts);
    let plan = FaultPlan::new(7)
        .with_rate(1.0)
        .with_kinds(vec![FaultKind::LaunchReject])
        .with_window(0, budget);
    for round in 0..4 {
        let rep = kmu
            .run(
                x,
                &input,
                &[],
                RunOptions::serial(ExecMode::Full).with_faults(&plan),
            )
            .unwrap_or_else(|e| panic!("round {round}: ladder failed: {e}"));
        assert_bit_identical(&format!("round {round}"), &rep, &baselines);
    }
    let snap = kmu.telemetry();
    assert_eq!(
        snap.quarantines, 1,
        "the primary must have been quarantined"
    );
    assert!(snap.fallbacks >= 1, "a neighbor must have served meanwhile");
    assert_eq!(snap.half_open_probes, 1, "one probe after the window");
    assert_eq!(snap.readmissions, 1, "the probe must re-admit the primary");
    assert!(snap.quarantined_variants.is_empty(), "breaker closed again");
    assert_eq!(snap.faults_injected, budget);
}

/// Persistence under fire: a fault-injected process that persists its
/// learned state while a variant sits quarantined must NOT leak the
/// quarantine into the store — the artifact carries boundaries and
/// histograms only, and a reloaded process starts with every breaker
/// closed while inheriting the learned boundaries.
#[test]
fn quarantine_state_never_leaks_into_the_store() {
    let device = DeviceSpec::tesla_c2050();
    let case = reduce_case();
    let compiled = compiled_for(&case, &device);
    assert!(compiled.variant_count() >= 2, "need a fallback target");
    let dir = std::env::temp_dir().join(format!("adaptic_chaos_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = std::sync::Arc::new(adaptic_repro::adaptic::ArtifactStore::new(&dir));

    // Long quarantine window so the breaker is still open at "shutdown".
    let kmu = KernelManager::new(compiled.clone())
        .with_quarantine(1, 1_000_000)
        .with_artifacts(std::sync::Arc::clone(&store));
    let x = kmu.telemetry().boundaries[0].0;
    let input = data(x as usize, 7);

    // Reject the primary's whole attempt budget: variant 0 quarantines and
    // a neighbor serves the run.
    let budget = u64::from(RetryPolicy::default().max_attempts);
    let plan = FaultPlan::new(7)
        .with_rate(1.0)
        .with_kinds(vec![FaultKind::LaunchReject])
        .with_window(0, budget);
    kmu.run(
        x,
        &input,
        &[],
        RunOptions::serial(ExecMode::Full).with_faults(&plan),
    )
    .expect("the ladder must complete");
    let snap = kmu.telemetry();
    assert_eq!(snap.quarantines, 1, "the primary must be quarantined");
    assert!(
        !snap.quarantined_variants.is_empty(),
        "breaker must still be open at persist time"
    );

    // Persist mid-quarantine, then "reboot".
    kmu.persist_learned().expect("persist");
    let boundaries = snap.boundaries.clone();
    drop(kmu);

    let reloaded = KernelManager::new(compiled).with_artifacts(std::sync::Arc::clone(&store));
    let fresh = reloaded.telemetry();
    assert!(
        fresh.quarantined_variants.is_empty(),
        "a reloaded process must start with closed breakers, got {:?}",
        fresh.quarantined_variants
    );
    assert_eq!(fresh.quarantines, 0, "no quarantine history inherited");
    assert_eq!(
        fresh.boundaries, boundaries,
        "learned boundaries must survive the restart"
    );
    assert_eq!(fresh.artifact_hits, 1, "the reload must be a store hit");

    // And the reloaded manager runs the once-quarantined primary again.
    let rep = reloaded
        .run(x, &input, &[], RunOptions::serial(ExecMode::Full))
        .expect("fault-free run after reload");
    assert_eq!(
        rep.variant_index, 0,
        "primary selectable again after reboot"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Faults hot *during* a re-schedule window: a regime-flip trace through a
/// [`DynamicRegion`] with the chaos injector running the whole time, so
/// faults land on in-window firings, clamped transients, and the firings
/// that commit a plan swap. Invariants:
///
/// * every firing completes — the degradation ladder absorbs faults on
///   the manager path, and the clamped path falls back to the same
///   serial-degraded last resort rather than dropping the firing;
/// * recovery stays bit-identical to the fault-free baseline of the plan
///   and variant that served each firing (clamped firings against the
///   clamped selection of the same plan);
/// * accounting: `launches + clamped == firings` (nothing dropped or
///   double-run), with faults observed and at least two re-plans.
#[test]
fn faults_during_a_reschedule_window_fall_down_the_ladder() {
    use adaptic_repro::adaptic::{CompileOptions, DynamicRegion, ReschedPolicy, RunOptions};
    use adaptic_repro::apps::programs;
    use adaptic_repro::streamir::RateInterval;

    let mut program = programs::sasum().program;
    program
        .actors
        .iter_mut()
        .find(|a| a.name == "Asum")
        .unwrap()
        .dyn_rates
        .insert("N".into(), RateInterval::new(64, 8192).unwrap());
    let policy = ReschedPolicy {
        exit_streak: 2,
        cooldown: 4,
        spread: 4.0,
        alpha: 0.5,
    };
    let frozen = Hysteresis {
        min_rel_shift: f64::INFINITY,
        min_abs_shift: i64::MAX,
    };
    // Tiny regime, flip to huge, flip back: each flip re-plans on the
    // second consecutive exit, so the injector gets shots at both
    // clamped transients and the commit firings.
    let trace: Vec<i64> = [64, 96, 128, 8192, 4096, 6144, 2048, 96, 64, 128]
        .iter()
        .flat_map(|&x| [x, x])
        .collect();
    let device = DeviceSpec::tesla_c2050();

    for seed in chaos_seeds() {
        let input = data(8192, seed);
        let mut region = DynamicRegion::new(
            &program,
            &device,
            CompileOptions::default(),
            policy,
            trace[0],
            None,
        )
        .expect("region plans")
        .with_kmu_hysteresis(frozen);
        let inj = KindTally::new(FaultPlan::new(seed).with_rate(0.35));

        for (t, &x) in trace.iter().enumerate() {
            let slice = &input[..x as usize];
            let ctx = format!("drift-chaos seed={seed} firing={t} x={x}");
            let rep = region
                .run(
                    x,
                    slice,
                    &[],
                    RunOptions::serial(ExecMode::Full).with_faults(&inj),
                )
                .unwrap_or_else(|e| panic!("{ctx}: ladder failed to complete: {e}"));

            // Fault-free baseline against the plan that served the
            // firing. In-axis firings pin the variant that completed;
            // out-of-axis firings repeat the clamped (unforced)
            // selection, which frozen hysteresis keeps deterministic.
            let plan = region.manager().program();
            let (lo, hi) = plan.axis_range();
            if x >= lo && x <= hi {
                let baselines = variant_baselines(plan, x, slice, &[]);
                assert_bit_identical(&ctx, &rep, &baselines);
            } else {
                let base = plan
                    .run_opts(x, slice, &[], RunOptions::serial(ExecMode::Full), None)
                    .unwrap_or_else(|e| panic!("{ctx}: clamped baseline failed: {e}"));
                assert_eq!(
                    rep.output.len(),
                    base.output.len(),
                    "{ctx}: clamped output cursor diverged after recovery"
                );
                for (i, (g, b)) in rep.output.iter().zip(&base.output).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        b.to_bits(),
                        "{ctx}: clamped output[{i}] {g} vs {b} after recovery"
                    );
                }
            }
        }

        let t = region.telemetry();
        assert!(
            region.reschedules() >= 2,
            "seed={seed}: the flips must re-plan under fire (got {})",
            region.reschedules()
        );
        assert!(
            t.faults_observed > 0,
            "seed={seed}: the schedule never actually injected"
        );
        assert_eq!(
            t.launches + region.clamped_runs(),
            trace.len() as u64,
            "seed={seed}: firings dropped or double-run during re-scheduling"
        );
        assert_eq!(
            t.reschedules,
            region.reschedules(),
            "seed={seed}: telemetry"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite invariant: for *any* seeded plan, a run that the ladder
    /// completes is bit-identical to the fault-free run of the variant
    /// that completed; a run the ladder cannot complete surfaces as the
    /// typed `Error::LaunchFailed`, never a panic or corrupt output.
    #[test]
    fn any_seeded_plan_recovers_bit_identical(seed in any::<u64>(), rate in 0.05f64..0.5) {
        let device = DeviceSpec::tesla_c2050();
        let case = reduce_case();
        let compiled = compiled_for(&case, &device);
        let x = case.sizes[0];
        let input = data((case.items)(x), seed);
        let baselines = variant_baselines(&compiled, x, &input, &[]);
        let kmu = KernelManager::new(compiled);
        let plan = FaultPlan::new(seed).with_rate(rate);
        match kmu.run(x, &input, &[], RunOptions::serial(ExecMode::Full).with_faults(&plan)) {
            Ok(rep) => assert_bit_identical(&format!("seed={seed} rate={rate}"), &rep, &baselines),
            Err(e) => prop_assert!(
                matches!(e, Error::LaunchFailed { .. }),
                "only the typed launch failure may escape: {e}"
            ),
        }
    }
}

/// Serving-plane storm: a misbehaving tenant (quota-busting arrival rate
/// plus 100% fault injection on every request it lands) shares devices
/// with a well-behaved tenant. The plane must confine the blast radius:
///
/// * **No quarantine bleed** — the storm trips only its own breakers;
///   the well-behaved tenant's telemetry shows zero quarantines and
///   zero observed faults.
/// * **Exactly-once accounting** — per tenant, every admitted request
///   resolves to exactly one of completed/failed/shed, and the fleet
///   rollup sums tenant tallies without double-counting.
/// * **Bounded interference** — the well-behaved tenant's closed-loop
///   p99 latency under the storm stays within 25% of its solo baseline
///   (plus a small absolute floor so scheduler jitter on a loaded CI
///   host cannot fail the isolation claim; genuine bleed — storm
///   ladders monopolising the workers — costs far more than the floor).
#[test]
fn tenant_storm_cannot_bleed_across_the_serving_plane() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    use adaptic_repro::adaptic::InputAxis;
    use adaptic_repro::apps::programs;
    use adaptic_repro::serve::{Outcome, Request, Server, ServerConfig, TenantPolicy};

    let seed = *chaos_seeds().last().unwrap();
    let program = programs::sasum().program;
    let axis = InputAxis::total_size("N", 256, 1 << 14);
    let server = Server::start(ServerConfig {
        workers: 4,
        global_queue_cap: 512,
        ..ServerConfig::default()
    });

    // Well-behaved: effectively unmetered, heavier fair-share weight.
    // Storm: a trickle quota (so the quota-busting loop is mostly turned
    // away at the door), hair-trigger breakers, and a retry budget so
    // each hopeless all-faults ladder dies in bounded wall-clock time.
    server
        .register_tenant(
            "well",
            &program,
            &axis,
            TenantPolicy::default()
                .with_weight(4.0)
                .with_quota(100_000.0, 0.0),
        )
        .expect("well tenant registers");
    server
        .register_tenant(
            "storm",
            &program,
            &axis,
            TenantPolicy::default()
                .with_quota(2.0, 10.0)
                .with_retry(RetryPolicy {
                    max_attempts: 2,
                    backoff_base_us: 10,
                    backoff_cap_us: 50,
                    deadline_us: 1_000,
                })
                .with_quarantine(2, 64),
        )
        .expect("storm tenant registers");

    let x = 4096i64;
    let input = Arc::new(data(x as usize, seed));
    let run_well = |n: usize| -> Vec<u64> {
        (0..n)
            .map(|i| {
                let t0 = server.now_us();
                let ticket = server
                    .submit("well", Request::new(x, Arc::clone(&input)))
                    .unwrap_or_else(|r| panic!("well request {i} rejected: {r:?}"));
                match ticket.wait() {
                    Outcome::Completed(c) => c.finished_at_us.saturating_sub(t0),
                    other => panic!("well request {i} did not complete: {other:?}"),
                }
            })
            .collect()
    };
    fn p99(lat: &mut [u64]) -> u64 {
        lat.sort_unstable();
        lat[(lat.len() * 99).div_ceil(100) - 1]
    }

    // Phase A: solo baseline for the well-behaved tenant. 300 samples,
    // so the p99 tolerates three scheduler-jitter outliers per phase.
    let mut solo = run_well(300);

    // Phase B: the same closed loop while the storm hammers the plane.
    // The storm injects `LaunchReject` only: with `RUST_BACKTRACE` set, a
    // `MidBlockPanic` storm would spend more CPU symbolising panic
    // backtraces than serving, drowning the latency signal this phase
    // measures. The rest of the suite covers the full fault taxonomy.
    let plan: Arc<dyn FaultInjector + Send + Sync> = Arc::new(
        FaultPlan::new(seed)
            .with_rate(1.0)
            .with_kinds(vec![FaultKind::LaunchReject]),
    );
    let p99_solo = p99(&mut solo).max(1);
    let bound = (p99_solo + p99_solo / 4).max(p99_solo + 3_000);
    let stop = AtomicBool::new(false);
    let mut p99_storm = u64::MAX;
    let mut well_phases = 1u64; // phase A already ran
    std::thread::scope(|scope| {
        let storm = scope.spawn(|| {
            let mut tickets = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                if let Ok(t) = server.submit(
                    "storm",
                    Request::new(x, Arc::clone(&input)).with_faults(Arc::clone(&plan)),
                ) {
                    tickets.push(t);
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            tickets
        });
        // A genuine cross-tenant bleed is systematic — it shows up in
        // every repetition — while a one-core host preempting the
        // measurement loop is transient. Take the best of up to three
        // storm-phase measurements so scheduler jitter cannot flake the
        // isolation assertion without masking a real regression.
        for _ in 0..3 {
            well_phases += 1;
            let mut stormy = run_well(300);
            p99_storm = p99_storm.min(p99(&mut stormy));
            if p99_storm <= bound {
                break;
            }
        }
        stop.store(true, Ordering::Relaxed);
        // Resolve every storm ticket so the counters are settled before
        // the assertions read them.
        for t in storm.join().unwrap() {
            let _ = t.wait();
        }
    });

    let well = server.tenant_telemetry("well").expect("well telemetry");
    let storm = server.tenant_telemetry("storm").expect("storm telemetry");

    // No cross-tenant bleed: the storm trips only its own breakers.
    assert_eq!(well.quarantines, 0, "well-behaved breakers must not trip");
    assert_eq!(well.faults_observed, 0, "no fault may leak across tenants");
    assert!(
        storm.faults_observed > 0,
        "the storm never actually injected"
    );
    assert!(
        storm.quarantines > 0,
        "100% faults must trip the storm's own breakers"
    );
    assert!(
        storm.rejected_quota > 0,
        "the quota-busting loop must be turned away at the bucket"
    );

    // Exactly-once accounting per admitted request, per tenant.
    let (well_done, well_failed, well_shed) = server
        .counters("well", |c| (c.completed(), c.failed(), c.shed()))
        .expect("well counters");
    let expected = 300 * well_phases;
    assert_eq!(well.admitted, expected, "closed-loop phases of 300 each");
    assert_eq!((well_done, well_failed, well_shed), (expected, 0, 0));
    let (storm_admitted, storm_done, storm_failed, storm_shed) = server
        .counters("storm", |c| {
            (c.admitted(), c.completed(), c.failed(), c.shed())
        })
        .expect("storm counters");
    assert!(storm_admitted > 0, "the storm must land at least its burst");
    assert!(
        storm_failed > 0,
        "all-faults requests must surface as failures"
    );
    assert_eq!(
        storm_admitted,
        storm_done + storm_failed + storm_shed,
        "every admitted storm request resolves exactly once"
    );

    // The rollup sums tenant tallies without double-counting.
    let roll = server.rollup().expect("rollup");
    assert_eq!(roll.admitted, well.admitted + storm.admitted);
    assert_eq!(roll.quarantines, storm.quarantines);
    assert_eq!(roll.rejected_quota, storm.rejected_quota);

    // Bounded interference on the well-behaved tenant's p99.
    assert!(
        p99_storm <= bound,
        "storm moved well-behaved p99 {p99_solo}us -> {p99_storm}us (bound {bound}us)"
    );
}
