//! Golden-stats snapshot tests: the five examples' `ExecutionReport` /
//! `KernelStats` (or run summaries, for the iterative solvers that return
//! their own summaries) serialized into `tests/golden/*.txt` and compared
//! **byte-for-byte**.
//!
//! The whole stack — compiler, simulator, analytical model — is
//! deterministic, so any byte of drift in these snapshots is a behaviour
//! change that must be either fixed or consciously accepted.
//!
//! To accept an intentional change, regenerate the snapshots:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_stats
//! git diff tests/golden/   # review what actually changed
//! ```
//!
//! Never regenerate to silence a diff you cannot explain.

use std::fmt::Write as _;
use std::path::PathBuf;

use adaptic_repro::adaptic::{
    compile, CompileOptions, ExecMode, ExecutionReport, InputAxis, StateBinding,
};
use adaptic_repro::apps::bicgstab::{self, AdapticBicgstab};
use adaptic_repro::apps::datasets::dataset;
use adaptic_repro::apps::programs;
use adaptic_repro::apps::svm::AdapticSvm;
use adaptic_repro::baselines::gpusvm::SvmConfig;
use adaptic_repro::gpu_sim::DeviceSpec;
use adaptic_repro::streamir::parse::parse_program;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

/// Compare `content` against the checked-in snapshot, byte for byte.
/// `UPDATE_GOLDEN=1` rewrites the snapshot instead.
fn check_golden(name: &str, content: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::write(&path, content).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden snapshot {path:?}; generate it with \
             `UPDATE_GOLDEN=1 cargo test --test golden_stats`"
        )
    });
    assert!(
        want == content,
        "golden snapshot `{name}` drifted.\n\
         --- checked in ---\n{want}\n--- produced ---\n{content}\n\
         If the change is intentional, regenerate with \
         `UPDATE_GOLDEN=1 cargo test --test golden_stats` and review the diff."
    );
}

/// Order-dependent digest of a float stream: every bit of every value
/// participates, so snapshots notice any numeric drift without storing
/// megabytes of output.
fn digest(xs: &[f32]) -> String {
    let mut acc = 0xcbf29ce484222325u64; // FNV-1a
    for x in xs {
        acc = (acc ^ x.to_bits() as u64).wrapping_mul(0x100000001b3);
    }
    format!("len={} fnv={acc:016x}", xs.len())
}

/// Stable text rendering of an [`ExecutionReport`]: selection, stream
/// digest, timing, and every kernel's statistics and model estimate.
fn render_report(tag: &str, rep: &ExecutionReport) -> String {
    let mut s = String::new();
    writeln!(s, "[{tag}]").unwrap();
    writeln!(
        s,
        "variant={} output {}",
        rep.variant_index,
        digest(&rep.output)
    )
    .unwrap();
    writeln!(
        s,
        "time_us={:?} host_time_us={:?} cache={}h/{}m",
        rep.time_us, rep.host_time_us, rep.cache_hits, rep.cache_misses
    )
    .unwrap();
    for k in &rep.kernels {
        writeln!(
            s,
            "kernel {} grid={} block={} shared={} recorded={} executed={} cached={}",
            k.name,
            k.stats.config.grid_dim,
            k.stats.config.block_dim,
            k.stats.config.shared_words,
            k.stats.recorded_blocks,
            k.stats.executed_blocks,
            k.cached
        )
        .unwrap();
        writeln!(s, "  totals {:?}", k.stats.totals).unwrap();
        writeln!(
            s,
            "  estimate class={:?} cycles={:?} time_us={:?} mwp={:?} cwp={:?}",
            k.estimate.class,
            k.estimate.total_cycles,
            k.estimate.time_us,
            k.estimate.mwp,
            k.estimate.cwp
        )
        .unwrap();
    }
    s
}

#[test]
fn quickstart_reports_are_stable() {
    let program = parse_program(
        r#"pipeline MeanSquare(N) {
            actor Square(pop 1, push 1) {
                x = pop();
                push(x * x);
            }
            actor Mean(pop N, push 1) {
                acc = 0.0;
                for i in 0..N { acc = acc + pop(); }
                push(acc / N);
            }
        }"#,
    )
    .unwrap();
    let device = DeviceSpec::tesla_c2050();
    let axis = InputAxis::total_size("N", 1 << 8, 1 << 22);
    let compiled = compile(&program, &device, &axis).unwrap();

    let mut snap = String::new();
    writeln!(snap, "variants={}", compiled.variant_count()).unwrap();
    for (i, v) in compiled.variants.iter().enumerate() {
        writeln!(
            snap,
            "v{i}: [{}, {}] {:?} tags={:?}",
            v.lo, v.hi, v.choices, v.tags
        )
        .unwrap();
    }
    for n in [512usize, 1 << 14] {
        let input: Vec<f32> = (0..n).map(|i| (i % 100) as f32 * 0.1).collect();
        let rep = compiled.run(n as i64, &input).unwrap();
        snap.push_str(&render_report(&format!("quickstart N={n}"), &rep));
    }
    check_golden("quickstart", &snap);
}

#[test]
fn heat_stencil_reports_are_stable() {
    let program = parse_program(
        r#"pipeline Heat(rows, cols) {
            actor Diffuse(pop rows*cols, push rows*cols, peek rows*cols) {
                for idx in 0..rows*cols {
                    r = idx / cols;
                    c = idx % cols;
                    if (r > 0 && r < rows - 1 && c > 0 && c < cols - 1) {
                        push(peek(idx)
                            + 0.2 * (peek(idx - 1) + peek(idx + 1)
                                + peek(idx - cols) + peek(idx + cols)
                                - 4.0 * peek(idx)));
                    } else {
                        push(peek(idx));
                    }
                }
            }
        }"#,
    )
    .unwrap();
    let device = DeviceSpec::tesla_c2050();
    let axis = InputAxis::new("side", 16, 256, |s| {
        adaptic_repro::streamir::graph::bindings(&[("rows", s), ("cols", s)])
    });
    let compiled = compile(&program, &device, &axis).unwrap();

    let side = 48usize;
    let mut grid = vec![0.0f32; side * side];
    for r in side / 3..2 * side / 3 {
        for c in side / 3..2 * side / 3 {
            grid[r * side + c] = 100.0;
        }
    }
    let mut snap = String::new();
    for step in 0..3 {
        let rep = compiled.run(side as i64, &grid).unwrap();
        snap.push_str(&render_report(
            &format!("heat side={side} step={step}"),
            &rep,
        ));
        grid = rep.output;
    }
    check_golden("heat_stencil", &snap);
}

#[test]
fn tmv_sweep_reports_are_stable() {
    let device = DeviceSpec::tesla_c2050();
    let total: usize = 1 << 14;
    let t = total as i64;
    let axis = InputAxis::new("rows", 4, t / 4, move |rows| {
        adaptic_repro::streamir::graph::bindings(&[("rows", rows), ("cols", t / rows)])
    })
    .with_items(move |_| t);
    let compiled = compile(&programs::tmv().program, &device, &axis).unwrap();

    let mut snap = String::new();
    writeln!(snap, "variants={}", compiled.variant_count()).unwrap();
    for rows in [4usize, 64, 1024] {
        let cols = total / rows;
        let a: Vec<f32> = (0..total).map(|i| ((i * 13) % 7) as f32 - 3.0).collect();
        let x: Vec<f32> = (0..cols).map(|i| ((i * 5) % 9) as f32 - 4.0).collect();
        let rep = compiled
            .run_with(
                rows as i64,
                &a,
                &[StateBinding::new("RowDot", "x", x)],
                ExecMode::SampledExec(256),
            )
            .unwrap();
        snap.push_str(&render_report(&format!("tmv {rows}x{cols}"), &rep));
    }
    check_golden("tmv_sweep", &snap);
}

#[test]
fn svm_train_summary_is_stable() {
    // The trainer is iterative and returns a run summary rather than one
    // ExecutionReport; snapshot the summary plus the model digest.
    let device = DeviceSpec::tesla_c2050();
    let ds = dataset("Adult", 32);
    let cfg = SvmConfig {
        iterations: 6,
        cache_rows: 0,
        lr: 0.2,
        ..SvmConfig::default()
    };
    let svm =
        AdapticSvm::compile(&device, 64, ds.n as i64, ds.d, CompileOptions::default()).unwrap();
    let run = svm
        .train(&ds.data, &ds.labels, ds.n, &cfg, ExecMode::SampledExec(128))
        .unwrap();

    let mut snap = String::new();
    writeln!(snap, "dataset={} n={} d={}", ds.name, ds.n, ds.d).unwrap();
    writeln!(
        snap,
        "time_us={:?} launches={} alphas {}",
        run.time_us,
        run.launches,
        digest(&run.alphas)
    )
    .unwrap();
    check_golden("svm_train", &snap);
}

#[test]
fn bicgstab_solver_summary_is_stable() {
    let device = DeviceSpec::tesla_c2050();
    let n = 96usize;
    let iters = 2usize;
    let (a, b) = bicgstab::synth_system(n, 42);
    let solver = AdapticBicgstab::compile(&device, 64, 4096, CompileOptions::default()).unwrap();
    let (x, time_us) = solver.solve(&a, &b, n, iters, ExecMode::Full).unwrap();

    let mut snap = String::new();
    writeln!(snap, "system {n}x{n} iters={iters}").unwrap();
    writeln!(snap, "time_us={time_us:?} x {}", digest(&x)).unwrap();
    check_golden("bicgstab_solver", &snap);
}
