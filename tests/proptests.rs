//! Workspace-level property tests: the compiled pipeline agrees with the
//! interpreter on randomly generated programs and inputs, and structural
//! invariants of compilation hold.

use proptest::prelude::*;

use std::collections::HashMap;

use adaptic_repro::adaptic::bytecode::{self, compile_body, Frame};
use adaptic_repro::adaptic::exec_ir::{exec_body, VecIo};
use adaptic_repro::adaptic::warp::{self, full_mask, VecWarpIo, WarpFrame};
use adaptic_repro::adaptic::{
    compile, restructure, unrestructure, EvalBackend, InputAxis, RunOptions,
};
use adaptic_repro::gpu_sim::{DeviceSpec, ExecMode, ExecPolicy};
use adaptic_repro::streamir::interp::Interpreter;
use adaptic_repro::streamir::parse::parse_program;

/// One random building block for a work body. Every block is valid by
/// construction: it only reads variables that are definitely assigned
/// (`x`, `k`, the 4-element state array `s`), keeps peeks in bounds, and
/// keeps every integer divisor provably nonzero — so the AST reference
/// interpreter never errors and the bytecode evaluator never diverges on
/// an invalid program.
fn body_block(sel: u8) -> &'static str {
    match sel % 8 {
        0 => "x = x + peek(0) * 0.5;",
        1 => "k = k * 2654435761 + 12345;",
        2 => "x = x + (k % 97) * 0.125;",
        3 => "acc = 0.0; for i in 0..4 { acc = acc + peek(i); } x = x + acc;",
        4 => "if (x < 0.0) { x = 0.0 - x; } else { x = x * 1.5; }",
        5 => "s[1] = x + s[1]; x = x + s[2] * s[0];",
        6 => "k = k - 7 * (k / 3); x = x / ((k % 7 + 8) * 1.0);",
        _ => "x = max(x, 0.0 - 100.0) + pop();",
    }
}

/// One random *divergence-heavy* building block: data-dependent
/// branches and loop trip counts, so neighbouring warp lanes take
/// different control paths and reconverge. Stateless on purpose — warp
/// lanes share one state array in lockstep, so sequential-firing state
/// semantics only apply lane-privately (which the templates guarantee
/// and `random_body_bytecode_matches_ast_oracle` covers scalar-side).
fn divergent_block(sel: u8) -> &'static str {
    match sel % 6 {
        0 => "if (x > 0.0) { t = 6; } else { t = 2; } for i in 0..t { x = x * 0.75 + 0.25; }",
        1 => "if (x < 0.0) { x = 0.0 - x; } else { x = x * 1.125; }",
        2 => "if (x > 2.0) { x = x - 4.0; } else { if (x > 0.5) { x = x * 0.5; } else { x = x + 1.0; } }",
        3 => "t = 1; if (x > 1.0) { t = t + 3; } if (x > 3.0) { t = t + 4; } for i in 0..t { x = x * 0.875; }",
        4 => "for i in 0..3 { if (x > 1.0) { x = x * 0.5; } else { x = x + 0.375; } }",
        _ => "x = x + 0.0625;",
    }
}

/// A random straight-line map body over one popped value.
fn map_expr(ops: &[u8]) -> String {
    let mut e = "x".to_string();
    for op in ops {
        e = match op % 5 {
            0 => format!("({e} + 1.5)"),
            1 => format!("({e} * 0.5)"),
            2 => format!("abs({e})"),
            3 => format!("max({e}, 0.25)"),
            _ => format!("({e} - 2.0)"),
        };
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random map chain compiles and matches the interpreter exactly.
    #[test]
    fn random_map_chain_matches_interpreter(
        ops1 in proptest::collection::vec(0u8..5, 1..5),
        ops2 in proptest::collection::vec(0u8..5, 1..5),
        data in proptest::collection::vec(-100.0f32..100.0, 32..512),
    ) {
        let src = format!(
            "pipeline P(N) {{
                actor A(pop 1, push 1) {{ x = pop(); push({}); }}
                actor B(pop 1, push 1) {{ x = pop(); push({}); }}
            }}",
            map_expr(&ops1),
            map_expr(&ops2),
        );
        let program = parse_program(&src).unwrap();
        let n = data.len();
        let golden = Interpreter::new(&program).run(&data).unwrap();

        let device = DeviceSpec::tesla_c2050();
        let axis = InputAxis::total_size("N", 16, 1 << 14);
        let compiled = compile(&program, &device, &axis).unwrap();
        let rep = compiled.run(n as i64, &data).unwrap();
        prop_assert_eq!(rep.output, golden);
    }

    /// Random reductions (op and element transform) match a CPU fold
    /// within float-reassociation tolerance, at sizes spanning variants.
    #[test]
    fn random_reduction_matches_fold(
        op_sel in 0u8..3,
        elem_sel in 0u8..3,
        log_n in 6u32..14,
    ) {
        let (init, op) = match op_sel {
            0 => ("0.0", "acc + ELEM"),
            1 => ("-1000000.0", "max(acc, ELEM)"),
            _ => ("1000000.0", "min(acc, ELEM)"),
        };
        let elem = match elem_sel {
            0 => "pop()",
            1 => "abs(pop())",
            _ => "pow(pop(), 2.0)",
        };
        let body = op.replace("ELEM", elem);
        let src = format!(
            "pipeline P(N) {{
                actor R(pop N, push 1) {{
                    acc = {init};
                    for i in 0..N {{ acc = {body}; }}
                    push(acc);
                }}
            }}"
        );
        let program = parse_program(&src).unwrap();
        let n = 1usize << log_n;
        let data: Vec<f32> = (0..n).map(|i| ((i * 37) % 101) as f32 - 50.0).collect();

        let elem_f = |x: f32| -> f32 {
            match elem_sel {
                0 => x,
                1 => x.abs(),
                _ => x * x,
            }
        };
        let want = match op_sel {
            0 => data.iter().map(|x| elem_f(*x)).sum::<f32>(),
            1 => data.iter().map(|x| elem_f(*x)).fold(f32::NEG_INFINITY, f32::max),
            _ => data.iter().map(|x| elem_f(*x)).fold(f32::INFINITY, f32::min),
        };

        let device = DeviceSpec::tesla_c2050();
        let axis = InputAxis::total_size("N", 64, 1 << 14);
        let compiled = compile(&program, &device, &axis).unwrap();
        let rep = compiled.run(n as i64, &data).unwrap();
        prop_assert!(
            (rep.output[0] - want).abs() <= 1e-3 * want.abs().max(1.0),
            "{} vs {}", rep.output[0], want
        );
    }

    /// The variant table exactly tiles the compiled axis for arbitrary
    /// ranges.
    #[test]
    fn variant_table_tiles_the_axis(lo in 1i64..1000, span in 10i64..1_000_000) {
        let program = parse_program(
            "pipeline P(N) {
                actor Sum(pop N, push 1) {
                    acc = 0.0;
                    for i in 0..N { acc = acc + pop(); }
                    push(acc);
                }
            }",
        ).unwrap();
        let hi = lo + span;
        let axis = InputAxis::total_size("N", lo, hi);
        let compiled = compile(&program, &DeviceSpec::tesla_c2050(), &axis).unwrap();
        let vs = &compiled.variants;
        prop_assert_eq!(vs[0].lo, lo);
        prop_assert_eq!(vs.last().unwrap().hi, hi);
        for w in vs.windows(2) {
            prop_assert_eq!(w[0].hi + 1, w[1].lo);
        }
        for v in vs {
            prop_assert!(v.lo <= v.hi);
        }
    }

    /// Memory restructuring round-trips for arbitrary rates and data.
    #[test]
    fn restructure_round_trips(
        rate in 1usize..32,
        firings in 1usize..64,
    ) {
        let data: Vec<f32> = (0..rate * firings).map(|i| i as f32).collect();
        let t = restructure(&data, rate);
        prop_assert_eq!(unrestructure(&t, rate), data);
    }

    /// Simulated kernel statistics are deterministic: two runs of the
    /// same compiled program yield identical stats and outputs.
    #[test]
    fn execution_is_deterministic(seed in 0u64..100) {
        let program = parse_program(
            "pipeline P(N) { actor M(pop 1, push 1) { push(pop() * 3.0); } }",
        ).unwrap();
        let device = DeviceSpec::gtx285();
        let axis = InputAxis::total_size("N", 16, 1 << 12);
        let compiled = compile(&program, &device, &axis).unwrap();
        let data: Vec<f32> = (0..777).map(|i| ((i as u64 * seed) % 97) as f32).collect();
        let a = compiled.run(777, &data).unwrap();
        let b = compiled.run(777, &data).unwrap();
        prop_assert_eq!(a.output, b.output);
        prop_assert_eq!(a.time_us, b.time_us);
        prop_assert_eq!(a.kernels.len(), b.kernels.len());
    }

    /// Random work bodies (loops, branches, peeks, state loads/stores,
    /// wrapping integer arithmetic mixed with floats) evaluate
    /// bit-identically under the compiled bytecode and the AST reference
    /// interpreter: same outputs, same cursor, same final state.
    #[test]
    fn random_body_bytecode_matches_ast_oracle(
        blocks in proptest::collection::vec(0u8..8, 0..8),
        k0 in -1000i64..1000,
        data in proptest::collection::vec(-50.0f32..50.0, 64..96),
        sdata in proptest::collection::vec(-4.0f32..4.0, 4),
    ) {
        let body_src = blocks.iter().map(|b| body_block(*b)).collect::<Vec<_>>().join("\n");
        let src = format!(
            "pipeline P(N) {{
                actor T(pop 16, push 2, peek 16) {{
                    state s[4];
                    x = pop();
                    k = {k0};
                    {body_src}
                    push(x);
                    push((k % 1000) * 1.0);
                }}
            }}"
        );
        let program = parse_program(&src).unwrap();
        let actor = program.actor("T").unwrap();
        let binds = adaptic_repro::streamir::graph::bindings(&[]);

        let mut ast_io = VecIo {
            input: data.clone(),
            ..VecIo::default()
        };
        ast_io.state.insert("s".to_string(), sdata.clone());
        let mut locals = HashMap::new();
        exec_body(&actor.work.body, &mut locals, &binds, &mut ast_io).unwrap();

        let prog = compile_body(&actor.work.body, &binds, &[]).unwrap();
        let proto = prog.bind(&binds).unwrap();
        let mut frame = Frame::default();
        frame.fit(&prog);
        frame.reset(&proto);
        let mut bc_io = VecIo {
            input: data.clone(),
            ..VecIo::default()
        };
        bc_io.state.insert("s".to_string(), sdata.clone());
        bytecode::eval(&prog, &mut frame, &mut bc_io);

        prop_assert_eq!(ast_io.output.len(), bc_io.output.len());
        for (i, (a, b)) in ast_io.output.iter().zip(&bc_io.output).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "output {} differs: {} vs {}", i, a, b);
        }
        prop_assert_eq!(ast_io.cursor, bc_io.cursor);
        for (a, b) in ast_io.state["s"].iter().zip(&bc_io.state["s"]) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "state differs: {} vs {}", a, b);
        }
    }

    /// Every template family (map, reduction, stencil, fused split-join)
    /// produces bit-identical outputs AND kernel statistics whether work
    /// bodies run on the bytecode evaluator or the AST oracle, on both
    /// simulated devices.
    #[test]
    fn template_families_ast_oracle_stats_identical(
        family in 0u8..4,
        ops in proptest::collection::vec(0u8..5, 1..4),
        log_n in 8u32..11,
        dev_sel in 0u8..2,
    ) {
        let (src, is_stencil) = match family {
            0 => (format!(
                "pipeline P(N) {{
                    actor A(pop 1, push 1) {{ x = pop(); push({}); }}
                    actor B(pop 1, push 1) {{ x = pop(); push(x + 1.0); }}
                }}",
                map_expr(&ops),
            ), false),
            1 => (format!(
                "pipeline P(N) {{
                    actor R(pop N, push 1) {{
                        acc = 0.0;
                        for i in 0..N {{ x = pop(); acc = acc + {}; }}
                        push(acc);
                    }}
                }}",
                map_expr(&ops),
            ), false),
            2 => ("pipeline P(rows, cols) {
                    actor S(pop rows*cols, push rows*cols, peek rows*cols) {
                        for idx in 0..rows*cols {
                            r = idx / cols;
                            c = idx % cols;
                            if (r > 0 && r < rows - 1 && c > 0 && c < cols - 1) {
                                push(0.25 * (peek(idx - 1) + peek(idx + 1)
                                    + peek(idx - cols) + peek(idx + cols)));
                            } else {
                                push(peek(idx));
                            }
                        }
                    }
                }".to_string(), true),
            _ => ("pipeline P(N) {
                    splitjoin {
                        split duplicate;
                        actor MaxA(pop N, push 1) {
                            m = -100000.0;
                            for i in 0..N { m = max(m, pop()); }
                            push(m);
                        }
                        actor SumA(pop N, push 1) {
                            s = 0.0;
                            for i in 0..N { s = s + pop(); }
                            push(s);
                        }
                        join roundrobin(1, 1);
                    }
                }".to_string(), false),
        };
        let program = parse_program(&src).unwrap();
        let device = if dev_sel == 0 {
            DeviceSpec::tesla_c2050()
        } else {
            DeviceSpec::gtx480()
        };
        let (axis, x, n_items) = if is_stencil {
            let side = 1usize << (log_n / 2).max(4);
            (
                InputAxis::new("side", 16, 512, |s| {
                    adaptic_repro::streamir::graph::bindings(&[("rows", s), ("cols", s)])
                }),
                side as i64,
                side * side,
            )
        } else {
            let n = 1usize << log_n;
            (InputAxis::total_size("N", 64, 1 << 14), n as i64, n)
        };
        let compiled = compile(&program, &device, &axis).unwrap();
        let input: Vec<f32> = (0..n_items).map(|i| ((i * 13) % 97) as f32 - 48.0).collect();

        let fast = compiled
            .run_opts(x, &input, &[], RunOptions::default(), None)
            .unwrap();
        let oracle = compiled
            .run_opts(x, &input, &[], RunOptions::default().with_ast_oracle(true), None)
            .unwrap();

        prop_assert_eq!(fast.output.len(), oracle.output.len());
        for (a, b) in fast.output.iter().zip(&oracle.output) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "output differs: {} vs {}", a, b);
        }
        prop_assert_eq!(fast.kernels.len(), oracle.kernels.len());
        for (f, o) in fast.kernels.iter().zip(&oracle.kernels) {
            prop_assert_eq!(&f.stats, &o.stats, "kernel {} stats diverge", f.name);
        }
    }

    /// Branch-heavy bodies with uneven, data-dependent loop trip counts
    /// evaluate bit-identically on the warp-batched evaluator (lanes
    /// diverging and reconverging under predicate masks, including a
    /// ragged final warp), the scalar bytecode evaluator, and the AST
    /// walker.
    #[test]
    fn warp_eval_matches_scalar_and_ast_on_divergent_bodies(
        blocks in proptest::collection::vec(0u8..6, 1..6),
        lanes in 2usize..33,
        data in proptest::collection::vec(-6.0f32..6.0, 33..97),
    ) {
        let body_src = blocks.iter().map(|b| divergent_block(*b)).collect::<Vec<_>>().join("\n");
        let src = format!(
            "pipeline P(N) {{
                actor D(pop 1, push 1) {{
                    x = pop();
                    {body_src}
                    push(x);
                }}
            }}"
        );
        let program = parse_program(&src).unwrap();
        let actor = program.actor("D").unwrap();
        let binds = adaptic_repro::streamir::graph::bindings(&[]);
        let firings = data.len();

        // AST walker, one firing at a time.
        let mut ast_io = VecIo { input: data.clone(), ..VecIo::default() };
        for _ in 0..firings {
            let mut locals = HashMap::new();
            exec_body(&actor.work.body, &mut locals, &binds, &mut ast_io).unwrap();
        }

        // Scalar bytecode, one firing at a time.
        let prog = compile_body(&actor.work.body, &binds, &[]).unwrap();
        let proto = prog.bind(&binds).unwrap();
        let mut frame = Frame::default();
        frame.fit(&prog);
        let mut bc_io = VecIo { input: data.clone(), ..VecIo::default() };
        for _ in 0..firings {
            frame.reset(&proto);
            bytecode::eval(&prog, &mut frame, &mut bc_io);
        }

        // Warp-batched, `lanes` firings per eval; the final warp is
        // ragged whenever `firings % lanes != 0`.
        let mut wf = WarpFrame::default();
        wf.fit(&prog, lanes);
        let mut wio = VecWarpIo {
            input: data.clone(),
            cursor: vec![0; lanes],
            output: vec![0.0; firings],
            out_pos: vec![0; lanes],
            state: HashMap::new(),
        };
        let mut base = 0;
        while base < firings {
            let live = lanes.min(firings - base);
            for l in 0..live {
                wio.cursor[l] = base + l;
                wio.out_pos[l] = base + l;
            }
            wf.reset(&proto);
            warp::eval(&prog, &mut wf, full_mask(live), &mut wio);
            base += live;
        }

        prop_assert_eq!(ast_io.output.len(), firings);
        prop_assert_eq!(bc_io.output.len(), firings);
        for i in 0..firings {
            prop_assert_eq!(
                ast_io.output[i].to_bits(),
                bc_io.output[i].to_bits(),
                "firing {}: ast {} vs scalar {}", i, ast_io.output[i], bc_io.output[i]
            );
            prop_assert_eq!(
                ast_io.output[i].to_bits(),
                wio.output[i].to_bits(),
                "firing {}: ast {} vs warp {}", i, ast_io.output[i], wio.output[i]
            );
        }
    }

    /// Five template families (divergent map, map chain, reduction,
    /// stencil, fused split-join) produce bit-identical outputs, kernel
    /// statistics, and report telemetry under every evaluator backend
    /// (warp-batched, scalar bytecode, AST walker) on both execution
    /// engines and both simulated devices. Input sizes are odd so final
    /// warps are ragged.
    #[test]
    fn template_families_backend_stats_identical(
        family in 0u8..5,
        log_n in 8u32..11,
        dev_sel in 0u8..2,
    ) {
        let (src, is_stencil) = match family {
            0 => ("pipeline P(N) {
                    actor D(pop 1, push 1) {
                        x = pop();
                        if (x > 0.0) { t = 5; } else { t = 2; }
                        acc = 0.0;
                        for i in 0..t { acc = acc + x * 0.25; x = x * 0.5 + 0.125; }
                        if (acc > 1.0) { push(acc); } else { push(acc - x); }
                    }
                }".to_string(), false),
            1 => ("pipeline P(N) {
                    actor A(pop 1, push 1) { x = pop(); push(max(abs(x) * 0.5, 0.25)); }
                    actor B(pop 1, push 1) { x = pop(); push(x + 1.0); }
                }".to_string(), false),
            2 => ("pipeline P(N) {
                    actor R(pop N, push 1) {
                        acc = 0.0;
                        for i in 0..N { x = pop(); acc = acc + abs(x); }
                        push(acc);
                    }
                }".to_string(), false),
            3 => ("pipeline P(rows, cols) {
                    actor S(pop rows*cols, push rows*cols, peek rows*cols) {
                        for idx in 0..rows*cols {
                            r = idx / cols;
                            c = idx % cols;
                            if (r > 0 && r < rows - 1 && c > 0 && c < cols - 1) {
                                push(0.25 * (peek(idx - 1) + peek(idx + 1)
                                    + peek(idx - cols) + peek(idx + cols)));
                            } else {
                                push(peek(idx));
                            }
                        }
                    }
                }".to_string(), true),
            _ => ("pipeline P(N) {
                    splitjoin {
                        split duplicate;
                        actor MaxA(pop N, push 1) {
                            m = -100000.0;
                            for i in 0..N { m = max(m, pop()); }
                            push(m);
                        }
                        actor SumA(pop N, push 1) {
                            s = 0.0;
                            for i in 0..N { s = s + pop(); }
                            push(s);
                        }
                        join roundrobin(1, 1);
                    }
                }".to_string(), false),
        };
        let program = parse_program(&src).unwrap();
        let device = if dev_sel == 0 {
            DeviceSpec::tesla_c2050()
        } else {
            DeviceSpec::gtx480()
        };
        let (axis, x, n_items) = if is_stencil {
            let side = (1usize << (log_n / 2).max(4)) + 1;
            (
                InputAxis::new("side", 16, 512, |s| {
                    adaptic_repro::streamir::graph::bindings(&[("rows", s), ("cols", s)])
                }),
                side as i64,
                side * side,
            )
        } else {
            let n = (1usize << log_n) + 3;
            (InputAxis::total_size("N", 64, 1 << 14), n as i64, n)
        };
        let compiled = compile(&program, &device, &axis).unwrap();
        let input: Vec<f32> = (0..n_items).map(|i| ((i * 13) % 97) as f32 - 48.0).collect();

        let mut reports = Vec::new();
        for backend in [EvalBackend::Warp, EvalBackend::Scalar, EvalBackend::Ast] {
            for policy in [ExecPolicy::Serial, ExecPolicy::Parallel(2)] {
                let opts = RunOptions {
                    policy,
                    ..RunOptions::serial(ExecMode::Full)
                }
                .with_backend(backend);
                reports.push((backend, policy, compiled.run_opts(x, &input, &[], opts, None).unwrap()));
            }
        }
        let (_, _, first) = &reports[0];
        for (backend, policy, r) in &reports[1..] {
            prop_assert_eq!(
                first.output.len(), r.output.len(),
                "{:?}/{:?} output length", backend, policy
            );
            for (a, b) in first.output.iter().zip(&r.output) {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "{:?}/{:?} output differs: {} vs {}", backend, policy, a, b
                );
            }
            prop_assert_eq!(first.kernels.len(), r.kernels.len());
            for (f, o) in first.kernels.iter().zip(&r.kernels) {
                prop_assert_eq!(
                    &f.stats, &o.stats,
                    "{:?}/{:?} kernel {} stats diverge", backend, policy, f.name
                );
            }
            prop_assert_eq!(first.time_us, r.time_us, "{:?}/{:?} time", backend, policy);
            prop_assert_eq!(first.host_time_us, r.host_time_us);
            prop_assert_eq!(first.variant_index, r.variant_index);
            prop_assert_eq!(&first.telemetry, &r.telemetry);
        }
    }
}
