//! Workspace-level property tests: the compiled pipeline agrees with the
//! interpreter on randomly generated programs and inputs, and structural
//! invariants of compilation hold.

use proptest::prelude::*;

use adaptic_repro::adaptic::{compile, restructure, unrestructure, InputAxis};
use adaptic_repro::gpu_sim::DeviceSpec;
use adaptic_repro::streamir::interp::Interpreter;
use adaptic_repro::streamir::parse::parse_program;

/// A random straight-line map body over one popped value.
fn map_expr(ops: &[u8]) -> String {
    let mut e = "x".to_string();
    for op in ops {
        e = match op % 5 {
            0 => format!("({e} + 1.5)"),
            1 => format!("({e} * 0.5)"),
            2 => format!("abs({e})"),
            3 => format!("max({e}, 0.25)"),
            _ => format!("({e} - 2.0)"),
        };
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random map chain compiles and matches the interpreter exactly.
    #[test]
    fn random_map_chain_matches_interpreter(
        ops1 in proptest::collection::vec(0u8..5, 1..5),
        ops2 in proptest::collection::vec(0u8..5, 1..5),
        data in proptest::collection::vec(-100.0f32..100.0, 32..512),
    ) {
        let src = format!(
            "pipeline P(N) {{
                actor A(pop 1, push 1) {{ x = pop(); push({}); }}
                actor B(pop 1, push 1) {{ x = pop(); push({}); }}
            }}",
            map_expr(&ops1),
            map_expr(&ops2),
        );
        let program = parse_program(&src).unwrap();
        let n = data.len();
        let golden = Interpreter::new(&program).run(&data).unwrap();

        let device = DeviceSpec::tesla_c2050();
        let axis = InputAxis::total_size("N", 16, 1 << 14);
        let compiled = compile(&program, &device, &axis).unwrap();
        let rep = compiled.run(n as i64, &data).unwrap();
        prop_assert_eq!(rep.output, golden);
    }

    /// Random reductions (op and element transform) match a CPU fold
    /// within float-reassociation tolerance, at sizes spanning variants.
    #[test]
    fn random_reduction_matches_fold(
        op_sel in 0u8..3,
        elem_sel in 0u8..3,
        log_n in 6u32..14,
    ) {
        let (init, op) = match op_sel {
            0 => ("0.0", "acc + ELEM"),
            1 => ("-1000000.0", "max(acc, ELEM)"),
            _ => ("1000000.0", "min(acc, ELEM)"),
        };
        let elem = match elem_sel {
            0 => "pop()",
            1 => "abs(pop())",
            _ => "pow(pop(), 2.0)",
        };
        let body = op.replace("ELEM", elem);
        let src = format!(
            "pipeline P(N) {{
                actor R(pop N, push 1) {{
                    acc = {init};
                    for i in 0..N {{ acc = {body}; }}
                    push(acc);
                }}
            }}"
        );
        let program = parse_program(&src).unwrap();
        let n = 1usize << log_n;
        let data: Vec<f32> = (0..n).map(|i| ((i * 37) % 101) as f32 - 50.0).collect();

        let elem_f = |x: f32| -> f32 {
            match elem_sel {
                0 => x,
                1 => x.abs(),
                _ => x * x,
            }
        };
        let want = match op_sel {
            0 => data.iter().map(|x| elem_f(*x)).sum::<f32>(),
            1 => data.iter().map(|x| elem_f(*x)).fold(f32::NEG_INFINITY, f32::max),
            _ => data.iter().map(|x| elem_f(*x)).fold(f32::INFINITY, f32::min),
        };

        let device = DeviceSpec::tesla_c2050();
        let axis = InputAxis::total_size("N", 64, 1 << 14);
        let compiled = compile(&program, &device, &axis).unwrap();
        let rep = compiled.run(n as i64, &data).unwrap();
        prop_assert!(
            (rep.output[0] - want).abs() <= 1e-3 * want.abs().max(1.0),
            "{} vs {}", rep.output[0], want
        );
    }

    /// The variant table exactly tiles the compiled axis for arbitrary
    /// ranges.
    #[test]
    fn variant_table_tiles_the_axis(lo in 1i64..1000, span in 10i64..1_000_000) {
        let program = parse_program(
            "pipeline P(N) {
                actor Sum(pop N, push 1) {
                    acc = 0.0;
                    for i in 0..N { acc = acc + pop(); }
                    push(acc);
                }
            }",
        ).unwrap();
        let hi = lo + span;
        let axis = InputAxis::total_size("N", lo, hi);
        let compiled = compile(&program, &DeviceSpec::tesla_c2050(), &axis).unwrap();
        let vs = &compiled.variants;
        prop_assert_eq!(vs[0].lo, lo);
        prop_assert_eq!(vs.last().unwrap().hi, hi);
        for w in vs.windows(2) {
            prop_assert_eq!(w[0].hi + 1, w[1].lo);
        }
        for v in vs {
            prop_assert!(v.lo <= v.hi);
        }
    }

    /// Memory restructuring round-trips for arbitrary rates and data.
    #[test]
    fn restructure_round_trips(
        rate in 1usize..32,
        firings in 1usize..64,
    ) {
        let data: Vec<f32> = (0..rate * firings).map(|i| i as f32).collect();
        let t = restructure(&data, rate);
        prop_assert_eq!(unrestructure(&t, rate), data);
    }

    /// Simulated kernel statistics are deterministic: two runs of the
    /// same compiled program yield identical stats and outputs.
    #[test]
    fn execution_is_deterministic(seed in 0u64..100) {
        let program = parse_program(
            "pipeline P(N) { actor M(pop 1, push 1) { push(pop() * 3.0); } }",
        ).unwrap();
        let device = DeviceSpec::gtx285();
        let axis = InputAxis::total_size("N", 16, 1 << 12);
        let compiled = compile(&program, &device, &axis).unwrap();
        let data: Vec<f32> = (0..777).map(|i| ((i as u64 * seed) % 97) as f32).collect();
        let a = compiled.run(777, &data).unwrap();
        let b = compiled.run(777, &data).unwrap();
        prop_assert_eq!(a.output, b.output);
        prop_assert_eq!(a.time_us, b.time_us);
        prop_assert_eq!(a.kernels.len(), b.kernels.len());
    }
}
