//! Persistence suite for the artifact store: byte-for-byte roundtrips of
//! plan artifacts and learned KMU state across every template family,
//! warm-vs-cold equivalence (a store hit must change *time only*, never
//! results), boundary restoration across a simulated process restart, and
//! decoder fuzzing — random, truncated and bit-flipped bytes must produce
//! a clean `ArtifactError`, never a panic and never silent garbage.

mod common;

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use adaptic_repro::adaptic::{
    compile_with_store, ArtifactKey, ArtifactStore, ExecMode, KernelManager, LearnedState,
    RunOptions, VariantHistogram,
};
use common::{cases, compiled_for, data, devices};
use proptest::prelude::*;

/// A unique empty store directory (test binaries run concurrently).
fn temp_store(tag: &str) -> (PathBuf, ArtifactStore) {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "adaptic_artifact_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ArtifactStore::new(&dir);
    (dir, store)
}

/// The bytes of the single artifact file with `ext` in `dir`.
fn only_file(dir: &std::path::Path, ext: &str) -> Vec<u8> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("store dir {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == ext))
        .collect();
    assert_eq!(
        files.len(),
        1,
        "expected one .{ext} file in {}",
        dir.display()
    );
    std::fs::read(files.remove(0)).unwrap()
}

/// Serialize → deserialize → re-serialize must be bit-identical for the
/// plan artifact of every template family on every device preset.
#[test]
fn plan_artifacts_roundtrip_byte_for_byte_across_families() {
    for case in cases() {
        for device in devices() {
            let compiled = compiled_for(&case, &device);
            let key = compiled.artifact_key();
            let plan = compiled.export_plan();
            let (lo, hi) = compiled.axis_range();
            let ctx = format!("family={} device={}", case.family, device.name);

            let (dir_a, store_a) = temp_store("rt_a");
            store_a.store_plan(key, &plan).unwrap();
            let bytes_a = only_file(&dir_a, "plan");

            let reloaded = store_a
                .load_plan(key, plan.segment_count(), lo, hi)
                .unwrap_or_else(|| panic!("{ctx}: fresh artifact fails to load"));
            assert_eq!(store_a.counters().hits, 1, "{ctx}");

            let (dir_b, store_b) = temp_store("rt_b");
            store_b.store_plan(key, &reloaded).unwrap();
            let bytes_b = only_file(&dir_b, "plan");
            assert_eq!(bytes_a, bytes_b, "{ctx}: re-serialization diverged");

            let _ = std::fs::remove_dir_all(&dir_a);
            let _ = std::fs::remove_dir_all(&dir_b);
        }
    }
}

/// A warm compile (store hit) must produce the same variant table and
/// bit-identical run results as the cold compile that wrote the artifact —
/// and must actually hit the store.
#[test]
fn warm_compile_is_bit_identical_to_cold() {
    for case in cases() {
        for device in devices() {
            let (dir, store) = temp_store("warm");
            let axis = (case.axis)();
            let ctx = format!("family={} device={}", case.family, device.name);

            let cold = compile_with_store(&case.program, &device, &axis, case.opts, &store)
                .unwrap_or_else(|e| panic!("{ctx}: cold compile: {e}"));
            assert_eq!(store.counters().misses, 1, "{ctx}: first compile must miss");

            let warm = compile_with_store(&case.program, &device, &axis, case.opts, &store)
                .unwrap_or_else(|e| panic!("{ctx}: warm compile: {e}"));
            assert_eq!(store.counters().hits, 1, "{ctx}: second compile must hit");
            assert_eq!(store.counters().rejects, 0, "{ctx}");

            assert_eq!(
                cold.variants, warm.variants,
                "{ctx}: variant tables diverged"
            );
            assert_eq!(cold.artifact_key(), warm.artifact_key(), "{ctx}");

            for &x in case.sizes {
                let input = data((case.items)(x), 42);
                let state = (case.state)();
                let opts = RunOptions::serial(ExecMode::Full);
                let a = cold.run_opts(x, &input, &state, opts, None).unwrap();
                let b = warm.run_opts(x, &input, &state, opts, None).unwrap();
                assert_eq!(a.output.len(), b.output.len(), "{ctx} x={x}");
                for (i, (va, vb)) in a.output.iter().zip(&b.output).enumerate() {
                    assert_eq!(
                        va.to_bits(),
                        vb.to_bits(),
                        "{ctx} x={x}: output[{i}] diverged"
                    );
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Learned KMU state survives a simulated restart exactly: a manager whose
/// boundaries were recalibrated persists them, and a fresh manager over
/// the same store starts from the persisted table (well within hysteresis
/// — identical), with histogram summaries intact.
#[test]
fn learned_boundaries_survive_restart() {
    let case = &cases()[1]; // reduce: guaranteed multi-variant table
    let device = &devices()[0];
    let compiled = compiled_for(case, device);
    assert!(
        compiled.variants.len() >= 2,
        "case must have a boundary to move"
    );
    let (dir, store) = temp_store("restart");
    let store = Arc::new(store);

    // Simulate a recalibrated process: shift the first boundary by a few
    // points, then persist at "shutdown".
    let mut ranges: Vec<(i64, i64)> = compiled.variants.iter().map(|v| (v.lo, v.hi)).collect();
    let shift = 3;
    assert!(ranges[0].1 - ranges[0].0 > shift, "room to shift");
    ranges[0].1 -= shift;
    ranges[1].0 -= shift;
    let first = KernelManager::new(compiled.clone())
        .with_boundaries(ranges.clone())
        .with_artifacts(Arc::clone(&store));
    first.persist_learned().unwrap();
    let exported = first.export_learned();
    assert_eq!(exported.boundaries, ranges);
    drop(first);

    // "Reboot": a fresh manager warm-starts from the store.
    let second = KernelManager::new(compiled.clone()).with_artifacts(Arc::clone(&store));
    assert_eq!(
        second.export_learned().boundaries,
        ranges,
        "reloaded boundaries must match the pre-shutdown table"
    );
    assert_eq!(second.telemetry().boundaries, ranges);
    assert_eq!(second.telemetry().artifact_hits, 1);

    // Peer shipping: export → bytes → import on a third node.
    let key = compiled.artifact_key();
    let wire = exported.to_bytes(key);
    let shipped = LearnedState::from_bytes(&wire, key).unwrap();
    assert_eq!(shipped, exported);
    assert_eq!(shipped.to_bytes(key), wire, "re-serialization diverged");
    let third = KernelManager::new(compiled.clone());
    third.import_learned(&shipped).unwrap();
    assert_eq!(third.export_learned().boundaries, ranges);

    // Import validation: a state that does not tile this axis is refused
    // and leaves the manager untouched.
    let bogus = LearnedState {
        boundaries: vec![(0, 5)],
        histograms: vec![VariantHistogram::default()],
    };
    assert!(third.import_learned(&bogus).is_err());
    assert_eq!(third.export_learned().boundaries, ranges);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Learned histograms (EWMA summaries) roundtrip through the store with
/// full bit fidelity.
#[test]
fn learned_histograms_roundtrip_exactly() {
    let case = &cases()[0];
    let device = &devices()[0];
    let compiled = compiled_for(case, device);
    let n = compiled.variants.len();
    let (dir, store) = temp_store("hist");
    let store = Arc::new(store);

    let manager = KernelManager::new(compiled.clone()).with_artifacts(Arc::clone(&store));
    // Drive a few runs so the histograms hold real measurements.
    for &x in case.sizes {
        let input = data((case.items)(x), 7);
        let state = (case.state)();
        manager
            .run(x, &input, &state, RunOptions::serial(ExecMode::Full))
            .unwrap();
    }
    let before = manager.export_learned();
    assert!(
        before.histograms.iter().any(|h| h.samples > 0),
        "runs must have recorded samples"
    );
    manager.persist_learned().unwrap();

    let reloaded = KernelManager::new(compiled).with_artifacts(Arc::clone(&store));
    let after = reloaded.export_learned();
    assert_eq!(after.boundaries, before.boundaries);
    assert_eq!(after.histograms.len(), n);
    for (i, (a, b)) in after.histograms.iter().zip(&before.histograms).enumerate() {
        assert_eq!(a.samples, b.samples, "variant {i}");
        assert_eq!(a.since_move, b.since_move, "variant {i}");
        assert_eq!(a.ratio.to_bits(), b.ratio.to_bits(), "variant {i} ratio");
        assert_eq!(
            a.sum_rel_err().to_bits(),
            b.sum_rel_err().to_bits(),
            "variant {i} sum_rel_err"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupt or version-mismatched plan file on disk degrades to a counted
/// reject and a clean recompile — `compile_with_store` still succeeds.
#[test]
fn corrupt_plan_file_degrades_to_counted_reject() {
    let case = &cases()[0];
    let device = &devices()[0];
    let axis = (case.axis)();
    let (dir, store) = temp_store("corrupt");

    let cold = compile_with_store(&case.program, device, &axis, case.opts, &store).unwrap();

    // Corrupt the stored plan: flip a byte in the middle.
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "plan"))
        .collect();
    let path = files.remove(0);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let recompiled = compile_with_store(&case.program, device, &axis, case.opts, &store).unwrap();
    assert_eq!(
        store.counters().rejects,
        1,
        "corruption must count a reject"
    );
    assert_eq!(recompiled.variants, cold.variants);

    // The recompile wrote a fresh artifact back: next boot hits again.
    let warm = compile_with_store(&case.program, device, &axis, case.opts, &store).unwrap();
    assert_eq!(store.counters().hits, 1);
    assert_eq!(warm.variants, cold.variants);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Changing the compilation request or the device changes the artifact
/// key: no cross-program or cross-device artifact reuse.
#[test]
fn artifact_keys_separate_programs_and_devices() {
    let all = cases();
    let d0 = &devices()[0];
    let d1 = &devices()[1];
    let mut keys = Vec::new();
    for case in &all {
        for device in [d0, d1] {
            keys.push((
                format!("{}/{}", case.family, device.name),
                compiled_for(case, device).artifact_key(),
            ));
        }
    }
    for i in 0..keys.len() {
        for j in i + 1..keys.len() {
            assert_ne!(keys[i].1, keys[j].1, "{} aliases {}", keys[i].0, keys[j].0);
        }
    }
}

/// A valid learned-state image for fuzzing, with non-trivial field values.
fn fuzz_image() -> (Vec<u8>, ArtifactKey) {
    let key = ArtifactKey {
        content: 0xfeedfacecafebeef,
        device: 0x0123456789abcdef,
    };
    let state = LearnedState {
        boundaries: vec![(16, 511), (512, 8191), (8192, 65536)],
        histograms: vec![
            VariantHistogram::from_raw(12, 4, 1.31, 2.5),
            VariantHistogram::from_raw(7, 7, 0.92, 0.25),
            VariantHistogram::from_raw(0, 0, 1.0, 0.0),
        ],
    };
    (state.to_bytes(key), key)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup never panics the decoder: it either errors or
    /// (astronomically unlikely) decodes to a fully validated value.
    #[test]
    fn decoder_survives_random_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let (_, key) = fuzz_image();
        let _ = LearnedState::from_bytes(&bytes, key);
    }

    /// Every truncation of a valid image is a clean error — never a panic,
    /// never a silently shortened decode.
    #[test]
    fn decoder_rejects_truncations(frac in 0.0f64..1.0) {
        let (good, key) = fuzz_image();
        let cut = ((good.len() as f64) * frac) as usize;
        prop_assert!(cut < good.len());
        prop_assert!(LearnedState::from_bytes(&good[..cut], key).is_err());
    }

    /// Any single bit flip is caught (by magic/version/key/checksum or a
    /// field validator) — corrupted state never loads as silent garbage.
    #[test]
    fn decoder_rejects_bit_flips(idx in any::<u64>(), bit in 0u8..8) {
        let (mut bytes, key) = fuzz_image();
        let i = (idx as usize) % bytes.len();
        bytes[i] ^= 1 << bit;
        prop_assert!(LearnedState::from_bytes(&bytes, key).is_err(), "flip at byte {i} bit {bit}");
    }

    /// Random bytes written where a plan artifact should be: the store
    /// counts a reject (or a miss for unreadable framing) and returns
    /// `None`; it never panics and never fabricates a plan.
    #[test]
    fn store_survives_garbage_plan_files(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let (dir, store) = temp_store("fuzz");
        let key = ArtifactKey { content: 1, device: 2 };
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(format!("{:016x}-{:016x}.plan", 1, 2)), &bytes).unwrap();
        prop_assert!(store.load_plan(key, 1, 1, 100).is_none());
        prop_assert_eq!(store.counters().rejects, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
