//! Shared harness for the cross-engine conformance suite and the chaos
//! (fault-injection) suite: the replayable seed corpus, the deterministic
//! input generator, and the template-family case table. Both suites run
//! the same programs over the same seeds, so a chaos failure replays
//! under the plain conformance suite and vice versa.

// Each integration-test binary compiles this module independently and
// uses a subset of it.
#![allow(dead_code)]

use adaptic_repro::adaptic::{
    compile_with_options, CompileOptions, CompiledProgram, InputAxis, StateBinding,
};
use adaptic_repro::apps::programs;
use adaptic_repro::gpu_sim::DeviceSpec;
use adaptic_repro::streamir::graph::Program;
use adaptic_repro::streamir::parse::parse_program;

/// The checked-in seed corpus (one u64 per line, `#` comments).
pub fn corpus_seeds() -> Vec<u64> {
    let text = include_str!("../corpus/conformance_seeds.txt");
    let seeds: Vec<u64> = text
        .lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(|l| {
            if let Some(hex) = l.strip_prefix("0x").or_else(|| l.strip_prefix("0X")) {
                u64::from_str_radix(hex, 16).expect("hex seed")
            } else {
                l.parse().expect("decimal seed")
            }
        })
        .collect();
    assert!(!seeds.is_empty(), "seed corpus must not be empty");
    seeds
}

/// Deterministic pseudo-random stream in [-1, 1) — same LCG as the bench
/// harness, so corpus seeds mean the same data everywhere.
pub fn data(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        })
        .collect()
}

/// One conformance case: a program exercising one template family.
pub struct Case {
    pub family: &'static str,
    pub program: Program,
    pub opts: CompileOptions,
    /// Axis values to run at (small enough for `ExecMode::Full`).
    pub sizes: &'static [i64],
    /// Stream length for axis value `x`.
    pub items: fn(i64) -> usize,
    /// Axis for compilation.
    pub axis: fn() -> InputAxis,
    /// State bindings, if the program needs them.
    pub state: fn() -> Vec<StateBinding>,
}

fn no_state() -> Vec<StateBinding> {
    Vec::new()
}

pub fn cases() -> Vec<Case> {
    vec![
        // Unit (map) template: elementwise records with bound state.
        Case {
            family: "unit-map",
            program: programs::black_scholes().program,
            opts: CompileOptions::default(),
            sizes: &[64, 1024],
            items: |x| 3 * x as usize,
            axis: || InputAxis::total_size("N", 16, 1 << 16),
            state: || vec![StateBinding::new("Price", "rv", vec![0.02, 0.3])],
        },
        // Reduce template: single accumulation over the stream.
        Case {
            family: "reduce",
            program: programs::sasum().program,
            opts: CompileOptions::default(),
            sizes: &[256, 8192],
            items: |x| x as usize,
            axis: || InputAxis::total_size("N", 256, 1 << 18),
            state: no_state,
        },
        // Stencil template: neighboring access over a 2-D grid.
        Case {
            family: "stencil",
            program: parse_program(
                r#"pipeline Heat(rows, cols) {
                    actor Diffuse(pop rows*cols, push rows*cols, peek rows*cols) {
                        for idx in 0..rows*cols {
                            r = idx / cols;
                            c = idx % cols;
                            if (r > 0 && r < rows - 1 && c > 0 && c < cols - 1) {
                                push(peek(idx)
                                    + 0.2 * (peek(idx - 1) + peek(idx + 1)
                                        + peek(idx - cols) + peek(idx + cols)
                                        - 4.0 * peek(idx)));
                            } else {
                                push(peek(idx));
                            }
                        }
                    }
                }"#,
            )
            .unwrap(),
            opts: CompileOptions::default(),
            sizes: &[24, 48],
            items: |x| (x * x) as usize,
            axis: || {
                InputAxis::new("side", 16, 256, |s| {
                    adaptic_repro::streamir::graph::bindings(&[("rows", s), ("cols", s)])
                })
            },
            state: no_state,
        },
        // HFused template: duplicate splitjoin of two reductions fused
        // into one kernel.
        Case {
            family: "hfused",
            program: parse_program(
                r#"pipeline MaxSum(N) {
                    splitjoin {
                        split duplicate;
                        actor MaxA(pop N, push 1) {
                            m = -100000.0;
                            for i in 0..N { m = max(m, pop()); }
                            push(m);
                        }
                        actor SumA(pop N, push 1) {
                            s = 0.0;
                            for i in 0..N { s = s + pop(); }
                            push(s);
                        }
                        join roundrobin(1, 1);
                    }
                }"#,
            )
            .unwrap(),
            opts: CompileOptions::default(),
            sizes: &[512, 4096],
            items: |x| x as usize,
            axis: || InputAxis::total_size("N", 256, 1 << 18),
            state: no_state,
        },
        // MapSiblings template: the same splitjoin shape over maps, with
        // horizontal integration disabled so the sibling-branch engine
        // (not the fused kernel) runs.
        Case {
            family: "map-siblings",
            program: parse_program(
                r#"pipeline SinCos(N) {
                    splitjoin {
                        split duplicate;
                        actor SinA(pop 1, push 1) { push(sin(pop())); }
                        actor CosA(pop 1, push 1) { push(cos(pop())); }
                        join roundrobin(1, 1);
                    }
                }"#,
            )
            .unwrap(),
            opts: CompileOptions {
                integration: false,
                ..CompileOptions::default()
            },
            sizes: &[512, 2048],
            items: |x| x as usize,
            axis: || InputAxis::total_size("N", 64, 1 << 16),
            state: no_state,
        },
    ]
}

pub fn devices() -> Vec<DeviceSpec> {
    vec![DeviceSpec::tesla_c2050(), DeviceSpec::gtx285()]
}

pub fn compiled_for(case: &Case, device: &DeviceSpec) -> CompiledProgram {
    compile_with_options(&case.program, device, &(case.axis)(), case.opts)
        .unwrap_or_else(|e| panic!("{} fails to compile for {}: {e}", case.family, device.name))
}
