//! Drift stress suite: phase-change workloads through the rate-conditioned
//! re-scheduler, pinning its functional and hysteresis guarantees.
//!
//! Every workload shape from `adaptic_bench::workloads` (diurnal ramp,
//! bursty mix, regime flips) is replayed through a [`DynamicRegion`] from
//! a fixed seed (plus an optional `ADAPTIC_DRIFT_SEED` from the
//! environment — the CI drift job sweeps three fixed seeds through it).
//! The pinned invariants:
//!
//! * **Static-oracle equivalence** — every firing's output is
//!   bit-identical to a plain, manager-free run of the same compiled plan
//!   (forced to the variant that served in-window firings, clamped
//!   selection for out-of-window ones): the governor, the plan swaps and
//!   the clamped path add zero functional perturbation.
//! * **Convergence** — after each regime flip the governor commits within
//!   its hysteresis budget and the rest of the dwell runs exit-free.
//! * **No thrash** — commits are at least `cooldown` observations apart,
//!   so an oscillating trace bounds the number of re-plans.
//! * **No quarantine false-positives** — a fault-free drift soak must
//!   never trip the degradation ladder: no retries, fallbacks,
//!   quarantines or degraded runs, and every firing is served exactly
//!   once (`launches + clamped_runs == firings`).
//!
//! Property tests cover the two structural contracts: region partitions
//! are valid covers with rate-consistent channels on random programs, and
//! random observed-rate traces can never deadlock the governor or violate
//! its hysteresis bounds.

use adaptic_bench::workloads::{bursty, diurnal, regime_flip};
use adaptic_repro::adaptic::{
    CompileOptions, DynamicRegion, ExecMode, RateGovernor, ReschedPolicy, RunOptions,
};
use adaptic_repro::apps::programs;
use adaptic_repro::gpu_sim::DeviceSpec;
use adaptic_repro::streamir::graph::Program;
use adaptic_repro::streamir::parse::parse_program;
use adaptic_repro::streamir::schedule::{merged_rate_intervals, partition_rate_regions};
use adaptic_repro::streamir::RateInterval;
use proptest::prelude::*;

/// Declared dynamic interval for the soak program (small enough for
/// `ExecMode::Full` firings).
const DECLARED: (i64, i64) = (64, 8192);

/// The base fixed seed plus the CI-provided `ADAPTIC_DRIFT_SEED`, if any.
fn drift_seeds() -> Vec<u64> {
    let mut seeds = vec![0xD21F7];
    if let Ok(raw) = std::env::var("ADAPTIC_DRIFT_SEED") {
        let raw = raw.trim();
        let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16)
        } else {
            raw.parse()
        };
        seeds.push(parsed.unwrap_or_else(|_| panic!("bad ADAPTIC_DRIFT_SEED: {raw:?}")));
    }
    seeds
}

/// The `sasum` reduction with its rate parameter declared dynamic.
fn dynamic_sasum() -> Program {
    let mut p = programs::sasum().program;
    let interval = RateInterval::new(DECLARED.0, DECLARED.1).unwrap();
    let asum = p.actors.iter_mut().find(|a| a.name == "Asum").unwrap();
    asum.dyn_rates.insert("N".into(), interval);
    p
}

fn soak_policy() -> ReschedPolicy {
    ReschedPolicy {
        exit_streak: 3,
        cooldown: 8,
        spread: 4.0,
        alpha: 0.5,
    }
}

/// Deterministic input stream, shared with the bench harness.
fn data(n: usize, seed: u64) -> Vec<f32> {
    adaptic_bench::data(n, seed)
}

struct SoakOutcome {
    /// Firing indices at which a re-plan committed.
    reschedule_at: Vec<usize>,
    /// Firing indices that exited the planned window.
    exit_at: Vec<usize>,
    reschedules: u64,
    clamped: u64,
    launches: u64,
}

/// Replay `trace` through a fresh region, checking the static oracle per
/// firing and the no-false-positive ladder counters at the end.
fn soak(trace: &[i64], ctx: &str) -> SoakOutcome {
    let program = dynamic_sasum();
    let device = DeviceSpec::tesla_c2050();
    let mut region = DynamicRegion::new(
        &program,
        &device,
        CompileOptions::default(),
        soak_policy(),
        trace[0],
        None,
    )
    .unwrap_or_else(|e| panic!("{ctx}: region fails to plan: {e}"));
    let input = data(DECLARED.1 as usize, 7);
    let opts = RunOptions::serial(ExecMode::Full);

    let mut reschedule_at = Vec::new();
    let mut exit_at = Vec::new();
    for (t, &x) in trace.iter().enumerate() {
        let slice = &input[..x as usize];
        let (resched_before, exits_before) = (region.reschedules(), region.governor().exits());
        let rep = region
            .run(x, slice, &[], opts)
            .unwrap_or_else(|e| panic!("{ctx} firing {t} (x={x}): {e}"));
        if region.reschedules() > resched_before {
            reschedule_at.push(t);
        }
        if region.governor().exits() > exits_before {
            exit_at.push(t);
        }

        // Static oracle: the same compiled plan, manager-free. In-axis
        // firings force the exact variant that served; out-of-axis
        // firings repeat the clamped (unforced) selection.
        let plan = region.manager().program();
        let (lo, hi) = plan.axis_range();
        let oracle_opts = if x >= lo && x <= hi {
            opts.with_variant(rep.variant_index)
        } else {
            opts
        };
        let oracle = plan
            .run_opts(x, slice, &[], oracle_opts, None)
            .unwrap_or_else(|e| panic!("{ctx} firing {t} (x={x}): oracle failed: {e}"));
        assert_eq!(
            rep.output.len(),
            oracle.output.len(),
            "{ctx} firing {t} (x={x}): output cursor diverged from the static oracle"
        );
        for (i, (g, b)) in rep.output.iter().zip(&oracle.output).enumerate() {
            assert_eq!(
                g.to_bits(),
                b.to_bits(),
                "{ctx} firing {t} (x={x}): output[{i}] {g} vs oracle {b}"
            );
        }
    }

    // Fault-free soak: the ladder must not fire at all.
    let t = region.telemetry();
    assert_eq!(t.retries, 0, "{ctx}: spurious retries");
    assert_eq!(t.fallbacks, 0, "{ctx}: spurious variant fallbacks");
    assert_eq!(t.quarantines, 0, "{ctx}: quarantine false-positive");
    assert_eq!(t.degraded_runs, 0, "{ctx}: spurious degraded runs");
    assert!(
        t.quarantined_variants.is_empty(),
        "{ctx}: variants left quarantined: {:?}",
        t.quarantined_variants
    );
    assert_eq!(t.faults_observed, 0, "{ctx}: phantom faults");
    // Exactly-once serving: every firing went through the manager or the
    // clamped path, never both, never neither.
    assert_eq!(
        t.launches + region.clamped_runs(),
        trace.len() as u64,
        "{ctx}: firings dropped or double-served"
    );
    assert_eq!(t.reschedules, region.reschedules(), "{ctx}: telemetry lies");
    // The manager tallies exactly the firings *served* out-of-window (the
    // plan axis equals the window, so those are the clamped serves); the
    // governor additionally counts exits that triggered a re-plan and
    // were then served inside the fresh window.
    assert_eq!(t.rate_exits, region.clamped_runs(), "{ctx}: exit tally");
    assert!(
        region.governor().exits() >= region.clamped_runs(),
        "{ctx}: governor exits below the clamped serves"
    );

    SoakOutcome {
        reschedule_at,
        exit_at,
        reschedules: region.reschedules(),
        clamped: region.clamped_runs(),
        launches: t.launches,
    }
}

#[test]
fn regime_flips_converge_within_the_hysteresis_budget() {
    const DWELL: usize = 16;
    const FIRINGS: usize = 96;
    let policy = soak_policy();
    for seed in drift_seeds() {
        let trace = regime_flip(FIRINGS, &[(64, 128), (2048, 8192)], DWELL, seed);
        let ctx = format!("regime_flip seed={seed}");
        let out = soak(&trace, &ctx);
        assert!(
            out.reschedules >= 1,
            "{ctx}: the flips never triggered a re-plan"
        );
        // Convergence: exits only in the first `exit_streak` firings of a
        // dwell segment — the governor commits on the firing that
        // completes the streak, and the rest of the dwell is in-window.
        for &t in &out.exit_at {
            assert!(
                t % DWELL < policy.exit_streak as usize,
                "{ctx}: window exit at firing {t} after the segment should have converged \
                 (exits at {:?}, reschedules at {:?})",
                out.exit_at,
                out.reschedule_at
            );
        }
        // Every re-plan happens on the firing completing a streak.
        for &t in &out.reschedule_at {
            assert_eq!(
                t % DWELL,
                policy.exit_streak as usize - 1,
                "{ctx}: re-plan at firing {t} not aligned with a sustained exit"
            );
        }
        assert_eq!(
            out.clamped,
            out.exit_at.len() as u64 - out.reschedule_at.len() as u64,
            "{ctx}: clamped-serve accounting (exit firings minus replanned-then-served)"
        );
        assert_eq!(out.launches + out.clamped, FIRINGS as u64);
    }
}

#[test]
fn diurnal_ramp_does_not_thrash() {
    const FIRINGS: usize = 96;
    let policy = soak_policy();
    for seed in drift_seeds() {
        let trace = diurnal(FIRINGS, DECLARED.0, DECLARED.1, 32, 0.2, seed);
        let ctx = format!("diurnal seed={seed}");
        let out = soak(&trace, &ctx);
        // Hysteresis bound: commits are at least `cooldown` observations
        // apart, so a smooth ramp cannot re-plan more often than that.
        let max_replans = FIRINGS as u64 / policy.cooldown + 1;
        assert!(
            out.reschedules <= max_replans,
            "{ctx}: {} re-plans exceed the hysteresis bound {max_replans}",
            out.reschedules
        );
        for pair in out.reschedule_at.windows(2) {
            assert!(
                pair[1] - pair[0] >= policy.cooldown as usize,
                "{ctx}: re-plans at {} and {} violate the cooldown",
                pair[0],
                pair[1]
            );
        }
    }
}

#[test]
fn bursty_traffic_is_absorbed_without_thrash() {
    const FIRINGS: usize = 96;
    let policy = soak_policy();
    for seed in drift_seeds() {
        // Bursts strictly shorter than the exit streak: hysteresis must
        // absorb them on the clamped path without a single re-plan. The
        // generator opens every period with its burst, so drop the leading
        // one — the region must start planned on the base regime.
        let burst_len = policy.exit_streak as usize - 1;
        let full = bursty(
            FIRINGS + burst_len,
            (64, 256),
            (2048, 8192),
            24,
            burst_len,
            seed,
        );
        let trace = &full[burst_len..];
        let ctx = format!("bursty seed={seed}");
        let out = soak(trace, &ctx);
        assert_eq!(
            out.reschedules, 0,
            "{ctx}: sub-streak bursts re-planned (at {:?})",
            out.reschedule_at
        );
        assert_eq!(
            out.clamped,
            out.exit_at.len() as u64,
            "{ctx}: every burst firing must be served clamped"
        );
        assert_eq!(
            out.exit_at.len(),
            burst_len * (FIRINGS / 24),
            "{ctx}: burst firings must all exit the base window"
        );
        assert_eq!(out.launches + out.clamped, FIRINGS as u64);
    }
}

// ---------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------

/// Rate-expression menu for random actors; `1`-based entries are static,
/// the parameterised ones can be declared dynamic.
fn rate_expr(sel: u8) -> &'static str {
    match sel % 5 {
        0 => "1",
        1 => "2",
        2 => "N",
        3 => "M",
        _ => "2*N",
    }
}

/// A random linear pipeline over params `N`, `M`, with `decl` controlling
/// which params are declared dynamic (interval always containing 64, so
/// merged intersections stay non-empty).
fn random_program(shape: &[(u8, u8)], decl: &[(bool, u8, u8)]) -> Program {
    let mut src = String::from("pipeline Rand(N, M) {\n");
    for (i, (p, q)) in shape.iter().enumerate() {
        let (pop, push) = (rate_expr(*p), rate_expr(*q));
        src.push_str(&format!(
            "actor A{i}(pop {pop}, push {push}) {{\n\
             acc = 0.0;\n\
             for i in 0..{pop} {{ acc = acc + pop(); }}\n\
             for j in 0..{push} {{ push(acc); }}\n\
             }}\n"
        ));
    }
    src.push('}');
    let mut program = parse_program(&src).unwrap_or_else(|e| panic!("{src}\nfails: {e}"));
    // Declare dynamic intervals on the actors that use each param; all
    // intervals contain 64 so their intersection is non-empty.
    for (param, (on, lo_n, hi_n)) in ["N", "M"].iter().zip(decl) {
        if !*on {
            continue;
        }
        let lo = 64 >> (lo_n % 4);
        let hi = 64 << (hi_n % 6);
        for a in program.actors.iter_mut() {
            let uses = [&a.work.pop, &a.work.push, &a.work.peek]
                .iter()
                .any(|r| r.params().contains(param));
            if uses {
                a.dyn_rates
                    .insert((*param).to_string(), RateInterval::new(lo, hi).unwrap());
            }
        }
    }
    program
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random programs with random dynamic-rate declarations always
    /// partition into a valid cover with rate-consistent channels.
    #[test]
    fn region_partition_is_a_valid_cover(
        shape in proptest::collection::vec((0u8..5, 0u8..5), 1..7),
        decl in proptest::collection::vec((any::<bool>(), 0u8..8, 0u8..8), 2..=2),
    ) {
        let program = random_program(&shape, &decl);
        let graph = program.flatten().unwrap();
        let dynamic = merged_rate_intervals(&program).unwrap();
        let partition = partition_rate_regions(&program, &graph).unwrap();

        prop_assert!(partition.is_cover(&graph), "not a cover");
        prop_assert!(partition.channels_consistent(&graph), "channel rates inconsistent");
        prop_assert_eq!(&partition.dynamic, &dynamic);
        // Dynamic declarations either vanish (no actor uses the param) or
        // surface in at least one region.
        for (param, interval) in &dynamic {
            let covered = partition
                .regions
                .iter()
                .any(|r| r.intervals.get(param) == Some(interval));
            prop_assert!(covered, "declared param {} in no region", param);
        }
        // A program with no declarations is one static region.
        if dynamic.is_empty() {
            prop_assert_eq!(partition.regions.len(), 1);
            prop_assert!(partition.regions[0].is_static());
        }
    }

    /// Random observed-rate traces can never deadlock the governor or
    /// violate its hysteresis bounds: proposals only after a sustained
    /// exit streak, commits at least `cooldown` observations apart, and
    /// every window inside the declared interval.
    #[test]
    fn governor_never_violates_hysteresis_bounds(
        lo_exp in 0u32..8,
        span_exp in 1u32..10,
        exit_streak in 1u32..5,
        cooldown in 0u64..12,
        spread in 1.0f64..8.0,
        trace in proptest::collection::vec(1i64..1_000_000, 1..200),
    ) {
        let lo = 1i64 << lo_exp;
        let declared = RateInterval::new(lo, lo << span_exp).unwrap();
        let policy = ReschedPolicy { exit_streak, cooldown, spread, alpha: 0.5 };
        let mut g = RateGovernor::new(declared, trace[0], policy);

        let mut streak = 0u32;
        let mut streak_mean = 0.0f64;
        let mut since_commit = u64::MAX;
        let mut commits = 0u64;
        for (i, &rate) in trace.iter().enumerate() {
            let window = g.window();
            prop_assert!(window.lo >= declared.lo && window.hi <= declared.hi,
                "window {} escapes declared {}", window, declared);
            let expect_exit = !window.contains(rate);
            let ev = g.observe(rate);
            since_commit = since_commit.saturating_add(1);
            prop_assert_eq!(ev.exited, expect_exit, "exit flag wrong at obs {}", i);
            if ev.exited {
                streak_mean = if streak == 0 {
                    rate as f64
                } else {
                    0.5 * rate as f64 + 0.5 * streak_mean
                };
                streak += 1;
            } else {
                streak = 0;
            }

            if let Some(w) = ev.proposal {
                prop_assert!(streak >= exit_streak.max(1),
                    "proposal after streak {} < {}", streak, exit_streak);
                prop_assert!(since_commit >= cooldown,
                    "proposal {} observations after a commit (cooldown {})",
                    since_commit, cooldown);
                prop_assert!(w.lo >= declared.lo && w.hi <= declared.hi && w.lo <= w.hi,
                    "proposed window {} invalid", w);
                prop_assert!(w != window, "proposed the current window");
                g.commit(w);
                commits += 1;
                since_commit = 0;
                streak = 0;
                prop_assert_eq!(g.window(), w, "commit did not install the window");
            } else if ev.exited && streak >= exit_streak.max(1) && since_commit >= cooldown {
                // An armed governor may only stay silent when quantization
                // maps the exit mean back onto the current window.
                prop_assert_eq!(g.window_for(streak_mean), window,
                    "armed governor silent although the window would move");
            }
        }
        prop_assert_eq!(g.commits(), commits);
        prop_assert_eq!(g.observations(), trace.len() as u64);

        // No deadlock the other way: under a sustained shift the governor
        // converges to the shifted rate's quantized window in bounded
        // time, whatever state the random trace left it in.
        let far = declared.hi.saturating_mul(2);
        let target = g.window_for(far as f64);
        for _ in 0..256 {
            if g.window() == target {
                break;
            }
            if let Some(w) = g.observe(far).proposal {
                g.commit(w);
            }
        }
        prop_assert_eq!(g.window(), target,
            "sustained shift did not converge within 256 observations");
    }
}
