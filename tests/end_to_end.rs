//! Cross-crate integration tests: DSL source → Adaptic compilation → GPU
//! simulator execution, differentially checked against the `streamir`
//! interpreter and the CPU references, on both device targets.

use adaptic_repro::adaptic::{
    compile, compile_with_options, CompileOptions, InputAxis, StateBinding,
};
use adaptic_repro::apps::programs::{self, zip2};
use adaptic_repro::baselines::reference;
use adaptic_repro::gpu_sim::{DeviceSpec, ExecMode};
use adaptic_repro::streamir::interp::Interpreter;

fn devices() -> Vec<DeviceSpec> {
    vec![DeviceSpec::tesla_c2050(), DeviceSpec::gtx285()]
}

fn assert_close(got: f32, want: f32, tol: f32, what: &str) {
    assert!(
        (got - want).abs() <= tol * want.abs().max(1.0),
        "{what}: {got} vs {want}"
    );
}

#[test]
fn blas1_reductions_match_references_on_both_devices() {
    for device in devices() {
        let axis = InputAxis::total_size("N", 256, 1 << 18);
        for n in [256usize, 4096, 65536] {
            let x: Vec<f32> = (0..n).map(|i| ((i * 13) % 17) as f32 - 8.0).collect();
            let y: Vec<f32> = (0..n).map(|i| ((i * 7) % 11) as f32 - 5.0).collect();

            let sdot = compile(&programs::sdot().program, &device, &axis).unwrap();
            let rep = sdot.run(n as i64, &zip2(&x, &y)).unwrap();
            assert_close(rep.output[0], reference::dot(&x, &y), 1e-3, "sdot");

            let sasum = compile(&programs::sasum().program, &device, &axis).unwrap();
            let rep = sasum.run(n as i64, &x).unwrap();
            assert_close(rep.output[0], reference::asum(&x), 1e-3, "sasum");

            let snrm2 = compile(&programs::snrm2().program, &device, &axis).unwrap();
            let rep = snrm2.run(n as i64, &x).unwrap();
            assert_close(rep.output[0], reference::nrm2(&x), 1e-3, "snrm2");

            let isamax = compile(&programs::isamax().program, &device, &axis).unwrap();
            let rep = isamax.run(n as i64, &x).unwrap();
            assert_close(rep.output[0], reference::amax_abs(&x), 1e-5, "isamax");
        }
    }
}

#[test]
fn every_variant_of_the_table_is_functionally_correct() {
    // Run the compiled sum at a size inside every variant's range; all
    // must produce the same (correct) value.
    let device = DeviceSpec::tesla_c2050();
    let axis = InputAxis::total_size("N", 256, 1 << 18);
    let program = programs::sasum().program;
    let compiled = compile(&program, &device, &axis).unwrap();
    assert!(compiled.variant_count() >= 2);
    for v in &compiled.variants {
        let n = ((v.lo + v.hi) / 2).clamp(v.lo, v.hi) as usize;
        let x: Vec<f32> = (0..n).map(|i| ((i * 3) % 13) as f32 - 6.0).collect();
        let rep = compiled.run(n as i64, &x).unwrap();
        assert_close(
            rep.output[0],
            reference::asum(&x),
            1e-3,
            &format!("variant [{}, {}]", v.lo, v.hi),
        );
    }
}

#[test]
fn tmv_matches_reference_across_shapes_and_devices() {
    let total: i64 = 1 << 14;
    for device in devices() {
        let axis = InputAxis::new("rows", 4, total / 4, move |rows| {
            adaptic_repro::streamir::graph::bindings(&[("rows", rows), ("cols", total / rows)])
        })
        .with_items(move |_| total);
        let compiled = compile(&programs::tmv().program, &device, &axis).unwrap();
        for rows in [4usize, 128, 2048] {
            let cols = total as usize / rows;
            let a: Vec<f32> = (0..total as usize).map(|i| ((i * 7) % 5) as f32).collect();
            let x: Vec<f32> = (0..cols).map(|i| ((i * 3) % 4) as f32).collect();
            let rep = compiled
                .run_with(
                    rows as i64,
                    &a,
                    &[StateBinding::new("RowDot", "x", x.clone())],
                    ExecMode::Full,
                )
                .unwrap();
            let expected = reference::tmv(&a, &x, rows, cols);
            for (r, &exp) in expected.iter().enumerate() {
                assert_close(
                    rep.output[r],
                    exp,
                    1e-3,
                    &format!("{}: tmv {rows}x{cols} row {r}", device.name),
                );
            }
        }
    }
}

#[test]
fn dct_pipeline_matches_reference() {
    let device = DeviceSpec::tesla_c2050();
    let axis = InputAxis::total_size("N", 1, 1 << 12);
    let compiled = compile(&programs::dct8x8().program, &device, &axis).unwrap();
    let n_tiles = 9usize;
    let tiles: Vec<f32> = (0..n_tiles * 64)
        .map(|i| ((i * 31) % 19) as f32 - 9.0)
        .collect();
    let rep = compiled.run(n_tiles as i64, &tiles).unwrap();
    for t in 0..n_tiles {
        let expected = reference::dct8x8(&tiles[t * 64..(t + 1) * 64]);
        for (i, &exp) in expected.iter().enumerate() {
            assert_close(
                rep.output[t * 64 + i],
                exp,
                1e-3,
                &format!("dct tile {t} coeff {i}"),
            );
        }
    }
}

#[test]
fn black_scholes_matches_reference_and_interpreter() {
    let device = DeviceSpec::tesla_c2050();
    let axis = InputAxis::total_size("N", 16, 1 << 16);
    let program = programs::black_scholes().program;
    let compiled = compile(&program, &device, &axis).unwrap();
    let n = 500usize;
    let prices: Vec<f32> = (0..n)
        .flat_map(|i| vec![80.0 + (i % 40) as f32, 100.0, 0.25 + 0.01 * (i % 50) as f32])
        .collect();
    let state = [StateBinding::new("Price", "rv", vec![0.02, 0.3])];
    let rep = compiled
        .run_with(n as i64, &prices, &state, ExecMode::Full)
        .unwrap();

    let mut it = Interpreter::new(&program);
    it.bind_param("N", n as i64);
    it.bind_state("Price", "rv", vec![0.02, 0.3]);
    let golden = it.run(&prices).unwrap();
    assert_eq!(rep.output.len(), golden.len());
    for (i, (g, w)) in rep.output.iter().zip(&golden).enumerate() {
        assert_close(*g, *w, 1e-4, &format!("black-scholes item {i}"));
    }
}

#[test]
fn optimization_levels_agree_functionally() {
    // Figure 11's premise: every optimization level computes the same
    // answers, only the kernels differ.
    let device = DeviceSpec::gtx285();
    let src = r#"pipeline P(N) {
        actor A(pop 2, push 1) {
            x = pop();
            y = pop();
            push(x * 2.0 + y);
        }
        actor B(pop 1, push 1) { push(pop() - 1.0); }
    }"#;
    let program = adaptic_repro::streamir::parse::parse_program(src).unwrap();
    let axis = InputAxis::total_size("N", 64, 1 << 16);
    let n = 3000usize;
    let input: Vec<f32> = (0..2 * n).map(|i| (i % 23) as f32).collect();
    let mut outputs = Vec::new();
    for opts in [
        CompileOptions::baseline(),
        CompileOptions {
            segmentation: true,
            memory: false,
            integration: false,
            probes: 9,
        },
        CompileOptions::default(),
    ] {
        let compiled = compile_with_options(&program, &device, &axis, opts).unwrap();
        let rep = compiled.run(n as i64, &input).unwrap();
        outputs.push(rep.output);
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[0], outputs[2]);
    // And they are correct.
    for i in 0..n {
        assert_eq!(outputs[0][i], input[2 * i] * 2.0 + input[2 * i + 1] - 1.0);
    }
}

#[test]
fn gtx285_respects_its_smaller_limits() {
    // Compiling for the GT200-class part must never produce launches that
    // exceed 512 threads/block or 16 KB shared — the simulator panics on
    // violations, so a clean run is the assertion.
    let device = DeviceSpec::gtx285();
    for bench in programs::figure9_benches() {
        if bench.program.params.len() != 1 {
            continue;
        }
        let axis = InputAxis::total_size(&bench.program.params[0], 256, 1 << 18);
        let compiled = match compile(&bench.program, &device, &axis) {
            Ok(c) => c,
            Err(e) => panic!("{}: {e}", bench.name),
        };
        let n = 8192usize;
        let needed = match bench.name {
            "Sdot" => 2 * n,
            "Scalar Product" => 2 * n,
            "MonteCarlo" => 6 * n,
            _ => n,
        };
        let input: Vec<f32> = (0..needed).map(|i| (i % 9) as f32).collect();
        let _ = compiled
            .run_with(n as i64, &input, &[], ExecMode::SampledExec(32))
            .unwrap();
    }
}
