//! The SVM-training case study (§5.2.3 of the paper).
//!
//! The Adaptic-compiled trainer expresses each phase of the deterministic
//! kernel-adatron iteration as a streaming program:
//!
//! * **RBF kernel row** — one reduction firing per sample, accumulating
//!   `γ·(x_s[j] − x_i[j])²` over features with the selected sample and γ
//!   bound as state; the post-expression applies `exp(−acc)`;
//! * **violation selection** — max reductions over `y·f` (and `−y·f`);
//! * **gradient update** — an element-wise map.
//!
//! Unlike GPUSVM (see `adaptic_baselines::gpusvm`), the compiler cannot
//! invent the application-specific kernel-row *cache* — every selected row
//! is recomputed. That semantic gap, not kernel quality, is why the paper
//! reports Adaptic at ~65% of GPUSVM on cache-friendly datasets.

use adaptic::{
    compile_with_options, CompileOptions, CompiledProgram, InputAxis, RunOptions, StateBinding,
};
use adaptic_baselines::gpusvm::SvmConfig;
use gpu_sim::{DeviceSpec, ExecMode};
use streamir::error::Result;
use streamir::parse::parse_program;

use crate::programs::zip2;

const KERNEL_ROW_SRC: &str = r#"pipeline RbfRow(D) {
    actor Row(pop D, push 1) {
        state xi[D];
        state gamma[1];
        acc = 0.0;
        for j in 0..D {
            acc = acc + gamma[0] * pow(pop() - xi[j], 2.0);
        }
        push(exp(0.0 - acc));
    }
}"#;

const SELECT_MAX_SRC: &str = r#"pipeline SelectMax(N) {
    actor MaxYF(pop 2*N, push 1) {
        best = -1000000000.0;
        for i in 0..N {
            best = max(best, pop() * pop());
        }
        push(best);
    }
}"#;

const SELECT_MIN_SRC: &str = r#"pipeline SelectMin(N) {
    actor MaxNegYF(pop 2*N, push 1) {
        best = -1000000000.0;
        for i in 0..N {
            best = max(best, 0.0 - pop() * pop());
        }
        push(best);
    }
}"#;

const GRAD_UPDATE_SRC: &str = r#"pipeline GradUpdate(N) {
    actor Update(pop 2, push 1) {
        state scale[1];
        f = pop();
        k = pop();
        push(f + scale[0] * k);
    }
}"#;

/// Adaptic-compiled SVM trainer for one dataset shape.
pub struct AdapticSvm {
    kernel_row: CompiledProgram,
    select_max: CompiledProgram,
    select_min: CompiledProgram,
    grad_update: CompiledProgram,
    d: usize,
}

/// Result of an Adaptic SVM training run.
#[derive(Debug, Clone)]
pub struct AdapticSvmRun {
    pub alphas: Vec<f32>,
    pub time_us: f64,
    pub launches: usize,
}

impl AdapticSvm {
    /// Compile the trainer's programs for sample counts in `[n_lo, n_hi]`
    /// and `d` features.
    pub fn compile(
        device: &DeviceSpec,
        n_lo: i64,
        n_hi: i64,
        d: usize,
        options: CompileOptions,
    ) -> Result<AdapticSvm> {
        let row_axis = InputAxis::new("n", n_lo, n_hi, move |_| {
            streamir::graph::bindings(&[("D", d as i64)])
        })
        .with_items(move |n| n * d as i64);
        let sel_axis = InputAxis::total_size("N", n_lo, n_hi);
        let upd_axis = InputAxis::total_size("N", n_lo, n_hi);
        Ok(AdapticSvm {
            kernel_row: compile_with_options(
                &parse_program(KERNEL_ROW_SRC).unwrap(),
                device,
                &row_axis,
                options,
            )?,
            select_max: compile_with_options(
                &parse_program(SELECT_MAX_SRC).unwrap(),
                device,
                &sel_axis,
                options,
            )?,
            select_min: compile_with_options(
                &parse_program(SELECT_MIN_SRC).unwrap(),
                device,
                &upd_axis,
                options,
            )?,
            grad_update: compile_with_options(
                &parse_program(GRAD_UPDATE_SRC).unwrap(),
                device,
                &upd_axis,
                options,
            )?,
            d,
        })
    }

    /// Train on `data` (`n x d`, sample-major) with ±1 `labels`.
    ///
    /// # Errors
    ///
    /// Propagates compiled-program runtime errors.
    pub fn train(
        &self,
        data: &[f32],
        labels: &[f32],
        n: usize,
        cfg: &SvmConfig,
        mode: ExecMode,
    ) -> Result<AdapticSvmRun> {
        self.train_opts(data, labels, n, cfg, RunOptions::serial(mode))
    }

    /// [`AdapticSvm::train`] with explicit execution options — training
    /// is iterative (every launch depends on the previous update), so it
    /// takes no launch cache, only an engine policy.
    ///
    /// # Errors
    ///
    /// Propagates compiled-program runtime errors.
    pub fn train_opts(
        &self,
        data: &[f32],
        labels: &[f32],
        n: usize,
        cfg: &SvmConfig,
        opts: RunOptions,
    ) -> Result<AdapticSvmRun> {
        assert_eq!(data.len(), n * self.d);
        let mut time = 0.0f64;
        let mut launches = 0usize;
        let mut alphas = vec![0.0f32; n];
        let mut f: Vec<f32> = labels.iter().map(|y| -y).collect();

        for _ in 0..cfg.iterations {
            for phase in 0..2 {
                // Violation value on the GPU; index scan on the host (the
                // same split the baseline uses).
                let sel = if phase == 0 {
                    &self.select_max
                } else {
                    &self.select_min
                };
                let rep = sel.run_opts(n as i64, &zip2(labels, &f), &[], opts, None)?;
                time += rep.time_us;
                launches += rep.kernels.len();

                let (idx, delta) = select_and_update(&mut alphas, &f, labels, cfg, phase == 1);
                if delta == 0.0 {
                    continue;
                }

                // Kernel row: always recomputed (no cache in the compiled
                // version). The device program is launched for the timing;
                // the authoritative values come from the host mirror so
                // that sampled timing modes keep the trajectory exact.
                let xi = data[idx * self.d..(idx + 1) * self.d].to_vec();
                let rep = self.kernel_row.run_opts(
                    n as i64,
                    data,
                    &[
                        StateBinding::new("Row", "xi", xi),
                        StateBinding::new("Row", "gamma", vec![cfg.gamma]),
                    ],
                    opts,
                    None,
                )?;
                time += rep.time_us;
                launches += rep.kernels.len();
                let row: Vec<f32> = (0..n)
                    .map(|s| {
                        let dist: f32 = (0..self.d)
                            .map(|j| {
                                let diff = data[idx * self.d + j] - data[s * self.d + j];
                                diff * diff
                            })
                            .sum();
                        (-cfg.gamma * dist).exp()
                    })
                    .collect();

                // Gradient update (timed on the device, mirrored on the
                // host for trajectory exactness under sampled modes).
                let scale = delta * labels[idx];
                let rep = self.grad_update.run_opts(
                    n as i64,
                    &zip2(&f, &row),
                    &[StateBinding::new("Update", "scale", vec![scale])],
                    opts,
                    None,
                )?;
                time += rep.time_us;
                launches += rep.kernels.len();
                for (fv, kv) in f.iter_mut().zip(&row) {
                    *fv += scale * kv;
                }
            }
        }
        Ok(AdapticSvmRun {
            alphas,
            time_us: time,
            launches,
        })
    }
}

/// The same deterministic working-set selection + adatron update the
/// baseline uses (kept in lockstep so results are comparable
/// bit-for-bit).
fn select_and_update(
    alphas: &mut [f32],
    f: &[f32],
    y: &[f32],
    cfg: &SvmConfig,
    pick_max: bool,
) -> (usize, f32) {
    let mut best = 0usize;
    let mut best_v = f32::INFINITY;
    for s in 0..f.len() {
        let margin = y[s] * f[s];
        let step = cfg.lr * (1.0 - margin);
        // Skip samples pinned at a box boundary in the step's direction
        // (SMO working-set selection) so the search cannot stall.
        let movable = if step > 0.0 {
            alphas[s] < cfg.c
        } else {
            alphas[s] > 0.0
        };
        if !movable {
            continue;
        }
        let v = if pick_max { -margin } else { margin };
        if v < best_v {
            best_v = v;
            best = s;
        }
    }
    let old = alphas[best];
    let updated = (old + cfg.lr * (1.0 - y[best] * f[best])).clamp(0.0, cfg.c);
    let delta = updated - old;
    alphas[best] = updated;
    (best, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptic_baselines::gpusvm::{synth_dataset, train_reference};

    #[test]
    fn adaptic_trainer_matches_cpu_reference() {
        let (n, d) = (160usize, 12usize);
        let (data, labels) = synth_dataset(n, d, 0.3, 21);
        let cfg = SvmConfig {
            iterations: 6,
            cache_rows: 0,
            ..SvmConfig::default()
        };
        let device = DeviceSpec::tesla_c2050();
        let svm = AdapticSvm::compile(&device, 64, 1 << 14, d, CompileOptions::default()).unwrap();
        let run = svm.train(&data, &labels, n, &cfg, ExecMode::Full).unwrap();
        let expected = train_reference(&data, &labels, n, d, &cfg);
        for (a, b) in run.alphas.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        assert!(run.time_us > 0.0);
        assert!(run.launches > 0);
    }

    #[test]
    fn compiled_kernel_row_matches_host_mirror() {
        let (n, d) = (96usize, 8usize);
        let (data, labels) = synth_dataset(n, d, 0.3, 2);
        let _ = labels;
        let device = DeviceSpec::tesla_c2050();
        let svm = AdapticSvm::compile(&device, 64, 1 << 12, d, CompileOptions::default()).unwrap();
        let gamma = 0.1f32;
        let idx = 5usize;
        let xi = data[idx * d..(idx + 1) * d].to_vec();
        let rep = svm
            .kernel_row
            .run_with(
                n as i64,
                &data,
                &[
                    StateBinding::new("Row", "xi", xi),
                    StateBinding::new("Row", "gamma", vec![gamma]),
                ],
                ExecMode::Full,
            )
            .unwrap();
        for s in 0..n {
            let dist: f32 = (0..d)
                .map(|j| {
                    let diff = data[idx * d + j] - data[s * d + j];
                    diff * diff
                })
                .sum();
            let want = (-gamma * dist).exp();
            assert!(
                (rep.output[s] - want).abs() < 1e-4,
                "row[{s}]: {} vs {want}",
                rep.output[s]
            );
        }
    }

    #[test]
    fn segmentation_speeds_up_training() {
        // The paper: most of the SVM improvement comes from actor
        // segmentation. Compare baseline options vs segmentation-enabled.
        let (n, d) = (512usize, 64usize);
        let (data, labels) = synth_dataset(n, d, 0.4, 5);
        let cfg = SvmConfig {
            iterations: 3,
            cache_rows: 0,
            ..SvmConfig::default()
        };
        let device = DeviceSpec::tesla_c2050();
        let base =
            AdapticSvm::compile(&device, 64, 1 << 14, d, CompileOptions::baseline()).unwrap();
        let opt = AdapticSvm::compile(&device, 64, 1 << 14, d, CompileOptions::default()).unwrap();
        let rb = base
            .train(&data, &labels, n, &cfg, ExecMode::SampledStats(64))
            .unwrap();
        let ro = opt
            .train(&data, &labels, n, &cfg, ExecMode::SampledStats(64))
            .unwrap();
        assert_eq!(rb.alphas, ro.alphas);
        assert!(
            ro.time_us <= rb.time_us,
            "optimized {} vs baseline {}",
            ro.time_us,
            rb.time_us
        );
    }
}
