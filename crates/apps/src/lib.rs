//! `adaptic-apps` — the paper's benchmarks written in the streaming DSL.
//!
//! Each benchmark pairs a platform-independent streaming program (compiled
//! by the `adaptic` crate) with input generators and, where the paper
//! evaluates one, the matching hand-optimized baseline from
//! `adaptic-baselines`. The case studies of §5.2 — transposed
//! matrix–vector multiplication, BiCGSTAB, and SVM training — get their
//! own modules.

pub mod bicgstab;
pub mod datasets;
pub mod programs;
pub mod svm;

pub use programs::Bench;
