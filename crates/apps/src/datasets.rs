//! Synthetic datasets with the shapes of the paper's SVM evaluation sets.
//!
//! The paper trains on Adult, Web, MNIST and USPS. Only two properties of
//! those sets matter to the measured effect (Figure 12): the `(samples,
//! features)` shape, which sets the kernel-row cost, and how strongly the
//! working-set selection *revisits* the same samples, which sets GPUSVM's
//! kernel-row cache hit-rate (high for Adult and USPS — the sets where
//! GPUSVM's application-specific cache beats Adaptic). We synthesize
//! datasets with the published shapes (scaled down uniformly to keep the
//! simulation tractable) and per-set clustering factors calibrated to
//! produce the corresponding revisit behaviour.

use adaptic_baselines::gpusvm::synth_dataset;

/// One benchmark dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub name: &'static str,
    /// Samples (after scaling).
    pub n: usize,
    /// Features.
    pub d: usize,
    /// Sample-major data.
    pub data: Vec<f32>,
    /// ±1 labels.
    pub labels: Vec<f32>,
}

/// Published shapes, scaled by `1/scale` in the sample dimension.
fn shape(name: &'static str) -> (usize, usize, f32, u64) {
    // (samples, features, cluster spread, seed); smaller spread => tighter
    // clusters => more cache hits for GPUSVM.
    match name {
        "Adult" => (32_561, 123, 0.03, 1),
        "Web" => (49_749, 300, 0.6, 2),
        "MNIST" => (60_000, 784, 0.5, 3),
        "USPS" => (7_291, 256, 0.02, 4),
        other => panic!("unknown dataset `{other}`"),
    }
}

/// Build one of the four benchmark datasets, shrinking the sample count by
/// `scale` (features are kept, since they set per-row cost). Small sets
/// are never shrunk below ~4K samples — GPUSVM's fixed launch geometry is
/// designed for thousands of samples, and starving it would measure the
/// scaling artifact instead of the cache effect.
pub fn dataset(name: &'static str, scale: usize) -> Dataset {
    let (n0, d, spread, seed) = shape(name);
    let scale = scale.clamp(1, (n0 / 4096).max(1));
    let n = (n0 / scale.max(1)).max(64);
    let (data, labels) = synth_dataset(n, d, spread, seed);
    Dataset {
        name,
        n,
        d,
        data,
        labels,
    }
}

/// The four sets of Figure 12.
pub fn svm_datasets(scale: usize) -> Vec<Dataset> {
    ["Adult", "Web", "MNIST", "USPS"]
        .into_iter()
        .map(|n| dataset(n, scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_follow_publication() {
        let sets = svm_datasets(64);
        assert_eq!(sets.len(), 4);
        let mnist = &sets[2];
        assert_eq!(mnist.name, "MNIST");
        assert_eq!(mnist.d, 784);
        assert!(mnist.n >= 64);
        assert_eq!(mnist.data.len(), mnist.n * mnist.d);
    }

    #[test]
    fn adult_is_tighter_clustered_than_web() {
        let (_, _, adult_spread, _) = shape("Adult");
        let (_, _, web_spread, _) = shape("Web");
        assert!(adult_spread < web_spread);
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_name_panics() {
        let _ = dataset("Sonar", 1);
    }
}
