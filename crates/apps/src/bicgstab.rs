//! The BiCGSTAB case study (§5.2.2 of the paper).
//!
//! The biconjugate gradient stabilized method solves `A·x = b` for
//! nonsymmetric `A` with eleven linear-algebra steps per iteration. The
//! paper compares two implementations:
//!
//! * **CUBLAS-composed** ([`solve_cublas`]): each step is split into
//!   CUBLAS calls (`sgemv`, `sdot`, `saxpy`, `sscal`, `scopy`), so a step
//!   like `p = r + β(p − ωv)` costs several kernel launches and extra
//!   global-memory round trips;
//! * **Adaptic-compiled** ([`AdapticBicgstab`]): each step is a streaming
//!   program; vertical integration fuses its sub-steps into a single
//!   kernel, and the reductions/matvec pick input-aware variants.
//!
//! Figure 11 plots the Adaptic version (at several optimization levels)
//! normalized to the CUBLAS composition for sizes 512²…8192² on two GPUs.

use adaptic::{
    compile_with_options, CompileOptions, CompiledProgram, InputAxis, RunOptions, StateBinding,
};
use adaptic_baselines::{blas1, tmv as tmv_base};
use gpu_sim::{DeviceSpec, ExecMode};
use streamir::error::Result;
use streamir::parse::parse_program;

use crate::programs::{self, zip2, zip3};

/// CPU reference solution (same fixed iteration count, no early exit).
pub fn solve_reference(a: &[f32], b: &[f32], n: usize, iters: usize) -> Vec<f32> {
    let matvec = |v: &[f32]| -> Vec<f32> {
        (0..n)
            .map(|r| (0..n).map(|c| a[r * n + c] * v[c]).sum())
            .collect()
    };
    let dot = |x: &[f32], y: &[f32]| -> f32 { x.iter().zip(y).map(|(p, q)| p * q).sum() };

    let mut x = vec![0.0f32; n];
    let mut r: Vec<f32> = b.to_vec(); // r = b - A*0
    let r_hat = r.clone();
    let mut p = vec![0.0f32; n];
    let mut v = vec![0.0f32; n];
    let (mut rho, mut alpha, mut omega) = (1.0f32, 1.0f32, 1.0f32);

    for _ in 0..iters {
        let rho_new = dot(&r_hat, &r);
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        v = matvec(&p);
        alpha = rho / dot(&r_hat, &v);
        let s: Vec<f32> = (0..n).map(|i| r[i] - alpha * v[i]).collect();
        let t = matvec(&s);
        let tt = dot(&t, &t);
        omega = if tt != 0.0 { dot(&t, &s) / tt } else { 0.0 };
        for i in 0..n {
            x[i] += alpha * p[i] + omega * s[i];
        }
        for i in 0..n {
            r[i] = s[i] - omega * t[i];
        }
    }
    x
}

/// The CUBLAS-composed GPU implementation: every step decomposed into
/// library calls. Returns the solution and the accumulated device time.
pub fn solve_cublas(
    device: &DeviceSpec,
    a: &[f32],
    b: &[f32],
    n: usize,
    iters: usize,
    mode: ExecMode,
) -> (Vec<f32>, f64) {
    let mut time = 0.0f64;
    let mut x = vec![0.0f32; n];
    let mut r = b.to_vec();
    let r_hat = r.clone();
    let mut p = vec![0.0f32; n];
    let mut v = vec![0.0f32; n];
    let (mut rho, mut alpha, mut omega) = (1.0f32, 1.0f32, 1.0f32);

    let dot = |x: &[f32], y: &[f32], time: &mut f64| -> f32 {
        let run = blas1::sdot(device, x, y, mode);
        *time += run.time_us;
        run.output[0]
    };

    for _ in 0..iters {
        let rho_new = dot(&r_hat, &r, &mut time);
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;

        // p = r + beta * (p - omega*v): scopy + saxpy + sscal + saxpy.
        let (run, _, tmp) = blas1::map_l1(device, blas1::MapOp::Scopy, &p, Some(&p), mode);
        time += run.time_us;
        let mut tmp = tmp;
        let (run, _, t2) = blas1::map_l1(
            device,
            blas1::MapOp::Saxpy { a: -omega },
            &v,
            Some(&tmp),
            mode,
        );
        time += run.time_us;
        tmp = t2;
        let (run, t3, _) = blas1::map_l1(device, blas1::MapOp::Sscal { a: beta }, &tmp, None, mode);
        time += run.time_us;
        tmp = t3;
        let (run, _, p2) =
            blas1::map_l1(device, blas1::MapOp::Saxpy { a: 1.0 }, &r, Some(&tmp), mode);
        time += run.time_us;
        p = p2;

        // v = A p (sgemv).
        let run = tmv_base::tmv(device, a, &p, n, n, mode);
        time += run.time_us;
        v = run.output;

        alpha = rho / dot(&r_hat, &v, &mut time);

        // s = r - alpha v: scopy + saxpy.
        let (run, _, s0) = blas1::map_l1(device, blas1::MapOp::Scopy, &r, Some(&r), mode);
        time += run.time_us;
        let (run, _, s) = blas1::map_l1(
            device,
            blas1::MapOp::Saxpy { a: -alpha },
            &v,
            Some(&s0),
            mode,
        );
        time += run.time_us;

        // t = A s.
        let run = tmv_base::tmv(device, a, &s, n, n, mode);
        time += run.time_us;
        let t = run.output;

        // omega = dot(t, s) / dot(t, t): two separate reductions.
        let ts = dot(&t, &s, &mut time);
        let tt = dot(&t, &t, &mut time);
        omega = if tt != 0.0 { ts / tt } else { 0.0 };

        // x += alpha p + omega s: two saxpys.
        let (run, _, x2) =
            blas1::map_l1(device, blas1::MapOp::Saxpy { a: alpha }, &p, Some(&x), mode);
        time += run.time_us;
        let (run, _, x3) = blas1::map_l1(
            device,
            blas1::MapOp::Saxpy { a: omega },
            &s,
            Some(&x2),
            mode,
        );
        time += run.time_us;
        x = x3;

        // r = s - omega t: scopy + saxpy.
        let (run, _, r0) = blas1::map_l1(device, blas1::MapOp::Scopy, &s, Some(&s), mode);
        time += run.time_us;
        let (run, _, r2) = blas1::map_l1(
            device,
            blas1::MapOp::Saxpy { a: -omega },
            &t,
            Some(&r0),
            mode,
        );
        time += run.time_us;
        r = r2;

        // Convergence metric (not used to exit; fixed iterations).
        let run = blas1::snrm2(device, &r, mode);
        time += run.time_us;
    }
    (x, time)
}

/// Adaptic-compiled BiCGSTAB: the step programs compiled once, reused
/// every iteration.
pub struct AdapticBicgstab {
    dot: CompiledProgram,
    dots_ts_tt: CompiledProgram,
    step_p: CompiledProgram,
    step_sub: CompiledProgram,
    step_x: CompiledProgram,
    tmv: CompiledProgram,
    nrm2: CompiledProgram,
}

const STEP_P_SRC: &str = r#"pipeline StepP(N) {
    actor Inner(pop 3, push 2) {
        state omega[1];
        r = pop();
        p = pop();
        v = pop();
        push(r);
        push(p - omega[0] * v);
    }
    actor Outer(pop 2, push 1) {
        state beta[1];
        r = pop();
        t = pop();
        push(r + beta[0] * t);
    }
}"#;

/// `out = a - scale*b` from `zip2(a, b)`, as two integrable actors.
const STEP_SUB_SRC: &str = r#"pipeline StepSub(N) {
    actor ScaleB(pop 2, push 2) {
        state scale[1];
        a = pop();
        b = pop();
        push(a);
        push(scale[0] * b);
    }
    actor Sub(pop 2, push 1) {
        a = pop();
        sb = pop();
        push(a - sb);
    }
}"#;

const STEP_X_SRC: &str = r#"pipeline StepX(N) {
    actor Weighted(pop 3, push 2) {
        state ao[2];
        x = pop();
        p = pop();
        s = pop();
        push(x);
        push(ao[0] * p + ao[1] * s);
    }
    actor Add(pop 2, push 1) {
        a = pop();
        b = pop();
        push(a + b);
    }
}"#;

/// Fused `dot(t,s)` and `dot(t,t)` over `zip2(t, s)` — horizontal
/// integration shares the loads. The second sibling consumes both window
/// items (equal pop counts are required for fusion), multiplying the
/// unused one by zero.
const DOTS_SRC: &str = r#"pipeline DotsTsTt(N) {
    splitjoin {
        split duplicate;
        actor DotTS(pop 2*N, push 1) {
            acc = 0.0;
            for i in 0..N {
                acc = acc + pop() * pop();
            }
            push(acc);
        }
        actor DotTT(pop 2*N, push 1) {
            acc = 0.0;
            for i in 0..N {
                acc = acc + (pow(pop(), 2.0) + 0.0 * pop());
            }
            push(acc);
        }
        join roundrobin(1, 1);
    }
}"#;

impl AdapticBicgstab {
    /// Compile the step programs for a size range on `device`.
    pub fn compile(
        device: &DeviceSpec,
        lo: i64,
        hi: i64,
        options: CompileOptions,
    ) -> Result<AdapticBicgstab> {
        let axis_n = InputAxis::total_size("N", lo, hi);
        let axis_sq = InputAxis::new("rows", lo, hi, |x| {
            streamir::graph::bindings(&[("rows", x), ("cols", x)])
        })
        .with_items(|x| x * x);
        let c = |src: &str| -> Result<CompiledProgram> {
            compile_with_options(&parse_program(src).unwrap(), device, &axis_n, options)
        };
        Ok(AdapticBicgstab {
            dot: compile_with_options(&programs::sdot().program, device, &axis_n, options)?,
            dots_ts_tt: c(DOTS_SRC)?,
            step_p: c(STEP_P_SRC)?,
            step_sub: c(STEP_SUB_SRC)?,
            step_x: c(STEP_X_SRC)?,
            tmv: compile_with_options(&programs::tmv().program, device, &axis_sq, options)?,
            nrm2: compile_with_options(&programs::snrm2().program, device, &axis_n, options)?,
        })
    }

    /// Solve `A x = b` for `iters` iterations; returns `(x, device µs)`.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from the compiled programs.
    pub fn solve(
        &self,
        a: &[f32],
        b: &[f32],
        n: usize,
        iters: usize,
        mode: ExecMode,
    ) -> Result<(Vec<f32>, f64)> {
        self.solve_opts(a, b, n, iters, RunOptions::serial(mode))
    }

    /// [`AdapticBicgstab::solve`] with explicit execution options —
    /// the solver is iterative (each launch consumes the previous
    /// output), so it takes no launch cache, only an engine policy.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from the compiled programs.
    pub fn solve_opts(
        &self,
        a: &[f32],
        b: &[f32],
        n: usize,
        iters: usize,
        opts: RunOptions,
    ) -> Result<(Vec<f32>, f64)> {
        let nn = n as i64;
        let mut time = 0.0f64;
        let mut x = vec![0.0f32; n];
        let mut r = b.to_vec();
        let r_hat = r.clone();
        let mut p = vec![0.0f32; n];
        let mut v = vec![0.0f32; n];
        let (mut rho, mut alpha, mut omega) = (1.0f32, 1.0f32, 1.0f32);

        for _ in 0..iters {
            // rho = dot(r_hat, r)
            let rep = self.dot.run_opts(nn, &zip2(&r_hat, &r), &[], opts, None)?;
            time += rep.time_us;
            let rho_new = rep.output[0];
            let beta = (rho_new / rho) * (alpha / omega);
            rho = rho_new;

            // p = r + beta * (p - omega*v) — one fused kernel.
            let rep = self.step_p.run_opts(
                nn,
                &zip3(&r, &p, &v),
                &[
                    StateBinding::new("Inner", "omega", vec![omega]),
                    StateBinding::new("Outer", "beta", vec![beta]),
                ],
                opts,
                None,
            )?;
            time += rep.time_us;
            p = rep.output;

            // v = A p.
            let rep = self.tmv.run_opts(
                nn,
                a,
                &[StateBinding::new("RowDot", "x", p.clone())],
                opts,
                None,
            )?;
            time += rep.time_us;
            v = rep.output;

            // alpha = rho / dot(r_hat, v).
            let rep = self.dot.run_opts(nn, &zip2(&r_hat, &v), &[], opts, None)?;
            time += rep.time_us;
            alpha = rho / rep.output[0];

            // s = r - alpha v.
            let rep = self.step_sub.run_opts(
                nn,
                &zip2(&r, &v),
                &[StateBinding::new("ScaleB", "scale", vec![alpha])],
                opts,
                None,
            )?;
            time += rep.time_us;
            let s = rep.output;

            // t = A s.
            let rep = self.tmv.run_opts(
                nn,
                a,
                &[StateBinding::new("RowDot", "x", s.clone())],
                opts,
                None,
            )?;
            time += rep.time_us;
            let t = rep.output;

            // omega = dot(t,s)/dot(t,t) — one horizontally-fused kernel.
            let rep = self
                .dots_ts_tt
                .run_opts(nn, &zip2(&t, &s), &[], opts, None)?;
            time += rep.time_us;
            let (ts, tt) = (rep.output[0], rep.output[1]);
            omega = if tt != 0.0 { ts / tt } else { 0.0 };

            // x += alpha p + omega s.
            let rep = self.step_x.run_opts(
                nn,
                &zip3(&x, &p, &s),
                &[StateBinding::new("Weighted", "ao", vec![alpha, omega])],
                opts,
                None,
            )?;
            time += rep.time_us;
            x = rep.output;

            // r = s - omega t.
            let rep = self.step_sub.run_opts(
                nn,
                &zip2(&s, &t),
                &[StateBinding::new("ScaleB", "scale", vec![omega])],
                opts,
                None,
            )?;
            time += rep.time_us;
            r = rep.output;

            // Convergence metric.
            let rep = self.nrm2.run_opts(nn, &r, &[], opts, None)?;
            time += rep.time_us;
        }
        Ok((x, time))
    }
}

/// A well-conditioned synthetic system: diagonally dominant `A`.
pub fn synth_system(n: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
    let mut state = seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493);
    let mut next = move || {
        state = state
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
    };
    let mut a = vec![0.0f32; n * n];
    for r in 0..n {
        let mut off_sum = 0.0f32;
        for c in 0..n {
            if r != c {
                let v = 0.5 * next() / n as f32;
                a[r * n + c] = v;
                off_sum += v.abs();
            }
        }
        a[r * n + r] = 1.0 + off_sum;
    }
    let b: Vec<f32> = (0..n).map(|_| next()).collect();
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &[f32], x: &[f32], b: &[f32], n: usize) -> f32 {
        let mut worst = 0.0f32;
        for r in 0..n {
            let ax: f32 = (0..n).map(|c| a[r * n + c] * x[c]).sum();
            worst = worst.max((ax - b[r]).abs());
        }
        worst
    }

    #[test]
    fn reference_solver_converges() {
        let n = 48;
        let (a, b) = synth_system(n, 5);
        let x = solve_reference(&a, &b, n, 12);
        assert!(residual(&a, &x, &b, n) < 1e-3, "residual too large");
    }

    #[test]
    fn cublas_composition_matches_reference() {
        let n = 48;
        let (a, b) = synth_system(n, 5);
        let expected = solve_reference(&a, &b, n, 4);
        let d = DeviceSpec::tesla_c2050();
        let (x, time) = solve_cublas(&d, &a, &b, n, 4, ExecMode::Full);
        for i in 0..n {
            assert!(
                (x[i] - expected[i]).abs() < 1e-3 * expected[i].abs().max(1.0),
                "x[{i}]: {} vs {}",
                x[i],
                expected[i]
            );
        }
        assert!(time > 0.0);
    }

    #[test]
    fn adaptic_solver_matches_reference() {
        let n = 64;
        let (a, b) = synth_system(n, 9);
        let expected = solve_reference(&a, &b, n, 3);
        let d = DeviceSpec::tesla_c2050();
        let solver = AdapticBicgstab::compile(&d, 32, 1 << 13, CompileOptions::default()).unwrap();
        let (x, time) = solver.solve(&a, &b, n, 3, ExecMode::Full).unwrap();
        for i in 0..n {
            assert!(
                (x[i] - expected[i]).abs() < 2e-3 * expected[i].abs().max(1.0),
                "x[{i}]: {} vs {}",
                x[i],
                expected[i]
            );
        }
        assert!(time > 0.0);
    }

    #[test]
    fn integration_reduces_kernel_count() {
        // The fused step_p must launch fewer kernels than the unfused one.
        let d = DeviceSpec::tesla_c2050();
        let fused = AdapticBicgstab::compile(&d, 32, 1 << 13, CompileOptions::default()).unwrap();
        let unfused = AdapticBicgstab::compile(
            &d,
            32,
            1 << 13,
            CompileOptions {
                integration: false,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        let n = 128usize;
        let r = vec![1.0f32; n];
        let p = vec![2.0f32; n];
        let v = vec![3.0f32; n];
        let state = [
            StateBinding::new("Inner", "omega", vec![0.5]),
            StateBinding::new("Outer", "beta", vec![2.0]),
        ];
        let rf = fused
            .step_p
            .run_with(n as i64, &zip3(&r, &p, &v), &state, ExecMode::Full)
            .unwrap();
        let ru = unfused
            .step_p
            .run_with(n as i64, &zip3(&r, &p, &v), &state, ExecMode::Full)
            .unwrap();
        assert!(rf.kernels.len() < ru.kernels.len());
        assert_eq!(rf.output, ru.output);
        for i in 0..n {
            assert_eq!(rf.output[i], r[i] + 2.0 * (p[i] - 0.5 * v[i]));
        }
    }
}
