//! Streaming-DSL sources of the evaluated benchmarks, with input
//! generators.
//!
//! StreamIt programs are incognizant of input size: the *same source* is
//! compiled once per device and executed across every size of the sweep —
//! that is the entire point of the paper.

use streamir::graph::Program;
use streamir::parse::parse_program;

/// Interleave two equal-length streams (`x0 y0 x1 y1 ...`) — the streaming
/// representation of multi-vector inputs; memory restructuring undoes the
/// interleaving on the device (§4.1.1).
pub fn zip2(x: &[f32], y: &[f32]) -> Vec<f32> {
    assert_eq!(x.len(), y.len());
    let mut out = Vec::with_capacity(2 * x.len());
    for (a, b) in x.iter().zip(y) {
        out.push(*a);
        out.push(*b);
    }
    out
}

/// Interleave three equal-length streams.
pub fn zip3(x: &[f32], y: &[f32], z: &[f32]) -> Vec<f32> {
    assert_eq!(x.len(), y.len());
    assert_eq!(x.len(), z.len());
    let mut out = Vec::with_capacity(3 * x.len());
    for ((a, b), c) in x.iter().zip(y).zip(z) {
        out.push(*a);
        out.push(*b);
        out.push(*c);
    }
    out
}

/// A benchmark's parsed program plus bookkeeping for the harness.
#[derive(Debug, Clone)]
pub struct Bench {
    /// Benchmark name as it appears in the paper's figures.
    pub name: &'static str,
    /// The streaming program.
    pub program: Program,
}

fn bench(name: &'static str, src: &str) -> Bench {
    Bench {
        name,
        program: parse_program(src)
            .unwrap_or_else(|e| panic!("benchmark `{name}` failed to parse: {e}")),
    }
}

/// CUBLAS `sdot`: input is `zip2(x, y)`.
pub fn sdot() -> Bench {
    bench(
        "Sdot",
        r#"pipeline Sdot(N) {
            actor Dot(pop 2*N, push 1) {
                acc = 0.0;
                for i in 0..N {
                    acc = acc + pop() * pop();
                }
                push(acc);
            }
        }"#,
    )
}

/// CUBLAS `sasum`.
pub fn sasum() -> Bench {
    bench(
        "Sasum",
        r#"pipeline Sasum(N) {
            actor Asum(pop N, push 1) {
                acc = 0.0;
                for i in 0..N {
                    acc = acc + abs(pop());
                }
                push(acc);
            }
        }"#,
    )
}

/// CUBLAS `snrm2`.
pub fn snrm2() -> Bench {
    bench(
        "Snrm2",
        r#"pipeline Snrm2(N) {
            actor Nrm2(pop N, push 1) {
                acc = 0.0;
                for i in 0..N {
                    acc = acc + pow(pop(), 2.0);
                }
                push(sqrt(acc));
            }
        }"#,
    )
}

/// CUBLAS `isamax`/`isamin` magnitude (`max |x|`).
pub fn isamax() -> Bench {
    bench(
        "Isamax/Isamin",
        r#"pipeline Isamax(N) {
            actor AmaxAbs(pop N, push 1) {
                best = 0.0;
                for i in 0..N {
                    best = max(best, abs(pop()));
                }
                push(best);
            }
        }"#,
    )
}

/// SDK scalarProd: the Dot actor fires once per vector pair; input is the
/// concatenation of `zip2(x_p, y_p)` for each pair.
pub fn scalar_product() -> Bench {
    bench(
        "Scalar Product",
        r#"pipeline ScalarProduct(E) {
            actor PairDot(pop 2*E, push 1) {
                acc = 0.0;
                for i in 0..E {
                    acc = acc + pop() * pop();
                }
                push(acc);
            }
        }"#,
    )
}

/// SDK MonteCarlo: per option the stream carries `paths` records of
/// `(S, drift, vol·√T·?, z, X, disc)`; the host pre-folds the per-option
/// constants so each record value is consumed exactly once and the body
/// stays a single accumulation — the shape the reduction detector
/// recognizes. The paper's sample is already input-portable; Adaptic
/// merely matches it.
pub fn monte_carlo() -> Bench {
    bench(
        "MonteCarlo",
        r#"pipeline MonteCarlo(P) {
            actor MeanPayoff(pop 6*P, push 1) {
                acc = 0.0;
                for i in 0..P {
                    acc = acc + (max(pop() * exp(pop() + pop() * pop()) - pop(), 0.0) * pop());
                }
                push(acc / P);
            }
        }"#,
    )
}

/// Pack MonteCarlo's input stream: `paths` records per option, ordered as
/// the element expression pops them: `(S, drift, volsqt, z, X, disc)`
/// where `drift = (r - v²/2)·T`, `volsqt = v·√T`, `disc = e^{-rT}`.
pub fn monte_carlo_stream(params: &[f32], n_options: usize, paths: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(n_options * paths * 6);
    for opt in 0..n_options {
        let (s, x, t, r, v) = (
            params[opt * 5],
            params[opt * 5 + 1],
            params[opt * 5 + 2],
            params[opt * 5 + 3],
            params[opt * 5 + 4],
        );
        let drift = (r - 0.5 * v * v) * t;
        let volsqt = v * t.sqrt();
        let disc = (-r * t).exp();
        for p in 0..paths {
            let z = adaptic_baselines::sdk::mc_sample(opt, p);
            out.extend_from_slice(&[s, drift, volsqt, z, x, disc]);
        }
    }
    out
}

/// SDK oceanFFT surrogate: spectrum scaling map followed by a five-point
/// smoothing stencil (the neighboring-access actor the paper exercises).
pub fn ocean() -> Bench {
    bench(
        "Ocean FFT",
        r#"pipeline Ocean(rows, cols) {
            actor Scale(pop 1, push 1) {
                state amplitude[1];
                push(pop() * amplitude[0]);
            }
            actor Smooth(pop rows*cols, push rows*cols, peek rows*cols) {
                for idx in 0..rows*cols {
                    r = idx / cols;
                    c = idx % cols;
                    if (r > 0 && r < rows - 1 && c > 0 && c < cols - 1) {
                        push(0.25 * (peek(idx - 1) + peek(idx + 1)
                            + peek(idx - cols) + peek(idx + cols)));
                    } else {
                        push(peek(idx));
                    }
                }
            }
        }"#,
    )
}

/// SDK convolutionSeparable: row pass then column pass, radius 8, taps in
/// state arrays. Both actors have the neighboring-access pattern; the tap
/// loop is unrolled so every peek offset is affine in the element index
/// (the form the stencil detector recognizes, §4.1.2).
pub fn convolution_separable() -> Bench {
    let radius = 8i64;
    let row_terms: Vec<String> = (-radius..=radius)
        .map(|o| {
            let k = o + radius;
            if o < 0 {
                format!("peek(idx - {}) * taps[{k}]", -o)
            } else if o == 0 {
                format!("peek(idx) * taps[{k}]")
            } else {
                format!("peek(idx + {o}) * taps[{k}]")
            }
        })
        .collect();
    let col_terms: Vec<String> = (-radius..=radius)
        .map(|o| {
            let k = o + radius;
            if o < 0 {
                format!("peek(idx - {} * cols) * taps[{k}]", -o)
            } else if o == 0 {
                format!("peek(idx) * taps[{k}]")
            } else {
                format!("peek(idx + {o} * cols) * taps[{k}]")
            }
        })
        .collect();
    let src = format!(
        r#"pipeline ConvSep(rows, cols) {{
            actor RowConv(pop rows*cols, push rows*cols, peek rows*cols) {{
                state taps[17];
                for idx in 0..rows*cols {{
                    c = idx % cols;
                    if (c >= 8 && c < cols - 8) {{
                        push({row});
                    }} else {{
                        push(0.0);
                    }}
                }}
            }}
            actor ColConv(pop rows*cols, push rows*cols, peek rows*cols) {{
                state taps[17];
                for idx in 0..rows*cols {{
                    r = idx / cols;
                    if (r >= 8 && r < rows - 8) {{
                        push({col});
                    }} else {{
                        push(0.0);
                    }}
                }}
            }}
        }}"#,
        row = row_terms.join(" + "),
        col = col_terms.join(" + "),
    );
    Bench {
        name: "Convolution Separable",
        program: parse_program(&src).expect("generated convolution source parses"),
    }
}

/// The TMV case study (§5.2.1): one dot product per matrix row against a
/// bound vector.
pub fn tmv() -> Bench {
    bench(
        "TMV",
        r#"pipeline TMV(rows, cols) {
            actor RowDot(pop cols, push 1) {
                state x[cols];
                acc = 0.0;
                for i in 0..cols {
                    acc = acc + pop() * x[i];
                }
                push(acc);
            }
        }"#,
    )
}

/// SDK BlackScholes (input-insensitive set): input records `(S, X, T)`,
/// outputs `(call, put)`; rate and volatility live in state.
pub fn black_scholes() -> Bench {
    bench(
        "BlackScholes",
        r#"pipeline BlackScholes(N) {
            actor Price(pop 3, push 2) {
                state rv[2];
                s = pop();
                x = pop();
                t = pop();
                r = rv[0];
                v = rv[1];
                sq = sqrt(t);
                d1 = (log(s / x) + (r + 0.5 * v * v) * t) / (v * sq);
                d2 = d1 - v * sq;

                k1 = 1.0 / (1.0 + 0.2316419 * abs(d1));
                p1 = k1 * (0.31938153 + k1 * (0.0 - 0.356563782 + k1 * (1.781477937 + k1 * (0.0 - 1.821255978 + k1 * 1.330274429))));
                w1 = 1.0 - exp(0.0 - 0.5 * d1 * d1) / sqrt(6.28318530718) * p1;
                nd1 = select(d1 < 0.0, 1.0 - w1, w1);

                k2 = 1.0 / (1.0 + 0.2316419 * abs(d2));
                p2 = k2 * (0.31938153 + k2 * (0.0 - 0.356563782 + k2 * (1.781477937 + k2 * (0.0 - 1.821255978 + k2 * 1.330274429))));
                w2 = 1.0 - exp(0.0 - 0.5 * d2 * d2) / sqrt(6.28318530718) * p2;
                nd2 = select(d2 < 0.0, 1.0 - w2, w2);

                disc = exp(0.0 - r * t);
                push(s * nd1 - x * disc * nd2);
                push(x * disc * (1.0 - nd2) - s * (1.0 - nd1));
            }
        }"#,
    )
}

/// SDK vectorAdd: input `zip2(a, b)`.
pub fn vector_add() -> Bench {
    bench(
        "VectorAdd",
        r#"pipeline VectorAdd(N) {
            actor Add(pop 2, push 1) {
                a = pop();
                b = pop();
                push(a + b);
            }
        }"#,
    )
}

/// CUBLAS saxpy: input `zip2(x, y)`, scalar `a` in state.
pub fn saxpy() -> Bench {
    bench(
        "Saxpy",
        r#"pipeline Saxpy(N) {
            actor Axpy(pop 2, push 1) {
                state a[1];
                x = pop();
                y = pop();
                push(a[0] * x + y);
            }
        }"#,
    )
}

/// CUBLAS sscal.
pub fn sscal() -> Bench {
    bench(
        "Sscal",
        r#"pipeline Sscal(N) {
            actor Scal(pop 1, push 1) {
                state a[1];
                push(a[0] * pop());
            }
        }"#,
    )
}

/// CUBLAS scopy (a pure transfer actor).
pub fn scopy() -> Bench {
    bench(
        "Scopy",
        "pipeline Scopy(N) { actor Copy(pop 1, push 1) { push(pop()); } }",
    )
}

/// CUBLAS sswap: input `zip2(x, y)`, output `zip2(y, x)`.
pub fn sswap() -> Bench {
    bench(
        "Sswap",
        r#"pipeline Sswap(N) {
            actor Swap(pop 2, push 2) {
                x = pop();
                y = pop();
                push(y);
                push(x);
            }
        }"#,
    )
}

/// CUBLAS srot: Givens rotation, `(c, s)` in state.
pub fn srot() -> Bench {
    bench(
        "Srot",
        r#"pipeline Srot(N) {
            actor Rot(pop 2, push 2) {
                state cs[2];
                x = pop();
                y = pop();
                push(cs[0] * x + cs[1] * y);
                push(cs[0] * y - cs[1] * x);
            }
        }"#,
    )
}

/// SDK DCT8x8, in separable form over whole tiles: `Z = C·(X·Cᵀ)`. Each
/// actor fires once per 8x8 tile with a single flattened coefficient
/// loop, which intra-actor parallelization (§4.2.2, peek-window form)
/// splits into one thread per coefficient — the SDK kernel's granularity.
pub fn dct8x8() -> Bench {
    bench(
        "DCT",
        r#"pipeline Dct(N) {
            actor RowPass(pop 64, push 64, peek 64) {
                for rv in 0..64 {
                    r = rv / 8;
                    v = rv % 8;
                    acc = 0.0;
                    for c in 0..8 {
                        acc = acc + peek(r * 8 + c) * cos(3.14159265359 * (2.0 * c + 1.0) * v / 16.0);
                    }
                    cv = select(v == 0, sqrt(1.0 / 8.0), sqrt(2.0 / 8.0));
                    push(cv * acc);
                }
            }
            actor ColPass(pop 64, push 64, peek 64) {
                for uv in 0..64 {
                    u = uv / 8;
                    v = uv % 8;
                    acc = 0.0;
                    for r in 0..8 {
                        acc = acc + peek(r * 8 + v) * cos(3.14159265359 * (2.0 * r + 1.0) * u / 16.0);
                    }
                    cu = select(u == 0, sqrt(1.0 / 8.0), sqrt(2.0 / 8.0));
                    push(cu * acc);
                }
            }
        }"#,
    )
}

/// SDK quasirandomGenerator surrogate: Weyl sequence of the input indices.
pub fn quasirandom() -> Bench {
    bench(
        "QuasiRandomGenerator",
        r#"pipeline Quasirandom(N) {
            actor Weyl(pop 1, push 1) {
                x = pop() * 0.618034;
                push(x - floor(x));
            }
        }"#,
    )
}

/// All benchmarks of the input-sensitive study (Figure 9), in the paper's
/// order.
pub fn figure9_benches() -> Vec<Bench> {
    vec![
        isamax(),
        snrm2(),
        sasum(),
        sdot(),
        scalar_product(),
        monte_carlo(),
        ocean(),
        convolution_separable(),
    ]
}

/// All benchmarks of the input-insensitive study (§5.3).
pub fn insensitive_benches() -> Vec<Bench> {
    vec![
        black_scholes(),
        vector_add(),
        saxpy(),
        scopy(),
        sscal(),
        sswap(),
        srot(),
        dct8x8(),
        quasirandom(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamir::interp::Interpreter;

    #[test]
    fn all_benchmarks_parse() {
        let mut names = Vec::new();
        for b in figure9_benches().into_iter().chain(insensitive_benches()) {
            names.push(b.name);
        }
        assert_eq!(names.len(), 17);
    }

    #[test]
    fn zip_helpers() {
        assert_eq!(zip2(&[1.0, 2.0], &[3.0, 4.0]), vec![1.0, 3.0, 2.0, 4.0]);
        assert_eq!(zip3(&[1.0], &[2.0], &[3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn sdot_interpreter_matches_reference() {
        let b = sdot();
        let x: Vec<f32> = (0..32).map(|i| i as f32).collect();
        let y: Vec<f32> = (0..32).map(|i| (i % 5) as f32).collect();
        let mut it = Interpreter::new(&b.program);
        it.bind_param("N", 32);
        let out = it.run(&zip2(&x, &y)).unwrap();
        assert_eq!(out[0], adaptic_baselines::reference::dot(&x, &y));
    }

    #[test]
    fn black_scholes_dsl_matches_reference() {
        let b = black_scholes();
        let (s, x, t, r, v) = (105.0f32, 100.0f32, 0.75f32, 0.02f32, 0.3f32);
        let mut it = Interpreter::new(&b.program);
        it.bind_param("N", 1);
        it.bind_state("Price", "rv", vec![r, v]);
        let out = it.run(&[s, x, t]).unwrap();
        let (call, put) = adaptic_baselines::reference::black_scholes(s, x, t, r, v);
        assert!((out[0] - call).abs() < 1e-3, "{} vs {call}", out[0]);
        assert!((out[1] - put).abs() < 1e-3, "{} vs {put}", out[1]);
    }

    #[test]
    fn dct_dsl_matches_reference() {
        let b = dct8x8();
        let tile: Vec<f32> = (0..64).map(|i| ((i * 7) % 13) as f32 - 6.0).collect();
        let mut it = Interpreter::new(&b.program);
        it.bind_param("N", 1);
        let out = it.run(&tile).unwrap();
        let expected = adaptic_baselines::reference::dct8x8(&tile);
        for i in 0..64 {
            assert!((out[i] - expected[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn monte_carlo_dsl_matches_baseline_kernel_math() {
        let b = monte_carlo();
        let params = [100.0f32, 95.0, 0.5, 0.02, 0.3];
        let paths = 64usize;
        let stream = monte_carlo_stream(&params, 1, paths);
        let mut it = Interpreter::new(&b.program);
        it.bind_param("P", paths as i64);
        let out = it.run(&stream).unwrap();
        let expected: f32 = (0..paths)
            .map(|p| {
                adaptic_baselines::sdk::mc_payoff(
                    params[0],
                    params[1],
                    params[2],
                    params[3],
                    params[4],
                    adaptic_baselines::sdk::mc_sample(0, p),
                )
            })
            .sum::<f32>()
            / paths as f32;
        assert!((out[0] - expected).abs() < 1e-3 * expected.abs().max(1.0));
    }

    #[test]
    fn conv_separable_dsl_matches_reference() {
        let b = convolution_separable();
        let (rows, cols) = (20usize, 24usize);
        let input: Vec<f32> = (0..rows * cols).map(|i| ((i * 3) % 11) as f32).collect();
        let taps: Vec<f32> = (0..17)
            .map(|k| 1.0 / (1.0 + (k as f32 - 8.0).abs()))
            .collect();
        let mut it = Interpreter::new(&b.program);
        it.bind_param("rows", rows as i64);
        it.bind_param("cols", cols as i64);
        it.bind_state("RowConv", "taps", taps.clone());
        it.bind_state("ColConv", "taps", taps.clone());
        let out = it.run(&input).unwrap();
        let mid = adaptic_baselines::reference::conv_rows(&input, rows, cols, &taps, 8);
        let expected = adaptic_baselines::reference::conv_cols(&mid, rows, cols, &taps, 8);
        for i in 0..rows * cols {
            assert!(
                (out[i] - expected[i]).abs() <= 1e-3 * expected[i].abs().max(1.0),
                "at {i}: {} vs {}",
                out[i],
                expected[i]
            );
        }
    }
}
