//! The CUBLAS transposed matrix–vector multiplication baseline — the
//! paper's Figure 1 benchmark.
//!
//! The strategy is fixed: **one block per matrix row**, 128 threads per
//! block, each block computing the dot product of its row with the vector
//! via a grid-stride loop plus shared-memory tree. The launch geometry is
//! therefore a direct function of the matrix dimensions:
//!
//! * few rows × many columns ⇒ only a handful of blocks ⇒ most SMs idle
//!   (Figure 1's *low utilization* region);
//! * balanced shapes ⇒ efficient execution;
//! * many rows × few columns ⇒ an enormous grid of blocks that each do a
//!   trivial dot product ⇒ the per-block overhead dominates (Figure 1's
//!   *high overhead* region).

use gpu_sim::{
    BlockCtx, BufId, DeviceSpec, ExecMode, ExecPolicy, GlobalMem, Kernel, LaunchConfig, StatsCache,
};

use crate::util::{launch_timed_opts, TimedRun};

/// Threads per block of the fixed strategy.
pub const TMV_BLOCK: u32 = 128;

struct CublasTmvKernel {
    a: BufId,
    x: BufId,
    y: BufId,
    rows: usize,
    cols: usize,
}

impl Kernel for CublasTmvKernel {
    fn name(&self) -> &str {
        "cublas_tmv"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig::new(self.rows as u32, TMV_BLOCK, TMV_BLOCK)
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        let row = block as usize;
        // Phase 1: strided partial dot products.
        for tid in ctx.threads() {
            let mut acc = 0.0f32;
            let mut c = tid as usize;
            while c < self.cols {
                let a = ctx.ld_global(0, tid, self.a, row * self.cols + c);
                let x = ctx.ld_global(1, tid, self.x, c);
                acc += a * x;
                ctx.compute(tid, 2);
                ctx.count_flops(2);
                c += TMV_BLOCK as usize;
            }
            ctx.st_shared(2, tid, tid as usize, acc);
        }
        ctx.sync();
        // Phase 2: tree reduction.
        let warp = ctx.warp_size() as usize;
        let mut active = (TMV_BLOCK / 2) as usize;
        while active >= 1 {
            for lane in 0..active {
                let t = lane as u32;
                let a = ctx.ld_shared(3, t, lane);
                let b = ctx.ld_shared(3, t, lane + active);
                ctx.st_shared(4, t, lane, a + b);
                ctx.compute(t, 1);
            }
            if active >= warp {
                ctx.sync();
            }
            active /= 2;
        }
        let v = ctx.ld_shared(3, 0, 0);
        ctx.st_global(5, 0, self.y, row, v);
    }
}

/// Run the CUBLAS-style TMV: `y[r] = dot(A[r, :], x)` for each row.
pub fn tmv(
    device: &DeviceSpec,
    a: &[f32],
    x: &[f32],
    rows: usize,
    cols: usize,
    mode: ExecMode,
) -> TimedRun {
    tmv_with(device, a, x, rows, cols, mode, ExecPolicy::Serial, None)
}

/// [`tmv`] with an explicit engine policy and an optional launch-stats
/// memoization cache.
///
/// The cache key includes the `(rows, cols)` shape, so a sweep that
/// revisits a shape skips the simulation entirely and reuses the memoized
/// statistics — on a hit `run.output` holds the *unexecuted* buffer
/// (zeros), so pair a cache only with timing-oriented modes like
/// [`ExecMode::SampledExec`].
#[allow(clippy::too_many_arguments)]
pub fn tmv_with(
    device: &DeviceSpec,
    a: &[f32],
    x: &[f32],
    rows: usize,
    cols: usize,
    mode: ExecMode,
    policy: ExecPolicy,
    cache: Option<&dyn StatsCache>,
) -> TimedRun {
    assert_eq!(a.len(), rows * cols, "matrix shape mismatch");
    assert_eq!(x.len(), cols, "vector length mismatch");
    let mut mem = GlobalMem::new();
    let ab = mem.alloc_from(a);
    let xb = mem.alloc_from(x);
    let yb = mem.alloc(rows);
    let mut run = TimedRun::default();
    let k = CublasTmvKernel {
        a: ab,
        x: xb,
        y: yb,
        rows,
        cols,
    };
    let cache = cache.map(|c| (c, (rows as u64, cols as u64)));
    launch_timed_opts(device, &mut mem, &k, mode, policy, cache, &mut run);
    run.output = mem.read(yb).to_vec();
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn device() -> DeviceSpec {
        DeviceSpec::tesla_c2050()
    }

    fn matrix(rows: usize, cols: usize) -> (Vec<f32>, Vec<f32>) {
        let a: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 13) % 7) as f32 - 3.0)
            .collect();
        let x: Vec<f32> = (0..cols).map(|i| ((i * 5) % 9) as f32 - 4.0).collect();
        (a, x)
    }

    #[test]
    fn tmv_matches_reference_across_shapes() {
        let d = device();
        for (rows, cols) in [(4usize, 2048usize), (64, 64), (1024, 8)] {
            let (a, x) = matrix(rows, cols);
            let run = tmv(&d, &a, &x, rows, cols, ExecMode::Full);
            let expected = reference::tmv(&a, &x, rows, cols);
            for (r, &exp) in expected.iter().enumerate() {
                assert!(
                    (run.output[r] - exp).abs() <= 1e-2 * exp.abs().max(1.0),
                    "{rows}x{cols} row {r}: {} vs {}",
                    run.output[r],
                    exp
                );
            }
        }
    }

    #[test]
    fn geometry_is_tied_to_rows() {
        let d = device();
        let (a, x) = matrix(16, 256);
        let run = tmv(&d, &a, &x, 16, 256, ExecMode::Full);
        assert_eq!(run.kernels[0].config.grid_dim, 16);
        assert_eq!(run.kernels[0].config.block_dim, TMV_BLOCK);
    }

    #[test]
    fn comfort_zone_shape_beats_extremes() {
        // Same element count, three shapes: the balanced shape must be the
        // fastest per the timing model — Figure 1's story.
        let d = device();
        let total = 1 << 18;
        let mut times = Vec::new();
        for rows in [4usize, 512, 65536] {
            let cols = total / rows;
            let (a, x) = matrix(rows, cols);
            let run = tmv(&d, &a, &x, rows, cols, ExecMode::SampledStats(128));
            times.push(run.time_us);
        }
        assert!(
            times[1] < times[0] && times[1] < times[2],
            "balanced shape should win: {times:?}"
        );
    }
}
