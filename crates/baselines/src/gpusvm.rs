//! GPUSVM-style nonlinear SVM trainer (§5.2.3 of the paper).
//!
//! Reproduces the structure of Catanzaro et al.'s GPUSVM trainer: each
//! iteration selects the most violating sample pair with GPU reductions,
//! computes the two RBF kernel rows with a map kernel over all samples,
//! and updates the gradient with another map. The defining feature for
//! the paper's Figure 12 is the **application-specific kernel-row cache**:
//! GPUSVM keeps computed kernel rows in otherwise-unused GPU memory, so
//! datasets that revisit the same working-set rows (Adult, USPS) skip the
//! most expensive kernel entirely — an optimization outside Adaptic's
//! compiler-level scope, which is why Adaptic reaches only ~65% of GPUSVM
//! on average.
//!
//! The trainer is a deterministic kernel-adatron variant: simple enough to
//! reproduce bit-for-bit on the CPU (see [`train_reference`]) yet with the
//! same kernel structure as the real system.

use std::collections::HashMap;

use gpu_sim::{BlockCtx, BufId, DeviceSpec, ExecMode, GlobalMem, Kernel, LaunchConfig};

use crate::util::{launch_timed, TimedRun};

/// Training configuration.
#[derive(Debug, Clone, Copy)]
pub struct SvmConfig {
    /// RBF width.
    pub gamma: f32,
    /// Box constraint.
    pub c: f32,
    /// Learning rate of the adatron update.
    pub lr: f32,
    /// Training iterations (two kernel rows each).
    pub iterations: usize,
    /// Kernel-row cache capacity (0 disables the cache — the Adaptic
    /// version cannot express it).
    pub cache_rows: usize,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            gamma: 0.05,
            c: 1.0,
            lr: 0.5,
            iterations: 16,
            cache_rows: 64,
        }
    }
}

/// Result of a training run.
#[derive(Debug, Clone)]
pub struct SvmRun {
    /// Final dual coefficients.
    pub alphas: Vec<f32>,
    /// Device time (µs).
    pub time_us: f64,
    /// Kernel launches performed.
    pub launches: usize,
    /// Kernel-row cache hits.
    pub cache_hits: usize,
}

/// RBF kernel row kernel: `out[s] = exp(-gamma * ||x_i - x_s||^2)` with
/// feature-major (column-major) data for coalesced access.
struct KernelRow {
    data: BufId, // d x n, feature-major
    out: BufId,
    row: usize,
    n: usize,
    d: usize,
    gamma: f32,
}

impl Kernel for KernelRow {
    fn name(&self) -> &str {
        "gpusvm_kernel_row"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig::new((self.n as u32).div_ceil(128), 128, 0)
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        for tid in ctx.threads() {
            let s = (block * 128 + tid) as usize;
            if s >= self.n {
                continue;
            }
            let mut dist = 0.0f32;
            for j in 0..self.d {
                let xi = ctx.ld_global(0, tid, self.data, j * self.n + self.row);
                let xs = ctx.ld_global(1, tid, self.data, j * self.n + s);
                let diff = xi - xs;
                dist += diff * diff;
                ctx.compute(tid, 3);
                ctx.count_flops(3);
            }
            ctx.st_global(2, tid, self.out, s, (-self.gamma * dist).exp());
            ctx.compute(tid, 9);
            ctx.count_flops(9);
        }
    }
}

/// Gradient update kernel: `f[s] += delta * y_i * k[s]`.
struct GradUpdate {
    f: BufId,
    k: BufId,
    n: usize,
    scale: f32,
}

impl Kernel for GradUpdate {
    fn name(&self) -> &str {
        "gpusvm_grad_update"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig::new((self.n as u32).div_ceil(256), 256, 0)
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        for tid in ctx.threads() {
            let s = (block * 256 + tid) as usize;
            if s >= self.n {
                continue;
            }
            let fv = ctx.ld_global(0, tid, self.f, s);
            let kv = ctx.ld_global(1, tid, self.k, s);
            ctx.st_global(2, tid, self.f, s, fv + self.scale * kv);
            ctx.compute(tid, 2);
            ctx.count_flops(2);
        }
    }
}

/// Violation reduction kernel: block maxima of `y[s] * f[s]` written to
/// partials (GPUSVM's working-set selection reduction).
struct ViolationReduce {
    f: BufId,
    y: BufId,
    partials: BufId,
    n: usize,
    negate: bool,
}

impl Kernel for ViolationReduce {
    fn name(&self) -> &str {
        "gpusvm_select"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig::new(64, 128, 128)
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        let stride = 64 * 128;
        for tid in ctx.threads() {
            let mut best = f32::NEG_INFINITY;
            let mut i = (block * 128 + tid) as usize;
            while i < self.n {
                let fv = ctx.ld_global(0, tid, self.f, i);
                let yv = ctx.ld_global(1, tid, self.y, i);
                let v = if self.negate { -yv * fv } else { yv * fv };
                best = best.max(v);
                ctx.compute(tid, 2);
                i += stride;
            }
            ctx.st_shared(2, tid, tid as usize, best);
        }
        ctx.sync();
        let warp = ctx.warp_size() as usize;
        let mut active = 64usize;
        while active >= 1 {
            for lane in 0..active {
                let t = lane as u32;
                let a = ctx.ld_shared(3, t, lane);
                let b = ctx.ld_shared(3, t, lane + active);
                ctx.st_shared(4, t, lane, a.max(b));
                ctx.compute(t, 1);
            }
            if active >= warp {
                ctx.sync();
            }
            active /= 2;
        }
        let v = ctx.ld_shared(3, 0, 0);
        ctx.st_global(5, 0, self.partials, block as usize, v);
    }
}

/// Host-side state of the deterministic adatron step.
fn select_and_update(
    alphas: &mut [f32],
    f: &[f32],
    y: &[f32],
    cfg: &SvmConfig,
    pick_max: bool,
) -> (usize, f32) {
    // Most violating sample: the one whose margin y*f is smallest
    // (pick_max=false) or largest among bounded ones. Samples whose dual
    // variable cannot move in the violation's direction (alpha pinned at 0
    // or C) are excluded, as in SMO working-set selection — otherwise the
    // search would stall on a saturated sample.
    let mut best = 0usize;
    let mut best_v = f32::INFINITY;
    for s in 0..f.len() {
        let margin = y[s] * f[s];
        let step = cfg.lr * (1.0 - margin);
        let movable = if step > 0.0 {
            alphas[s] < cfg.c
        } else {
            alphas[s] > 0.0
        };
        if !movable {
            continue;
        }
        let v = if pick_max { -margin } else { margin };
        if v < best_v {
            best_v = v;
            best = s;
        }
    }
    let old = alphas[best];
    let updated = (old + cfg.lr * (1.0 - y[best] * f[best])).clamp(0.0, cfg.c);
    let delta = updated - old;
    alphas[best] = updated;
    (best, delta)
}

/// Train with the GPUSVM strategy (kernel-row cache enabled by config).
///
/// `data` is sample-major `n x d`; it is transposed internally to the
/// feature-major device layout. Labels must be ±1.
pub fn train(
    device: &DeviceSpec,
    data: &[f32],
    labels: &[f32],
    n: usize,
    d: usize,
    cfg: &SvmConfig,
    mode: ExecMode,
) -> SvmRun {
    assert_eq!(data.len(), n * d);
    assert_eq!(labels.len(), n);
    let mut mem = GlobalMem::new();
    // Feature-major transpose (done host-side at load time, like GPUSVM).
    let mut colmajor = vec![0.0f32; n * d];
    for s in 0..n {
        for j in 0..d {
            colmajor[j * n + s] = data[s * d + j];
        }
    }
    let db = mem.alloc_from(&colmajor);
    let yb = mem.alloc_from(labels);
    // f starts at -y (gradient of the dual at alpha = 0).
    let f0: Vec<f32> = labels.iter().map(|y| -y).collect();
    let fb = mem.alloc_from(&f0);
    let kb = mem.alloc(n);
    let partials = mem.alloc(64);

    let mut run = TimedRun::default();
    let mut alphas = vec![0.0f32; n];
    let mut f_host = f0;
    let mut cache: HashMap<usize, Vec<f32>> = HashMap::new();
    let mut cache_hits = 0usize;
    // Authoritative kernel row computed on the host: keeps the training
    // trajectory exact even when kernels run in a sampled mode for
    // timing-only sweeps.
    let host_row = |i: usize| -> Vec<f32> {
        (0..n)
            .map(|s| {
                let dist: f32 = (0..d)
                    .map(|j| {
                        let diff = data[i * d + j] - data[s * d + j];
                        diff * diff
                    })
                    .sum();
                (-cfg.gamma * dist).exp()
            })
            .collect()
    };

    for it in 0..cfg.iterations {
        for phase in 0..2 {
            // Selection reduction on the GPU (value only; the index scan
            // runs on the host as in our simplified GPUSVM).
            let sel = ViolationReduce {
                f: fb,
                y: yb,
                partials,
                n,
                negate: phase == 1,
            };
            launch_timed(device, &mut mem, &sel, mode, &mut run);
            let (idx, delta) = select_and_update(&mut alphas, &f_host, labels, cfg, phase == 1);
            if delta == 0.0 {
                continue;
            }
            // Kernel row: cached or computed (the device kernel is
            // launched for the timing; the host mirror keeps state exact).
            let row = if let Some(row) = cache.get(&idx) {
                cache_hits += 1;
                row.clone()
            } else {
                let kr = KernelRow {
                    data: db,
                    out: kb,
                    row: idx,
                    n,
                    d,
                    gamma: cfg.gamma,
                };
                launch_timed(device, &mut mem, &kr, mode, &mut run);
                let row = host_row(idx);
                if cfg.cache_rows > 0 {
                    if cache.len() >= cfg.cache_rows {
                        // Evict an arbitrary (oldest-inserted-ish) row.
                        if let Some(&k) = cache.keys().next() {
                            cache.remove(&k);
                        }
                    }
                    cache.insert(idx, row.clone());
                }
                row
            };
            // Gradient update.
            let scale = delta * labels[idx];
            let gu = GradUpdate {
                f: fb,
                k: kb,
                n,
                scale,
            };
            launch_timed(device, &mut mem, &gu, mode, &mut run);
            for s in 0..n {
                f_host[s] += scale * row[s];
            }
        }
        let _ = it;
    }

    SvmRun {
        alphas,
        time_us: run.time_us,
        launches: run.kernels.len(),
        cache_hits,
    }
}

/// CPU reference of exactly the same training rule (for differential
/// tests of both the baseline and the Adaptic-compiled version).
pub fn train_reference(
    data: &[f32],
    labels: &[f32],
    n: usize,
    d: usize,
    cfg: &SvmConfig,
) -> Vec<f32> {
    let mut alphas = vec![0.0f32; n];
    let mut f: Vec<f32> = labels.iter().map(|y| -y).collect();
    let kernel_row = |i: usize| -> Vec<f32> {
        (0..n)
            .map(|s| {
                let dist: f32 = (0..d)
                    .map(|j| {
                        let diff = data[i * d + j] - data[s * d + j];
                        diff * diff
                    })
                    .sum();
                (-cfg.gamma * dist).exp()
            })
            .collect()
    };
    for _ in 0..cfg.iterations {
        for phase in 0..2 {
            let (idx, delta) = select_and_update(&mut alphas, &f, labels, cfg, phase == 1);
            if delta == 0.0 {
                continue;
            }
            let row = kernel_row(idx);
            let scale = delta * labels[idx];
            for s in 0..n {
                f[s] += scale * row[s];
            }
        }
    }
    alphas
}

/// Synthetic dataset with the shape of a published benchmark set and a
/// controllable clustering factor: low `spread` clusters samples tightly,
/// so selection revisits rows and the cache hit-rate climbs (the paper's
/// Adult/USPS behaviour).
pub fn synth_dataset(n: usize, d: usize, spread: f32, seed: u64) -> (Vec<f32>, Vec<f32>) {
    // Small deterministic LCG; no external entropy needed.
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
    };
    let mut data = vec![0.0f32; n * d];
    let mut labels = vec![0.0f32; n];
    for s in 0..n {
        let class = if s % 2 == 0 { 1.0 } else { -1.0 };
        labels[s] = class;
        for j in 0..d {
            let center = class * if j % 3 == 0 { 1.0 } else { -0.5 };
            data[s * d + j] = center + spread * next();
        }
    }
    (data, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceSpec {
        DeviceSpec::tesla_c2050()
    }

    #[test]
    fn gpu_training_matches_cpu_reference() {
        let (data, labels) = synth_dataset(200, 16, 0.3, 7);
        let cfg = SvmConfig {
            iterations: 8,
            cache_rows: 0,
            ..SvmConfig::default()
        };
        let gpu = train(&device(), &data, &labels, 200, 16, &cfg, ExecMode::Full);
        let cpu = train_reference(&data, &labels, 200, 16, &cfg);
        for (a, b) in gpu.alphas.iter().zip(&cpu) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn cache_reduces_launches_not_results() {
        let (data, labels) = synth_dataset(300, 8, 0.05, 3); // tight clusters
        let base_cfg = SvmConfig {
            iterations: 24,
            cache_rows: 0,
            ..SvmConfig::default()
        };
        let cached_cfg = SvmConfig {
            cache_rows: 64,
            ..base_cfg
        };
        let d = device();
        let uncached = train(&d, &data, &labels, 300, 8, &base_cfg, ExecMode::Full);
        let cached = train(&d, &data, &labels, 300, 8, &cached_cfg, ExecMode::Full);
        assert_eq!(uncached.alphas, cached.alphas);
        assert!(
            cached.cache_hits > 0,
            "expected cache hits on clustered data"
        );
        assert!(cached.launches < uncached.launches);
        assert!(cached.time_us < uncached.time_us);
    }

    #[test]
    fn training_improves_margins() {
        let (data, labels) = synth_dataset(150, 12, 0.2, 11);
        let cfg = SvmConfig {
            iterations: 20,
            ..SvmConfig::default()
        };
        let run = train(&device(), &data, &labels, 150, 12, &cfg, ExecMode::Full);
        // Some support vectors must have been found.
        let active = run.alphas.iter().filter(|a| **a > 0.0).count();
        assert!(active > 0);
        assert!(run.time_us > 0.0);
    }

    #[test]
    fn synthetic_dataset_is_deterministic_and_labeled() {
        let (d1, l1) = synth_dataset(64, 4, 0.5, 42);
        let (d2, _) = synth_dataset(64, 4, 0.5, 42);
        assert_eq!(d1, d2);
        assert!(l1.iter().all(|y| *y == 1.0 || *y == -1.0));
    }
}
