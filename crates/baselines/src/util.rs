//! Shared helpers for baseline kernels.

use gpu_sim::{launch, DeviceSpec, ExecMode, GlobalMem, Kernel, KernelStats};
use perfmodel::estimate_stats;

/// Accumulated result of a multi-kernel baseline run.
#[derive(Debug, Clone, Default)]
pub struct TimedRun {
    /// Output values (meaning depends on the benchmark).
    pub output: Vec<f32>,
    /// Per-kernel statistics in launch order.
    pub kernels: Vec<KernelStats>,
    /// Estimated device time in microseconds (kernels + launch overheads).
    pub time_us: f64,
}

impl TimedRun {
    /// Total floating-point operations across kernels.
    pub fn flops(&self) -> f64 {
        self.kernels.iter().map(|k| k.totals.flops).sum()
    }

    /// Achieved GFLOPS under the estimated time.
    pub fn gflops(&self) -> f64 {
        if self.time_us > 0.0 {
            self.flops() / (self.time_us * 1e3)
        } else {
            0.0
        }
    }
}

/// Launch a kernel and fold its stats/time into `run`.
pub(crate) fn launch_timed(
    device: &DeviceSpec,
    mem: &mut GlobalMem,
    kernel: &dyn Kernel,
    mode: ExecMode,
    run: &mut TimedRun,
) {
    let stats = launch(device, mem, kernel, mode);
    run.time_us += estimate_stats(device, &stats).time_us;
    run.kernels.push(stats);
}

/// Largest power of two `<= x` (minimum 1).
pub(crate) fn prev_pow2(x: u32) -> u32 {
    if x == 0 {
        1
    } else {
        1 << (31 - x.leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prev_pow2_values() {
        assert_eq!(prev_pow2(0), 1);
        assert_eq!(prev_pow2(1), 1);
        assert_eq!(prev_pow2(2), 2);
        assert_eq!(prev_pow2(3), 2);
        assert_eq!(prev_pow2(255), 128);
        assert_eq!(prev_pow2(256), 256);
    }

    #[test]
    fn empty_run_has_zero_gflops() {
        let r = TimedRun::default();
        assert_eq!(r.gflops(), 0.0);
        assert_eq!(r.flops(), 0.0);
    }
}
