//! Shared helpers for baseline kernels.

use gpu_sim::{
    launch_with_policy, DeviceSpec, ExecMode, ExecPolicy, GlobalMem, Kernel, KernelStats,
    LaunchControl, ScratchPool, StatsCache,
};
use perfmodel::estimate_stats;

/// Accumulated result of a multi-kernel baseline run.
#[derive(Debug, Clone, Default)]
pub struct TimedRun {
    /// Output values (meaning depends on the benchmark).
    pub output: Vec<f32>,
    /// Per-kernel statistics in launch order.
    pub kernels: Vec<KernelStats>,
    /// Estimated device time in microseconds (kernels + launch overheads).
    pub time_us: f64,
}

impl TimedRun {
    /// Total floating-point operations across kernels.
    pub fn flops(&self) -> f64 {
        self.kernels.iter().map(|k| k.totals.flops).sum()
    }

    /// Achieved GFLOPS under the estimated time.
    pub fn gflops(&self) -> f64 {
        if self.time_us > 0.0 {
            self.flops() / (self.time_us * 1e3)
        } else {
            0.0
        }
    }
}

/// Launch a kernel serially and fold its stats/time into `run`.
pub(crate) fn launch_timed(
    device: &DeviceSpec,
    mem: &mut GlobalMem,
    kernel: &(dyn Kernel + Sync),
    mode: ExecMode,
    run: &mut TimedRun,
) {
    launch_timed_opts(device, mem, kernel, mode, ExecPolicy::Serial, None, run);
}

/// Launch a kernel under an explicit engine policy, optionally through a
/// launch-stats memoization cache, and fold its stats/time into `run`.
///
/// On a cache hit the kernel is *not* executed — `mem` keeps its prior
/// contents and only the memoized statistics/time accumulate, so a cache
/// belongs in timing-only sweeps (the benchmarks' `SampledExec` passes),
/// never in correctness checks. `dims` is the caller's input-shape
/// fingerprint for the cache key (e.g. `(rows, cols)`).
pub(crate) fn launch_timed_opts(
    device: &DeviceSpec,
    mem: &mut GlobalMem,
    kernel: &(dyn Kernel + Sync),
    mode: ExecMode,
    policy: ExecPolicy,
    cache: Option<(&dyn StatsCache, (u64, u64))>,
    run: &mut TimedRun,
) {
    let stats = match cache {
        Some((cache, dims)) => {
            cache
                .launch_cached(
                    device,
                    mem,
                    kernel,
                    mode,
                    policy,
                    dims,
                    &ScratchPool::new(),
                    LaunchControl::default(),
                )
                .expect("baseline sweeps launch without fault injection")
                .0
        }
        None => launch_with_policy(device, mem, kernel, mode, policy),
    };
    run.time_us += estimate_stats(device, &stats).time_us;
    run.kernels.push(stats);
}

/// Largest power of two `<= x` (minimum 1).
pub(crate) fn prev_pow2(x: u32) -> u32 {
    if x == 0 {
        1
    } else {
        1 << (31 - x.leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prev_pow2_values() {
        assert_eq!(prev_pow2(0), 1);
        assert_eq!(prev_pow2(1), 1);
        assert_eq!(prev_pow2(2), 2);
        assert_eq!(prev_pow2(3), 2);
        assert_eq!(prev_pow2(255), 128);
        assert_eq!(prev_pow2(256), 256);
    }

    #[test]
    fn empty_run_has_zero_gflops() {
        let r = TimedRun::default();
        assert_eq!(r.gflops(), 0.0);
        assert_eq!(r.flops(), 0.0);
    }
}
