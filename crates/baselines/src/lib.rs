//! `adaptic-baselines` — hand-optimized comparison kernels.
//!
//! These kernels reproduce the *published strategies* of the paper's
//! comparison targets — the CUBLAS 3.2 library and the NVIDIA CUDA SDK
//! samples — on the GPU simulator. Crucially, they are *input-unaware*:
//! launch geometry is a fixed function of the input dimensions (e.g. the
//! transposed matrix–vector product always launches one block per row),
//! which is exactly what produces the "comfort zone" behaviour of
//! Figure 1 that Adaptic's input-aware compilation removes.
//!
//! Modules:
//!
//! * [`blas1`] — CUBLAS level-1: `sdot`, `sasum`, `snrm2`, `isamax`, and
//!   the map routines `saxpy`, `sscal`, `scopy`, `sswap`, `srot`;
//! * [`tmv`] — the CUBLAS transposed matrix–vector product (`sgemv('T')`),
//!   the paper's running case study;
//! * [`sdk`] — SDK samples: scalarProd, MonteCarlo, convolutionSeparable,
//!   oceanFFT(-like), BlackScholes, vectorAdd, DCT8x8, quasirandom,
//!   histogram64;
//! * [`gpusvm`] — the GPUSVM trainer with its application-specific
//!   kernel-row cache (§5.2.3);
//! * [`reference`] — CPU reference implementations used as the golden
//!   model in tests.

pub mod blas1;
pub mod gpusvm;
pub mod reference;
pub mod sdk;
pub mod tmv;
pub mod util;

pub use util::TimedRun;
