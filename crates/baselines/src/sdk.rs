//! NVIDIA CUDA SDK sample baselines.
//!
//! Each function mirrors the published sample's *fixed* strategy:
//!
//! * [`scalar_product`] — one 256-thread block per vector pair (good for
//!   many pairs, terrible for a few huge pairs — the §5.1 result);
//! * [`monte_carlo`] — two pre-tuned kernels with a size-based switch (the
//!   sample the paper calls "originally input portable");
//! * [`convolution_separable`] — row + column passes with fixed tiles and
//!   radius 8;
//! * [`ocean_fft`] — spectrum-scaling map + one smoothing pass with a
//!   fixed tile (our surrogate for the SDK's ocean surface synthesis;
//!   the paper exercises its neighboring-access actor);
//! * [`black_scholes`], [`vector_add`], [`dct8x8`], [`quasirandom`],
//!   [`histogram64`] — the input-insensitive set of §5.3.

use gpu_sim::{BlockCtx, BufId, DeviceSpec, ExecMode, GlobalMem, Kernel, LaunchConfig};

use crate::reference;
use crate::util::{launch_timed, prev_pow2, TimedRun};

// ---------------------------------------------------------------- scalarProd

struct ScalarProdKernel {
    x: BufId,
    y: BufId,
    out: BufId,
    n_pairs: usize,
    elements: usize,
}

impl Kernel for ScalarProdKernel {
    fn name(&self) -> &str {
        "sdk_scalar_prod"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig::new(self.n_pairs as u32, 256, 256)
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        let pair = block as usize;
        let base = pair * self.elements;
        for tid in ctx.threads() {
            let mut acc = 0.0f32;
            let mut i = tid as usize;
            while i < self.elements {
                let a = ctx.ld_global(0, tid, self.x, base + i);
                let b = ctx.ld_global(1, tid, self.y, base + i);
                acc += a * b;
                ctx.compute(tid, 2);
                ctx.count_flops(2);
                i += 256;
            }
            ctx.st_shared(2, tid, tid as usize, acc);
        }
        ctx.sync();
        let warp = ctx.warp_size() as usize;
        let mut active = 128usize;
        while active >= 1 {
            for lane in 0..active {
                let t = lane as u32;
                let a = ctx.ld_shared(3, t, lane);
                let b = ctx.ld_shared(3, t, lane + active);
                ctx.st_shared(4, t, lane, a + b);
                ctx.compute(t, 1);
            }
            if active >= warp {
                ctx.sync();
            }
            active /= 2;
        }
        let v = ctx.ld_shared(3, 0, 0);
        ctx.st_global(5, 0, self.out, pair, v);
    }
}

/// SDK scalarProd: dot products of `n_pairs` vector pairs, block per pair.
pub fn scalar_product(
    device: &DeviceSpec,
    x: &[f32],
    y: &[f32],
    n_pairs: usize,
    mode: ExecMode,
) -> TimedRun {
    assert_eq!(x.len(), y.len());
    assert_eq!(x.len() % n_pairs, 0);
    let elements = x.len() / n_pairs;
    let mut mem = GlobalMem::new();
    let xb = mem.alloc_from(x);
    let yb = mem.alloc_from(y);
    let out = mem.alloc(n_pairs);
    let mut run = TimedRun::default();
    let k = ScalarProdKernel {
        x: xb,
        y: yb,
        out,
        n_pairs,
        elements,
    };
    launch_timed(device, &mut mem, &k, mode, &mut run);
    run.output = mem.read(out).to_vec();
    run
}

// ---------------------------------------------------------------- MonteCarlo

/// Deterministic pseudo-path sample used by both the baseline and the
/// streaming version (so results can be compared exactly).
pub fn mc_sample(option: usize, path: usize) -> f32 {
    // A Weyl-style low-discrepancy point stretched to roughly N(0,1) via
    // a logit transform — deterministic and cheap.
    let u = reference::weyl((option * 977 + path + 1) as f32, 0.618_034);
    let u = u.clamp(1e-4, 1.0 - 1e-4);
    (u / (1.0 - u)).ln() * 0.607_93
}

/// Discounted payoff of one sampled path.
pub fn mc_payoff(s: f32, x: f32, t: f32, r: f32, v: f32, z: f32) -> f32 {
    let st = s * ((r - 0.5 * v * v) * t + v * t.sqrt() * z).exp();
    (st - x).max(0.0) * (-r * t).exp()
}

struct McBlockPerOption {
    params: BufId, // 5 floats per option: S, X, T, R, V
    out: BufId,
    n_options: usize,
    paths: usize,
}

fn block_tree_sum(ctx: &mut BlockCtx<'_>, block_dim: usize) {
    let warp = ctx.warp_size() as usize;
    let mut active = block_dim / 2;
    while active >= 1 {
        for lane in 0..active {
            let t = lane as u32;
            let a = ctx.ld_shared(30, t, lane);
            let b = ctx.ld_shared(30, t, lane + active);
            ctx.st_shared(31, t, lane, a + b);
            ctx.compute(t, 1);
        }
        if active >= warp {
            ctx.sync();
        }
        active /= 2;
    }
}

impl Kernel for McBlockPerOption {
    fn name(&self) -> &str {
        "sdk_montecarlo_block_per_option"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig::new(self.n_options as u32, 256, 256)
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        let opt = block as usize;
        let s = ctx.ld_global(0, 0, self.params, opt * 5);
        let x = ctx.ld_global(0, 0, self.params, opt * 5 + 1);
        let t = ctx.ld_global(0, 0, self.params, opt * 5 + 2);
        let r = ctx.ld_global(0, 0, self.params, opt * 5 + 3);
        let v = ctx.ld_global(0, 0, self.params, opt * 5 + 4);
        for tid in ctx.threads() {
            let mut acc = 0.0f32;
            let mut p = tid as usize;
            while p < self.paths {
                acc += mc_payoff(s, x, t, r, v, mc_sample(opt, p));
                ctx.compute(tid, 24);
                ctx.count_flops(24);
                p += 256;
            }
            ctx.st_shared(2, tid, tid as usize, acc);
        }
        ctx.sync();
        block_tree_sum(ctx, 256);
        let sum = ctx.ld_shared(3, 0, 0);
        ctx.st_global(5, 0, self.out, opt, sum / self.paths as f32);
    }
}

struct McWholeGrid {
    params: BufId,
    partials: BufId,
    option: usize,
    blocks: u32,
    paths: usize,
}

impl Kernel for McWholeGrid {
    fn name(&self) -> &str {
        "sdk_montecarlo_whole_grid"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig::new(self.blocks, 256, 256)
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        let opt = self.option;
        let s = ctx.ld_global(0, 0, self.params, opt * 5);
        let x = ctx.ld_global(0, 0, self.params, opt * 5 + 1);
        let t = ctx.ld_global(0, 0, self.params, opt * 5 + 2);
        let r = ctx.ld_global(0, 0, self.params, opt * 5 + 3);
        let v = ctx.ld_global(0, 0, self.params, opt * 5 + 4);
        let stride = self.blocks as usize * 256;
        for tid in ctx.threads() {
            let mut acc = 0.0f32;
            let mut p = block as usize * 256 + tid as usize;
            while p < self.paths {
                acc += mc_payoff(s, x, t, r, v, mc_sample(opt, p));
                ctx.compute(tid, 24);
                ctx.count_flops(24);
                p += stride;
            }
            ctx.st_shared(2, tid, tid as usize, acc);
        }
        ctx.sync();
        block_tree_sum(ctx, 256);
        let sum = ctx.ld_shared(3, 0, 0);
        ctx.st_global(5, 0, self.partials, block as usize, sum);
    }
}

/// SDK MonteCarlo: mean discounted payoff per option. The sample ships two
/// kernels and picks one from the option count — already input-portable,
/// which is why Adaptic merely matches it (§5.1).
pub fn monte_carlo(
    device: &DeviceSpec,
    params: &[f32],
    n_options: usize,
    paths: usize,
    mode: ExecMode,
) -> TimedRun {
    assert_eq!(params.len(), n_options * 5);
    let mut mem = GlobalMem::new();
    let pb = mem.alloc_from(params);
    let out = mem.alloc(n_options);
    let mut run = TimedRun::default();
    if n_options >= 2 * device.sm_count as usize {
        let k = McBlockPerOption {
            params: pb,
            out,
            n_options,
            paths,
        };
        launch_timed(device, &mut mem, &k, mode, &mut run);
        run.output = mem.read(out).to_vec();
    } else {
        // Few options: give each the whole device, then merge on host.
        let blocks = device.sm_count * device.max_blocks_per_sm;
        let partials = mem.alloc(blocks as usize);
        let mut output = Vec::with_capacity(n_options);
        for opt in 0..n_options {
            let k = McWholeGrid {
                params: pb,
                partials,
                option: opt,
                blocks,
                paths,
            };
            launch_timed(device, &mut mem, &k, mode, &mut run);
            let sum: f32 = mem.read(partials).iter().sum();
            output.push(sum / paths as f32);
        }
        run.output = output;
    }
    run
}

// ----------------------------------------------------- convolutionSeparable

/// Convolution radius of the SDK sample.
pub const CONV_RADIUS: usize = 8;

struct ConvRowKernel {
    input: BufId,
    taps: BufId,
    output: BufId,
    rows: usize,
    cols: usize,
    tile: usize,
}

impl Kernel for ConvRowKernel {
    fn name(&self) -> &str {
        "sdk_conv_rows"
    }

    fn config(&self) -> LaunchConfig {
        let tiles_per_row = self.cols.div_ceil(self.tile);
        LaunchConfig::new(
            (self.rows * tiles_per_row) as u32,
            self.tile as u32,
            (self.tile + 2 * CONV_RADIUS) as u32,
        )
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        let tiles_per_row = self.cols.div_ceil(self.tile);
        let row = block as usize / tiles_per_row;
        let c0 = (block as usize % tiles_per_row) * self.tile;
        let ext = self.tile + 2 * CONV_RADIUS;
        // Stage the row segment + halo.
        let mut base = 0usize;
        while base < ext {
            for tid in ctx.threads() {
                let e = base + tid as usize;
                if e >= ext {
                    continue;
                }
                let c = c0 as i64 - CONV_RADIUS as i64 + e as i64;
                let v = if c >= 0 && (c as usize) < self.cols {
                    ctx.ld_global(0, tid, self.input, row * self.cols + c as usize)
                } else {
                    0.0
                };
                ctx.st_shared(1, tid, e, v);
            }
            base += self.tile;
        }
        ctx.sync();
        for tid in ctx.threads() {
            let c = c0 + tid as usize;
            if c >= self.cols {
                continue;
            }
            let mut acc = 0.0f32;
            let interior = c >= CONV_RADIUS && c + CONV_RADIUS < self.cols;
            if interior {
                for k in 0..(2 * CONV_RADIUS + 1) {
                    let tap = ctx.ld_global(2, tid, self.taps, k);
                    let v = ctx.ld_shared(3, tid, tid as usize + k);
                    acc += tap * v;
                    ctx.compute(tid, 2);
                    ctx.count_flops(2);
                }
            }
            ctx.st_global(4, tid, self.output, row * self.cols + c, acc);
        }
    }
}

struct ConvColKernel {
    input: BufId,
    taps: BufId,
    output: BufId,
    rows: usize,
    cols: usize,
    tile_w: usize,
    tile_h: usize,
}

impl Kernel for ConvColKernel {
    fn name(&self) -> &str {
        "sdk_conv_cols"
    }

    fn config(&self) -> LaunchConfig {
        let tx = self.cols.div_ceil(self.tile_w);
        let ty = self.rows.div_ceil(self.tile_h);
        LaunchConfig::new(
            (tx * ty) as u32,
            (self.tile_w * 4) as u32,
            (self.tile_w * (self.tile_h + 2 * CONV_RADIUS)) as u32,
        )
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        let tx = self.cols.div_ceil(self.tile_w);
        let c0 = (block as usize % tx) * self.tile_w;
        let r0 = (block as usize / tx) * self.tile_h;
        let ext_h = self.tile_h + 2 * CONV_RADIUS;
        let bdim = self.tile_w * 4;
        // Stage tile_w columns of ext_h rows; row-segment sweeps coalesce.
        let total = self.tile_w * ext_h;
        let mut base = 0usize;
        while base < total {
            for tid in ctx.threads() {
                let e = base + tid as usize;
                if e >= total {
                    continue;
                }
                let er = e / self.tile_w;
                let ec = e % self.tile_w;
                let r = r0 as i64 - CONV_RADIUS as i64 + er as i64;
                let c = c0 + ec;
                let v = if r >= 0 && (r as usize) < self.rows && c < self.cols {
                    ctx.ld_global(0, tid, self.input, r as usize * self.cols + c)
                } else {
                    0.0
                };
                ctx.st_shared(1, tid, e, v);
            }
            base += bdim;
        }
        ctx.sync();
        let outs = self.tile_w * self.tile_h;
        let mut base = 0usize;
        while base < outs {
            for tid in ctx.threads() {
                let e = base + tid as usize;
                if e >= outs {
                    continue;
                }
                let dr = e / self.tile_w;
                let dc = e % self.tile_w;
                let (r, c) = (r0 + dr, c0 + dc);
                if r >= self.rows || c >= self.cols {
                    continue;
                }
                let mut acc = 0.0f32;
                if r >= CONV_RADIUS && r + CONV_RADIUS < self.rows {
                    for k in 0..(2 * CONV_RADIUS + 1) {
                        let tap = ctx.ld_global(2, tid, self.taps, k);
                        let v = ctx.ld_shared(3, tid, (dr + k) * self.tile_w + dc);
                        acc += tap * v;
                        ctx.compute(tid, 2);
                        ctx.count_flops(2);
                    }
                }
                ctx.st_global(4, tid, self.output, r * self.cols + c, acc);
            }
            base += bdim;
        }
    }
}

/// SDK convolutionSeparable: row pass then column pass, fixed tiles.
pub fn convolution_separable(
    device: &DeviceSpec,
    input: &[f32],
    taps: &[f32],
    rows: usize,
    cols: usize,
    mode: ExecMode,
) -> TimedRun {
    assert_eq!(input.len(), rows * cols);
    assert_eq!(taps.len(), 2 * CONV_RADIUS + 1);
    let mut mem = GlobalMem::new();
    let ib = mem.alloc_from(input);
    let tb = mem.alloc_from(taps);
    let mid = mem.alloc(rows * cols);
    let out = mem.alloc(rows * cols);
    let mut run = TimedRun::default();
    let rk = ConvRowKernel {
        input: ib,
        taps: tb,
        output: mid,
        rows,
        cols,
        tile: (prev_pow2(cols as u32) as usize).clamp(32, 128),
    };
    launch_timed(device, &mut mem, &rk, mode, &mut run);
    let ck = ConvColKernel {
        input: mid,
        taps: tb,
        output: out,
        rows,
        cols,
        tile_w: 16,
        tile_h: 16,
    };
    launch_timed(device, &mut mem, &ck, mode, &mut run);
    run.output = mem.read(out).to_vec();
    run
}

// ------------------------------------------------------------------ oceanFFT

struct OceanScaleKernel {
    input: BufId,
    output: BufId,
    n: usize,
    amplitude: f32,
}

impl Kernel for OceanScaleKernel {
    fn name(&self) -> &str {
        "sdk_ocean_scale"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig::new((self.n as u32).div_ceil(256), 256, 0)
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        for tid in ctx.threads() {
            let i = (block * 256 + tid) as usize;
            if i >= self.n {
                continue;
            }
            let v = ctx.ld_global(0, tid, self.input, i);
            ctx.st_global(1, tid, self.output, i, v * self.amplitude);
            ctx.compute(tid, 1);
            ctx.count_flops(1);
        }
    }
}

struct OceanSmoothKernel {
    input: BufId,
    output: BufId,
    rows: usize,
    cols: usize,
    tile_w: usize,
    tile_h: usize,
}

impl Kernel for OceanSmoothKernel {
    fn name(&self) -> &str {
        "sdk_ocean_smooth"
    }

    fn config(&self) -> LaunchConfig {
        let tx = self.cols.div_ceil(self.tile_w);
        let ty = self.rows.div_ceil(self.tile_h);
        LaunchConfig::new(
            (tx * ty) as u32,
            256,
            ((self.tile_w + 2) * (self.tile_h + 2)) as u32,
        )
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        let tx = self.cols.div_ceil(self.tile_w);
        let c0 = (block as usize % tx) * self.tile_w;
        let r0 = (block as usize / tx) * self.tile_h;
        let (ew, _eh) = (self.tile_w + 2, self.tile_h + 2);
        let total = ew * (self.tile_h + 2);
        let mut base = 0usize;
        while base < total {
            for tid in ctx.threads() {
                let e = base + tid as usize;
                if e >= total {
                    continue;
                }
                let (er, ec) = (e / ew, e % ew);
                let r = r0 as i64 - 1 + er as i64;
                let c = c0 as i64 - 1 + ec as i64;
                let v = if r >= 0 && (r as usize) < self.rows && c >= 0 && (c as usize) < self.cols
                {
                    ctx.ld_global(0, tid, self.input, r as usize * self.cols + c as usize)
                } else {
                    0.0
                };
                ctx.st_shared(1, tid, e, v);
            }
            base += 256;
        }
        ctx.sync();
        let outs = self.tile_w * self.tile_h;
        let mut base = 0usize;
        while base < outs {
            for tid in ctx.threads() {
                let e = base + tid as usize;
                if e >= outs {
                    continue;
                }
                let (dr, dc) = (e / self.tile_w, e % self.tile_w);
                let (r, c) = (r0 + dr, c0 + dc);
                if r >= self.rows || c >= self.cols {
                    continue;
                }
                let center = ctx.ld_shared(2, tid, (dr + 1) * ew + dc + 1);
                let v = if r > 0 && r < self.rows - 1 && c > 0 && c < self.cols - 1 {
                    let up = ctx.ld_shared(2, tid, dr * ew + dc + 1);
                    let down = ctx.ld_shared(2, tid, (dr + 2) * ew + dc + 1);
                    let left = ctx.ld_shared(2, tid, (dr + 1) * ew + dc);
                    let right = ctx.ld_shared(2, tid, (dr + 1) * ew + dc + 2);
                    ctx.compute(tid, 5);
                    ctx.count_flops(5);
                    0.25 * (up + down + left + right)
                } else {
                    center
                };
                ctx.st_global(3, tid, self.output, r * self.cols + c, v);
            }
            base += 256;
        }
    }
}

/// SDK oceanFFT surrogate: spectrum scaling + one smoothing pass with a
/// fixed 16x16 tile.
pub fn ocean_fft(
    device: &DeviceSpec,
    spectrum: &[f32],
    rows: usize,
    cols: usize,
    amplitude: f32,
    mode: ExecMode,
) -> TimedRun {
    assert_eq!(spectrum.len(), rows * cols);
    let mut mem = GlobalMem::new();
    let ib = mem.alloc_from(spectrum);
    let mid = mem.alloc(rows * cols);
    let out = mem.alloc(rows * cols);
    let mut run = TimedRun::default();
    let sk = OceanScaleKernel {
        input: ib,
        output: mid,
        n: rows * cols,
        amplitude,
    };
    launch_timed(device, &mut mem, &sk, mode, &mut run);
    let mk = OceanSmoothKernel {
        input: mid,
        output: out,
        rows,
        cols,
        tile_w: 16,
        tile_h: 16,
    };
    launch_timed(device, &mut mem, &mk, mode, &mut run);
    run.output = mem.read(out).to_vec();
    run
}

// ------------------------------------------------------- input-insensitive

struct BlackScholesKernel {
    prices: BufId, // 3 per option: S, X, T
    calls: BufId,
    puts: BufId,
    n: usize,
    r: f32,
    v: f32,
}

impl Kernel for BlackScholesKernel {
    fn name(&self) -> &str {
        "sdk_black_scholes"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig::new((self.n as u32).div_ceil(256), 256, 0)
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        for tid in ctx.threads() {
            let i = (block * 256 + tid) as usize;
            if i >= self.n {
                continue;
            }
            let s = ctx.ld_global(0, tid, self.prices, i * 3);
            let x = ctx.ld_global(1, tid, self.prices, i * 3 + 1);
            let t = ctx.ld_global(2, tid, self.prices, i * 3 + 2);
            let (call, put) = reference::black_scholes(s, x, t, self.r, self.v);
            ctx.st_global(3, tid, self.calls, i, call);
            ctx.st_global(4, tid, self.puts, i, put);
            ctx.compute(tid, 60);
            ctx.count_flops(60);
        }
    }
}

/// SDK BlackScholes: one thread per option; returns calls then puts.
pub fn black_scholes(
    device: &DeviceSpec,
    prices: &[f32],
    r: f32,
    v: f32,
    mode: ExecMode,
) -> TimedRun {
    assert_eq!(prices.len() % 3, 0);
    let n = prices.len() / 3;
    let mut mem = GlobalMem::new();
    let pb = mem.alloc_from(prices);
    let calls = mem.alloc(n);
    let puts = mem.alloc(n);
    let mut run = TimedRun::default();
    let k = BlackScholesKernel {
        prices: pb,
        calls,
        puts,
        n,
        r,
        v,
    };
    launch_timed(device, &mut mem, &k, mode, &mut run);
    run.output = mem.read(calls).to_vec();
    run.output.extend_from_slice(mem.read(puts));
    run
}

struct VectorAddKernel {
    a: BufId,
    b: BufId,
    c: BufId,
    n: usize,
}

impl Kernel for VectorAddKernel {
    fn name(&self) -> &str {
        "sdk_vector_add"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig::new((self.n as u32).div_ceil(256), 256, 0)
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        for tid in ctx.threads() {
            let i = (block * 256 + tid) as usize;
            if i >= self.n {
                continue;
            }
            let a = ctx.ld_global(0, tid, self.a, i);
            let b = ctx.ld_global(1, tid, self.b, i);
            ctx.st_global(2, tid, self.c, i, a + b);
            ctx.compute(tid, 1);
            ctx.count_flops(1);
        }
    }
}

/// SDK vectorAdd.
pub fn vector_add(device: &DeviceSpec, a: &[f32], b: &[f32], mode: ExecMode) -> TimedRun {
    assert_eq!(a.len(), b.len());
    let mut mem = GlobalMem::new();
    let ab = mem.alloc_from(a);
    let bb = mem.alloc_from(b);
    let cb = mem.alloc(a.len());
    let mut run = TimedRun::default();
    let k = VectorAddKernel {
        a: ab,
        b: bb,
        c: cb,
        n: a.len(),
    };
    launch_timed(device, &mut mem, &k, mode, &mut run);
    run.output = mem.read(cb).to_vec();
    run
}

struct Dct8x8Kernel {
    input: BufId,
    output: BufId,
    n_tiles: usize,
}

impl Kernel for Dct8x8Kernel {
    fn name(&self) -> &str {
        "sdk_dct8x8"
    }

    fn config(&self) -> LaunchConfig {
        // 4 tiles per block of 256 threads (64 threads per tile); shared
        // memory holds the staged tiles plus the row-pass intermediate.
        LaunchConfig::new((self.n_tiles as u32).div_ceil(4), 256, 2 * 4 * 64)
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        // Stage 4 tiles.
        for tid in ctx.threads() {
            let local = tid as usize / 64;
            let elem = tid as usize % 64;
            let tile = block as usize * 4 + local;
            if tile >= self.n_tiles {
                continue;
            }
            let v = ctx.ld_global(0, tid, self.input, tile * 64 + elem);
            ctx.st_shared(1, tid, local * 64 + elem, v);
        }
        ctx.sync();
        // Separable DCT, as in the SDK sample: row pass into the second
        // shared bank, then column pass to global.
        for tid in ctx.threads() {
            let local = tid as usize / 64;
            let elem = tid as usize % 64;
            let tile = block as usize * 4 + local;
            if tile >= self.n_tiles {
                continue;
            }
            let (r, v) = (elem / 8, elem % 8);
            let mut acc = 0.0f32;
            for c in 0..8usize {
                let val = ctx.ld_shared(2, tid, local * 64 + r * 8 + c);
                acc +=
                    val * ((std::f32::consts::PI * (2.0 * c as f32 + 1.0) * v as f32) / 16.0).cos();
            }
            ctx.compute(tid, 8 * 11);
            ctx.count_flops(8 * 3);
            let cv = if v == 0 { (1.0f32 / 8.0).sqrt() } else { 0.5 };
            ctx.st_shared(3, tid, 256 + local * 64 + r * 8 + v, cv * acc);
        }
        ctx.sync();
        for tid in ctx.threads() {
            let local = tid as usize / 64;
            let elem = tid as usize % 64;
            let tile = block as usize * 4 + local;
            if tile >= self.n_tiles {
                continue;
            }
            let (u, v) = (elem / 8, elem % 8);
            let mut acc = 0.0f32;
            for r in 0..8usize {
                let val = ctx.ld_shared(4, tid, 256 + local * 64 + r * 8 + v);
                acc +=
                    val * ((std::f32::consts::PI * (2.0 * r as f32 + 1.0) * u as f32) / 16.0).cos();
            }
            ctx.compute(tid, 8 * 11);
            ctx.count_flops(8 * 3);
            let cu = if u == 0 { (1.0f32 / 8.0).sqrt() } else { 0.5 };
            ctx.st_global(5, tid, self.output, tile * 64 + u * 8 + v, cu * acc);
        }
    }
}

/// SDK DCT8x8: per-tile 2-D DCT of an image stored as consecutive 8x8
/// tiles.
pub fn dct8x8(device: &DeviceSpec, tiles: &[f32], mode: ExecMode) -> TimedRun {
    assert_eq!(tiles.len() % 64, 0);
    let n_tiles = tiles.len() / 64;
    let mut mem = GlobalMem::new();
    let ib = mem.alloc_from(tiles);
    let ob = mem.alloc(tiles.len());
    let mut run = TimedRun::default();
    let k = Dct8x8Kernel {
        input: ib,
        output: ob,
        n_tiles,
    };
    launch_timed(device, &mut mem, &k, mode, &mut run);
    run.output = mem.read(ob).to_vec();
    run
}

struct QuasirandomKernel {
    output: BufId,
    n: usize,
    alpha: f32,
}

impl Kernel for QuasirandomKernel {
    fn name(&self) -> &str {
        "sdk_quasirandom"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig::new((self.n as u32).div_ceil(256), 256, 0)
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        for tid in ctx.threads() {
            let i = (block * 256 + tid) as usize;
            if i >= self.n {
                continue;
            }
            let v = reference::weyl(i as f32 + 1.0, self.alpha);
            ctx.st_global(0, tid, self.output, i, v);
            ctx.compute(tid, 4);
            ctx.count_flops(4);
        }
    }
}

/// SDK quasirandomGenerator surrogate: Weyl sequence.
pub fn quasirandom(device: &DeviceSpec, n: usize, alpha: f32, mode: ExecMode) -> TimedRun {
    let mut mem = GlobalMem::new();
    let ob = mem.alloc(n);
    let mut run = TimedRun::default();
    let k = QuasirandomKernel {
        output: ob,
        n,
        alpha,
    };
    launch_timed(device, &mut mem, &k, mode, &mut run);
    run.output = mem.read(ob).to_vec();
    run
}

struct Histogram64Partial {
    data: BufId,
    partials: BufId, // 64 bins per block
    n: usize,
    blocks: u32,
}

impl Kernel for Histogram64Partial {
    fn name(&self) -> &str {
        "sdk_histogram64_partial"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig::new(self.blocks, 256, 64)
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        // Zero the block-private histogram.
        for tid in ctx.threads() {
            if (tid as usize) < 64 {
                ctx.st_shared(0, tid, tid as usize, 0.0);
            }
        }
        ctx.sync();
        // Accumulate (shared-memory atomics modeled as serialized adds).
        let stride = self.blocks as usize * 256;
        for tid in ctx.threads() {
            let mut i = block as usize * 256 + tid as usize;
            while i < self.n {
                let v = ctx.ld_global(1, tid, self.data, i);
                let bin = (v as usize).min(63);
                let old = ctx.ld_shared(2, tid, bin);
                ctx.st_shared(3, tid, bin, old + 1.0);
                ctx.compute(tid, 3);
                i += stride;
            }
        }
        ctx.sync();
        for tid in ctx.threads() {
            if (tid as usize) < 64 {
                let v = ctx.ld_shared(4, tid, tid as usize);
                ctx.st_global(5, tid, self.partials, block as usize * 64 + tid as usize, v);
            }
        }
    }
}

struct Histogram64Merge {
    partials: BufId,
    out: BufId,
    blocks: u32,
}

impl Kernel for Histogram64Merge {
    fn name(&self) -> &str {
        "sdk_histogram64_merge"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig::new(1, 64, 0)
    }

    fn run_block(&self, _block: u32, ctx: &mut BlockCtx<'_>) {
        for tid in ctx.threads() {
            let mut acc = 0.0f32;
            for b in 0..self.blocks as usize {
                acc += ctx.ld_global(0, tid, self.partials, b * 64 + tid as usize);
                ctx.compute(tid, 1);
            }
            ctx.st_global(1, tid, self.out, tid as usize, acc);
        }
    }
}

/// SDK histogram64: per-block shared-memory histograms plus a merge
/// kernel. Input values are clamped into [0, 64).
pub fn histogram64(device: &DeviceSpec, data: &[f32], mode: ExecMode) -> TimedRun {
    let blocks = (device.sm_count * device.max_blocks_per_sm).min(240);
    let mut mem = GlobalMem::new();
    let db = mem.alloc_from(data);
    let partials = mem.alloc(blocks as usize * 64);
    let out = mem.alloc(64);
    let mut run = TimedRun::default();
    let k1 = Histogram64Partial {
        data: db,
        partials,
        n: data.len(),
        blocks,
    };
    launch_timed(device, &mut mem, &k1, mode, &mut run);
    let k2 = Histogram64Merge {
        partials,
        out,
        blocks,
    };
    launch_timed(device, &mut mem, &k2, mode, &mut run);
    run.output = mem.read(out).to_vec();
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceSpec {
        DeviceSpec::tesla_c2050()
    }

    fn assert_close(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() <= tol * b.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn scalar_product_matches_reference() {
        let d = device();
        let (pairs, elems) = (10usize, 500usize);
        let x: Vec<f32> = (0..pairs * elems).map(|i| ((i * 3) % 7) as f32).collect();
        let y: Vec<f32> = (0..pairs * elems).map(|i| ((i * 5) % 9) as f32).collect();
        let run = scalar_product(&d, &x, &y, pairs, ExecMode::Full);
        for p in 0..pairs {
            let expected = reference::dot(
                &x[p * elems..(p + 1) * elems],
                &y[p * elems..(p + 1) * elems],
            );
            assert_close(run.output[p], expected, 1e-3);
        }
    }

    #[test]
    fn monte_carlo_both_paths_agree() {
        let d = device();
        let params: Vec<f32> = (0..40)
            .flat_map(|i| {
                vec![
                    90.0 + (i % 10) as f32,
                    95.0,
                    0.5,
                    0.02,
                    0.25 + 0.01 * (i % 5) as f32,
                ]
            })
            .collect();
        // 8 options -> whole-grid kernels; 40 options -> block-per-option.
        let many = monte_carlo(&d, &params, 40, 2048, ExecMode::Full);
        let few = monte_carlo(&d, &params[..8 * 5], 8, 2048, ExecMode::Full);
        for o in 0..8 {
            assert_close(few.output[o], many.output[o], 1e-3);
        }
    }

    #[test]
    fn convolution_matches_reference() {
        let d = device();
        let (rows, cols) = (24usize, 96usize);
        let input: Vec<f32> = (0..rows * cols).map(|i| ((i * 11) % 13) as f32).collect();
        let taps: Vec<f32> = (0..17)
            .map(|k| 1.0 / (1.0 + (k as f32 - 8.0).abs()))
            .collect();
        let run = convolution_separable(&d, &input, &taps, rows, cols, ExecMode::Full);
        let mid = reference::conv_rows(&input, rows, cols, &taps, CONV_RADIUS);
        let expected = reference::conv_cols(&mid, rows, cols, &taps, CONV_RADIUS);
        for (i, &exp) in expected.iter().enumerate() {
            assert_close(run.output[i], exp, 1e-3);
        }
    }

    #[test]
    fn ocean_surrogate_scales_and_smooths() {
        let d = device();
        let (rows, cols) = (32usize, 32usize);
        let spectrum: Vec<f32> = (0..rows * cols).map(|i| (i % 7) as f32).collect();
        let run = ocean_fft(&d, &spectrum, rows, cols, 2.0, ExecMode::Full);
        let scaled: Vec<f32> = spectrum.iter().map(|v| v * 2.0).collect();
        let expected = reference::stencil5(&scaled, rows, cols);
        for (i, &exp) in expected.iter().enumerate() {
            assert_close(run.output[i], exp, 1e-4);
        }
    }

    #[test]
    fn black_scholes_matches_reference() {
        let d = device();
        let n = 333usize;
        let prices: Vec<f32> = (0..n)
            .flat_map(|i| vec![80.0 + (i % 40) as f32, 100.0, 0.25 + 0.01 * (i % 50) as f32])
            .collect();
        let run = black_scholes(&d, &prices, 0.02, 0.3, ExecMode::Full);
        for i in 0..n {
            let (call, put) = reference::black_scholes(
                prices[i * 3],
                prices[i * 3 + 1],
                prices[i * 3 + 2],
                0.02,
                0.3,
            );
            assert_close(run.output[i], call, 1e-4);
            assert_close(run.output[n + i], put, 1e-4);
        }
    }

    #[test]
    fn vector_add_and_quasirandom() {
        let d = device();
        let a: Vec<f32> = (0..777).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..777).map(|i| (i * 2) as f32).collect();
        let run = vector_add(&d, &a, &b, ExecMode::Full);
        for i in 0..777 {
            assert_eq!(run.output[i], 3.0 * i as f32);
        }
        let q = quasirandom(&d, 512, 0.618_034, ExecMode::Full);
        for (i, v) in q.output.iter().enumerate() {
            assert_eq!(*v, reference::weyl(i as f32 + 1.0, 0.618_034));
        }
    }

    #[test]
    fn dct_matches_reference_tilewise() {
        let d = device();
        let n_tiles = 7usize;
        let tiles: Vec<f32> = (0..n_tiles * 64)
            .map(|i| ((i * 13) % 23) as f32 - 11.0)
            .collect();
        let run = dct8x8(&d, &tiles, ExecMode::Full);
        for t in 0..n_tiles {
            let expected = reference::dct8x8(&tiles[t * 64..(t + 1) * 64]);
            for (i, &exp) in expected.iter().enumerate() {
                assert_close(run.output[t * 64 + i], exp, 1e-3);
            }
        }
    }

    #[test]
    fn histogram_counts_everything() {
        let d = device();
        let data: Vec<f32> = (0..10_000).map(|i| ((i * 7) % 64) as f32).collect();
        let run = histogram64(&d, &data, ExecMode::Full);
        let expected = reference::histogram64(&data);
        assert_eq!(run.output, expected);
        assert_eq!(run.output.iter().sum::<f32>(), 10_000.0);
    }
}
