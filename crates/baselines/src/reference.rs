//! CPU reference implementations — the golden model for every baseline and
//! Adaptic-generated kernel in this workspace.

/// Dot product.
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Sum of absolute values.
pub fn asum(x: &[f32]) -> f32 {
    x.iter().map(|v| v.abs()).sum()
}

/// Euclidean norm.
pub fn nrm2(x: &[f32]) -> f32 {
    x.iter().map(|v| v * v).sum::<f32>().sqrt()
}

/// Largest absolute value.
pub fn amax_abs(x: &[f32]) -> f32 {
    x.iter().map(|v| v.abs()).fold(f32::NEG_INFINITY, f32::max)
}

/// Transposed matrix–vector product `y = Aᵀ·x`... here in the paper's
/// formulation: `a` holds `rows × cols` row-major and each output is the
/// dot product of one row with `x` (the TMV benchmark computes one dot per
/// row of the stored matrix).
pub fn tmv(a: &[f32], x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    assert_eq!(a.len(), rows * cols);
    assert_eq!(x.len(), cols);
    (0..rows)
        .map(|r| dot(&a[r * cols..(r + 1) * cols], x))
        .collect()
}

/// Five-point Jacobi smoothing step with clamped edges (interior averaged,
/// border copied).
pub fn stencil5(input: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    assert_eq!(input.len(), rows * cols);
    let mut out = input.to_vec();
    for r in 1..rows.saturating_sub(1) {
        for c in 1..cols.saturating_sub(1) {
            let i = r * cols + c;
            out[i] = 0.25 * (input[i - 1] + input[i + 1] + input[i - cols] + input[i + cols]);
        }
    }
    out
}

/// 1-D convolution with a symmetric kernel of the given radius; outputs
/// within `radius` of either end are zero (matching the SDK sample's
/// border handling in our reproduction).
pub fn conv1d(input: &[f32], taps: &[f32], radius: usize) -> Vec<f32> {
    let n = input.len();
    assert_eq!(taps.len(), 2 * radius + 1);
    let mut out = vec![0.0; n];
    for (i, o) in out.iter_mut().enumerate() {
        if i >= radius && i + radius < n {
            *o = (0..taps.len())
                .map(|k| input[i + k - radius] * taps[k])
                .sum();
        }
    }
    out
}

/// Row-wise 1-D convolution over a 2-D grid.
pub fn conv_rows(input: &[f32], rows: usize, cols: usize, taps: &[f32], radius: usize) -> Vec<f32> {
    let mut out = vec![0.0; rows * cols];
    for r in 0..rows {
        let row = conv1d(&input[r * cols..(r + 1) * cols], taps, radius);
        out[r * cols..(r + 1) * cols].copy_from_slice(&row);
    }
    out
}

/// Column-wise 1-D convolution over a 2-D grid.
pub fn conv_cols(input: &[f32], rows: usize, cols: usize, taps: &[f32], radius: usize) -> Vec<f32> {
    let mut out = vec![0.0; rows * cols];
    for c in 0..cols {
        let col: Vec<f32> = (0..rows).map(|r| input[r * cols + c]).collect();
        let conv = conv1d(&col, taps, radius);
        for r in 0..rows {
            out[r * cols + c] = conv[r];
        }
    }
    out
}

/// The cumulative normal distribution polynomial used by the BlackScholes
/// SDK sample.
pub fn cnd(d: f32) -> f32 {
    const A1: f32 = 0.319_381_53;
    const A2: f32 = -0.356_563_78;
    const A3: f32 = 1.781_477_9;
    const A4: f32 = -1.821_255_9;
    const A5: f32 = 1.330_274_5;
    let k = 1.0 / (1.0 + 0.231_641_9 * d.abs());
    let poly = k * (A1 + k * (A2 + k * (A3 + k * (A4 + k * A5))));
    let w = 1.0 - (-(0.5) * d * d).exp() / (2.0 * std::f32::consts::PI).sqrt() * poly;
    if d < 0.0 {
        1.0 - w
    } else {
        w
    }
}

/// BlackScholes call/put prices for one option.
pub fn black_scholes(s: f32, x: f32, t: f32, r: f32, v: f32) -> (f32, f32) {
    let sqrt_t = t.sqrt();
    let d1 = ((s / x).ln() + (r + 0.5 * v * v) * t) / (v * sqrt_t);
    let d2 = d1 - v * sqrt_t;
    let call = s * cnd(d1) - x * (-r * t).exp() * cnd(d2);
    let put = x * (-r * t).exp() * cnd(-d2) - s * cnd(-d1);
    (call, put)
}

/// Naive DCT-II over one 8x8 tile (row-major), orthonormal scaling.
pub fn dct8x8(tile: &[f32]) -> Vec<f32> {
    assert_eq!(tile.len(), 64);
    let n = 8usize;
    let mut out = vec![0.0f32; 64];
    for u in 0..n {
        for v in 0..n {
            let mut acc = 0.0f32;
            for r in 0..n {
                for c in 0..n {
                    acc += tile[r * n + c]
                        * ((std::f32::consts::PI * (2.0 * r as f32 + 1.0) * u as f32)
                            / (2.0 * n as f32))
                            .cos()
                        * ((std::f32::consts::PI * (2.0 * c as f32 + 1.0) * v as f32)
                            / (2.0 * n as f32))
                            .cos();
                }
            }
            let cu = if u == 0 {
                (1.0f32 / 8.0).sqrt()
            } else {
                (2.0f32 / 8.0).sqrt()
            };
            let cv = if v == 0 {
                (1.0f32 / 8.0).sqrt()
            } else {
                (2.0f32 / 8.0).sqrt()
            };
            out[u * n + v] = cu * cv * acc;
        }
    }
    out
}

/// Weyl-sequence quasi-random value in [0, 1): `frac(i * alpha)`.
pub fn weyl(i: f32, alpha: f32) -> f32 {
    let x = i * alpha;
    x - x.floor()
}

/// 64-bin histogram of values assumed in [0, 64).
pub fn histogram64(data: &[f32]) -> Vec<f32> {
    let mut h = vec![0.0f32; 64];
    for &v in data {
        let bin = (v as usize).min(63);
        h[bin] += 1.0;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blas_references() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(asum(&[-1.0, 2.0]), 3.0);
        assert_eq!(nrm2(&[3.0, 4.0]), 5.0);
        assert_eq!(amax_abs(&[-7.0, 2.0]), 7.0);
    }

    #[test]
    fn tmv_reference_shape() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let x = vec![1.0, 0.0, -1.0];
        assert_eq!(tmv(&a, &x, 2, 3), vec![-2.0, -2.0]);
    }

    #[test]
    fn stencil5_keeps_borders() {
        let input: Vec<f32> = (0..9).map(|i| i as f32).collect(); // 3x3
        let out = stencil5(&input, 3, 3);
        assert_eq!(out[0], 0.0);
        assert_eq!(out[4], 0.25 * (3.0 + 5.0 + 1.0 + 7.0));
    }

    #[test]
    fn conv1d_borders_zero() {
        let taps = vec![1.0, 2.0, 1.0];
        let out = conv1d(&[1.0, 1.0, 1.0, 1.0], &taps, 1);
        assert_eq!(out[0], 0.0);
        assert_eq!(out[1], 4.0);
        assert_eq!(out[3], 0.0);
    }

    #[test]
    fn cnd_is_a_cdf() {
        assert!((cnd(0.0) - 0.5).abs() < 1e-3);
        assert!(cnd(5.0) > 0.999);
        assert!(cnd(-5.0) < 0.001);
        assert!((cnd(1.0) + cnd(-1.0) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn black_scholes_put_call_parity() {
        let (s, x, t, r, v) = (100.0, 95.0, 0.5, 0.02, 0.3);
        let (call, put) = black_scholes(s, x, t, r, v);
        // C - P = S - X e^{-rT}
        let parity = s - x * (-r * t).exp();
        assert!((call - put - parity).abs() < 1e-2, "{call} {put} {parity}");
    }

    #[test]
    fn dct_preserves_energy() {
        let tile: Vec<f32> = (0..64).map(|i| ((i * 7) % 13) as f32 - 6.0).collect();
        let out = dct8x8(&tile);
        let e_in: f32 = tile.iter().map(|v| v * v).sum();
        let e_out: f32 = out.iter().map(|v| v * v).sum();
        assert!((e_in - e_out).abs() < 1e-1 * e_in, "{e_in} vs {e_out}");
    }

    #[test]
    fn weyl_in_unit_interval() {
        for i in 0..100 {
            let v = weyl(i as f32, 0.618_034);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn histogram_counts() {
        let h = histogram64(&[0.0, 0.5, 1.0, 63.9, 100.0]);
        assert_eq!(h[0], 2.0);
        assert_eq!(h[1], 1.0);
        assert_eq!(h[63], 2.0);
        assert_eq!(h.iter().sum::<f32>(), 5.0);
    }
}
