//! CUBLAS level-1 style baselines.
//!
//! The reduction routines (`sdot`, `sasum`, `snrm2`, `isamax`) use the
//! classic fixed-geometry scheme of the era's CUBLAS: a **fixed grid** of
//! `CUBLAS_GRID` blocks × `CUBLAS_BLOCK` threads grid-strides over the
//! whole vector, each block writes one partial, and a single-block
//! finalize kernel merges the partials. The geometry never adapts to the
//! vector length — small vectors waste the fixed grid, enormous vectors
//! under-fill the machine relative to an input-aware choice.
//!
//! The map routines (`saxpy`, `sscal`, `scopy`, `sswap`, `srot`) are
//! one-thread-per-element with 256-thread blocks — already shape-agnostic,
//! which is why the paper lists them as input-insensitive.

use gpu_sim::{BlockCtx, BufId, DeviceSpec, ExecMode, GlobalMem, Kernel, LaunchConfig};

use crate::util::{launch_timed, TimedRun};

/// Fixed launch geometry of the reduction routines.
pub const CUBLAS_GRID: u32 = 64;
/// Threads per block of the reduction routines.
pub const CUBLAS_BLOCK: u32 = 128;

/// Which level-1 reduction to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1Op {
    /// `sum(x[i] * y[i])`
    Dot,
    /// `sum(|x[i]|)`
    Asum,
    /// `sqrt(sum(x[i]^2))`
    Nrm2,
    /// `max(|x[i]|)` (the magnitude located by `isamax`)
    AmaxAbs,
}

impl L1Op {
    fn elem(self, x: f32, y: f32) -> f32 {
        match self {
            L1Op::Dot => x * y,
            L1Op::Asum => x.abs(),
            L1Op::Nrm2 => x * x,
            L1Op::AmaxAbs => x.abs(),
        }
    }

    fn combine(self, a: f32, b: f32) -> f32 {
        match self {
            L1Op::AmaxAbs => a.max(b),
            _ => a + b,
        }
    }

    fn identity(self) -> f32 {
        match self {
            L1Op::AmaxAbs => f32::NEG_INFINITY,
            _ => 0.0,
        }
    }

    fn post(self, acc: f32) -> f32 {
        match self {
            L1Op::Nrm2 => acc.sqrt(),
            _ => acc,
        }
    }
}

struct FixedGridReduce {
    op: L1Op,
    x: BufId,
    y: Option<BufId>,
    n: usize,
    partials: BufId,
}

impl Kernel for FixedGridReduce {
    fn name(&self) -> &str {
        "cublas_reduce_pass1"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig::new(CUBLAS_GRID, CUBLAS_BLOCK, CUBLAS_BLOCK)
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        let stride = (CUBLAS_GRID * CUBLAS_BLOCK) as usize;
        for tid in ctx.threads() {
            let mut acc = self.op.identity();
            let mut i = (block * CUBLAS_BLOCK + tid) as usize;
            while i < self.n {
                let xv = ctx.ld_global(0, tid, self.x, i);
                let yv = match self.y {
                    Some(y) => ctx.ld_global(1, tid, y, i),
                    None => 0.0,
                };
                acc = self.op.combine(acc, self.op.elem(xv, yv));
                ctx.compute(tid, 2);
                ctx.count_flops(2);
                i += stride;
            }
            ctx.st_shared(2, tid, tid as usize, acc);
        }
        ctx.sync();
        // Tree reduction with warp tail.
        let warp = ctx.warp_size() as usize;
        let mut active = (CUBLAS_BLOCK / 2) as usize;
        while active >= 1 {
            for lane in 0..active {
                let t = lane as u32;
                let a = ctx.ld_shared(3, t, lane);
                let b = ctx.ld_shared(3, t, lane + active);
                ctx.st_shared(4, t, lane, self.op.combine(a, b));
                ctx.compute(t, 1);
            }
            if active >= warp {
                ctx.sync();
            }
            active /= 2;
        }
        let v = ctx.ld_shared(3, 0, 0);
        ctx.st_global(5, 0, self.partials, block as usize, v);
    }
}

struct FinalizeReduce {
    op: L1Op,
    partials: BufId,
    out: BufId,
}

impl Kernel for FinalizeReduce {
    fn name(&self) -> &str {
        "cublas_reduce_finalize"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig::new(1, CUBLAS_GRID, CUBLAS_GRID)
    }

    fn run_block(&self, _block: u32, ctx: &mut BlockCtx<'_>) {
        for tid in ctx.threads() {
            let v = ctx.ld_global(0, tid, self.partials, tid as usize);
            ctx.st_shared(1, tid, tid as usize, v);
        }
        ctx.sync();
        let mut acc = self.op.identity();
        for i in 0..CUBLAS_GRID as usize {
            acc = self.op.combine(acc, ctx.ld_shared(2, 0, i));
            ctx.compute(0, 1);
        }
        ctx.st_global(3, 0, self.out, 0, self.op.post(acc));
    }
}

fn reduce1(
    device: &DeviceSpec,
    op: L1Op,
    x: &[f32],
    y: Option<&[f32]>,
    mode: ExecMode,
) -> TimedRun {
    let mut mem = GlobalMem::new();
    let xb = mem.alloc_from(x);
    let yb = y.map(|y| mem.alloc_from(y));
    let partials = mem.alloc(CUBLAS_GRID as usize);
    let out = mem.alloc(1);
    let mut run = TimedRun::default();
    let k1 = FixedGridReduce {
        op,
        x: xb,
        y: yb,
        n: x.len(),
        partials,
    };
    launch_timed(device, &mut mem, &k1, mode, &mut run);
    let k2 = FinalizeReduce { op, partials, out };
    launch_timed(device, &mut mem, &k2, mode, &mut run);
    run.output = mem.read(out).to_vec();
    run
}

/// CUBLAS-style `sdot`.
pub fn sdot(device: &DeviceSpec, x: &[f32], y: &[f32], mode: ExecMode) -> TimedRun {
    assert_eq!(x.len(), y.len(), "sdot needs equal-length vectors");
    reduce1(device, L1Op::Dot, x, Some(y), mode)
}

/// CUBLAS-style `sasum`.
pub fn sasum(device: &DeviceSpec, x: &[f32], mode: ExecMode) -> TimedRun {
    reduce1(device, L1Op::Asum, x, None, mode)
}

/// CUBLAS-style `snrm2`.
pub fn snrm2(device: &DeviceSpec, x: &[f32], mode: ExecMode) -> TimedRun {
    reduce1(device, L1Op::Nrm2, x, None, mode)
}

/// CUBLAS-style `isamax` magnitude (`max |x[i]|`).
pub fn isamax_abs(device: &DeviceSpec, x: &[f32], mode: ExecMode) -> TimedRun {
    reduce1(device, L1Op::AmaxAbs, x, None, mode)
}

/// Which element-wise level-1 routine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MapOp {
    /// `y = a*x + y`
    Saxpy { a: f32 },
    /// `x = a*x`
    Sscal { a: f32 },
    /// `y = x`
    Scopy,
    /// `x, y = y, x`
    Sswap,
    /// Givens rotation `x' = c*x + s*y; y' = c*y - s*x`
    Srot { c: f32, s: f32 },
}

struct MapL1 {
    op: MapOp,
    x: BufId,
    y: Option<BufId>,
    n: usize,
}

impl Kernel for MapL1 {
    fn name(&self) -> &str {
        "cublas_map"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig::new((self.n as u32).div_ceil(256), 256, 0)
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        for tid in ctx.threads() {
            let i = (block * 256 + tid) as usize;
            if i >= self.n {
                continue;
            }
            let xv = ctx.ld_global(0, tid, self.x, i);
            match self.op {
                MapOp::Saxpy { a } => {
                    let y = self.y.expect("saxpy has y");
                    let yv = ctx.ld_global(1, tid, y, i);
                    ctx.st_global(2, tid, y, i, a * xv + yv);
                    ctx.compute(tid, 2);
                    ctx.count_flops(2);
                }
                MapOp::Sscal { a } => {
                    ctx.st_global(2, tid, self.x, i, a * xv);
                    ctx.compute(tid, 1);
                    ctx.count_flops(1);
                }
                MapOp::Scopy => {
                    let y = self.y.expect("scopy has y");
                    ctx.st_global(2, tid, y, i, xv);
                    ctx.compute(tid, 1);
                }
                MapOp::Sswap => {
                    let y = self.y.expect("sswap has y");
                    let yv = ctx.ld_global(1, tid, y, i);
                    ctx.st_global(2, tid, self.x, i, yv);
                    ctx.st_global(3, tid, y, i, xv);
                    ctx.compute(tid, 2);
                }
                MapOp::Srot { c, s } => {
                    let y = self.y.expect("srot has y");
                    let yv = ctx.ld_global(1, tid, y, i);
                    ctx.st_global(2, tid, self.x, i, c * xv + s * yv);
                    ctx.st_global(3, tid, y, i, c * yv - s * xv);
                    ctx.compute(tid, 6);
                    ctx.count_flops(6);
                }
            }
        }
    }
}

/// Run an element-wise level-1 routine; returns the (x, y) vectors after.
pub fn map_l1(
    device: &DeviceSpec,
    op: MapOp,
    x: &[f32],
    y: Option<&[f32]>,
    mode: ExecMode,
) -> (TimedRun, Vec<f32>, Vec<f32>) {
    let mut mem = GlobalMem::new();
    let xb = mem.alloc_from(x);
    let yb = y.map(|y| mem.alloc_from(y));
    let mut run = TimedRun::default();
    let k = MapL1 {
        op,
        x: xb,
        y: yb,
        n: x.len(),
    };
    launch_timed(device, &mut mem, &k, mode, &mut run);
    let xo = mem.read(xb).to_vec();
    let yo = yb.map(|b| mem.read(b).to_vec()).unwrap_or_default();
    (run, xo, yo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn device() -> DeviceSpec {
        DeviceSpec::tesla_c2050()
    }

    fn vec_a(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 13) % 17) as f32 - 8.0).collect()
    }

    fn vec_b(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 7) % 11) as f32 - 5.0).collect()
    }

    fn assert_close(a: f32, b: f32) {
        assert!((a - b).abs() <= 1e-3 * b.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn sdot_matches_reference() {
        let (x, y) = (vec_a(10_000), vec_b(10_000));
        let r = sdot(&device(), &x, &y, ExecMode::Full);
        assert_close(r.output[0], reference::dot(&x, &y));
        assert_eq!(r.kernels.len(), 2);
        assert!(r.time_us > 0.0);
    }

    #[test]
    fn sasum_snrm2_isamax_match_reference() {
        let x = vec_a(4321);
        let d = device();
        assert_close(sasum(&d, &x, ExecMode::Full).output[0], reference::asum(&x));
        assert_close(snrm2(&d, &x, ExecMode::Full).output[0], reference::nrm2(&x));
        assert_close(
            isamax_abs(&d, &x, ExecMode::Full).output[0],
            reference::amax_abs(&x),
        );
    }

    #[test]
    fn fixed_grid_is_size_independent() {
        let d = device();
        let small = sdot(&d, &vec_a(256), &vec_b(256), ExecMode::Full);
        let large = sdot(&d, &vec_a(1 << 16), &vec_b(1 << 16), ExecMode::Full);
        // The hallmark of the input-unaware baseline: identical geometry.
        assert_eq!(small.kernels[0].config.grid_dim, CUBLAS_GRID);
        assert_eq!(large.kernels[0].config.grid_dim, CUBLAS_GRID);
    }

    #[test]
    fn saxpy_and_friends_match_reference() {
        let d = device();
        let (x, y) = (vec_a(2000), vec_b(2000));

        let (_, _, y2) = map_l1(&d, MapOp::Saxpy { a: 2.5 }, &x, Some(&y), ExecMode::Full);
        for i in 0..x.len() {
            assert_close(y2[i], 2.5 * x[i] + y[i]);
        }

        let (_, x2, _) = map_l1(&d, MapOp::Sscal { a: -1.5 }, &x, None, ExecMode::Full);
        for i in 0..x.len() {
            assert_close(x2[i], -1.5 * x[i]);
        }

        let (_, _, y3) = map_l1(&d, MapOp::Scopy, &x, Some(&y), ExecMode::Full);
        assert_eq!(y3, x);

        let (_, x4, y4) = map_l1(&d, MapOp::Sswap, &x, Some(&y), ExecMode::Full);
        assert_eq!(x4, y);
        assert_eq!(y4, x);

        let (c, s) = (0.6, 0.8);
        let (_, x5, y5) = map_l1(&d, MapOp::Srot { c, s }, &x, Some(&y), ExecMode::Full);
        for i in 0..x.len() {
            assert_close(x5[i], c * x[i] + s * y[i]);
            assert_close(y5[i], c * y[i] - s * x[i]);
        }
    }

    #[test]
    fn maps_are_coalesced() {
        let d = device();
        let (run, _, _) = map_l1(
            &d,
            MapOp::Saxpy { a: 1.0 },
            &vec_a(1 << 14),
            Some(&vec_b(1 << 14)),
            ExecMode::Full,
        );
        assert!(run.kernels[0].totals.transactions_per_mem_inst() <= 1.05);
    }
}
