//! The serving front-end: admission, bounded weighted-fair queues,
//! deadline propagation, cross-tenant coalescing, and graceful drain.
//!
//! One [`Server`] owns a pool of worker threads (the *global concurrency
//! limit*) and, per registered tenant, a private [`Fleet`] — one
//! [`KernelManager`] per device, carrying the tenant's own breakers,
//! retry budget, and learned state — built over **shared**
//! [`DeviceQueue`] backlog ledgers so every tenant's placement sees the
//! work every other tenant has in flight on the physical device. That
//! split is the isolation boundary: policy and learned state are per
//! tenant, hardware time is not.
//!
//! Requests travel: [`Server::submit`] (admission: quota → deadline
//! feasibility → bounded queue) → per-tenant FIFO → weighted-fair worker
//! drain → shed-if-stale → [`Fleet::admit`]/[`Fleet::settle`] → reply on
//! the request's [`Ticket`]. Every admitted request gets **exactly one**
//! terminal [`Outcome`], even through a draining shutdown.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use adaptic::fleet::{Fleet, FleetNode, PlacementPolicy};
use adaptic::telemetry::TelemetrySnapshot;
use adaptic::{
    compile, ExecMode, ExecPolicy, ExecutionReport, FaultInjector, InputAxis, KernelManager,
    RunOptions, StateBinding,
};
use gpu_sim::{DeviceQueue, DeviceSpec};
use streamir::error::{Error, Result};
use streamir::graph::Program;

use crate::tenant::{ServeCounters, TenantPolicy, TokenBucket};

/// Server-wide configuration. Worker count doubles as the global
/// concurrency limit: at most `workers` requests are inside the fleet at
/// once, everything else waits in bounded queues behind admission.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The physical devices every tenant's fleet schedules over.
    pub devices: Vec<DeviceSpec>,
    /// Worker threads draining the queues — the global concurrency limit.
    pub workers: usize,
    /// Bound on the total queued requests across all tenants.
    pub global_queue_cap: usize,
    /// Placement policy used for every dispatch.
    pub placement: PlacementPolicy,
    /// Block-execution policy inside each launch. Serial by default: the
    /// serving plane's parallelism is across requests, not inside one.
    pub exec: ExecPolicy,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            devices: vec![DeviceSpec::igpu_small(), DeviceSpec::hpc_wide()],
            workers: 2,
            global_queue_cap: 128,
            placement: PlacementPolicy::CostPredicted,
            exec: ExecPolicy::Serial,
        }
    }
}

/// Why a request was turned away at [`Server::submit`]. Typed, so clients
/// can react (back off on `QuotaExhausted`, retry elsewhere on
/// `QueueFull`, drop on `DeadlineInfeasible`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's token bucket is empty: sustained rate above quota.
    QuotaExhausted,
    /// The tenant (or global) bounded queue is full even after shedding
    /// past-deadline entries.
    QueueFull,
    /// `corrected_cost + backlog_us` already exceeds the remaining
    /// deadline budget on every device that can price the input — the
    /// request cannot finish in time, so it is refused before costing
    /// anyone anything.
    DeadlineInfeasible,
    /// The server is draining; admission is closed.
    ShuttingDown,
    /// No tenant registered under that name.
    UnknownTenant,
}

/// Why an *admitted* request was dropped without running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Its deadline passed while it waited in queue.
    DeadlinePassed,
    /// The drain deadline arrived with the request still queued.
    Draining,
}

/// A served request's result.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The execution report (leader's report, for coalesced requests).
    pub report: ExecutionReport,
    /// Microseconds between admission and dispatch start.
    pub queued_us: u64,
    /// Server-clock time the reply was produced.
    pub finished_at_us: u64,
    /// Whether the reply beat the request deadline (true if none was set).
    pub deadline_met: bool,
    /// Whether this request coalesced onto another identical in-flight
    /// launch instead of launching itself.
    pub coalesced: bool,
}

/// Exactly one of these arrives on every admitted request's [`Ticket`].
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The launch ran (or coalesced) and produced a report.
    Completed(Box<Completion>),
    /// The request was shed before dispatch.
    Shed(ShedReason),
    /// The launch failed out of the degradation ladder.
    Failed(Error),
}

/// The caller's handle to an admitted request.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Outcome>,
}

impl Ticket {
    /// Block until the request's terminal outcome.
    pub fn wait(self) -> Outcome {
        self.rx
            .recv()
            .unwrap_or_else(|_| Outcome::Failed(Error::Runtime("server dropped reply".into())))
    }

    /// The outcome, if already available.
    pub fn try_wait(&self) -> Option<Outcome> {
        match self.rx.try_recv() {
            Ok(o) => Some(o),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Outcome::Failed(Error::Runtime(
                "server dropped reply".into(),
            ))),
        }
    }
}

/// One compile-and-run request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Input-axis value (e.g. total input size) the launch is priced by.
    pub x: i64,
    /// Shared input buffer. Coalescing keys on buffer *identity*: two
    /// requests only coalesce when they share the same `Arc`.
    pub input: Arc<Vec<f32>>,
    /// Stateful-actor bindings, usually empty.
    pub state: Arc<Vec<StateBinding>>,
    /// Execution mode. Coalescing applies only to `SampledExec` — the
    /// same restriction the launch-stats cache enforces.
    pub mode: ExecMode,
    /// Absolute deadline on the server clock ([`Server::now_us`]), or
    /// `None` for best-effort.
    pub deadline_us: Option<u64>,
    /// Per-request fault injector (chaos testing). Requests carrying an
    /// injector never coalesce.
    pub faults: Option<Arc<dyn FaultInjector + Send + Sync>>,
}

impl Request {
    /// A best-effort full run over `input`.
    pub fn new(x: i64, input: Arc<Vec<f32>>) -> Request {
        Request {
            x,
            input,
            state: Arc::new(Vec::new()),
            mode: ExecMode::Full,
            deadline_us: None,
            faults: None,
        }
    }

    /// Set the execution mode.
    pub fn with_mode(mut self, mode: ExecMode) -> Request {
        self.mode = mode;
        self
    }

    /// Set an absolute server-clock deadline.
    pub fn with_deadline_at(mut self, deadline_us: u64) -> Request {
        self.deadline_us = Some(deadline_us);
        self
    }

    /// Attach a fault injector (disables coalescing for this request).
    pub fn with_faults(mut self, faults: Arc<dyn FaultInjector + Send + Sync>) -> Request {
        self.faults = Some(faults);
        self
    }
}

/// What a draining [`Server::shutdown`] left behind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests shed at the drain deadline, per tenant (zero entries are
    /// omitted). Each also received [`Outcome::Shed`]`(`[`ShedReason::Draining`]`)`.
    pub shed: Vec<(String, u64)>,
    /// Total requests shed by the drain.
    pub total_shed: u64,
    /// Whether the queues emptied before the drain deadline.
    pub drained_clean: bool,
}

struct Queued {
    req: Request,
    enq_us: u64,
    reply: Sender<Outcome>,
}

struct TenantState {
    name: String,
    queue_cap: usize,
    retry: adaptic::RetryPolicy,
    coalesce: bool,
    /// Program identity (content hash over program + axis + options):
    /// cross-tenant coalescing requires equal hashes.
    program_hash: u64,
    fleet: Fleet,
    bucket: Mutex<TokenBucket>,
    counters: ServeCounters,
}

impl TenantState {
    /// Cheapest `corrected_cost + backlog_us` across devices that can
    /// price `x`; `None` when nothing can (left to fail at dispatch).
    fn best_total_cost_us(&self, x: i64) -> Option<f64> {
        self.fleet
            .nodes()
            .iter()
            .filter_map(|n| {
                let cost = n.manager().corrected_cost(x).ok()?;
                Some(cost + n.queue().backlog_us())
            })
            .min_by(f64::total_cmp)
    }
}

/// A single-flight ledger entry: the leader publishes its result here and
/// every coalesced follower clones it.
struct Flight {
    done: Mutex<Option<std::result::Result<ExecutionReport, Error>>>,
    cv: Condvar,
}

impl Flight {
    fn wait(&self) -> std::result::Result<ExecutionReport, Error> {
        let mut done = self.done.lock().expect("flight lock");
        while done.is_none() {
            done = self.cv.wait(done).expect("flight lock");
        }
        done.clone().expect("loop exits only when set")
    }

    fn publish(&self, result: std::result::Result<ExecutionReport, Error>) {
        *self.done.lock().expect("flight lock") = Some(result);
        self.cv.notify_all();
    }
}

/// Coalesce key: (program identity, axis value, sample size, input buffer
/// identity). Buffer identity makes the key exact — no risk of serving
/// tenant B a report computed over tenant A's different data.
type FlightKey = (u64, i64, u32, usize);

/// Removes the flight from the ledger on every exit path; if the leader
/// unwound before publishing, publishes an error so followers never hang.
struct FlightGuard<'a> {
    flights: &'a Mutex<HashMap<FlightKey, Arc<Flight>>>,
    key: FlightKey,
    flight: Arc<Flight>,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        self.flights
            .lock()
            .expect("flight ledger")
            .remove(&self.key);
        let mut done = self.flight.done.lock().expect("flight lock");
        if done.is_none() {
            *done = Some(Err(Error::Runtime("coalesce leader aborted".into())));
            drop(done);
            self.flight.cv.notify_all();
        }
    }
}

struct Sched {
    /// One FIFO per tenant, indexed by registration order.
    queues: Vec<VecDeque<Queued>>,
    /// Weighted-fair bookkeeping: requests drained per tenant.
    drained: Vec<u64>,
    /// Fair-share weights, mirrored from each tenant's policy.
    weights: Vec<f64>,
    total_queued: usize,
    /// Admission closed; workers exit once the queues empty.
    draining: bool,
    /// Hard stop: workers exit after their current request.
    halted: bool,
}

struct Inner {
    cfg: ServerConfig,
    started: Instant,
    /// Registration-ordered tenant states; `Sched` indexes match.
    tenants: RwLock<Vec<Arc<TenantState>>>,
    names: RwLock<HashMap<String, usize>>,
    sched: Mutex<Sched>,
    work: Condvar,
    flights: Mutex<HashMap<FlightKey, Arc<Flight>>>,
    device_queues: Vec<Arc<DeviceQueue>>,
}

impl Inner {
    fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Weighted-fair pick: among tenants with queued work, the one whose
    /// `drained / weight` is lowest — a stride scheduler over admission
    /// counts. Returns a tenant index.
    fn pick(sched: &Sched) -> Option<usize> {
        sched
            .queues
            .iter()
            .enumerate()
            .filter(|(_, q)| !q.is_empty())
            .min_by(|(a, _), (b, _)| {
                let ka = (sched.drained[*a] + 1) as f64 / sched.weights[*a];
                let kb = (sched.drained[*b] + 1) as f64 / sched.weights[*b];
                ka.total_cmp(&kb)
            })
            .map(|(i, _)| i)
    }

    fn tenant(&self, idx: usize) -> Arc<TenantState> {
        Arc::clone(&self.tenants.read().expect("tenant table")[idx])
    }

    fn worker(self: &Arc<Inner>) {
        loop {
            let next = {
                let mut sched = self.sched.lock().expect("scheduler lock");
                loop {
                    if sched.halted {
                        return;
                    }
                    if let Some(tid) = Inner::pick(&sched) {
                        let job = sched.queues[tid].pop_front().expect("picked non-empty");
                        sched.total_queued -= 1;
                        sched.drained[tid] += 1;
                        break (tid, job);
                    }
                    if sched.draining {
                        return;
                    }
                    sched = self.work.wait(sched).expect("scheduler lock");
                }
            };
            let (tid, job) = next;
            self.process(&self.tenant(tid), job);
        }
    }

    /// Serve one dequeued request to its terminal outcome.
    fn process(&self, tenant: &TenantState, job: Queued) {
        let now = self.now_us();
        if let Some(d) = job.req.deadline_us {
            // The admission-time feasibility check ran against a fresh
            // budget; queue wait may have consumed most of it. Re-check
            // with the cheapest service estimate before burning a worker
            // on a launch that cannot finish in time. The estimate must
            // fit with 50% headroom: a launch that would only *just* fit
            // loses the race against the retry watchdog often enough
            // that shedding it for the next queued request is the better
            // trade. Requests comfortably inside the budget still run.
            let remaining = d.saturating_sub(now);
            let hopeless = remaining == 0
                || tenant
                    .fleet
                    .nodes()
                    .iter()
                    .filter_map(|n| n.manager().corrected_cost(job.req.x).ok())
                    .min_by(f64::total_cmp)
                    .is_some_and(|cost| cost * 1.5 >= remaining as f64);
            if hopeless {
                ServeCounters::bump(&tenant.counters.shed_deadline);
                let _ = job.reply.send(Outcome::Shed(ShedReason::DeadlinePassed));
                return;
            }
        }
        let queued_us = now.saturating_sub(job.enq_us);
        let coalescable = tenant.coalesce && job.req.faults.is_none();
        let sample = match job.req.mode {
            ExecMode::SampledExec(n) if coalescable => Some(n),
            _ => None,
        };
        let (result, coalesced) = match sample {
            None => (self.run_once(tenant, &job.req, now), false),
            Some(n) => {
                let key: FlightKey = (
                    tenant.program_hash,
                    job.req.x,
                    n,
                    Arc::as_ptr(&job.req.input) as usize,
                );
                let (flight, leader) = {
                    let mut flights = self.flights.lock().expect("flight ledger");
                    match flights.get(&key) {
                        Some(f) => (Arc::clone(f), false),
                        None => {
                            let f = Arc::new(Flight {
                                done: Mutex::new(None),
                                cv: Condvar::new(),
                            });
                            flights.insert(key, Arc::clone(&f));
                            (f, true)
                        }
                    }
                };
                if leader {
                    let guard = FlightGuard {
                        flights: &self.flights,
                        key,
                        flight: Arc::clone(&flight),
                    };
                    let result = self.run_once(tenant, &job.req, now);
                    flight.publish(result.clone());
                    drop(guard);
                    (result, false)
                } else {
                    let result = flight.wait();
                    if result.is_ok() {
                        ServeCounters::bump(&tenant.counters.coalesced);
                    }
                    (result, true)
                }
            }
        };
        let finished_at_us = self.now_us();
        match result {
            Ok(report) => {
                let deadline_met = job.req.deadline_us.is_none_or(|d| finished_at_us <= d);
                ServeCounters::bump(&tenant.counters.completed);
                if deadline_met {
                    ServeCounters::bump(&tenant.counters.deadline_met);
                }
                let _ = job.reply.send(Outcome::Completed(Box::new(Completion {
                    report,
                    queued_us,
                    finished_at_us,
                    deadline_met,
                    coalesced,
                })));
            }
            Err(e) => {
                ServeCounters::bump(&tenant.counters.failed);
                let _ = job.reply.send(Outcome::Failed(e));
            }
        }
    }

    /// One real launch through the tenant's fleet, with the request
    /// deadline folded into the retry watchdog.
    fn run_once(
        &self,
        tenant: &TenantState,
        req: &Request,
        now: u64,
    ) -> std::result::Result<ExecutionReport, Error> {
        let mut retry = tenant.retry;
        if let Some(d) = req.deadline_us {
            let remaining = d.saturating_sub(now).max(1);
            retry.deadline_us = if retry.deadline_us == 0 {
                remaining
            } else {
                retry.deadline_us.min(remaining)
            };
        }
        let opts = RunOptions {
            mode: req.mode,
            policy: self.cfg.exec,
            faults: req.faults.as_deref().map(|f| f as &dyn FaultInjector),
            retry,
            ..RunOptions::default()
        };
        let placement = tenant.fleet.admit(req.x, self.cfg.placement)?;
        tenant
            .fleet
            .settle(placement, req.x, &req.input, &req.state, opts)
    }

    /// Drop `tid`'s past-deadline entries (oldest first, the whole FIFO).
    /// Returns how many were shed; each got its `Shed` outcome.
    fn shed_stale(&self, sched: &mut Sched, tenant: &TenantState, tid: usize, now: u64) -> usize {
        let before = sched.queues[tid].len();
        let mut kept = VecDeque::with_capacity(before);
        for q in sched.queues[tid].drain(..) {
            if q.req.deadline_us.is_some_and(|d| now >= d) {
                ServeCounters::bump(&tenant.counters.shed_deadline);
                let _ = q.reply.send(Outcome::Shed(ShedReason::DeadlinePassed));
            } else {
                kept.push_back(q);
            }
        }
        let shed = before - kept.len();
        sched.queues[tid] = kept;
        sched.total_queued -= shed;
        shed
    }
}

/// The long-lived, in-process serving front-end. See the module docs for
/// the request path; construction starts the worker pool immediately and
/// [`Server::shutdown`] (or drop) stops it.
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Start a server: spawns `cfg.workers` drain threads (at least 1).
    pub fn start(cfg: ServerConfig) -> Server {
        let device_queues = cfg
            .devices
            .iter()
            .map(|_| Arc::new(DeviceQueue::new()))
            .collect();
        let workers = cfg.workers.max(1);
        let inner = Arc::new(Inner {
            cfg,
            started: Instant::now(),
            tenants: RwLock::new(Vec::new()),
            names: RwLock::new(HashMap::new()),
            sched: Mutex::new(Sched {
                queues: Vec::new(),
                drained: Vec::new(),
                weights: Vec::new(),
                total_queued: 0,
                draining: false,
                halted: false,
            }),
            work: Condvar::new(),
            flights: Mutex::new(HashMap::new()),
            device_queues,
        });
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || inner.worker())
            })
            .collect();
        Server {
            inner,
            workers: handles,
        }
    }

    /// Microseconds since the server started — the clock deadlines are
    /// expressed in.
    pub fn now_us(&self) -> u64 {
        self.inner.now_us()
    }

    /// Register `name`, compiling `program` over `axis` once per device.
    /// The tenant gets private managers (its own breakers, retry budget,
    /// learned state) over the server's shared device ledgers.
    ///
    /// # Errors
    ///
    /// [`Error::Semantic`] for a duplicate name; compile errors propagate.
    pub fn register_tenant(
        &self,
        name: &str,
        program: &Program,
        axis: &InputAxis,
        policy: TenantPolicy,
    ) -> Result<()> {
        if self
            .inner
            .names
            .read()
            .expect("name table")
            .contains_key(name)
        {
            return Err(Error::Semantic(format!(
                "tenant `{name}` already registered"
            )));
        }
        let nodes = self
            .inner
            .cfg
            .devices
            .iter()
            .zip(&self.inner.device_queues)
            .map(|(device, queue)| {
                let compiled = compile(program, device, axis)?;
                let manager = KernelManager::new(compiled)
                    .with_quarantine(policy.quarantine_threshold, policy.quarantine_window);
                Ok(FleetNode::with_queue(
                    device.name.clone(),
                    manager,
                    Arc::clone(queue),
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        let program_hash =
            adaptic::content_hash(program, axis, &adaptic::CompileOptions::default());
        let state = Arc::new(TenantState {
            name: name.to_string(),
            queue_cap: policy.queue_cap.max(1),
            retry: policy.retry,
            coalesce: policy.coalesce,
            program_hash,
            fleet: Fleet::new(nodes, false),
            bucket: Mutex::new(TokenBucket::new(policy.burst, policy.refill_per_sec)),
            counters: ServeCounters::default(),
        });
        let mut tenants = self.inner.tenants.write().expect("tenant table");
        let mut names = self.inner.names.write().expect("name table");
        let mut sched = self.inner.sched.lock().expect("scheduler lock");
        names.insert(name.to_string(), tenants.len());
        tenants.push(state);
        sched.queues.push(VecDeque::new());
        sched.drained.push(0);
        sched.weights.push(policy.weight.max(f64::MIN_POSITIVE));
        Ok(())
    }

    /// Admit or reject one request. Admission is synchronous and cheap:
    /// token bucket → deadline feasibility (`corrected_cost + backlog_us`
    /// vs remaining budget) → bounded queue (shedding past-deadline
    /// entries under pressure before refusing). An `Ok` ticket is a
    /// promise of exactly one terminal [`Outcome`].
    pub fn submit(&self, tenant: &str, req: Request) -> std::result::Result<Ticket, RejectReason> {
        let tid = *self
            .inner
            .names
            .read()
            .expect("name table")
            .get(tenant)
            .ok_or(RejectReason::UnknownTenant)?;
        let t = self.inner.tenant(tid);
        let now = self.inner.now_us();
        if !t.bucket.lock().expect("bucket lock").try_take(now) {
            ServeCounters::bump(&t.counters.rejected_quota);
            return Err(RejectReason::QuotaExhausted);
        }
        if let Some(d) = req.deadline_us {
            let remaining = d.saturating_sub(now);
            if let Some(cost) = t.best_total_cost_us(req.x) {
                if cost > remaining as f64 {
                    ServeCounters::bump(&t.counters.rejected_deadline);
                    return Err(RejectReason::DeadlineInfeasible);
                }
            }
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut sched = self.inner.sched.lock().expect("scheduler lock");
            if sched.draining {
                return Err(RejectReason::ShuttingDown);
            }
            if sched.queues[tid].len() >= t.queue_cap
                || sched.total_queued >= self.inner.cfg.global_queue_cap
            {
                // Backpressure: make room by shedding work that can no
                // longer meet its deadline before refusing new work.
                self.inner.shed_stale(&mut sched, &t, tid, now);
            }
            if sched.queues[tid].len() >= t.queue_cap
                || sched.total_queued >= self.inner.cfg.global_queue_cap
            {
                drop(sched);
                ServeCounters::bump(&t.counters.rejected_queue_full);
                return Err(RejectReason::QueueFull);
            }
            sched.queues[tid].push_back(Queued {
                req,
                enq_us: now,
                reply: tx,
            });
            sched.total_queued += 1;
            ServeCounters::bump(&t.counters.admitted);
        }
        self.inner.work.notify_one();
        Ok(Ticket { rx })
    }

    /// One tenant's telemetry: its fleet rollup (launches, cache traffic,
    /// faults, quarantines across its managers) plus its serving-plane
    /// counters.
    pub fn tenant_telemetry(&self, name: &str) -> Option<TelemetrySnapshot> {
        let tid = *self.inner.names.read().expect("name table").get(name)?;
        let t = self.inner.tenant(tid);
        let mut snap = t.fleet.telemetry().unwrap_or_default();
        t.counters.fill(&mut snap);
        Some(snap)
    }

    /// Every tenant's telemetry, in registration order.
    pub fn telemetry_by_tenant(&self) -> Vec<(String, TelemetrySnapshot)> {
        let tenants = self.inner.tenants.read().expect("tenant table").clone();
        tenants
            .iter()
            .map(|t| {
                let mut snap = t.fleet.telemetry().unwrap_or_default();
                t.counters.fill(&mut snap);
                (t.name.clone(), snap)
            })
            .collect()
    }

    /// The fleet-wide rollup of every tenant's snapshot
    /// ([`TelemetrySnapshot::fleet_rollup`]). Tenants' managers are
    /// private (no shared artifact store), so counters sum; a coalesced
    /// launch appears once in `launches` (the leader ran it) while each
    /// participant's billing shows in `admitted`/`coalesced`.
    pub fn rollup(&self) -> Option<TelemetrySnapshot> {
        let snaps: Vec<TelemetrySnapshot> = self
            .telemetry_by_tenant()
            .into_iter()
            .map(|(_, s)| s)
            .collect();
        TelemetrySnapshot::fleet_rollup(&snaps, false)
    }

    /// Direct access to one tenant's live serving counters (tests).
    pub fn counters<R>(&self, name: &str, read: impl FnOnce(&ServeCounters) -> R) -> Option<R> {
        let tid = *self.inner.names.read().expect("name table").get(name)?;
        Some(read(&self.inner.tenant(tid).counters))
    }

    /// Graceful drain: close admission immediately, let workers finish
    /// what is queued for up to `drain_budget_us`, then shed the rest
    /// (each shed request receives [`ShedReason::Draining`]) and join the
    /// workers. The report says exactly what was given up.
    pub fn shutdown(mut self, drain_budget_us: u64) -> DrainReport {
        {
            let mut sched = self.inner.sched.lock().expect("scheduler lock");
            sched.draining = true;
        }
        self.inner.work.notify_all();
        let drain_deadline = Instant::now() + Duration::from_micros(drain_budget_us);
        let drained_clean = loop {
            {
                let sched = self.inner.sched.lock().expect("scheduler lock");
                if sched.total_queued == 0 {
                    break true;
                }
            }
            if Instant::now() >= drain_deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        let mut per_tenant: Vec<(String, u64)> = Vec::new();
        let mut total_shed = 0u64;
        {
            let tenants = self.inner.tenants.read().expect("tenant table").clone();
            let mut sched = self.inner.sched.lock().expect("scheduler lock");
            sched.halted = true;
            for (tid, queue) in sched.queues.iter_mut().enumerate() {
                let mut shed_here = 0u64;
                for q in queue.drain(..) {
                    ServeCounters::bump(&tenants[tid].counters.shed_deadline);
                    let _ = q.reply.send(Outcome::Shed(ShedReason::Draining));
                    shed_here += 1;
                }
                total_shed += shed_here;
                if shed_here > 0 {
                    per_tenant.push((tenants[tid].name.clone(), shed_here));
                }
            }
            sched.total_queued = 0;
        }
        self.inner.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        DrainReport {
            shed: per_tenant,
            total_shed,
            drained_clean,
        }
    }
}

impl Drop for Server {
    /// A dropped (not shut down) server stops accepting and abandons its
    /// queues without draining; prefer [`Server::shutdown`].
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        {
            let mut sched = self.inner.sched.lock().expect("scheduler lock");
            sched.draining = true;
            sched.halted = true;
        }
        self.inner.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}
