//! Per-tenant policy: quotas, fairness weight, queue bounds, and the
//! resilience knobs each tenant gets as *its own* configuration.
//!
//! The serving plane treats the PR 5 resilience machinery (retry budgets,
//! breaker thresholds, quarantine windows) as per-tenant policy rather
//! than global configuration: a tenant whose programs keep faulting trips
//! *its own* breakers on *its own* managers, and its neighbours never see
//! a quarantined variant they did not earn.

use std::sync::atomic::{AtomicU64, Ordering};

use adaptic::telemetry::TelemetrySnapshot;
use adaptic::RetryPolicy;

/// Token-bucket admission quota, refilled from the server's microsecond
/// clock. `capacity` bounds the burst a tenant may land at once;
/// `refill_per_sec` bounds its sustained admission rate. A refill rate of
/// zero makes the bucket a fixed budget of `capacity` requests — handy
/// for deterministic tests.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    refill_per_us: f64,
    tokens: f64,
    last_us: u64,
}

impl TokenBucket {
    /// A bucket starting full.
    pub fn new(capacity: f64, refill_per_sec: f64) -> TokenBucket {
        let capacity = capacity.max(0.0);
        TokenBucket {
            capacity,
            refill_per_us: (refill_per_sec / 1e6).max(0.0),
            tokens: capacity,
            last_us: 0,
        }
    }

    fn refill(&mut self, now_us: u64) {
        let elapsed = now_us.saturating_sub(self.last_us);
        self.last_us = self.last_us.max(now_us);
        self.tokens = (self.tokens + elapsed as f64 * self.refill_per_us).min(self.capacity);
    }

    /// Take one token if available. Monotone `now_us` values come from the
    /// server clock; a stale timestamp refills nothing and never refunds.
    pub fn try_take(&mut self, now_us: u64) -> bool {
        self.refill(now_us);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after refilling to `now_us`).
    pub fn available(&mut self, now_us: u64) -> f64 {
        self.refill(now_us);
        self.tokens
    }
}

/// Everything the server needs to know about one tenant, set at
/// registration. The defaults are deliberately forgiving; overload tests
/// tighten them.
#[derive(Debug, Clone)]
pub struct TenantPolicy {
    /// Weighted-fair share of worker drain relative to other tenants.
    pub weight: f64,
    /// Bound on the tenant's FIFO; admission sheds past-deadline entries
    /// before rejecting `QueueFull`.
    pub queue_cap: usize,
    /// Token-bucket burst capacity (requests).
    pub burst: f64,
    /// Token-bucket sustained refill rate (requests/second); 0 freezes the
    /// bucket at `burst` total admissions.
    pub refill_per_sec: f64,
    /// Per-launch retry/backoff budget. The request deadline is folded in
    /// at dispatch: the effective watchdog is
    /// `min(retry.deadline_us, remaining_budget)` (0 meaning "unbounded"
    /// on either side).
    pub retry: RetryPolicy,
    /// Consecutive-failure threshold before a variant's breaker opens on
    /// this tenant's managers.
    pub quarantine_threshold: u32,
    /// Launches a quarantined variant sits out before a half-open probe.
    pub quarantine_window: u64,
    /// Allow identical `SampledExec` launches to coalesce onto another
    /// tenant's in-flight simulation.
    pub coalesce: bool,
}

impl Default for TenantPolicy {
    fn default() -> TenantPolicy {
        TenantPolicy {
            weight: 1.0,
            queue_cap: 32,
            burst: 64.0,
            refill_per_sec: 256.0,
            retry: RetryPolicy::default(),
            quarantine_threshold: 3,
            quarantine_window: 16,
            coalesce: true,
        }
    }
}

impl TenantPolicy {
    /// Set the weighted-fair drain share.
    pub fn with_weight(mut self, weight: f64) -> TenantPolicy {
        self.weight = weight.max(f64::MIN_POSITIVE);
        self
    }

    /// Bound the tenant FIFO.
    pub fn with_queue_cap(mut self, cap: usize) -> TenantPolicy {
        self.queue_cap = cap.max(1);
        self
    }

    /// Set the token-bucket quota: `burst` capacity, `per_sec` refill.
    pub fn with_quota(mut self, burst: f64, per_sec: f64) -> TenantPolicy {
        self.burst = burst;
        self.refill_per_sec = per_sec;
        self
    }

    /// Set the per-launch retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> TenantPolicy {
        self.retry = retry;
        self
    }

    /// Set breaker threshold and quarantine window for the tenant's
    /// managers.
    pub fn with_quarantine(mut self, threshold: u32, window: u64) -> TenantPolicy {
        self.quarantine_threshold = threshold;
        self.quarantine_window = window;
        self
    }

    /// Opt out of cross-tenant request coalescing.
    pub fn without_coalescing(mut self) -> TenantPolicy {
        self.coalesce = false;
        self
    }
}

/// Live serving-plane counters for one tenant. Every admission decision,
/// shed, and completion lands in exactly one of these; the exported
/// [`TelemetrySnapshot`] carries them next to the tenant's fleet counters.
#[derive(Debug, Default)]
pub struct ServeCounters {
    pub(crate) admitted: AtomicU64,
    pub(crate) rejected_quota: AtomicU64,
    pub(crate) rejected_queue_full: AtomicU64,
    pub(crate) rejected_deadline: AtomicU64,
    pub(crate) shed_deadline: AtomicU64,
    pub(crate) coalesced: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) deadline_met: AtomicU64,
}

impl ServeCounters {
    pub(crate) fn bump(counter: &AtomicU64) -> u64 {
        counter.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Requests admitted past quota + queue checks.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests that finished with a report (deadline met or not).
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Requests that finished with an error out of the degradation ladder.
    pub fn failed(&self) -> u64 {
        self.failed.load(Ordering::Relaxed)
    }

    /// Completions that beat their deadline (no-deadline requests count).
    pub fn deadline_met(&self) -> u64 {
        self.deadline_met.load(Ordering::Relaxed)
    }

    /// Admitted requests shed before dispatch (deadline passed or drain).
    pub fn shed(&self) -> u64 {
        self.shed_deadline.load(Ordering::Relaxed)
    }

    /// Requests served by coalescing onto an in-flight identical launch.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Copy the serving counters into `snap`'s serving-plane fields.
    pub(crate) fn fill(&self, snap: &mut TelemetrySnapshot) {
        snap.admitted = self.admitted.load(Ordering::Relaxed);
        snap.rejected_quota = self.rejected_quota.load(Ordering::Relaxed);
        snap.rejected_queue_full = self.rejected_queue_full.load(Ordering::Relaxed);
        snap.rejected_deadline = self.rejected_deadline.load(Ordering::Relaxed);
        snap.shed_deadline = self.shed_deadline.load(Ordering::Relaxed);
        snap.coalesced = self.coalesced.load(Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_burst_and_rate() {
        let mut b = TokenBucket::new(2.0, 1_000_000.0); // 1 token/µs
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(!b.try_take(0), "burst capacity spent");
        assert!(b.try_take(1), "one µs refills one token");
        // Refill never exceeds capacity.
        assert!((b.available(1_000) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_refill_is_a_fixed_budget() {
        let mut b = TokenBucket::new(3.0, 0.0);
        for _ in 0..3 {
            assert!(b.try_take(u64::MAX / 2));
        }
        assert!(!b.try_take(u64::MAX), "no refill, ever");
    }

    #[test]
    fn stale_timestamps_never_refund() {
        let mut b = TokenBucket::new(1.0, 1_000_000.0);
        assert!(b.try_take(100));
        // A clock echo from the past must not mint tokens.
        assert!(!b.try_take(100));
        assert!(!b.try_take(99));
    }
}
