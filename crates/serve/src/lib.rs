//! `adaptic-serve` — the multi-tenant serving plane in front of the
//! adaptive runtime.
//!
//! The runtime below this crate is a library: [`adaptic::KernelManager`]
//! makes one launch adaptive and fault-tolerant, [`adaptic::fleet::Fleet`]
//! spreads launches across unlike devices. This crate is the piece that
//! protects that machinery **from its clients**: long-lived, in-process,
//! thread-based (std threads + channels — no async runtime), accepting
//! compile-and-run requests from many concurrent tenants and keeping
//! goodput graceful under overload instead of collapsing.
//!
//! The five mechanisms, in request order:
//!
//! 1. **Admission control** ([`Server::submit`]): a per-tenant
//!    [`TokenBucket`] quota plus a global concurrency limit (the worker
//!    pool) and bounded queues. Refusals are typed
//!    ([`RejectReason::QuotaExhausted`] / [`RejectReason::QueueFull`] /
//!    [`RejectReason::DeadlineInfeasible`]) — never silent queuing.
//! 2. **Bounded queues with shedding**: FIFO per tenant, drained
//!    weighted-fair into the tenant's fleet; under pressure the queue
//!    sheds entries whose deadline already passed before refusing new
//!    work, and a dequeued request past its deadline is shed rather than
//!    run ([`ShedReason::DeadlinePassed`]).
//! 3. **Deadline propagation**: a request deadline caps the retry
//!    watchdog (`RetryPolicy::deadline_us`) so no launch retries past its
//!    budget, and admission refuses up front when
//!    `corrected_cost + backlog_us > remaining_budget` on every device.
//! 4. **Per-tenant resilience isolation**: each tenant's
//!    [`TenantPolicy`] builds private managers — its own breakers,
//!    quarantine thresholds, retry budgets, learned state — over
//!    *shared* device backlog ledgers. Identical `SampledExec` launches
//!    coalesce across tenants onto one in-flight simulation
//!    (single-flight, like `gpu_sim::ShardedLaunchCache`), and telemetry
//!    still bills each tenant ([`TelemetrySnapshot::coalesced`]).
//! 5. **Graceful drain** ([`Server::shutdown`]): admission closes,
//!    queues drain to a deadline, whatever remains is shed with
//!    [`ShedReason::Draining`] and reported in the [`DrainReport`].
//!
//! Observability: [`Server::tenant_telemetry`] exports one
//! [`TelemetrySnapshot`] per tenant (fleet counters + serving-plane
//! counters) and [`Server::rollup`] folds them with
//! [`TelemetrySnapshot::fleet_rollup`] — a coalesced launch counts once
//! in `launches`, every participant once in `admitted`.
//!
//! [`TelemetrySnapshot`]: adaptic::telemetry::TelemetrySnapshot
//! [`TelemetrySnapshot::coalesced`]: adaptic::telemetry::TelemetrySnapshot::coalesced
//! [`TelemetrySnapshot::fleet_rollup`]: adaptic::telemetry::TelemetrySnapshot::fleet_rollup

pub mod server;
pub mod tenant;

pub use server::{
    Completion, DrainReport, Outcome, RejectReason, Request, Server, ServerConfig, ShedReason,
    Ticket,
};
pub use tenant::{ServeCounters, TenantPolicy, TokenBucket};
