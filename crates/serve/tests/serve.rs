//! Integration suite for the serving plane: admission, bounded queues,
//! shedding, deadline propagation, weighted-fair drain, coalescing, and
//! graceful shutdown. Determinism comes from gate injectors (worker
//! threads block until a test opens the gate) rather than sleeps.

use std::sync::{Arc, Condvar, Mutex};

use adaptic::{ExecMode, Fault, FaultInjector, FaultPlan, InputAxis, RetryPolicy};
use adaptic_apps::programs;
use adaptic_serve::{
    Outcome, RejectReason, Request, Server, ServerConfig, ShedReason, TenantPolicy,
};
use streamir::graph::Program;

fn sasum() -> Program {
    programs::sasum().program
}

fn axis() -> InputAxis {
    InputAxis::total_size("N", 256, 1 << 18)
}

fn data(n: usize) -> Arc<Vec<f32>> {
    Arc::new((0..n).map(|i| (i % 7) as f32 - 3.0).collect())
}

fn server(workers: usize, global_cap: usize) -> Server {
    Server::start(ServerConfig {
        workers,
        global_queue_cap: global_cap,
        ..ServerConfig::default()
    })
}

/// Blocks every launch attempt until the test opens it; injects nothing.
/// Carrying an injector also (deliberately) opts the request out of
/// coalescing, so gated requests serve one-by-one.
#[derive(Debug)]
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn closed() -> Arc<Gate> {
        Arc::new(Gate {
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

impl FaultInjector for Gate {
    fn on_launch(&self, _kernel: &str) -> Option<Fault> {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
        None
    }
}

#[test]
fn round_trip_serves_and_bills() {
    let s = server(2, 64);
    s.register_tenant("acme", &sasum(), &axis(), TenantPolicy::default())
        .unwrap();
    let n = 4096usize;
    let input = data(n);
    let expected: f32 = input.iter().map(|v| v.abs()).sum();
    let ticket = s.submit("acme", Request::new(n as i64, input)).unwrap();
    match ticket.wait() {
        Outcome::Completed(c) => {
            assert!((c.report.output[0] - expected).abs() <= expected * 1e-5);
            assert!(c.deadline_met, "no deadline means always met");
            assert!(!c.coalesced);
        }
        other => panic!("expected completion, got {other:?}"),
    }
    let snap = s.tenant_telemetry("acme").unwrap();
    assert_eq!(snap.admitted, 1);
    assert_eq!(snap.launches, 1);
    assert_eq!(
        snap.rejected_quota + snap.rejected_queue_full + snap.rejected_deadline,
        0
    );
    assert!(s.tenant_telemetry("nobody").is_none());
}

#[test]
fn unknown_and_duplicate_tenants_are_rejected() {
    let s = server(1, 8);
    assert_eq!(
        s.submit("ghost", Request::new(512, data(512))).unwrap_err(),
        RejectReason::UnknownTenant
    );
    s.register_tenant("a", &sasum(), &axis(), TenantPolicy::default())
        .unwrap();
    assert!(s
        .register_tenant("a", &sasum(), &axis(), TenantPolicy::default())
        .is_err());
}

#[test]
fn token_bucket_quota_rejects_typed() {
    let s = server(1, 64);
    // Fixed budget of 2 admissions, no refill.
    let policy = TenantPolicy::default().with_quota(2.0, 0.0);
    s.register_tenant("metered", &sasum(), &axis(), policy)
        .unwrap();
    let input = data(512);
    let t1 = s.submit("metered", Request::new(512, Arc::clone(&input)));
    let t2 = s.submit("metered", Request::new(512, Arc::clone(&input)));
    assert!(t1.is_ok() && t2.is_ok());
    assert_eq!(
        s.submit("metered", Request::new(512, input)).unwrap_err(),
        RejectReason::QuotaExhausted
    );
    assert_eq!(
        s.counters("metered", |c| c.admitted()).unwrap(),
        2,
        "rejected requests are not admitted"
    );
    let snap = s.tenant_telemetry("metered").unwrap();
    assert_eq!(snap.rejected_quota, 1);
    for t in [t1.unwrap(), t2.unwrap()] {
        assert!(matches!(t.wait(), Outcome::Completed(_)));
    }
}

#[test]
fn bounded_queue_rejects_queue_full_when_nothing_is_sheddable() {
    let s = server(1, 64);
    let policy = TenantPolicy::default()
        .with_queue_cap(2)
        .with_quota(64.0, 0.0);
    s.register_tenant("bursty", &sasum(), &axis(), policy)
        .unwrap();
    let gate = Gate::closed();
    let input = data(512);
    // Occupy the single worker behind the gate…
    let blocked = s
        .submit(
            "bursty",
            Request::new(512, Arc::clone(&input)).with_faults(gate.clone()),
        )
        .unwrap();
    // Give the worker time to dequeue the gated request, so the FIFO is
    // empty when we start filling it.
    std::thread::sleep(std::time::Duration::from_millis(20));
    // …then fill the bounded FIFO. No deadlines anywhere, so nothing is
    // sheddable and the third queued request must be refused.
    let q1 = s.submit("bursty", Request::new(512, Arc::clone(&input)));
    let q2 = s.submit("bursty", Request::new(512, Arc::clone(&input)));
    assert!(q1.is_ok() && q2.is_ok());
    assert_eq!(
        s.submit("bursty", Request::new(512, Arc::clone(&input)))
            .unwrap_err(),
        RejectReason::QueueFull
    );
    assert_eq!(s.tenant_telemetry("bursty").unwrap().rejected_queue_full, 1);
    gate.open();
    for t in [blocked, q1.unwrap(), q2.unwrap()] {
        assert!(matches!(t.wait(), Outcome::Completed(_)));
    }
}

#[test]
fn infeasible_deadlines_are_rejected_up_front() {
    let s = server(1, 64);
    s.register_tenant("dl", &sasum(), &axis(), TenantPolicy::default())
        .unwrap();
    // A deadline in the past leaves zero budget: corrected_cost + backlog
    // can never fit, on any device.
    let req = Request::new(1 << 18, data(1 << 18)).with_deadline_at(s.now_us());
    assert_eq!(
        s.submit("dl", req).unwrap_err(),
        RejectReason::DeadlineInfeasible
    );
    let snap = s.tenant_telemetry("dl").unwrap();
    assert_eq!(snap.rejected_deadline, 1);
    assert_eq!(snap.admitted, 0);
}

#[test]
fn queued_requests_past_deadline_are_shed_not_run() {
    let s = server(1, 64);
    s.register_tenant("late", &sasum(), &axis(), TenantPolicy::default())
        .unwrap();
    let gate = Gate::closed();
    let input = data(512);
    let blocked = s
        .submit(
            "late",
            Request::new(512, Arc::clone(&input)).with_faults(gate.clone()),
        )
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(10));
    // Generous-now, hopeless-soon deadlines: feasible at admission (the
    // device is idle by the ledger), stale by the time the gate opens.
    let soon = s.now_us() + 15_000;
    let t1 = s
        .submit(
            "late",
            Request::new(512, Arc::clone(&input)).with_deadline_at(soon),
        )
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(40));
    gate.open();
    assert!(matches!(blocked.wait(), Outcome::Completed(_)));
    assert!(
        matches!(t1.wait(), Outcome::Shed(ShedReason::DeadlinePassed)),
        "stale queued work must be shed, not served late"
    );
    assert_eq!(s.tenant_telemetry("late").unwrap().shed_deadline, 1);
}

#[test]
fn deadline_caps_the_retry_watchdog() {
    let s = server(1, 64);
    // Patient per-tenant retry policy: without a deadline the ladder
    // would retry/backoff at length.
    let policy = TenantPolicy::default().with_retry(RetryPolicy {
        max_attempts: 10,
        backoff_base_us: 2_000,
        backoff_cap_us: 50_000,
        deadline_us: 0,
    });
    s.register_tenant("impatient", &sasum(), &axis(), policy)
        .unwrap();
    let faults: Arc<dyn FaultInjector + Send + Sync> = Arc::new(FaultPlan::new(7).with_rate(1.0));
    let budget_us = 30_000u64;
    let deadline = s.now_us() + budget_us;
    let started = std::time::Instant::now();
    let t = s
        .submit(
            "impatient",
            Request::new(4096, data(4096))
                .with_deadline_at(deadline)
                .with_faults(faults),
        )
        .unwrap();
    let outcome = t.wait();
    let elapsed_us = started.elapsed().as_micros() as u64;
    // The watchdog must cut the ladder near the budget — not after the
    // full 10-attempt backoff schedule (which alone exceeds 150ms).
    assert!(
        elapsed_us < budget_us * 5,
        "deadline did not bound the retry ladder: {elapsed_us}us"
    );
    let snap = s.tenant_telemetry("impatient").unwrap();
    match outcome {
        // Either the ladder failed out within budget or a degraded run
        // squeaked through — both respect the deadline contract.
        Outcome::Failed(_) | Outcome::Completed(_) => {}
        other => panic!("unexpected outcome {other:?}"),
    }
    assert!(
        snap.deadline_overruns > 0 || snap.faults_observed > 0,
        "the fault ladder must have been engaged"
    );
}

#[test]
fn weighted_fair_drain_prefers_heavy_tenants() {
    let s = server(1, 256);
    let heavy = TenantPolicy::default()
        .with_weight(4.0)
        .with_quota(64.0, 0.0);
    let light = TenantPolicy::default()
        .with_weight(1.0)
        .with_quota(64.0, 0.0);
    s.register_tenant("heavy", &sasum(), &axis(), heavy)
        .unwrap();
    s.register_tenant("light", &sasum(), &axis(), light)
        .unwrap();
    let gate = Gate::closed();
    let input = data(512);
    let blocked = s
        .submit(
            "light",
            Request::new(512, Arc::clone(&input)).with_faults(gate.clone()),
        )
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(10));
    let mut tickets = Vec::new();
    for _ in 0..8 {
        tickets.push((
            "heavy",
            s.submit("heavy", Request::new(512, Arc::clone(&input)))
                .unwrap(),
        ));
        tickets.push((
            "light",
            s.submit("light", Request::new(512, Arc::clone(&input)))
                .unwrap(),
        ));
    }
    gate.open();
    assert!(matches!(blocked.wait(), Outcome::Completed(_)));
    let mut finished: Vec<(&str, u64)> = tickets
        .into_iter()
        .map(|(who, t)| match t.wait() {
            Outcome::Completed(c) => (who, c.finished_at_us),
            other => panic!("expected completion, got {other:?}"),
        })
        .collect();
    finished.sort_by_key(|(_, at)| *at);
    let heavy_in_first_half = finished[..8].iter().filter(|(w, _)| *w == "heavy").count();
    assert!(
        heavy_in_first_half >= 6,
        "4:1 weights should front-load the heavy tenant, got {heavy_in_first_half}/8"
    );
}

#[test]
fn identical_sampled_launches_coalesce_across_tenants() {
    let s = server(2, 256);
    for name in ["blue", "green"] {
        s.register_tenant(name, &sasum(), &axis(), TenantPolicy::default())
            .unwrap();
    }
    // One shared input buffer (coalescing keys on Arc identity), sampled
    // execution (the only coalescable mode), heavy enough that the two
    // workers overlap on the same key.
    let x = 1i64 << 18;
    let input = data(x as usize);
    let mode = ExecMode::SampledExec(1 << 16);
    let mut tickets = Vec::new();
    for _round in 0..3 {
        for name in ["blue", "green"] {
            tickets.push((
                name,
                s.submit(name, Request::new(x, Arc::clone(&input)).with_mode(mode))
                    .unwrap(),
            ));
        }
    }
    for (_, t) in tickets {
        assert!(matches!(t.wait(), Outcome::Completed(_)));
    }
    let rollup = s.rollup().unwrap();
    let completed: u64 = ["blue", "green"]
        .iter()
        .map(|n| s.counters(n, |c| c.completed()).unwrap())
        .sum();
    assert_eq!(completed, 6);
    assert_eq!(rollup.admitted, 6);
    // Exactly-once accounting for the work itself: every completion was
    // either a real launch (counted once, by the leader's manager) or a
    // coalesced ride-along — never both, never neither.
    assert_eq!(
        rollup.launches + rollup.coalesced,
        completed,
        "launches {} + coalesced {} != completed {completed}",
        rollup.launches,
        rollup.coalesced
    );
    assert!(
        rollup.coalesced >= 1,
        "identical overlapping launches never coalesced"
    );
    assert!(rollup.launches < 6, "coalescing must deduplicate launches");
}

#[test]
fn graceful_drain_serves_then_sheds_and_reports() {
    let s = server(1, 256);
    s.register_tenant(
        "t",
        &sasum(),
        &axis(),
        TenantPolicy::default().with_quota(64.0, 0.0),
    )
    .unwrap();
    let gate = Gate::closed();
    let input = data(512);
    let blocked = s
        .submit(
            "t",
            Request::new(512, Arc::clone(&input)).with_faults(gate.clone()),
        )
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(10));
    let queued: Vec<_> = (0..4)
        .map(|_| {
            s.submit("t", Request::new(512, Arc::clone(&input)))
                .unwrap()
        })
        .collect();
    // Shut down with a tiny drain budget while the worker is stuck: the
    // in-flight request finishes (workers are joined), queued ones shed.
    let handle = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(30));
        gate.open();
    });
    let report = s.shutdown(5_000);
    handle.join().unwrap();
    assert!(!report.drained_clean);
    assert_eq!(report.total_shed, 4);
    assert_eq!(report.shed, vec![("t".to_string(), 4)]);
    assert!(matches!(blocked.wait(), Outcome::Completed(_)));
    for t in queued {
        assert!(
            matches!(t.wait(), Outcome::Shed(ShedReason::Draining)),
            "every queued request must get its terminal outcome"
        );
    }
}

#[test]
fn clean_shutdown_drains_everything() {
    let s = server(2, 64);
    s.register_tenant("t", &sasum(), &axis(), TenantPolicy::default())
        .unwrap();
    let input = data(2048);
    let tickets: Vec<_> = (0..6)
        .map(|_| {
            s.submit("t", Request::new(2048, Arc::clone(&input)))
                .unwrap()
        })
        .collect();
    let report = s.shutdown(10_000_000);
    assert!(report.drained_clean);
    assert_eq!(report.total_shed, 0);
    for t in tickets {
        assert!(matches!(t.wait(), Outcome::Completed(_)));
    }
}

#[test]
fn multi_tenant_burst_accounts_exactly_once() {
    // Two tenants sharing the physical fleet (the device backlog ledgers
    // are shared; the cross-fleet steering itself is pinned by the
    // `shared_queues_make_backlog_visible_across_fleets` unit test in
    // `adaptic::fleet`). Every admitted request must resolve to exactly
    // one outcome and exactly one unit of accounting.
    let s = server(2, 256);
    for name in ["a", "b"] {
        s.register_tenant(name, &sasum(), &axis(), TenantPolicy::default())
            .unwrap();
    }
    let x = 1i64 << 14;
    let input = data(x as usize);
    let tickets: Vec<_> = (0..12)
        .map(|i| {
            let name = if i % 2 == 0 { "a" } else { "b" };
            s.submit(name, Request::new(x, Arc::clone(&input))).unwrap()
        })
        .collect();
    for t in tickets {
        assert!(matches!(t.wait(), Outcome::Completed(_)));
    }
    let rollup = s.rollup().unwrap();
    assert_eq!(rollup.launches, 12, "Full mode never coalesces");
    assert_eq!(rollup.admitted, 12);
    for name in ["a", "b"] {
        let (admitted, completed, failed, shed) = s
            .counters(name, |c| {
                (c.admitted(), c.completed(), c.failed(), c.shed())
            })
            .unwrap();
        assert_eq!(admitted, completed + failed + shed);
        assert_eq!(admitted, 6);
    }
}
