//! Property-based tests for the streaming front-end.

use proptest::prelude::*;

use streamir::actor::{ActorDef, WorkFn};
use streamir::graph::{bindings, Joiner, Program, Splitter, StreamNode};
use streamir::interp::Interpreter;
use streamir::ir::{Expr, Stmt};
use streamir::parse::parse_program;
use streamir::rates::RateExpr;
use streamir::schedule::rate_match;

fn rate_actor(name: &str, pop: i64, push: i64) -> ActorDef {
    ActorDef::new(
        name,
        WorkFn {
            pop: RateExpr::constant(pop),
            push: RateExpr::constant(push),
            peek: RateExpr::constant(pop),
            body: vec![Stmt::Push(Expr::Pop)],
        },
    )
}

proptest! {
    /// The balance equations hold on every channel of any two-stage
    /// pipeline with arbitrary positive rates.
    #[test]
    fn rate_match_balances_two_stage(
        a_pop in 1i64..20,
        a_push in 1i64..20,
        b_pop in 1i64..20,
        b_push in 1i64..20,
    ) {
        let p = Program {
            name: "P".into(),
            params: vec![],
            actors: vec![rate_actor("A", a_pop, a_push), rate_actor("B", b_pop, b_push)],
            graph: StreamNode::Pipeline(vec![
                StreamNode::Actor("A".into()),
                StreamNode::Actor("B".into()),
            ]),
        };
        let fg = p.flatten().unwrap();
        let s = rate_match(&fg, &bindings(&[])).unwrap();
        let produced = s.reps(0) * a_push as u64;
        let consumed = s.reps(1) * b_pop as u64;
        prop_assert_eq!(produced, consumed);
        // Minimality: the repetition vector has gcd 1.
        let g = gcd(s.reps(0), s.reps(1));
        prop_assert_eq!(g, 1);
    }

    /// Round-robin split followed by the matching round-robin join is the
    /// identity stream transformation, for arbitrary weights.
    #[test]
    fn roundrobin_split_join_is_identity(
        w1 in 1i64..6,
        w2 in 1i64..6,
        w3 in 1i64..6,
        reps in 1usize..4,
    ) {
        let id = |n: &str| rate_actor(n, 1, 1);
        let ws = vec![
            RateExpr::constant(w1),
            RateExpr::constant(w2),
            RateExpr::constant(w3),
        ];
        let p = Program {
            name: "P".into(),
            params: vec![],
            actors: vec![id("A"), id("B"), id("C")],
            graph: StreamNode::SplitJoin {
                splitter: Splitter::RoundRobin(ws.clone()),
                branches: vec![
                    StreamNode::Actor("A".into()),
                    StreamNode::Actor("B".into()),
                    StreamNode::Actor("C".into()),
                ],
                joiner: Joiner::RoundRobin(ws),
            },
        };
        let total = ((w1 + w2 + w3) as usize) * reps;
        let input: Vec<f32> = (0..total).map(|i| i as f32).collect();
        let mut it = Interpreter::new(&p);
        let out = it.run(&input).unwrap();
        prop_assert_eq!(out, input);
    }

    /// A parsed symbolic Sum actor computes the same result as `iter().sum()`
    /// for arbitrary N and data.
    #[test]
    fn parsed_sum_matches_fold(
        n in 1usize..64,
        data in proptest::collection::vec(-100.0f32..100.0, 1..256),
    ) {
        let p = parse_program(
            r#"
            pipeline P(N) {
                actor Sum(pop N, push 1) {
                    acc = 0.0;
                    for i in 0..N {
                        acc = acc + pop();
                    }
                    push(acc);
                }
            }
            "#,
        ).unwrap();
        prop_assume!(data.len() >= n);
        let mut it = Interpreter::new(&p);
        it.bind_param("N", n as i64);
        let out = it.run(&data).unwrap();
        let chunks = data.len() / n;
        prop_assert_eq!(out.len(), chunks);
        for (c, got) in out.iter().enumerate() {
            let want: f32 = data[c * n..(c + 1) * n].iter().sum();
            prop_assert!((got - want).abs() <= 1e-3 * want.abs().max(1.0));
        }
    }

    /// Rate polynomials form a commutative semiring under + and *.
    #[test]
    fn rate_algebra_laws(
        a in 0i64..50,
        b in 0i64..50,
        c in 0i64..50,
        n in 1i64..100,
    ) {
        let x = RateExpr::param("x") * a + RateExpr::constant(b);
        let y = RateExpr::param("x") * c + RateExpr::constant(a);
        let z = RateExpr::param("y") * b;
        let binds = bindings(&[("x", n), ("y", n + 1)]);

        let comm_add = (x.clone() + y.clone()).eval(&binds).unwrap();
        let comm_add2 = (y.clone() + x.clone()).eval(&binds).unwrap();
        prop_assert_eq!(comm_add, comm_add2);

        let comm_mul = (x.clone() * y.clone()).eval(&binds).unwrap();
        let comm_mul2 = (y.clone() * x.clone()).eval(&binds).unwrap();
        prop_assert_eq!(comm_mul, comm_mul2);

        let dist = ((x.clone() + y.clone()) * z.clone()).eval(&binds).unwrap();
        let dist2 = (x.clone() * z.clone() + y.clone() * z.clone()).eval(&binds).unwrap();
        prop_assert_eq!(dist, dist2);
    }

    /// Interpreting a map actor applies the function element-wise for any
    /// input length that is a multiple of the steady state.
    #[test]
    fn map_actor_is_elementwise(
        data in proptest::collection::vec(-1000.0f32..1000.0, 1..128),
    ) {
        let p = parse_program(
            "pipeline P() { actor SqPlus1(pop 1, push 1) { x = pop(); push(x * x + 1.0); } }",
        ).unwrap();
        let mut it = Interpreter::new(&p);
        let out = it.run(&data).unwrap();
        prop_assert_eq!(out.len(), data.len());
        for (o, i) in out.iter().zip(&data) {
            prop_assert_eq!(*o, i * i + 1.0);
        }
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}
