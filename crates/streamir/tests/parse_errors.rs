//! Error reporting quality: the DSL front-end must point at the right
//! place with a usable message.

use streamir::error::Error;
use streamir::parse::parse_program;

fn parse_err(src: &str) -> Error {
    parse_program(src).expect_err("program should be rejected")
}

#[test]
fn lex_errors_carry_byte_offsets() {
    let e = parse_err("pipeline P() { actor A(pop 1, push 1) { push(pop()); } } $");
    match e {
        Error::Lex { offset, message } => {
            assert_eq!(offset, 57);
            assert!(message.contains('$'), "{message}");
        }
        other => panic!("expected lex error, got {other:?}"),
    }
}

#[test]
fn parse_errors_carry_line_and_column() {
    let src = "pipeline P() {\n    actor A(pop 1, push 1) {\n        push(;\n    }\n}";
    let e = parse_err(src);
    match e {
        Error::Parse { line, col, message } => {
            assert_eq!(line, 3, "{message}");
            assert!(col > 0);
            assert!(message.contains("expression"), "{message}");
        }
        other => panic!("expected parse error, got {other:?}"),
    }
}

#[test]
fn missing_push_rate_points_at_actor() {
    let e = parse_err("pipeline P() { actor A(pop 1) { push(pop()); } }");
    match e {
        Error::Parse { message, .. } => assert!(message.contains("push"), "{message}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn unknown_rate_parameter_is_named() {
    let e = parse_err("pipeline P(n) { actor A(pop m, push 1) { push(pop()); } }");
    match e {
        Error::Parse { message, .. } => assert!(message.contains('m'), "{message}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn state_after_statements_is_rejected() {
    let e = parse_err(
        r#"pipeline P() {
            actor A(pop 1, push 1) {
                x = pop();
                state s[4];
                push(x);
            }
        }"#,
    );
    match e {
        Error::Parse { message, .. } => {
            assert!(message.contains("state"), "{message}")
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn empty_program_is_rejected() {
    assert!(matches!(parse_err("pipeline P() { }"), Error::Parse { .. }));
}

#[test]
fn trailing_tokens_rejected() {
    let e = parse_err("pipeline P() { actor A(pop 1, push 1) { push(pop()); } } pipeline Q() { }");
    assert!(matches!(e, Error::Parse { .. }));
}

#[test]
fn splitjoin_without_join_rejected() {
    let e = parse_err(
        r#"pipeline P() {
            splitjoin {
                split duplicate;
                actor A(pop 1, push 1) { push(pop()); }
            }
        }"#,
    );
    match e {
        Error::Parse { message, .. } => assert!(message.contains("join"), "{message}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn reserved_intrinsic_names_still_parse_as_variables_without_call() {
    // `max` as a bare variable (no parens) is a plain identifier.
    let p = parse_program("pipeline P() { actor A(pop 1, push 1) { max = pop(); push(max); } }")
        .unwrap();
    assert_eq!(p.actors.len(), 1);
}

#[test]
fn deeply_nested_expressions_parse() {
    let mut expr = "pop()".to_string();
    for _ in 0..60 {
        expr = format!("({expr} + 1.0)");
    }
    let src = format!("pipeline P() {{ actor A(pop 1, push 1) {{ push({expr}); }} }}");
    let p = parse_program(&src).unwrap();
    let mut it = streamir::interp::Interpreter::new(&p);
    assert_eq!(it.run(&[0.0]).unwrap(), vec![60.0]);
}
