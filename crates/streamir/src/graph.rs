//! Hierarchical stream graphs and their flattening.
//!
//! StreamIt programs compose actors hierarchically into *pipelines*
//! (sequential composition) and *split-joins* (parallel composition with a
//! splitter distributing data to branches and a joiner merging results).
//! Scheduling and compilation operate on the flattened form ([`FlatGraph`]),
//! where splitters and joiners become explicit nodes with their own rates.

use std::collections::BTreeMap;

use crate::actor::ActorDef;
use crate::error::{Error, Result};
use crate::rates::RateExpr;

/// How a split-join distributes input to its branches.
#[derive(Debug, Clone, PartialEq)]
pub enum Splitter {
    /// Every branch receives a copy of every item.
    Duplicate,
    /// Items are dealt round-robin: `weights[i]` consecutive items to
    /// branch `i`, repeating.
    RoundRobin(Vec<RateExpr>),
}

/// How a split-join merges branch outputs (always round-robin in StreamIt).
#[derive(Debug, Clone, PartialEq)]
pub enum Joiner {
    /// `weights[i]` consecutive items taken from branch `i`, repeating.
    RoundRobin(Vec<RateExpr>),
}

/// A node of the hierarchical stream graph.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamNode {
    /// Reference to an actor definition by name.
    Actor(String),
    /// Sequential composition.
    Pipeline(Vec<StreamNode>),
    /// Parallel composition.
    SplitJoin {
        splitter: Splitter,
        branches: Vec<StreamNode>,
        joiner: Joiner,
    },
}

/// A complete streaming program: named parameters, actor definitions, and
/// the top-level graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Program name (the top-level pipeline's name).
    pub name: String,
    /// Named integer parameters bound at runtime (input size, dimensions).
    pub params: Vec<String>,
    /// Actor definitions referenced by the graph.
    pub actors: Vec<ActorDef>,
    /// The top-level stream graph.
    pub graph: StreamNode,
}

impl Program {
    /// Look up an actor definition by name.
    pub fn actor(&self, name: &str) -> Option<&ActorDef> {
        self.actors.iter().find(|a| a.name == name)
    }

    /// Flatten the hierarchical graph into nodes and channels.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Semantic`] if the graph references an undefined
    /// actor or contains an empty pipeline or split-join.
    pub fn flatten(&self) -> Result<FlatGraph> {
        let mut fg = FlatGraph {
            nodes: Vec::new(),
            channels: Vec::new(),
            entry: 0,
            exit: 0,
            entry_pop_peek: None,
            exit_push: None,
        };
        let (entry, exit) = self.flatten_node(&self.graph, &mut fg)?;
        fg.entry = entry;
        fg.exit = exit;
        fg.entry_pop_peek = Some(fg.in_rates(self, entry)?);
        fg.exit_push = Some(fg.out_rate(self, exit)?);
        Ok(fg)
    }

    fn flatten_node(&self, node: &StreamNode, fg: &mut FlatGraph) -> Result<(usize, usize)> {
        match node {
            StreamNode::Actor(name) => {
                let idx = self
                    .actors
                    .iter()
                    .position(|a| &a.name == name)
                    .ok_or_else(|| Error::Semantic(format!("undefined actor `{name}`")))?;
                let id = fg.nodes.len();
                fg.nodes.push(FlatNode::Actor { actor: idx });
                Ok((id, id))
            }
            StreamNode::Pipeline(children) => {
                if children.is_empty() {
                    return Err(Error::Semantic("empty pipeline".into()));
                }
                let mut first = None;
                let mut prev_exit: Option<usize> = None;
                for child in children {
                    let (entry, exit) = self.flatten_node(child, fg)?;
                    if first.is_none() {
                        first = Some(entry);
                    }
                    if let Some(pe) = prev_exit {
                        self.connect(fg, pe, entry)?;
                    }
                    prev_exit = Some(exit);
                }
                Ok((first.unwrap(), prev_exit.unwrap()))
            }
            StreamNode::SplitJoin {
                splitter,
                branches,
                joiner,
            } => {
                if branches.is_empty() {
                    return Err(Error::Semantic("split-join with no branches".into()));
                }
                match (splitter, joiner) {
                    (Splitter::RoundRobin(w), _) if w.len() != branches.len() => {
                        return Err(Error::Semantic(format!(
                            "splitter has {} weights for {} branches",
                            w.len(),
                            branches.len()
                        )));
                    }
                    (_, Joiner::RoundRobin(w)) if w.len() != branches.len() => {
                        return Err(Error::Semantic(format!(
                            "joiner has {} weights for {} branches",
                            w.len(),
                            branches.len()
                        )));
                    }
                    _ => {}
                }
                let split_id = fg.nodes.len();
                fg.nodes.push(FlatNode::Split(splitter.clone()));
                let join_id = fg.nodes.len();
                fg.nodes.push(FlatNode::Join(joiner.clone()));
                for (b, branch) in branches.iter().enumerate() {
                    let (entry, exit) = self.flatten_node(branch, fg)?;
                    let src_rate = match splitter {
                        Splitter::Duplicate => RateExpr::constant(1),
                        Splitter::RoundRobin(w) => w[b].clone(),
                    };
                    let (dst_rate, dst_peek) = fg.in_rates(self, entry)?;
                    fg.channels.push(Channel {
                        src: split_id,
                        src_port: b,
                        dst: entry,
                        dst_port: 0,
                        src_rate,
                        dst_rate,
                        dst_peek,
                    });
                    let Joiner::RoundRobin(w) = joiner;
                    let dst_rate = w[b].clone();
                    let src_rate = fg.out_rate(self, exit)?;
                    fg.channels.push(Channel {
                        src: exit,
                        src_port: 0,
                        dst: join_id,
                        dst_port: b,
                        src_rate,
                        dst_rate: dst_rate.clone(),
                        dst_peek: dst_rate,
                    });
                }
                Ok((split_id, join_id))
            }
        }
    }

    fn connect(&self, fg: &mut FlatGraph, src: usize, dst: usize) -> Result<()> {
        let src_rate = fg.out_rate(self, src)?;
        let (dst_rate, dst_peek) = fg.in_rates(self, dst)?;
        fg.channels.push(Channel {
            src,
            src_port: 0,
            dst,
            dst_port: 0,
            src_rate,
            dst_rate,
            dst_peek,
        });
        Ok(())
    }
}

/// A flattened node: an actor, a splitter, or a joiner.
#[derive(Debug, Clone, PartialEq)]
pub enum FlatNode {
    /// Index into [`Program::actors`].
    Actor {
        actor: usize,
    },
    Split(Splitter),
    Join(Joiner),
}

/// A FIFO channel between two flat nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Channel {
    pub src: usize,
    /// Output port on the source (only splitters have several).
    pub src_port: usize,
    pub dst: usize,
    /// Input port on the destination (only joiners have several).
    pub dst_port: usize,
    /// Items pushed onto this channel per source firing.
    pub src_rate: RateExpr,
    /// Items popped from this channel per destination firing.
    pub dst_rate: RateExpr,
    /// Furthest offset examined per destination firing.
    pub dst_peek: RateExpr,
}

/// The flattened stream graph consumed by the scheduler and the compiler.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatGraph {
    pub nodes: Vec<FlatNode>,
    pub channels: Vec<Channel>,
    /// Node receiving the program input.
    pub entry: usize,
    /// Node producing the program output.
    pub exit: usize,
    /// (pop, peek) rates of the program input, recorded at flatten time.
    pub entry_pop_peek: Option<(RateExpr, RateExpr)>,
    /// Push rate of the program output, recorded at flatten time.
    pub exit_push: Option<RateExpr>,
}

impl FlatGraph {
    /// The (pop, peek) rates of a node's external-facing input.
    ///
    /// For actors these are the declared work rates; for splitters the pop
    /// rate is 1 (duplicate) or the weight sum (round-robin); joiners are
    /// never graph entries but are handled for completeness.
    pub fn in_rates(&self, program: &Program, node: usize) -> Result<(RateExpr, RateExpr)> {
        match &self.nodes[node] {
            FlatNode::Actor { actor } => {
                let w = &program.actors[*actor].work;
                Ok((w.pop.clone(), w.peek.clone()))
            }
            FlatNode::Split(Splitter::Duplicate) => {
                Ok((RateExpr::constant(1), RateExpr::constant(1)))
            }
            FlatNode::Split(Splitter::RoundRobin(ws)) => {
                let sum = ws.iter().fold(RateExpr::zero(), |acc, w| acc + w.clone());
                Ok((sum.clone(), sum))
            }
            FlatNode::Join(_) => Err(Error::Semantic("joiner cannot be a graph entry".into())),
        }
    }

    /// Items produced per firing on a node's external-facing output.
    pub fn out_rate(&self, program: &Program, node: usize) -> Result<RateExpr> {
        match &self.nodes[node] {
            FlatNode::Actor { actor } => Ok(program.actors[*actor].work.push.clone()),
            FlatNode::Join(Joiner::RoundRobin(ws)) => {
                Ok(ws.iter().fold(RateExpr::zero(), |acc, w| acc + w.clone()))
            }
            FlatNode::Split(_) => Err(Error::Semantic("splitter cannot be a graph exit".into())),
        }
    }

    /// Indices of channels entering `node`, ordered by destination port.
    pub fn in_channels(&self, node: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..self.channels.len())
            .filter(|&c| self.channels[c].dst == node)
            .collect();
        v.sort_by_key(|&c| self.channels[c].dst_port);
        v
    }

    /// Indices of channels leaving `node`, ordered by source port.
    pub fn out_channels(&self, node: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..self.channels.len())
            .filter(|&c| self.channels[c].src == node)
            .collect();
        v.sort_by_key(|&c| self.channels[c].src_port);
        v
    }

    /// Topological order of the flat nodes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Semantic`] if the graph contains a cycle (feedback
    /// loops are not supported by this reproduction; none of the paper's
    /// benchmarks use them).
    pub fn topo_order(&self) -> Result<Vec<usize>> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for c in &self.channels {
            indeg[c.dst] += 1;
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        stack.sort_unstable();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = stack.pop() {
            order.push(u);
            for &c in &self.out_channels(u) {
                let d = self.channels[c].dst;
                indeg[d] -= 1;
                if indeg[d] == 0 {
                    stack.push(d);
                }
            }
        }
        if order.len() != n {
            return Err(Error::Semantic("stream graph contains a cycle".into()));
        }
        Ok(order)
    }

    /// Pretty, deterministic description used in tests and debug output.
    pub fn describe(&self, program: &Program) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                FlatNode::Actor { actor } => {
                    let _ = writeln!(s, "n{i}: actor {}", program.actors[*actor].name);
                }
                FlatNode::Split(Splitter::Duplicate) => {
                    let _ = writeln!(s, "n{i}: split duplicate");
                }
                FlatNode::Split(Splitter::RoundRobin(_)) => {
                    let _ = writeln!(s, "n{i}: split roundrobin");
                }
                FlatNode::Join(_) => {
                    let _ = writeln!(s, "n{i}: join roundrobin");
                }
            }
        }
        for c in &self.channels {
            let _ = writeln!(
                s,
                "n{}.{} -> n{}.{} ({} : {})",
                c.src, c.src_port, c.dst, c.dst_port, c.src_rate, c.dst_rate
            );
        }
        s
    }
}

/// Helper: collect bindings from name/value pairs (test convenience).
pub fn bindings(pairs: &[(&str, i64)]) -> BTreeMap<String, i64> {
    pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::WorkFn;
    use crate::ir::{Expr, Stmt};

    fn simple_actor(name: &str, pop: i64, push: i64) -> ActorDef {
        ActorDef::new(
            name,
            WorkFn {
                pop: RateExpr::constant(pop),
                push: RateExpr::constant(push),
                peek: RateExpr::constant(pop),
                body: vec![Stmt::Push(Expr::Pop)],
            },
        )
    }

    fn two_stage_program() -> Program {
        Program {
            name: "P".into(),
            params: vec![],
            actors: vec![simple_actor("A", 1, 2), simple_actor("B", 3, 1)],
            graph: StreamNode::Pipeline(vec![
                StreamNode::Actor("A".into()),
                StreamNode::Actor("B".into()),
            ]),
        }
    }

    #[test]
    fn flatten_pipeline() {
        let p = two_stage_program();
        let fg = p.flatten().unwrap();
        assert_eq!(fg.nodes.len(), 2);
        assert_eq!(fg.channels.len(), 1);
        assert_eq!(fg.entry, 0);
        assert_eq!(fg.exit, 1);
        let c = &fg.channels[0];
        assert_eq!(c.src_rate, RateExpr::constant(2));
        assert_eq!(c.dst_rate, RateExpr::constant(3));
    }

    #[test]
    fn flatten_splitjoin_duplicate() {
        let p = Program {
            name: "P".into(),
            params: vec![],
            actors: vec![simple_actor("A", 1, 1), simple_actor("B", 1, 1)],
            graph: StreamNode::SplitJoin {
                splitter: Splitter::Duplicate,
                branches: vec![StreamNode::Actor("A".into()), StreamNode::Actor("B".into())],
                joiner: Joiner::RoundRobin(vec![RateExpr::constant(1), RateExpr::constant(1)]),
            },
        };
        let fg = p.flatten().unwrap();
        // split, join, A, B
        assert_eq!(fg.nodes.len(), 4);
        assert_eq!(fg.channels.len(), 4);
        assert!(matches!(fg.nodes[fg.entry], FlatNode::Split(_)));
        assert!(matches!(fg.nodes[fg.exit], FlatNode::Join(_)));
        let topo = fg.topo_order().unwrap();
        assert_eq!(topo.len(), 4);
        // split first, join last
        assert_eq!(topo[0], fg.entry);
        assert_eq!(topo[3], fg.exit);
    }

    #[test]
    fn undefined_actor_is_semantic_error() {
        let p = Program {
            name: "P".into(),
            params: vec![],
            actors: vec![],
            graph: StreamNode::Actor("Ghost".into()),
        };
        assert!(matches!(p.flatten(), Err(Error::Semantic(_))));
    }

    #[test]
    fn empty_pipeline_rejected() {
        let p = Program {
            name: "P".into(),
            params: vec![],
            actors: vec![],
            graph: StreamNode::Pipeline(vec![]),
        };
        assert!(p.flatten().is_err());
    }

    #[test]
    fn weight_arity_mismatch_rejected() {
        let p = Program {
            name: "P".into(),
            params: vec![],
            actors: vec![simple_actor("A", 1, 1)],
            graph: StreamNode::SplitJoin {
                splitter: Splitter::RoundRobin(vec![RateExpr::constant(1)]),
                branches: vec![StreamNode::Actor("A".into())],
                joiner: Joiner::RoundRobin(vec![RateExpr::constant(1), RateExpr::constant(1)]),
            },
        };
        assert!(p.flatten().is_err());
    }

    #[test]
    fn in_out_channel_ordering_by_port() {
        let p = Program {
            name: "P".into(),
            params: vec![],
            actors: vec![
                simple_actor("A", 1, 1),
                simple_actor("B", 1, 1),
                simple_actor("C", 1, 1),
            ],
            graph: StreamNode::SplitJoin {
                splitter: Splitter::Duplicate,
                branches: vec![
                    StreamNode::Actor("A".into()),
                    StreamNode::Actor("B".into()),
                    StreamNode::Actor("C".into()),
                ],
                joiner: Joiner::RoundRobin(vec![
                    RateExpr::constant(1),
                    RateExpr::constant(1),
                    RateExpr::constant(1),
                ]),
            },
        };
        let fg = p.flatten().unwrap();
        let outs = fg.out_channels(fg.entry);
        assert_eq!(outs.len(), 3);
        for (port, &c) in outs.iter().enumerate() {
            assert_eq!(fg.channels[c].src_port, port);
        }
        let ins = fg.in_channels(fg.exit);
        assert_eq!(ins.len(), 3);
        for (port, &c) in ins.iter().enumerate() {
            assert_eq!(fg.channels[c].dst_port, port);
        }
    }

    #[test]
    fn describe_mentions_every_node() {
        let p = two_stage_program();
        let fg = p.flatten().unwrap();
        let d = fg.describe(&p);
        assert!(d.contains("actor A"));
        assert!(d.contains("actor B"));
        assert!(d.contains("->"));
    }
}
