//! Reference interpreter — the golden model.
//!
//! Executes a program's steady-state schedule directly on the CPU, firing
//! flat nodes in topological order and moving `f32` items through explicit
//! FIFO buffers. Every compiled GPU variant produced by the Adaptic
//! compiler is differentially tested against this interpreter.

use std::collections::{HashMap, VecDeque};

use crate::actor::{ActorDef, StateVar};
use crate::error::{Error, Result};
use crate::graph::{FlatGraph, FlatNode, Joiner, Program, Splitter};
use crate::ir::{BinOp, Expr, Intrinsic, Stmt, UnOp};
use crate::rates::Bindings;
use crate::schedule::rate_match;
use crate::value::Value;

/// Interprets a streaming [`Program`] on concrete data.
///
/// # Example
///
/// ```
/// use streamir::parse::parse_program;
/// use streamir::interp::Interpreter;
///
/// let p = parse_program(
///     "pipeline Main() { actor Neg(pop 1, push 1) { push(0.0 - pop()); } }",
/// ).unwrap();
/// let mut it = Interpreter::new(&p);
/// assert_eq!(it.run(&[1.0, -2.0]).unwrap(), vec![-1.0, 2.0]);
/// ```
#[derive(Debug)]
pub struct Interpreter<'p> {
    program: &'p Program,
    binds: Bindings,
    /// Host-bound state arrays, keyed by (actor name, array name).
    arrays: HashMap<(String, String), Vec<f32>>,
    /// Persistent scalar state, keyed by (actor name, var name).
    scalars: HashMap<(String, String), f32>,
}

impl<'p> Interpreter<'p> {
    /// Create an interpreter for `program` with no parameters bound.
    pub fn new(program: &'p Program) -> Self {
        Interpreter {
            program,
            binds: Bindings::new(),
            arrays: HashMap::new(),
            scalars: HashMap::new(),
        }
    }

    /// Bind a program parameter.
    pub fn bind_param(&mut self, name: &str, value: i64) -> &mut Self {
        self.binds.insert(name.to_string(), value);
        self
    }

    /// Bind a state array of an actor to host data.
    pub fn bind_state(&mut self, actor: &str, array: &str, data: Vec<f32>) -> &mut Self {
        self.arrays
            .insert((actor.to_string(), array.to_string()), data);
        self
    }

    /// The current parameter bindings.
    pub fn bindings(&self) -> &Bindings {
        &self.binds
    }

    /// Run as many steady-state iterations as `input` allows and return the
    /// produced output stream.
    ///
    /// # Errors
    ///
    /// Propagates scheduling errors, [`Error::InsufficientInput`] when the
    /// input cannot sustain even one steady state, and [`Error::Runtime`]
    /// for work-body failures (unknown variables, state array overruns...).
    pub fn run(&mut self, input: &[f32]) -> Result<Vec<f32>> {
        let graph = self.program.flatten()?;
        let schedule = rate_match(&graph, &self.binds)?;
        if schedule.steady_input == 0 {
            return Err(Error::RateMismatch("program consumes no input".into()));
        }
        let iterations = input.len() as u64 / schedule.steady_input;
        if iterations == 0 {
            return Err(Error::InsufficientInput {
                needed: schedule.steady_input as usize,
                got: input.len(),
            });
        }

        // Initialize scalar state.
        for actor in &self.program.actors {
            for sv in &actor.state {
                if let StateVar::Scalar { name, init } = sv {
                    self.scalars
                        .entry((actor.name.clone(), name.clone()))
                        .or_insert(*init);
                }
            }
        }
        // Validate bound array lengths.
        for actor in &self.program.actors {
            for sv in &actor.state {
                if let StateVar::Array { name, len } = sv {
                    let need = len.eval(&self.binds)? as usize;
                    let got = self
                        .arrays
                        .get(&(actor.name.clone(), name.clone()))
                        .map(Vec::len)
                        .unwrap_or(0);
                    if got < need {
                        return Err(Error::Runtime(format!(
                            "state array {}::{name} needs {need} elements, has {got}",
                            actor.name
                        )));
                    }
                }
            }
        }

        let mut channels: Vec<VecDeque<f32>> =
            graph.channels.iter().map(|_| VecDeque::new()).collect();
        let mut cursor = 0usize;
        let mut output = Vec::new();

        for _ in 0..iterations {
            for entry in schedule.entries.clone() {
                for _ in 0..entry.reps {
                    self.fire(
                        &graph,
                        entry.node,
                        &mut channels,
                        input,
                        &mut cursor,
                        &mut output,
                    )?;
                }
            }
        }
        Ok(output)
    }

    fn fire(
        &mut self,
        graph: &FlatGraph,
        node: usize,
        channels: &mut [VecDeque<f32>],
        input: &[f32],
        cursor: &mut usize,
        output: &mut Vec<f32>,
    ) -> Result<()> {
        let in_chs = graph.in_channels(node);
        let out_chs = graph.out_channels(node);
        let is_entry = node == graph.entry;
        let is_exit = node == graph.exit;

        match &graph.nodes[node] {
            FlatNode::Actor { actor } => {
                let actor = &self.program.actors[*actor];
                let in_ch = in_chs.first().copied();
                let out_ch = out_chs.first().copied();
                self.fire_actor(
                    actor, in_ch, out_ch, is_entry, is_exit, channels, input, cursor, output,
                )
            }
            FlatNode::Split(splitter) => {
                let read = |channels: &mut [VecDeque<f32>], cursor: &mut usize| -> Result<f32> {
                    if is_entry {
                        let v = *input
                            .get(*cursor)
                            .ok_or_else(|| Error::Runtime("input underflow".into()))?;
                        *cursor += 1;
                        Ok(v)
                    } else {
                        channels[in_chs[0]]
                            .pop_front()
                            .ok_or_else(|| Error::Runtime("channel underflow".into()))
                    }
                };
                match splitter {
                    Splitter::Duplicate => {
                        let v = read(channels, cursor)?;
                        for &c in &out_chs {
                            channels[c].push_back(v);
                        }
                    }
                    Splitter::RoundRobin(ws) => {
                        for (b, w) in ws.iter().enumerate() {
                            let n = w.eval(&self.binds)?;
                            for _ in 0..n {
                                let v = read(channels, cursor)?;
                                channels[out_chs[b]].push_back(v);
                            }
                        }
                    }
                }
                Ok(())
            }
            FlatNode::Join(Joiner::RoundRobin(ws)) => {
                for (b, w) in ws.iter().enumerate() {
                    let n = w.eval(&self.binds)?;
                    for _ in 0..n {
                        let v = channels[in_chs[b]]
                            .pop_front()
                            .ok_or_else(|| Error::Runtime("channel underflow".into()))?;
                        if is_exit {
                            output.push(v);
                        } else {
                            channels[out_chs[0]].push_back(v);
                        }
                    }
                }
                Ok(())
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn fire_actor(
        &mut self,
        actor: &ActorDef,
        in_ch: Option<usize>,
        out_ch: Option<usize>,
        is_entry: bool,
        is_exit: bool,
        channels: &mut [VecDeque<f32>],
        input: &[f32],
        cursor: &mut usize,
        output: &mut Vec<f32>,
    ) -> Result<()> {
        let mut env = FiringEnv {
            actor,
            binds: &self.binds,
            locals: HashMap::new(),
            arrays: &mut self.arrays,
            scalars: &mut self.scalars,
            in_ch,
            out_ch,
            is_entry,
            is_exit,
            channels,
            input,
            cursor,
            output,
            popped: 0,
        };
        for stmt in &actor.work.body {
            env.exec(stmt)?;
        }
        // Consume the *declared* pop rate (StreamIt semantics: actors such
        // as Figure 4's stencil read only via peek but still consume their
        // declared window). Popping beyond the declaration is an error.
        let dynamic = env.popped;
        let declared = actor.work.pop.eval(&self.binds)?.max(0) as usize;
        if dynamic > declared {
            return Err(Error::Runtime(format!(
                "actor `{}` popped {dynamic} items but declares pop {declared}",
                actor.name
            )));
        }
        if is_entry {
            *cursor += declared;
        } else if let Some(c) = in_ch {
            for _ in 0..declared {
                channels[c].pop_front();
            }
        }
        Ok(())
    }
}

/// Mutable context for evaluating one actor firing.
struct FiringEnv<'a> {
    actor: &'a ActorDef,
    binds: &'a Bindings,
    locals: HashMap<String, Value>,
    arrays: &'a mut HashMap<(String, String), Vec<f32>>,
    scalars: &'a mut HashMap<(String, String), f32>,
    in_ch: Option<usize>,
    out_ch: Option<usize>,
    is_entry: bool,
    is_exit: bool,
    channels: &'a mut [VecDeque<f32>],
    input: &'a [f32],
    cursor: &'a mut usize,
    output: &'a mut Vec<f32>,
    /// Items consumed so far this firing (pop advances, peek does not).
    popped: usize,
}

impl FiringEnv<'_> {
    fn exec(&mut self, stmt: &Stmt) -> Result<()> {
        match stmt {
            Stmt::Assign { name, expr } => {
                let v = self.eval(expr)?;
                self.assign(name, v)
            }
            Stmt::StateStore { array, index, expr } => {
                let i = self.eval(index)?.as_i64()?;
                let v = self.eval(expr)?.as_f32()?;
                let key = (self.actor.name.clone(), array.clone());
                let arr = self
                    .arrays
                    .get_mut(&key)
                    .ok_or_else(|| Error::Runtime(format!("unbound state array `{array}`")))?;
                let slot = arr.get_mut(i as usize).ok_or_else(|| {
                    Error::Runtime(format!("state array `{array}` index {i} out of bounds"))
                })?;
                *slot = v;
                Ok(())
            }
            Stmt::Push(expr) => {
                let v = self.eval(expr)?.as_f32()?;
                if self.is_exit {
                    self.output.push(v);
                } else if let Some(c) = self.out_ch {
                    self.channels[c].push_back(v);
                } else {
                    return Err(Error::Runtime("push with no output channel".into()));
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.eval(cond)?.as_bool();
                let body = if c { then_body } else { else_body };
                for s in body {
                    self.exec(s)?;
                }
                Ok(())
            }
            Stmt::For {
                var,
                start,
                end,
                body,
            } => {
                let lo = self.eval(start)?.as_i64()?;
                let hi = self.eval(end)?.as_i64()?;
                for i in lo..hi {
                    self.locals.insert(var.clone(), Value::I64(i));
                    for s in body {
                        self.exec(s)?;
                    }
                }
                Ok(())
            }
        }
    }

    fn assign(&mut self, name: &str, v: Value) -> Result<()> {
        // State scalars shadow locals; params are read-only.
        if self
            .actor
            .state
            .iter()
            .any(|s| matches!(s, StateVar::Scalar { name: n, .. } if n == name))
        {
            self.scalars
                .insert((self.actor.name.clone(), name.to_string()), v.as_f32()?);
            return Ok(());
        }
        if self.binds.contains_key(name) {
            return Err(Error::Runtime(format!(
                "cannot assign to program parameter `{name}`"
            )));
        }
        self.locals.insert(name.to_string(), v);
        Ok(())
    }

    fn read_at(&self, offset: usize) -> Result<f32> {
        if self.is_entry {
            self.input
                .get(*self.cursor + offset)
                .copied()
                .ok_or_else(|| Error::Runtime("peek past end of input".into()))
        } else {
            let c = self
                .in_ch
                .ok_or_else(|| Error::Runtime("pop with no input channel".into()))?;
            self.channels[c]
                .get(offset)
                .copied()
                .ok_or_else(|| Error::Runtime("peek past end of channel".into()))
        }
    }

    fn eval(&mut self, expr: &Expr) -> Result<Value> {
        match expr {
            Expr::Float(x) => Ok(Value::F32(*x)),
            Expr::Int(i) => Ok(Value::I64(*i)),
            Expr::Var(name) => self.lookup(name),
            Expr::Pop => {
                let v = self.read_at(self.popped)?;
                self.popped += 1;
                Ok(Value::F32(v))
            }
            Expr::Peek(e) => {
                let i = self.eval(e)?.as_i64()?;
                if i < 0 {
                    return Err(Error::Runtime(format!("negative peek offset {i}")));
                }
                Ok(Value::F32(self.read_at(i as usize)?))
            }
            Expr::StateLoad { array, index } => {
                let i = self.eval(index)?.as_i64()?;
                let key = (self.actor.name.clone(), array.clone());
                let arr = self
                    .arrays
                    .get(&key)
                    .ok_or_else(|| Error::Runtime(format!("unbound state array `{array}`")))?;
                arr.get(i as usize).copied().map(Value::F32).ok_or_else(|| {
                    Error::Runtime(format!(
                        "state array `{array}` index {i} out of bounds (len {})",
                        arr.len()
                    ))
                })
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.eval(lhs)?;
                let b = self.eval(rhs)?;
                eval_binop(*op, a, b)
            }
            Expr::Unary { op, operand } => {
                let v = self.eval(operand)?;
                match op {
                    UnOp::Neg => match v {
                        // Wrapping: `-i64::MIN` has no i64 representation.
                        Value::I64(i) => Ok(Value::I64(i.wrapping_neg())),
                        other => Ok(Value::F32(-other.as_f32()?)),
                    },
                    UnOp::Not => Ok(Value::Bool(!v.as_bool())),
                }
            }
            Expr::Call { intrinsic, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                eval_intrinsic(*intrinsic, &vals)
            }
        }
    }

    fn lookup(&self, name: &str) -> Result<Value> {
        if let Some(v) = self.locals.get(name) {
            return Ok(*v);
        }
        if let Some(v) = self
            .scalars
            .get(&(self.actor.name.clone(), name.to_string()))
        {
            return Ok(Value::F32(*v));
        }
        if let Some(v) = self.binds.get(name) {
            return Ok(Value::I64(*v));
        }
        Err(Error::Runtime(format!("unknown variable `{name}`")))
    }
}

impl Interpreter<'_> {
    /// Advance past the items consumed by an entry-actor firing.
    ///
    /// (Exposed for tests; `run` manages this internally.)
    #[doc(hidden)]
    pub fn _noop(&self) {}
}

/// Evaluate a binary operator on two values with numeric coercion.
///
/// Integer `+`/`-`/`*` (and `/`/`%` at the `i64::MIN / -1` edge) use
/// two's-complement *wrapping* semantics, matching the generated CUDA
/// code's machine arithmetic; only division/remainder by zero is a
/// runtime error. The bytecode evaluator (`adaptic::bytecode`) mirrors
/// these semantics exactly.
pub fn eval_binop(op: BinOp, a: Value, b: Value) -> Result<Value> {
    use BinOp::*;
    // Integer ops stay integral when both sides are integers.
    if let (Value::I64(x), Value::I64(y)) = (a, b) {
        return Ok(match op {
            Add => Value::I64(x.wrapping_add(y)),
            Sub => Value::I64(x.wrapping_sub(y)),
            Mul => Value::I64(x.wrapping_mul(y)),
            Div => {
                if y == 0 {
                    return Err(Error::Runtime("integer division by zero".into()));
                }
                Value::I64(x.wrapping_div(y))
            }
            Rem => {
                if y == 0 {
                    return Err(Error::Runtime("integer remainder by zero".into()));
                }
                Value::I64(x.wrapping_rem(y))
            }
            Lt => Value::Bool(x < y),
            Le => Value::Bool(x <= y),
            Gt => Value::Bool(x > y),
            Ge => Value::Bool(x >= y),
            Eq => Value::Bool(x == y),
            Ne => Value::Bool(x != y),
            And => Value::Bool(x != 0 && y != 0),
            Or => Value::Bool(x != 0 || y != 0),
        });
    }
    if matches!(op, And | Or) {
        let (x, y) = (a.as_bool(), b.as_bool());
        return Ok(Value::Bool(match op {
            And => x && y,
            Or => x || y,
            _ => unreachable!(),
        }));
    }
    let x = a.as_f32()?;
    let y = b.as_f32()?;
    Ok(match op {
        Add => Value::F32(x + y),
        Sub => Value::F32(x - y),
        Mul => Value::F32(x * y),
        Div => Value::F32(x / y),
        Rem => Value::F32(x % y),
        Lt => Value::Bool(x < y),
        Le => Value::Bool(x <= y),
        Gt => Value::Bool(x > y),
        Ge => Value::Bool(x >= y),
        Eq => Value::Bool(x == y),
        Ne => Value::Bool(x != y),
        And | Or => unreachable!("handled above"),
    })
}

/// Evaluate an intrinsic on already-evaluated arguments.
pub fn eval_intrinsic(intr: Intrinsic, args: &[Value]) -> Result<Value> {
    if args.len() != intr.arity() {
        return Err(Error::Runtime(format!(
            "{} expects {} arguments, got {}",
            intr.name(),
            intr.arity(),
            args.len()
        )));
    }
    let f = |i: usize| args[i].as_f32();
    Ok(match intr {
        Intrinsic::Sqrt => Value::F32(f(0)?.sqrt()),
        Intrinsic::Exp => Value::F32(f(0)?.exp()),
        Intrinsic::Log => Value::F32(f(0)?.ln()),
        Intrinsic::Abs => Value::F32(f(0)?.abs()),
        Intrinsic::Sin => Value::F32(f(0)?.sin()),
        Intrinsic::Cos => Value::F32(f(0)?.cos()),
        Intrinsic::Floor => Value::F32(f(0)?.floor()),
        Intrinsic::Max => Value::F32(f(0)?.max(f(1)?)),
        Intrinsic::Min => Value::F32(f(0)?.min(f(1)?)),
        Intrinsic::Pow => Value::F32(f(0)?.powf(f(1)?)),
        Intrinsic::Select => {
            if args[0].as_bool() {
                args[1]
            } else {
                args[2]
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::WorkFn;
    use crate::graph::StreamNode;
    use crate::rates::RateExpr;

    fn program_with(actors: Vec<ActorDef>, params: &[&str]) -> Program {
        let graph = StreamNode::Pipeline(
            actors
                .iter()
                .map(|a| StreamNode::Actor(a.name.clone()))
                .collect(),
        );
        Program {
            name: "P".into(),
            params: params.iter().map(|s| s.to_string()).collect(),
            actors,
            graph,
        }
    }

    fn scale_actor() -> ActorDef {
        ActorDef::new(
            "Scale",
            WorkFn {
                pop: RateExpr::constant(1),
                push: RateExpr::constant(1),
                peek: RateExpr::constant(1),
                body: vec![Stmt::Push(Expr::mul(Expr::Pop, Expr::Float(3.0)))],
            },
        )
    }

    #[test]
    fn single_actor_map() {
        let p = program_with(vec![scale_actor()], &[]);
        let mut it = Interpreter::new(&p);
        assert_eq!(it.run(&[1.0, 2.0, 3.0]).unwrap(), vec![3.0, 6.0, 9.0]);
    }

    #[test]
    fn pipeline_composes() {
        let p = program_with(
            vec![scale_actor(), {
                let mut a = scale_actor();
                a.name = "Scale2".into();
                a
            }],
            &[],
        );
        let mut it = Interpreter::new(&p);
        assert_eq!(it.run(&[1.0]).unwrap(), vec![9.0]);
    }

    #[test]
    fn symbolic_sum_reduction() {
        let sum = ActorDef::new(
            "Sum",
            WorkFn {
                pop: RateExpr::param("N"),
                push: RateExpr::constant(1),
                peek: RateExpr::param("N"),
                body: vec![
                    Stmt::Assign {
                        name: "acc".into(),
                        expr: Expr::Float(0.0),
                    },
                    Stmt::For {
                        var: "i".into(),
                        start: Expr::Int(0),
                        end: Expr::var("N"),
                        body: vec![Stmt::Assign {
                            name: "acc".into(),
                            expr: Expr::add(Expr::var("acc"), Expr::Pop),
                        }],
                    },
                    Stmt::Push(Expr::var("acc")),
                ],
            },
        );
        let p = program_with(vec![sum], &["N"]);
        let mut it = Interpreter::new(&p);
        it.bind_param("N", 4);
        assert_eq!(
            it.run(&[1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0])
                .unwrap(),
            vec![10.0, 100.0]
        );
    }

    #[test]
    fn peeks_do_not_consume() {
        // push(peek(1)); push(pop()) -> duplicates forward-looking value
        let a = ActorDef::new(
            "PeekAhead",
            WorkFn {
                pop: RateExpr::constant(2),
                push: RateExpr::constant(2),
                peek: RateExpr::constant(2),
                body: vec![
                    Stmt::Push(Expr::Peek(Box::new(Expr::Int(1)))),
                    Stmt::Push(Expr::Pop),
                    Stmt::Assign {
                        name: "_drop".into(),
                        expr: Expr::Pop,
                    },
                ],
            },
        );
        let p = program_with(vec![a], &[]);
        let mut it = Interpreter::new(&p);
        assert_eq!(
            it.run(&[1.0, 2.0, 3.0, 4.0]).unwrap(),
            vec![2.0, 1.0, 4.0, 3.0]
        );
    }

    #[test]
    fn state_array_binding() {
        // Dot product with a bound vector: pop N matrix row, multiply by x.
        let dot = ActorDef::new(
            "Dot",
            WorkFn {
                pop: RateExpr::param("N"),
                push: RateExpr::constant(1),
                peek: RateExpr::param("N"),
                body: vec![
                    Stmt::Assign {
                        name: "acc".into(),
                        expr: Expr::Float(0.0),
                    },
                    Stmt::For {
                        var: "i".into(),
                        start: Expr::Int(0),
                        end: Expr::var("N"),
                        body: vec![Stmt::Assign {
                            name: "acc".into(),
                            expr: Expr::add(
                                Expr::var("acc"),
                                Expr::mul(
                                    Expr::Pop,
                                    Expr::StateLoad {
                                        array: "x".into(),
                                        index: Box::new(Expr::var("i")),
                                    },
                                ),
                            ),
                        }],
                    },
                    Stmt::Push(Expr::var("acc")),
                ],
            },
        )
        .with_state_array("x", RateExpr::param("N"));
        let p = program_with(vec![dot], &["N"]);
        let mut it = Interpreter::new(&p);
        it.bind_param("N", 3);
        it.bind_state("Dot", "x", vec![1.0, 10.0, 100.0]);
        assert_eq!(it.run(&[1.0, 2.0, 3.0]).unwrap(), vec![321.0]);
    }

    #[test]
    fn missing_state_array_is_error() {
        let a = ActorDef::new(
            "NeedsX",
            WorkFn {
                pop: RateExpr::constant(1),
                push: RateExpr::constant(1),
                peek: RateExpr::constant(1),
                body: vec![Stmt::Push(Expr::Pop)],
            },
        )
        .with_state_array("x", RateExpr::constant(4));
        let p = program_with(vec![a], &[]);
        let mut it = Interpreter::new(&p);
        assert!(matches!(it.run(&[1.0]), Err(Error::Runtime(_))));
    }

    #[test]
    fn insufficient_input_reported() {
        let sum = ActorDef::new(
            "Sum8",
            WorkFn {
                pop: RateExpr::constant(8),
                push: RateExpr::constant(1),
                peek: RateExpr::constant(8),
                body: vec![Stmt::Push(Expr::Pop)],
            },
        );
        let p = program_with(vec![sum], &[]);
        let mut it = Interpreter::new(&p);
        assert_eq!(
            it.run(&[1.0, 2.0]),
            Err(Error::InsufficientInput { needed: 8, got: 2 })
        );
    }

    #[test]
    fn scalar_state_persists_across_firings() {
        // Running sum: count = count + pop(); push(count)
        let a = ActorDef::new(
            "RunningSum",
            WorkFn {
                pop: RateExpr::constant(1),
                push: RateExpr::constant(1),
                peek: RateExpr::constant(1),
                body: vec![
                    Stmt::Assign {
                        name: "count".into(),
                        expr: Expr::add(Expr::var("count"), Expr::Pop),
                    },
                    Stmt::Push(Expr::var("count")),
                ],
            },
        )
        .with_state_scalar("count", 0.0);
        let p = program_with(vec![a], &[]);
        let mut it = Interpreter::new(&p);
        assert_eq!(it.run(&[1.0, 2.0, 3.0]).unwrap(), vec![1.0, 3.0, 6.0]);
    }

    #[test]
    fn assigning_to_param_is_error() {
        let a = ActorDef::new(
            "Bad",
            WorkFn {
                pop: RateExpr::constant(1),
                push: RateExpr::constant(1),
                peek: RateExpr::constant(1),
                body: vec![
                    Stmt::Assign {
                        name: "N".into(),
                        expr: Expr::Float(1.0),
                    },
                    Stmt::Push(Expr::Pop),
                ],
            },
        );
        let p = program_with(vec![a], &["N"]);
        let mut it = Interpreter::new(&p);
        it.bind_param("N", 4);
        assert!(matches!(it.run(&[1.0]), Err(Error::Runtime(_))));
    }

    #[test]
    fn intrinsics_and_binops_evaluate() {
        assert_eq!(
            eval_intrinsic(Intrinsic::Max, &[Value::F32(1.0), Value::F32(2.0)]).unwrap(),
            Value::F32(2.0)
        );
        assert_eq!(
            eval_intrinsic(
                Intrinsic::Select,
                &[Value::Bool(false), Value::F32(1.0), Value::F32(2.0)]
            )
            .unwrap(),
            Value::F32(2.0)
        );
        assert!(eval_intrinsic(Intrinsic::Sqrt, &[]).is_err());
        assert_eq!(
            eval_binop(BinOp::Div, Value::I64(7), Value::I64(2)).unwrap(),
            Value::I64(3)
        );
        assert!(eval_binop(BinOp::Div, Value::I64(1), Value::I64(0)).is_err());
        assert_eq!(
            eval_binop(BinOp::Lt, Value::F32(1.0), Value::I64(2)).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn splitjoin_duplicate_then_join_interleaves() {
        use crate::graph::{Joiner, Splitter};
        let double = ActorDef::new(
            "Double",
            WorkFn {
                pop: RateExpr::constant(1),
                push: RateExpr::constant(1),
                peek: RateExpr::constant(1),
                body: vec![Stmt::Push(Expr::mul(Expr::Pop, Expr::Float(2.0)))],
            },
        );
        let triple = ActorDef::new(
            "Triple",
            WorkFn {
                pop: RateExpr::constant(1),
                push: RateExpr::constant(1),
                peek: RateExpr::constant(1),
                body: vec![Stmt::Push(Expr::mul(Expr::Pop, Expr::Float(3.0)))],
            },
        );
        let p = Program {
            name: "P".into(),
            params: vec![],
            actors: vec![double, triple],
            graph: StreamNode::SplitJoin {
                splitter: Splitter::Duplicate,
                branches: vec![
                    StreamNode::Actor("Double".into()),
                    StreamNode::Actor("Triple".into()),
                ],
                joiner: Joiner::RoundRobin(vec![RateExpr::constant(1), RateExpr::constant(1)]),
            },
        };
        let mut it = Interpreter::new(&p);
        assert_eq!(it.run(&[1.0, 10.0]).unwrap(), vec![2.0, 3.0, 20.0, 30.0]);
    }

    #[test]
    fn roundrobin_split_distributes() {
        use crate::graph::{Joiner, Splitter};
        let id = |name: &str| {
            ActorDef::new(
                name,
                WorkFn {
                    pop: RateExpr::constant(1),
                    push: RateExpr::constant(1),
                    peek: RateExpr::constant(1),
                    body: vec![Stmt::Push(Expr::Pop)],
                },
            )
        };
        let p = Program {
            name: "P".into(),
            params: vec![],
            actors: vec![id("A"), id("B")],
            graph: StreamNode::SplitJoin {
                splitter: Splitter::RoundRobin(vec![RateExpr::constant(2), RateExpr::constant(1)]),
                branches: vec![StreamNode::Actor("A".into()), StreamNode::Actor("B".into())],
                joiner: Joiner::RoundRobin(vec![RateExpr::constant(2), RateExpr::constant(1)]),
            },
        };
        let mut it = Interpreter::new(&p);
        // Round-robin 2:1 in, 2:1 out — order preserved.
        assert_eq!(
            it.run(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap(),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        );
    }
}
