//! Steady-state scheduling (rate matching).
//!
//! To ensure correct functionality, a StreamIt program needs a *steady-state
//! schedule*: a repetition count per actor such that every channel's
//! production and consumption balance out over one schedule iteration
//! (`reps[src] * push_rate == reps[dst] * pop_rate`). The scheduler solves
//! these balance equations with exact rational arithmetic, scales the
//! solution to the smallest integer vector, and derives channel buffer
//! sizes.
//!
//! Rates may be symbolic in program parameters, so a schedule is computed
//! *for a concrete parameter binding* — this is exactly the point where
//! input size enters the compilation flow.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::error::{Error, Result};
use crate::graph::{FlatGraph, FlatNode, Program, Splitter};
use crate::rates::{Bindings, RateInterval};

/// Repetition count for one flat node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// Flat-node index.
    pub node: usize,
    /// Firings per steady-state iteration.
    pub reps: u64,
}

/// A steady-state schedule for a flattened graph under a concrete binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Entries in topological order.
    pub entries: Vec<ScheduleEntry>,
    /// Required capacity of each channel (indexed like
    /// [`FlatGraph::channels`]).
    pub buffer_sizes: Vec<u64>,
    /// Items consumed from the program input per steady-state iteration.
    pub steady_input: u64,
    /// Items produced on the program output per steady-state iteration.
    pub steady_output: u64,
}

impl Schedule {
    /// Repetition count of a node.
    pub fn reps(&self, node: usize) -> u64 {
        self.entries
            .iter()
            .find(|e| e.node == node)
            .map_or(0, |e| e.reps)
    }

    /// Total firings across all nodes in one steady state.
    pub fn total_firings(&self) -> u64 {
        self.entries.iter().map(|e| e.reps).sum()
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        0
    } else {
        a / gcd(a, b) * b
    }
}

/// An exact nonnegative rational, just big enough for rate matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ratio {
    num: u64,
    den: u64,
}

impl Ratio {
    fn new(num: u64, den: u64) -> Ratio {
        debug_assert!(den != 0);
        let g = gcd(num, den).max(1);
        Ratio {
            num: num / g,
            den: den / g,
        }
    }

    fn mul(self, num: u64, den: u64) -> Ratio {
        // Cross-reduce before multiplying to avoid overflow.
        let g1 = gcd(self.num, den).max(1);
        let g2 = gcd(num, self.den).max(1);
        Ratio::new((self.num / g1) * (num / g2), (self.den / g2) * (den / g1))
    }
}

/// Compute the steady-state schedule of `graph` under `binds`.
///
/// # Errors
///
/// * [`Error::RateMismatch`] if the balance equations have no solution
///   (inconsistent rates) or a rate evaluates to a non-positive number.
/// * [`Error::UnboundParam`] if a rate mentions an unbound parameter.
/// * [`Error::Semantic`] if the graph is cyclic or disconnected.
pub fn rate_match(graph: &FlatGraph, binds: &Bindings) -> Result<Schedule> {
    let n = graph.nodes.len();
    // Evaluate all channel rates up front.
    let mut src_rates = Vec::with_capacity(graph.channels.len());
    let mut dst_rates = Vec::with_capacity(graph.channels.len());
    let mut dst_peeks = Vec::with_capacity(graph.channels.len());
    for c in &graph.channels {
        let s = c.src_rate.eval(binds)?;
        let d = c.dst_rate.eval(binds)?;
        let p = c.dst_peek.eval(binds)?;
        if s <= 0 || d <= 0 {
            return Err(Error::RateMismatch(format!(
                "channel n{} -> n{} has non-positive rate ({s} : {d})",
                c.src, c.dst
            )));
        }
        src_rates.push(s as u64);
        dst_rates.push(d as u64);
        dst_peeks.push(p.max(d) as u64);
    }

    // Propagate rational repetition counts from the entry node.
    let mut reps: Vec<Option<Ratio>> = vec![None; n];
    reps[graph.entry] = Some(Ratio::new(1, 1));
    let mut queue = VecDeque::from([graph.entry]);
    while let Some(u) = queue.pop_front() {
        let ru = reps[u].expect("queued nodes have reps");
        for (ci, c) in graph.channels.iter().enumerate() {
            let (other, expected) = if c.src == u {
                // reps[dst] = reps[src] * src_rate / dst_rate
                (c.dst, ru.mul(src_rates[ci], dst_rates[ci]))
            } else if c.dst == u {
                (c.src, ru.mul(dst_rates[ci], src_rates[ci]))
            } else {
                continue;
            };
            match reps[other] {
                None => {
                    reps[other] = Some(expected);
                    queue.push_back(other);
                }
                Some(existing) if existing != expected => {
                    return Err(Error::RateMismatch(format!(
                        "node n{other} requires {}/{} and {}/{} firings",
                        existing.num, existing.den, expected.num, expected.den
                    )));
                }
                Some(_) => {}
            }
        }
    }
    if reps.iter().any(Option::is_none) {
        return Err(Error::Semantic(
            "stream graph is disconnected; every node must be reachable".into(),
        ));
    }

    // Scale to the smallest integer solution.
    let denom_lcm = reps.iter().map(|r| r.unwrap().den).fold(1u64, lcm);
    let mut int_reps: Vec<u64> = reps
        .iter()
        .map(|r| {
            let r = r.unwrap();
            r.num * (denom_lcm / r.den)
        })
        .collect();
    let overall_gcd = int_reps.iter().copied().fold(0u64, gcd).max(1);
    for r in &mut int_reps {
        *r /= overall_gcd;
    }

    // Verify every balance equation (defense against propagation bugs).
    for (ci, c) in graph.channels.iter().enumerate() {
        let produced = int_reps[c.src] * src_rates[ci];
        let consumed = int_reps[c.dst] * dst_rates[ci];
        if produced != consumed {
            return Err(Error::RateMismatch(format!(
                "channel n{} -> n{}: produces {produced}, consumes {consumed}",
                c.src, c.dst
            )));
        }
    }

    let buffer_sizes: Vec<u64> = graph
        .channels
        .iter()
        .enumerate()
        .map(|(ci, c)| int_reps[c.src] * src_rates[ci] + (dst_peeks[ci] - dst_rates[ci]))
        .collect();

    let order = graph.topo_order()?;
    let entries = order
        .into_iter()
        .map(|node| ScheduleEntry {
            node,
            reps: int_reps[node],
        })
        .collect();

    let (in_pop, _) = graph
        .in_rates_evaled(binds)
        .map(|(p, _)| (p, 0u64))
        .unwrap_or((0, 0));
    let steady_input = int_reps[graph.entry] * in_pop;
    let steady_output = int_reps[graph.exit] * graph.out_rate_evaled(binds)?;

    Ok(Schedule {
        entries,
        buffer_sizes,
        steady_input,
        steady_output,
    })
}

impl FlatGraph {
    /// Entry node's (pop, peek) rates evaluated under `binds`, from the
    /// rates recorded at flatten time.
    pub fn in_rates_evaled(&self, binds: &Bindings) -> Option<(u64, u64)> {
        self.entry_pop_peek.as_ref().map(|(p, k)| {
            let pv = p.eval(binds).unwrap_or(0).max(0) as u64;
            let kv = k.eval(binds).unwrap_or(0).max(0) as u64;
            (pv, kv.max(pv))
        })
    }

    /// Exit node's push rate evaluated under `binds`.
    pub fn out_rate_evaled(&self, binds: &Bindings) -> Result<u64> {
        match &self.exit_push {
            Some(r) => Ok(r.eval(binds)?.max(0) as u64),
            None => Ok(0),
        }
    }
}

/// A rate-conditioned scheduling region: a connected set of flat nodes
/// whose rates depend on the same set of dynamic parameters.
///
/// A region with an empty `params` set is *static* — its rates are fixed
/// once the static parameters are bound, so it is planned exactly once. A
/// dynamic region is planned against a window inside its declared
/// intervals and re-planned at runtime when observed rates leave that
/// window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RateRegion {
    /// Flat-node indices in topological order.
    pub nodes: Vec<usize>,
    /// Sorted dynamic parameter names governing this region's rates
    /// (empty for a static region).
    pub params: Vec<String>,
    /// Declared interval per governing parameter: the intersection of
    /// every declaring actor's interval.
    pub intervals: BTreeMap<String, RateInterval>,
}

impl RateRegion {
    /// True when no dynamic parameter governs this region.
    pub fn is_static(&self) -> bool {
        self.params.is_empty()
    }
}

/// The partition of a flat graph into rate-conditioned regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionPartition {
    /// Regions ordered by the topological position of their first node.
    pub regions: Vec<RateRegion>,
    /// Merged declared interval per dynamic parameter, program-wide.
    pub dynamic: BTreeMap<String, RateInterval>,
    /// `assignment[node]` is the index into `regions` owning that node.
    assignment: Vec<usize>,
}

impl RegionPartition {
    /// Index of the region owning flat node `node`.
    pub fn region_of(&self, node: usize) -> usize {
        self.assignment[node]
    }

    /// The regions governed by at least one dynamic parameter.
    pub fn dynamic_regions(&self) -> impl Iterator<Item = &RateRegion> {
        self.regions.iter().filter(|r| !r.is_static())
    }

    /// True when every flat node belongs to exactly one region — the
    /// partition is a cover of the graph (checked by the proptests).
    pub fn is_cover(&self, graph: &FlatGraph) -> bool {
        if self.assignment.len() != graph.nodes.len() {
            return false;
        }
        let mut seen = vec![false; graph.nodes.len()];
        for r in &self.regions {
            for &n in &r.nodes {
                if n >= seen.len() || seen[n] {
                    return false;
                }
                seen[n] = true;
            }
        }
        seen.iter().all(|&s| s)
            && (0..graph.nodes.len()).all(|n| self.regions[self.assignment[n]].nodes.contains(&n))
    }

    /// True when every channel's dynamic rate dependence is explained by
    /// its endpoint regions: each dynamic parameter mentioned by the
    /// channel's rates appears in the source or destination region's
    /// parameter set (checked by the proptests).
    pub fn channels_consistent(&self, graph: &FlatGraph) -> bool {
        graph.channels.iter().all(|c| {
            let mut mentioned = BTreeSet::new();
            for rate in [&c.src_rate, &c.dst_rate, &c.dst_peek] {
                for p in rate.params() {
                    if self.dynamic.contains_key(p) {
                        mentioned.insert(p.to_string());
                    }
                }
            }
            mentioned.iter().all(|p| {
                self.regions[self.region_of(c.src)].params.contains(p)
                    || self.regions[self.region_of(c.dst)].params.contains(p)
            })
        })
    }
}

/// The set of dynamic parameters governing one flat node's rates.
fn node_dyn_params(
    program: &Program,
    node: &FlatNode,
    dynamic: &BTreeMap<String, RateInterval>,
) -> BTreeSet<String> {
    let mut rates = Vec::new();
    match node {
        FlatNode::Actor { actor } => {
            let w = &program.actors[*actor].work;
            rates.extend([&w.pop, &w.push, &w.peek]);
        }
        FlatNode::Split(Splitter::Duplicate) => {}
        FlatNode::Split(Splitter::RoundRobin(ws)) => rates.extend(ws.iter()),
        FlatNode::Join(crate::graph::Joiner::RoundRobin(ws)) => rates.extend(ws.iter()),
    }
    rates
        .iter()
        .flat_map(|r| r.params())
        .filter(|p| dynamic.contains_key(*p))
        .map(str::to_string)
        .collect()
}

/// Merge every actor's dynamic-rate declarations into one program-wide
/// interval per parameter (the intersection across declaring actors).
///
/// # Errors
///
/// [`Error::RateMismatch`] when two actors declare disjoint intervals for
/// the same parameter.
pub fn merged_rate_intervals(program: &Program) -> Result<BTreeMap<String, RateInterval>> {
    let mut merged: BTreeMap<String, RateInterval> = BTreeMap::new();
    for a in &program.actors {
        for (p, iv) in &a.dyn_rates {
            match merged.get(p) {
                None => {
                    merged.insert(p.clone(), *iv);
                }
                Some(existing) => match existing.intersect(iv) {
                    Some(narrowed) => {
                        merged.insert(p.clone(), narrowed);
                    }
                    None => {
                        return Err(Error::RateMismatch(format!(
                            "actor `{}` declares `{p}` in {iv} but earlier declarations \
                             constrain it to {existing}: intervals are disjoint",
                            a.name
                        )));
                    }
                },
            }
        }
    }
    Ok(merged)
}

/// Partition the flat graph into rate-conditioned scheduling regions.
///
/// Two adjacent nodes share a region exactly when their rates depend on
/// the same set of dynamic parameters; regions are therefore the connected
/// components of same-dependence adjacency, each either static (no
/// dynamic parameters) or governed by one dynamic parameter set. A
/// program with no dynamic-rate declarations yields one static region per
/// connected component.
///
/// # Errors
///
/// * [`Error::RateMismatch`] when actors declare disjoint intervals for
///   the same parameter ([`merged_rate_intervals`]).
/// * [`Error::Semantic`] when the graph is cyclic ([`FlatGraph::topo_order`]).
pub fn partition_rate_regions(program: &Program, graph: &FlatGraph) -> Result<RegionPartition> {
    let dynamic = merged_rate_intervals(program)?;
    let order = graph.topo_order()?;
    let n = graph.nodes.len();
    let dyn_sets: Vec<BTreeSet<String>> = graph
        .nodes
        .iter()
        .map(|node| node_dyn_params(program, node, &dynamic))
        .collect();

    // Union nodes across channels whose endpoints share a dependence set.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for c in &graph.channels {
        if dyn_sets[c.src] == dyn_sets[c.dst] {
            let (a, b) = (find(&mut parent, c.src), find(&mut parent, c.dst));
            if a != b {
                parent[a] = b;
            }
        }
    }

    // Emit regions in topological order of their first member.
    let mut topo_pos = vec![0usize; n];
    for (pos, &node) in order.iter().enumerate() {
        topo_pos[node] = pos;
    }
    let mut region_of_root: BTreeMap<usize, usize> = BTreeMap::new();
    let mut regions: Vec<RateRegion> = Vec::new();
    let mut assignment = vec![usize::MAX; n];
    for &node in &order {
        let root = find(&mut parent, node);
        let idx = *region_of_root.entry(root).or_insert_with(|| {
            let params: Vec<String> = dyn_sets[node].iter().cloned().collect();
            let intervals = params.iter().map(|p| (p.clone(), dynamic[p])).collect();
            regions.push(RateRegion {
                nodes: Vec::new(),
                params,
                intervals,
            });
            regions.len() - 1
        });
        regions[idx].nodes.push(node);
        assignment[node] = idx;
    }
    for r in &mut regions {
        r.nodes.sort_by_key(|&n| topo_pos[n]);
    }

    Ok(RegionPartition {
        regions,
        dynamic,
        assignment,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{ActorDef, WorkFn};
    use crate::graph::{bindings, Joiner, Program, Splitter, StreamNode};
    use crate::ir::{Expr, Stmt};
    use crate::rates::RateExpr;

    fn actor(name: &str, pop: RateExpr, push: RateExpr) -> ActorDef {
        ActorDef::new(
            name,
            WorkFn {
                peek: pop.clone(),
                pop,
                push,
                body: vec![Stmt::Push(Expr::Pop)],
            },
        )
    }

    fn pipeline(actors: Vec<ActorDef>) -> Program {
        let graph = StreamNode::Pipeline(
            actors
                .iter()
                .map(|a| StreamNode::Actor(a.name.clone()))
                .collect(),
        );
        Program {
            name: "P".into(),
            params: vec![],
            actors,
            graph,
        }
    }

    #[test]
    fn two_actor_rate_match() {
        // A: pop 1 push 2, B: pop 3 push 1  =>  reps A=3, B=2
        let p = pipeline(vec![
            actor("A", RateExpr::constant(1), RateExpr::constant(2)),
            actor("B", RateExpr::constant(3), RateExpr::constant(1)),
        ]);
        let fg = p.flatten().unwrap();
        let s = rate_match(&fg, &bindings(&[])).unwrap();
        assert_eq!(s.reps(0), 3);
        assert_eq!(s.reps(1), 2);
        assert_eq!(s.buffer_sizes, vec![6]);
        assert_eq!(s.steady_input, 3);
        assert_eq!(s.steady_output, 2);
        assert_eq!(s.total_firings(), 5);
    }

    #[test]
    fn symbolic_rates_need_bindings() {
        let p = pipeline(vec![
            actor("A", RateExpr::constant(1), RateExpr::constant(1)),
            actor("B", RateExpr::param("N"), RateExpr::constant(1)),
        ]);
        let fg = p.flatten().unwrap();
        assert!(matches!(
            rate_match(&fg, &bindings(&[])),
            Err(Error::UnboundParam(_))
        ));
        let s = rate_match(&fg, &bindings(&[("N", 8)])).unwrap();
        assert_eq!(s.reps(0), 8);
        assert_eq!(s.reps(1), 1);
    }

    #[test]
    fn splitjoin_duplicate_schedule() {
        let a = actor("A", RateExpr::constant(1), RateExpr::constant(1));
        let b = actor("B", RateExpr::constant(1), RateExpr::constant(1));
        let p = Program {
            name: "P".into(),
            params: vec![],
            actors: vec![a, b],
            graph: StreamNode::SplitJoin {
                splitter: Splitter::Duplicate,
                branches: vec![StreamNode::Actor("A".into()), StreamNode::Actor("B".into())],
                joiner: Joiner::RoundRobin(vec![RateExpr::constant(1), RateExpr::constant(1)]),
            },
        };
        let fg = p.flatten().unwrap();
        let s = rate_match(&fg, &bindings(&[])).unwrap();
        // Split fires 1, each branch fires 1, join fires 1 (pops 1 from each).
        for e in &s.entries {
            assert_eq!(e.reps, 1, "node {} reps", e.node);
        }
    }

    #[test]
    fn roundrobin_weights_scale_reps() {
        let a = actor("A", RateExpr::constant(1), RateExpr::constant(1));
        let b = actor("B", RateExpr::constant(1), RateExpr::constant(1));
        let p = Program {
            name: "P".into(),
            params: vec![],
            actors: vec![a, b],
            graph: StreamNode::SplitJoin {
                splitter: Splitter::RoundRobin(vec![RateExpr::constant(3), RateExpr::constant(1)]),
                branches: vec![StreamNode::Actor("A".into()), StreamNode::Actor("B".into())],
                joiner: Joiner::RoundRobin(vec![RateExpr::constant(3), RateExpr::constant(1)]),
            },
        };
        let fg = p.flatten().unwrap();
        let s = rate_match(&fg, &bindings(&[])).unwrap();
        // Branch A fires 3x for each branch B firing.
        let a_node = fg
            .nodes
            .iter()
            .position(|n| matches!(n, crate::graph::FlatNode::Actor { actor: 0 }))
            .unwrap();
        let b_node = fg
            .nodes
            .iter()
            .position(|n| matches!(n, crate::graph::FlatNode::Actor { actor: 1 }))
            .unwrap();
        assert_eq!(s.reps(a_node), 3);
        assert_eq!(s.reps(b_node), 1);
    }

    #[test]
    fn inconsistent_rates_rejected() {
        // Duplicate splitter with branches that produce at different rates
        // but a joiner that demands equal amounts -> no steady state.
        let a = actor("A", RateExpr::constant(1), RateExpr::constant(2));
        let b = actor("B", RateExpr::constant(1), RateExpr::constant(3));
        let p = Program {
            name: "P".into(),
            params: vec![],
            actors: vec![a, b],
            graph: StreamNode::SplitJoin {
                splitter: Splitter::Duplicate,
                branches: vec![StreamNode::Actor("A".into()), StreamNode::Actor("B".into())],
                joiner: Joiner::RoundRobin(vec![RateExpr::constant(1), RateExpr::constant(1)]),
            },
        };
        let fg = p.flatten().unwrap();
        assert!(matches!(
            rate_match(&fg, &bindings(&[])),
            Err(Error::RateMismatch(_))
        ));
    }

    #[test]
    fn zero_rate_rejected() {
        let p = pipeline(vec![
            actor("A", RateExpr::constant(1), RateExpr::param("Z")),
            actor("B", RateExpr::constant(1), RateExpr::constant(1)),
        ]);
        let fg = p.flatten().unwrap();
        assert!(matches!(
            rate_match(&fg, &bindings(&[("Z", 0)])),
            Err(Error::RateMismatch(_))
        ));
    }

    #[test]
    fn peek_slack_grows_buffers() {
        let mut b = actor("B", RateExpr::constant(1), RateExpr::constant(1));
        b.work.peek = RateExpr::constant(4); // peeks 3 beyond its pop
        let p = pipeline(vec![
            actor("A", RateExpr::constant(1), RateExpr::constant(1)),
            b,
        ]);
        let fg = p.flatten().unwrap();
        let s = rate_match(&fg, &bindings(&[])).unwrap();
        assert_eq!(s.buffer_sizes, vec![1 + 3]);
    }

    #[test]
    fn gcd_lcm_helpers() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 5), 0);
    }

    #[test]
    fn static_program_is_one_static_region() {
        let p = pipeline(vec![
            actor("A", RateExpr::constant(1), RateExpr::constant(2)),
            actor("B", RateExpr::constant(3), RateExpr::constant(1)),
        ]);
        let fg = p.flatten().unwrap();
        let part = partition_rate_regions(&p, &fg).unwrap();
        assert_eq!(part.regions.len(), 1);
        assert!(part.regions[0].is_static());
        assert!(part.dynamic.is_empty());
        assert!(part.is_cover(&fg));
        assert!(part.channels_consistent(&fg));
    }

    #[test]
    fn dynamic_actor_splits_off_its_own_region() {
        // A (static) -> B (rates in dynamic N) -> C (static): three
        // regions, because A and C are not adjacent to each other.
        let mut b = actor("B", RateExpr::param("N"), RateExpr::constant(1));
        b = b.with_rate_interval("N", RateInterval::new(4, 64).unwrap());
        let p = Program {
            name: "P".into(),
            params: vec!["N".into()],
            actors: vec![
                actor("A", RateExpr::constant(1), RateExpr::constant(1)),
                b,
                actor("C", RateExpr::constant(1), RateExpr::constant(1)),
            ],
            graph: StreamNode::Pipeline(vec![
                StreamNode::Actor("A".into()),
                StreamNode::Actor("B".into()),
                StreamNode::Actor("C".into()),
            ]),
        };
        let fg = p.flatten().unwrap();
        let part = partition_rate_regions(&p, &fg).unwrap();
        assert_eq!(part.regions.len(), 3);
        assert!(part.is_cover(&fg));
        assert!(part.channels_consistent(&fg));
        let dynamic: Vec<_> = part.dynamic_regions().collect();
        assert_eq!(dynamic.len(), 1);
        assert_eq!(dynamic[0].params, vec!["N".to_string()]);
        assert_eq!(dynamic[0].intervals["N"], RateInterval { lo: 4, hi: 64 });
        assert_eq!(part.region_of(1), 1);
        assert_ne!(part.region_of(0), part.region_of(2));
    }

    #[test]
    fn adjacent_same_dependence_nodes_share_a_region() {
        let iv = RateInterval::new(2, 32).unwrap();
        let a = actor("A", RateExpr::param("N"), RateExpr::param("N")).with_rate_interval("N", iv);
        let b = actor("B", RateExpr::param("N"), RateExpr::constant(1));
        let p = pipeline(vec![a, b]);
        let fg = p.flatten().unwrap();
        let part = partition_rate_regions(&p, &fg).unwrap();
        // B never declares N itself, but its rates depend on it, and the
        // declaration is program-global — both actors land in one region.
        assert_eq!(part.regions.len(), 1);
        assert_eq!(part.regions[0].params, vec!["N".to_string()]);
        assert!(part.is_cover(&fg));
    }

    #[test]
    fn overlapping_declarations_intersect() {
        let a = actor("A", RateExpr::param("N"), RateExpr::param("N"))
            .with_rate_interval("N", RateInterval::new(2, 64).unwrap());
        let b = actor("B", RateExpr::param("N"), RateExpr::param("N"))
            .with_rate_interval("N", RateInterval::new(16, 256).unwrap());
        let p = pipeline(vec![a, b]);
        let merged = merged_rate_intervals(&p).unwrap();
        assert_eq!(merged["N"], RateInterval { lo: 16, hi: 64 });
    }

    #[test]
    fn disjoint_declarations_rejected() {
        let a = actor("A", RateExpr::param("N"), RateExpr::param("N"))
            .with_rate_interval("N", RateInterval::new(2, 8).unwrap());
        let b = actor("B", RateExpr::param("N"), RateExpr::param("N"))
            .with_rate_interval("N", RateInterval::new(64, 256).unwrap());
        let p = pipeline(vec![a, b]);
        assert!(matches!(
            merged_rate_intervals(&p),
            Err(Error::RateMismatch(_))
        ));
        let fg = p.flatten().unwrap();
        assert!(partition_rate_regions(&p, &fg).is_err());
    }

    #[test]
    fn rate_interval_validation_and_ops() {
        assert!(RateInterval::new(0, 4).is_err());
        assert!(RateInterval::new(5, 4).is_err());
        let iv = RateInterval::new(4, 16).unwrap();
        assert!(iv.contains(4) && iv.contains(16) && !iv.contains(17));
        assert_eq!(iv.clamp(1), 4);
        assert_eq!(iv.clamp(99), 16);
        assert_eq!(iv.span(), 13);
        assert_eq!(
            iv.intersect(&RateInterval::new(10, 32).unwrap()),
            Some(RateInterval { lo: 10, hi: 16 })
        );
        assert_eq!(iv.intersect(&RateInterval::new(20, 32).unwrap()), None);
        assert_eq!(iv.to_string(), "[4, 16]");
    }
}
