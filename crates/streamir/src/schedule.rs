//! Steady-state scheduling (rate matching).
//!
//! To ensure correct functionality, a StreamIt program needs a *steady-state
//! schedule*: a repetition count per actor such that every channel's
//! production and consumption balance out over one schedule iteration
//! (`reps[src] * push_rate == reps[dst] * pop_rate`). The scheduler solves
//! these balance equations with exact rational arithmetic, scales the
//! solution to the smallest integer vector, and derives channel buffer
//! sizes.
//!
//! Rates may be symbolic in program parameters, so a schedule is computed
//! *for a concrete parameter binding* — this is exactly the point where
//! input size enters the compilation flow.

use std::collections::VecDeque;

use crate::error::{Error, Result};
use crate::graph::FlatGraph;
use crate::rates::Bindings;

/// Repetition count for one flat node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// Flat-node index.
    pub node: usize,
    /// Firings per steady-state iteration.
    pub reps: u64,
}

/// A steady-state schedule for a flattened graph under a concrete binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Entries in topological order.
    pub entries: Vec<ScheduleEntry>,
    /// Required capacity of each channel (indexed like
    /// [`FlatGraph::channels`]).
    pub buffer_sizes: Vec<u64>,
    /// Items consumed from the program input per steady-state iteration.
    pub steady_input: u64,
    /// Items produced on the program output per steady-state iteration.
    pub steady_output: u64,
}

impl Schedule {
    /// Repetition count of a node.
    pub fn reps(&self, node: usize) -> u64 {
        self.entries
            .iter()
            .find(|e| e.node == node)
            .map_or(0, |e| e.reps)
    }

    /// Total firings across all nodes in one steady state.
    pub fn total_firings(&self) -> u64 {
        self.entries.iter().map(|e| e.reps).sum()
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        0
    } else {
        a / gcd(a, b) * b
    }
}

/// An exact nonnegative rational, just big enough for rate matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ratio {
    num: u64,
    den: u64,
}

impl Ratio {
    fn new(num: u64, den: u64) -> Ratio {
        debug_assert!(den != 0);
        let g = gcd(num, den).max(1);
        Ratio {
            num: num / g,
            den: den / g,
        }
    }

    fn mul(self, num: u64, den: u64) -> Ratio {
        // Cross-reduce before multiplying to avoid overflow.
        let g1 = gcd(self.num, den).max(1);
        let g2 = gcd(num, self.den).max(1);
        Ratio::new((self.num / g1) * (num / g2), (self.den / g2) * (den / g1))
    }
}

/// Compute the steady-state schedule of `graph` under `binds`.
///
/// # Errors
///
/// * [`Error::RateMismatch`] if the balance equations have no solution
///   (inconsistent rates) or a rate evaluates to a non-positive number.
/// * [`Error::UnboundParam`] if a rate mentions an unbound parameter.
/// * [`Error::Semantic`] if the graph is cyclic or disconnected.
pub fn rate_match(graph: &FlatGraph, binds: &Bindings) -> Result<Schedule> {
    let n = graph.nodes.len();
    // Evaluate all channel rates up front.
    let mut src_rates = Vec::with_capacity(graph.channels.len());
    let mut dst_rates = Vec::with_capacity(graph.channels.len());
    let mut dst_peeks = Vec::with_capacity(graph.channels.len());
    for c in &graph.channels {
        let s = c.src_rate.eval(binds)?;
        let d = c.dst_rate.eval(binds)?;
        let p = c.dst_peek.eval(binds)?;
        if s <= 0 || d <= 0 {
            return Err(Error::RateMismatch(format!(
                "channel n{} -> n{} has non-positive rate ({s} : {d})",
                c.src, c.dst
            )));
        }
        src_rates.push(s as u64);
        dst_rates.push(d as u64);
        dst_peeks.push(p.max(d) as u64);
    }

    // Propagate rational repetition counts from the entry node.
    let mut reps: Vec<Option<Ratio>> = vec![None; n];
    reps[graph.entry] = Some(Ratio::new(1, 1));
    let mut queue = VecDeque::from([graph.entry]);
    while let Some(u) = queue.pop_front() {
        let ru = reps[u].expect("queued nodes have reps");
        for (ci, c) in graph.channels.iter().enumerate() {
            let (other, expected) = if c.src == u {
                // reps[dst] = reps[src] * src_rate / dst_rate
                (c.dst, ru.mul(src_rates[ci], dst_rates[ci]))
            } else if c.dst == u {
                (c.src, ru.mul(dst_rates[ci], src_rates[ci]))
            } else {
                continue;
            };
            match reps[other] {
                None => {
                    reps[other] = Some(expected);
                    queue.push_back(other);
                }
                Some(existing) if existing != expected => {
                    return Err(Error::RateMismatch(format!(
                        "node n{other} requires {}/{} and {}/{} firings",
                        existing.num, existing.den, expected.num, expected.den
                    )));
                }
                Some(_) => {}
            }
        }
    }
    if reps.iter().any(Option::is_none) {
        return Err(Error::Semantic(
            "stream graph is disconnected; every node must be reachable".into(),
        ));
    }

    // Scale to the smallest integer solution.
    let denom_lcm = reps.iter().map(|r| r.unwrap().den).fold(1u64, lcm);
    let mut int_reps: Vec<u64> = reps
        .iter()
        .map(|r| {
            let r = r.unwrap();
            r.num * (denom_lcm / r.den)
        })
        .collect();
    let overall_gcd = int_reps.iter().copied().fold(0u64, gcd).max(1);
    for r in &mut int_reps {
        *r /= overall_gcd;
    }

    // Verify every balance equation (defense against propagation bugs).
    for (ci, c) in graph.channels.iter().enumerate() {
        let produced = int_reps[c.src] * src_rates[ci];
        let consumed = int_reps[c.dst] * dst_rates[ci];
        if produced != consumed {
            return Err(Error::RateMismatch(format!(
                "channel n{} -> n{}: produces {produced}, consumes {consumed}",
                c.src, c.dst
            )));
        }
    }

    let buffer_sizes: Vec<u64> = graph
        .channels
        .iter()
        .enumerate()
        .map(|(ci, c)| int_reps[c.src] * src_rates[ci] + (dst_peeks[ci] - dst_rates[ci]))
        .collect();

    let order = graph.topo_order()?;
    let entries = order
        .into_iter()
        .map(|node| ScheduleEntry {
            node,
            reps: int_reps[node],
        })
        .collect();

    let (in_pop, _) = graph
        .in_rates_evaled(binds)
        .map(|(p, _)| (p, 0u64))
        .unwrap_or((0, 0));
    let steady_input = int_reps[graph.entry] * in_pop;
    let steady_output = int_reps[graph.exit] * graph.out_rate_evaled(binds)?;

    Ok(Schedule {
        entries,
        buffer_sizes,
        steady_input,
        steady_output,
    })
}

impl FlatGraph {
    /// Entry node's (pop, peek) rates evaluated under `binds`, from the
    /// rates recorded at flatten time.
    pub fn in_rates_evaled(&self, binds: &Bindings) -> Option<(u64, u64)> {
        self.entry_pop_peek.as_ref().map(|(p, k)| {
            let pv = p.eval(binds).unwrap_or(0).max(0) as u64;
            let kv = k.eval(binds).unwrap_or(0).max(0) as u64;
            (pv, kv.max(pv))
        })
    }

    /// Exit node's push rate evaluated under `binds`.
    pub fn out_rate_evaled(&self, binds: &Bindings) -> Result<u64> {
        match &self.exit_push {
            Some(r) => Ok(r.eval(binds)?.max(0) as u64),
            None => Ok(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{ActorDef, WorkFn};
    use crate::graph::{bindings, Joiner, Program, Splitter, StreamNode};
    use crate::ir::{Expr, Stmt};
    use crate::rates::RateExpr;

    fn actor(name: &str, pop: RateExpr, push: RateExpr) -> ActorDef {
        ActorDef::new(
            name,
            WorkFn {
                peek: pop.clone(),
                pop,
                push,
                body: vec![Stmt::Push(Expr::Pop)],
            },
        )
    }

    fn pipeline(actors: Vec<ActorDef>) -> Program {
        let graph = StreamNode::Pipeline(
            actors
                .iter()
                .map(|a| StreamNode::Actor(a.name.clone()))
                .collect(),
        );
        Program {
            name: "P".into(),
            params: vec![],
            actors,
            graph,
        }
    }

    #[test]
    fn two_actor_rate_match() {
        // A: pop 1 push 2, B: pop 3 push 1  =>  reps A=3, B=2
        let p = pipeline(vec![
            actor("A", RateExpr::constant(1), RateExpr::constant(2)),
            actor("B", RateExpr::constant(3), RateExpr::constant(1)),
        ]);
        let fg = p.flatten().unwrap();
        let s = rate_match(&fg, &bindings(&[])).unwrap();
        assert_eq!(s.reps(0), 3);
        assert_eq!(s.reps(1), 2);
        assert_eq!(s.buffer_sizes, vec![6]);
        assert_eq!(s.steady_input, 3);
        assert_eq!(s.steady_output, 2);
        assert_eq!(s.total_firings(), 5);
    }

    #[test]
    fn symbolic_rates_need_bindings() {
        let p = pipeline(vec![
            actor("A", RateExpr::constant(1), RateExpr::constant(1)),
            actor("B", RateExpr::param("N"), RateExpr::constant(1)),
        ]);
        let fg = p.flatten().unwrap();
        assert!(matches!(
            rate_match(&fg, &bindings(&[])),
            Err(Error::UnboundParam(_))
        ));
        let s = rate_match(&fg, &bindings(&[("N", 8)])).unwrap();
        assert_eq!(s.reps(0), 8);
        assert_eq!(s.reps(1), 1);
    }

    #[test]
    fn splitjoin_duplicate_schedule() {
        let a = actor("A", RateExpr::constant(1), RateExpr::constant(1));
        let b = actor("B", RateExpr::constant(1), RateExpr::constant(1));
        let p = Program {
            name: "P".into(),
            params: vec![],
            actors: vec![a, b],
            graph: StreamNode::SplitJoin {
                splitter: Splitter::Duplicate,
                branches: vec![StreamNode::Actor("A".into()), StreamNode::Actor("B".into())],
                joiner: Joiner::RoundRobin(vec![RateExpr::constant(1), RateExpr::constant(1)]),
            },
        };
        let fg = p.flatten().unwrap();
        let s = rate_match(&fg, &bindings(&[])).unwrap();
        // Split fires 1, each branch fires 1, join fires 1 (pops 1 from each).
        for e in &s.entries {
            assert_eq!(e.reps, 1, "node {} reps", e.node);
        }
    }

    #[test]
    fn roundrobin_weights_scale_reps() {
        let a = actor("A", RateExpr::constant(1), RateExpr::constant(1));
        let b = actor("B", RateExpr::constant(1), RateExpr::constant(1));
        let p = Program {
            name: "P".into(),
            params: vec![],
            actors: vec![a, b],
            graph: StreamNode::SplitJoin {
                splitter: Splitter::RoundRobin(vec![RateExpr::constant(3), RateExpr::constant(1)]),
                branches: vec![StreamNode::Actor("A".into()), StreamNode::Actor("B".into())],
                joiner: Joiner::RoundRobin(vec![RateExpr::constant(3), RateExpr::constant(1)]),
            },
        };
        let fg = p.flatten().unwrap();
        let s = rate_match(&fg, &bindings(&[])).unwrap();
        // Branch A fires 3x for each branch B firing.
        let a_node = fg
            .nodes
            .iter()
            .position(|n| matches!(n, crate::graph::FlatNode::Actor { actor: 0 }))
            .unwrap();
        let b_node = fg
            .nodes
            .iter()
            .position(|n| matches!(n, crate::graph::FlatNode::Actor { actor: 1 }))
            .unwrap();
        assert_eq!(s.reps(a_node), 3);
        assert_eq!(s.reps(b_node), 1);
    }

    #[test]
    fn inconsistent_rates_rejected() {
        // Duplicate splitter with branches that produce at different rates
        // but a joiner that demands equal amounts -> no steady state.
        let a = actor("A", RateExpr::constant(1), RateExpr::constant(2));
        let b = actor("B", RateExpr::constant(1), RateExpr::constant(3));
        let p = Program {
            name: "P".into(),
            params: vec![],
            actors: vec![a, b],
            graph: StreamNode::SplitJoin {
                splitter: Splitter::Duplicate,
                branches: vec![StreamNode::Actor("A".into()), StreamNode::Actor("B".into())],
                joiner: Joiner::RoundRobin(vec![RateExpr::constant(1), RateExpr::constant(1)]),
            },
        };
        let fg = p.flatten().unwrap();
        assert!(matches!(
            rate_match(&fg, &bindings(&[])),
            Err(Error::RateMismatch(_))
        ));
    }

    #[test]
    fn zero_rate_rejected() {
        let p = pipeline(vec![
            actor("A", RateExpr::constant(1), RateExpr::param("Z")),
            actor("B", RateExpr::constant(1), RateExpr::constant(1)),
        ]);
        let fg = p.flatten().unwrap();
        assert!(matches!(
            rate_match(&fg, &bindings(&[("Z", 0)])),
            Err(Error::RateMismatch(_))
        ));
    }

    #[test]
    fn peek_slack_grows_buffers() {
        let mut b = actor("B", RateExpr::constant(1), RateExpr::constant(1));
        b.work.peek = RateExpr::constant(4); // peeks 3 beyond its pop
        let p = pipeline(vec![
            actor("A", RateExpr::constant(1), RateExpr::constant(1)),
            b,
        ]);
        let fg = p.flatten().unwrap();
        let s = rate_match(&fg, &bindings(&[])).unwrap();
        assert_eq!(s.buffer_sizes, vec![1 + 3]);
    }

    #[test]
    fn gcd_lcm_helpers() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 5), 0);
    }
}
