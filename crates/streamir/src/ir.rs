//! The work-function IR.
//!
//! Each actor's `work` method is stored as a small statement/expression tree
//! rather than an opaque closure so that the Adaptic compiler can analyze it:
//! count pop/push/peek sites, detect reduction and stencil patterns, find
//! accumulator recurrences for induction-variable substitution, and estimate
//! instruction mixes for the performance model.
//!
//! The language is deliberately C-like and loop-structured (no `while`, no
//! recursion): every loop is a counted `for` whose bounds are expressions,
//! which keeps trip counts analyzable as functions of the program input —
//! the property the whole input-aware compilation scheme rests on.

use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

impl BinOp {
    /// True for operators returning booleans.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// True for operators that are associative and commutative — the legality
    /// condition for tree-based stream reduction (§4.2.1 of the paper).
    pub fn is_assoc_commutative(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Mul)
    }

    /// C-syntax spelling, used by the CUDA pretty-printer.
    pub fn c_symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
}

/// Built-in math functions available in work bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    Sqrt,
    Exp,
    Log,
    Abs,
    Sin,
    Cos,
    Floor,
    Max,
    Min,
    Pow,
    /// `select(cond, a, b)` — branchless conditional, maps to `?:`.
    Select,
}

impl Intrinsic {
    /// Number of arguments the intrinsic takes.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::Sqrt
            | Intrinsic::Exp
            | Intrinsic::Log
            | Intrinsic::Abs
            | Intrinsic::Sin
            | Intrinsic::Cos
            | Intrinsic::Floor => 1,
            Intrinsic::Max | Intrinsic::Min | Intrinsic::Pow => 2,
            Intrinsic::Select => 3,
        }
    }

    /// Look up an intrinsic by its DSL name.
    pub fn from_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "sqrt" => Intrinsic::Sqrt,
            "exp" => Intrinsic::Exp,
            "log" => Intrinsic::Log,
            "abs" => Intrinsic::Abs,
            "sin" => Intrinsic::Sin,
            "cos" => Intrinsic::Cos,
            "floor" => Intrinsic::Floor,
            "max" => Intrinsic::Max,
            "min" => Intrinsic::Min,
            "pow" => Intrinsic::Pow,
            "select" => Intrinsic::Select,
            _ => return None,
        })
    }

    /// DSL / CUDA spelling.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Exp => "exp",
            Intrinsic::Log => "log",
            Intrinsic::Abs => "abs",
            Intrinsic::Sin => "sin",
            Intrinsic::Cos => "cos",
            Intrinsic::Floor => "floor",
            Intrinsic::Max => "max",
            Intrinsic::Min => "min",
            Intrinsic::Pow => "pow",
            Intrinsic::Select => "select",
        }
    }

    /// True when a two-argument intrinsic is associative and commutative
    /// (`max`/`min`), making it a legal reduction combiner.
    pub fn is_assoc_commutative(self) -> bool {
        matches!(self, Intrinsic::Max | Intrinsic::Min)
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Float literal.
    Float(f32),
    /// Integer literal.
    Int(i64),
    /// Local variable, program parameter, or scalar state variable.
    Var(String),
    /// Destructive read of the next input item.
    Pop,
    /// Non-destructive read of the input item at the given offset from the
    /// firing's *initial* read position (the semantics of Figure 4 in the
    /// paper, where stencils peek at `index ± offset` with `index` ranging
    /// over the firing window).
    Peek(Box<Expr>),
    /// Load from a named state array (bound host data, e.g. the `x` vector
    /// in matrix-vector multiplication).
    StateLoad { array: String, index: Box<Expr> },
    /// Binary operation.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary { op: UnOp, operand: Box<Expr> },
    /// Intrinsic call.
    Call {
        intrinsic: Intrinsic,
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for a variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }

    /// Convenience constructor for a binary operation.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `lhs + rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, lhs, rhs)
    }

    /// `lhs * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, lhs, rhs)
    }

    /// Visit this expression and all sub-expressions, pre-order.
    pub fn visit<'a>(&'a self, f: &mut dyn FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Peek(e) => e.visit(f),
            Expr::StateLoad { index, .. } => index.visit(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            Expr::Unary { operand, .. } => operand.visit(f),
            Expr::Call { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Float(_) | Expr::Int(_) | Expr::Var(_) | Expr::Pop => {}
        }
    }

    /// Count [`Expr::Pop`] sites in the tree.
    pub fn count_pops(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |e| {
            if matches!(e, Expr::Pop) {
                n += 1;
            }
        });
        n
    }

    /// Count [`Expr::Peek`] sites in the tree.
    pub fn count_peeks(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |e| {
            if matches!(e, Expr::Peek(_)) {
                n += 1;
            }
        });
        n
    }

    /// True when the expression mentions the given variable.
    pub fn mentions(&self, name: &str) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if let Expr::Var(v) = e {
                if v == name {
                    found = true;
                }
            }
        });
        found
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Assignment; the first assignment to a name declares it.
    Assign { name: String, expr: Expr },
    /// Store into a named state array.
    StateStore {
        array: String,
        index: Expr,
        expr: Expr,
    },
    /// Write one item to the output channel.
    Push(Expr),
    /// Conditional.
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    /// Counted loop over the half-open range `[start, end)`.
    For {
        var: String,
        start: Expr,
        end: Expr,
        body: Vec<Stmt>,
    },
}

impl Stmt {
    /// Visit this statement and all nested statements, pre-order.
    pub fn visit<'a>(&'a self, f: &mut dyn FnMut(&'a Stmt)) {
        f(self);
        match self {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                for s in then_body.iter().chain(else_body) {
                    s.visit(f);
                }
            }
            Stmt::For { body, .. } => {
                for s in body {
                    s.visit(f);
                }
            }
            Stmt::Assign { .. } | Stmt::StateStore { .. } | Stmt::Push(_) => {}
        }
    }

    /// Visit every expression in this statement tree.
    pub fn visit_exprs<'a>(&'a self, f: &mut dyn FnMut(&'a Expr)) {
        self.visit(&mut |s| match s {
            Stmt::Assign { expr, .. } => expr.visit(f),
            Stmt::StateStore { index, expr, .. } => {
                index.visit(f);
                expr.visit(f);
            }
            Stmt::Push(e) => e.visit(f),
            Stmt::If { cond, .. } => cond.visit(f),
            Stmt::For { start, end, .. } => {
                start.visit(f);
                end.visit(f);
            }
        });
    }
}

/// Count pushes/pops/peeks over a whole body (static site counts, not
/// dynamic rates — dynamic rates come from the declared [`crate::RateExpr`]s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiteCounts {
    pub pops: usize,
    pub pushes: usize,
    pub peeks: usize,
}

/// Count I/O sites in a statement list.
pub fn count_sites(body: &[Stmt]) -> SiteCounts {
    let mut c = SiteCounts::default();
    for s in body {
        s.visit(&mut |s| {
            if matches!(s, Stmt::Push(_)) {
                c.pushes += 1;
            }
        });
        s.visit_exprs(&mut |e| match e {
            Expr::Pop => c.pops += 1,
            Expr::Peek(_) => c.peeks += 1,
            _ => {}
        });
    }
    c
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Float(x) => write!(f, "{x:?}"),
            Expr::Int(i) => write!(f, "{i}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Pop => write!(f, "pop()"),
            Expr::Peek(e) => write!(f, "peek({e})"),
            Expr::StateLoad { array, index } => write!(f, "{array}[{index}]"),
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {} {rhs})", op.c_symbol()),
            Expr::Unary { op, operand } => match op {
                UnOp::Neg => write!(f, "(-{operand})"),
                UnOp::Not => write!(f, "(!{operand})"),
            },
            Expr::Call { intrinsic, args } => {
                write!(f, "{}(", intrinsic.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_body() -> Vec<Stmt> {
        vec![
            Stmt::Assign {
                name: "acc".into(),
                expr: Expr::Float(0.0),
            },
            Stmt::For {
                var: "i".into(),
                start: Expr::Int(0),
                end: Expr::var("N"),
                body: vec![Stmt::Assign {
                    name: "acc".into(),
                    expr: Expr::add(Expr::var("acc"), Expr::Pop),
                }],
            },
            Stmt::Push(Expr::var("acc")),
        ]
    }

    #[test]
    fn site_counts() {
        let c = count_sites(&sum_body());
        assert_eq!(
            c,
            SiteCounts {
                pops: 1,
                pushes: 1,
                peeks: 0
            }
        );
    }

    #[test]
    fn visit_reaches_nested_statements() {
        let mut assigns = 0;
        for s in &sum_body() {
            s.visit(&mut |s| {
                if matches!(s, Stmt::Assign { .. }) {
                    assigns += 1;
                }
            });
        }
        assert_eq!(assigns, 2);
    }

    #[test]
    fn mentions_finds_vars_in_nested_exprs() {
        let e = Expr::add(
            Expr::mul(Expr::var("a"), Expr::Float(2.0)),
            Expr::Peek(Box::new(Expr::var("b"))),
        );
        assert!(e.mentions("a"));
        assert!(e.mentions("b"));
        assert!(!e.mentions("c"));
    }

    #[test]
    fn intrinsic_round_trip_names() {
        for i in [
            Intrinsic::Sqrt,
            Intrinsic::Exp,
            Intrinsic::Log,
            Intrinsic::Abs,
            Intrinsic::Sin,
            Intrinsic::Cos,
            Intrinsic::Floor,
            Intrinsic::Max,
            Intrinsic::Min,
            Intrinsic::Pow,
            Intrinsic::Select,
        ] {
            assert_eq!(Intrinsic::from_name(i.name()), Some(i));
            assert!(i.arity() >= 1 && i.arity() <= 3);
        }
        assert_eq!(Intrinsic::from_name("nosuch"), None);
    }

    #[test]
    fn binop_properties() {
        assert!(BinOp::Add.is_assoc_commutative());
        assert!(BinOp::Mul.is_assoc_commutative());
        assert!(!BinOp::Sub.is_assoc_commutative());
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert_eq!(BinOp::Le.c_symbol(), "<=");
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::Pop,
            Expr::Call {
                intrinsic: Intrinsic::Max,
                args: vec![Expr::var("a"), Expr::Float(1.0)],
            },
        );
        assert_eq!(e.to_string(), "(pop() + max(a, 1.0))");
    }
}
