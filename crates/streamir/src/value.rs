//! Runtime values flowing through streaming programs.
//!
//! The streaming data model is deliberately small: stream items are `f32`
//! (matching the single-precision GPU benchmarks reproduced here) and loop
//! indices / integer scalars are `i64`. The [`Value`] enum carries both and
//! performs the usual numeric coercions.

use std::fmt;

use crate::error::{Error, Result};

/// A scalar runtime value: a single-precision float, an integer, or a
/// boolean produced by a comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Single-precision float — the type of stream items.
    F32(f32),
    /// 64-bit integer — loop indices and integer scalars.
    I64(i64),
    /// Boolean — comparison results.
    Bool(bool),
}

impl Value {
    /// Interpret the value as an `f32`, coercing integers.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Runtime`] for booleans.
    pub fn as_f32(self) -> Result<f32> {
        match self {
            Value::F32(x) => Ok(x),
            Value::I64(i) => Ok(i as f32),
            Value::Bool(_) => Err(Error::Runtime("expected number, found bool".into())),
        }
    }

    /// Interpret the value as an `i64`, truncating floats.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Runtime`] for booleans.
    pub fn as_i64(self) -> Result<i64> {
        match self {
            Value::F32(x) => Ok(x as i64),
            Value::I64(i) => Ok(i),
            Value::Bool(_) => Err(Error::Runtime("expected number, found bool".into())),
        }
    }

    /// Interpret the value as a boolean.
    ///
    /// Numbers are truthy when nonzero, mirroring C semantics (the DSL is a
    /// CUDA-adjacent language).
    pub fn as_bool(self) -> bool {
        match self {
            Value::F32(x) => x != 0.0,
            Value::I64(i) => i != 0,
            Value::Bool(b) => b,
        }
    }

    /// True when the value is an integer (used by the type checker to keep
    /// loop bounds integral).
    pub fn is_integer(self) -> bool {
        matches!(self, Value::I64(_))
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::F32(0.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::F32(x) => write!(f, "{x}"),
            Value::I64(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<f32> for Value {
    fn from(x: f32) -> Self {
        Value::F32(x)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::I64(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercions() {
        assert_eq!(Value::I64(3).as_f32().unwrap(), 3.0);
        assert_eq!(Value::F32(3.7).as_i64().unwrap(), 3);
        assert!(Value::F32(1.0).as_bool());
        assert!(!Value::I64(0).as_bool());
        assert!(Value::Bool(true).as_bool());
    }

    #[test]
    fn bool_is_not_a_number() {
        assert!(Value::Bool(true).as_f32().is_err());
        assert!(Value::Bool(false).as_i64().is_err());
    }

    #[test]
    fn default_is_zero_float() {
        assert_eq!(Value::default(), Value::F32(0.0));
    }

    #[test]
    fn display_round_trips_visibly() {
        assert_eq!(Value::F32(1.5).to_string(), "1.5");
        assert_eq!(Value::I64(-2).to_string(), "-2");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(2.0f32), Value::F32(2.0));
        assert_eq!(Value::from(2i64), Value::I64(2));
        assert_eq!(Value::from(false), Value::Bool(false));
    }
}
