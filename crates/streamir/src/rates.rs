//! Symbolic data rates.
//!
//! StreamIt programs are incognizant of input size: an actor may declare
//! `pop N` where `N` is a program parameter bound only at runtime. Adaptic
//! exploits exactly this — pop/push/peek rates, and therefore thread/block
//! counts and memory-access counts, are *symbolic functions of the input
//! size and dimensions* that the compiler reasons about at compile time.
//!
//! [`RateExpr`] is a small polynomial over named parameters with integer
//! coefficients: sums of terms, where each term is a coefficient times a
//! product of parameters (e.g. `2*rows*cols + 3*rows + 1`). This covers
//! every rate in the paper's benchmarks (linear rates like `cols`, and
//! area rates like `rows*cols` for whole-matrix actors) while remaining
//! trivially comparable and evaluable.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul};

use crate::error::{Error, Result};

/// A single polynomial term: `coef * Π vars`.
///
/// `vars` is kept sorted so structurally equal terms compare equal.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Term {
    /// Sorted list of parameter names; repeated names express powers.
    vars: Vec<String>,
    coef: i64,
}

/// A symbolic rate: a polynomial over named program parameters.
///
/// # Example
///
/// ```
/// use streamir::rates::RateExpr;
///
/// let rate = RateExpr::param("rows") * RateExpr::param("cols");
/// let mut binds = std::collections::BTreeMap::new();
/// binds.insert("rows".to_string(), 4i64);
/// binds.insert("cols".to_string(), 8i64);
/// assert_eq!(rate.eval(&binds).unwrap(), 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RateExpr {
    /// Terms sorted by variable multiset; no zero coefficients; constant
    /// term has an empty `vars` list.
    terms: Vec<Term>,
}

/// Parameter bindings used to evaluate symbolic rates.
pub type Bindings = BTreeMap<String, i64>;

/// The declared runtime interval of a *dynamic* rate parameter.
///
/// Static SDF fixes every rate at plan time; a dynamic-rate actor instead
/// declares that a rate parameter ranges over `[lo, hi]` at runtime
/// (Boutellier & Hautala-style dynamic data rates). The scheduler uses the
/// declaration to carve the graph into rate-conditioned regions
/// ([`crate::schedule::partition_rate_regions`]), and the runtime plans
/// each region against a *window* inside this interval, re-planning when
/// observed rates leave it.
///
/// Bounds are inclusive and must satisfy `1 <= lo <= hi`: a rate of zero
/// has no steady state ([`crate::schedule::rate_match`] rejects it), so
/// zero is not a declarable runtime rate either.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RateInterval {
    /// Smallest runtime value the parameter may take (inclusive, >= 1).
    pub lo: i64,
    /// Largest runtime value the parameter may take (inclusive).
    pub hi: i64,
}

impl RateInterval {
    /// A validated interval.
    ///
    /// # Errors
    ///
    /// [`Error::Semantic`] unless `1 <= lo <= hi`.
    pub fn new(lo: i64, hi: i64) -> Result<RateInterval> {
        if lo < 1 || hi < lo {
            return Err(Error::Semantic(format!(
                "rate interval [{lo}, {hi}] must satisfy 1 <= lo <= hi"
            )));
        }
        Ok(RateInterval { lo, hi })
    }

    /// True when `x` lies inside the interval.
    pub fn contains(&self, x: i64) -> bool {
        x >= self.lo && x <= self.hi
    }

    /// `x` clamped into the interval.
    pub fn clamp(&self, x: i64) -> i64 {
        x.clamp(self.lo, self.hi)
    }

    /// The intersection with `other`, or `None` when they are disjoint.
    pub fn intersect(&self, other: &RateInterval) -> Option<RateInterval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(RateInterval { lo, hi })
    }

    /// Number of integer points covered.
    pub fn span(&self) -> i64 {
        self.hi - self.lo + 1
    }
}

impl fmt::Display for RateInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

impl RateExpr {
    /// The constant-zero rate.
    pub fn zero() -> Self {
        RateExpr { terms: Vec::new() }
    }

    /// A constant rate.
    pub fn constant(c: i64) -> Self {
        if c == 0 {
            return Self::zero();
        }
        RateExpr {
            terms: vec![Term {
                vars: Vec::new(),
                coef: c,
            }],
        }
    }

    /// The rate equal to a single named parameter.
    pub fn param(name: &str) -> Self {
        RateExpr {
            terms: vec![Term {
                vars: vec![name.to_string()],
                coef: 1,
            }],
        }
    }

    /// True when the rate is a compile-time constant.
    pub fn is_constant(&self) -> bool {
        self.terms.iter().all(|t| t.vars.is_empty())
    }

    /// Returns the constant value when [`Self::is_constant`], else `None`.
    pub fn as_constant(&self) -> Option<i64> {
        if self.is_constant() {
            Some(self.terms.first().map_or(0, |t| t.coef))
        } else {
            None
        }
    }

    /// Returns the parameter name when the rate is exactly one parameter
    /// with coefficient 1 (e.g. `pop N`), else `None`.
    pub fn as_single_param(&self) -> Option<&str> {
        match self.terms.as_slice() {
            [t] if t.coef == 1 && t.vars.len() == 1 => Some(&t.vars[0]),
            _ => None,
        }
    }

    /// All parameter names mentioned by the rate, deduplicated and sorted.
    pub fn params(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .terms
            .iter()
            .flat_map(|t| t.vars.iter().map(String::as_str))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Evaluate under the given parameter bindings.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnboundParam`] if a mentioned parameter is missing
    /// from `binds`.
    pub fn eval(&self, binds: &Bindings) -> Result<i64> {
        let mut total: i64 = 0;
        for t in &self.terms {
            let mut v = t.coef;
            for p in &t.vars {
                let x = *binds.get(p).ok_or_else(|| Error::UnboundParam(p.clone()))?;
                v = v.saturating_mul(x);
            }
            total = total.saturating_add(v);
        }
        Ok(total)
    }

    /// Degree of the polynomial (0 for constants, 1 for linear, ...).
    pub fn degree(&self) -> usize {
        self.terms.iter().map(|t| t.vars.len()).max().unwrap_or(0)
    }

    fn normalize(mut terms: Vec<Term>) -> Self {
        for t in &mut terms {
            t.vars.sort_unstable();
        }
        terms.sort_by(|a, b| a.vars.cmp(&b.vars));
        let mut out: Vec<Term> = Vec::with_capacity(terms.len());
        for t in terms {
            match out.last_mut() {
                Some(last) if last.vars == t.vars => last.coef += t.coef,
                _ => out.push(t),
            }
        }
        out.retain(|t| t.coef != 0);
        RateExpr { terms: out }
    }
}

impl Default for RateExpr {
    fn default() -> Self {
        Self::zero()
    }
}

impl Add for RateExpr {
    type Output = RateExpr;

    fn add(self, rhs: RateExpr) -> RateExpr {
        let mut terms = self.terms;
        terms.extend(rhs.terms);
        RateExpr::normalize(terms)
    }
}

impl Mul for RateExpr {
    type Output = RateExpr;

    fn mul(self, rhs: RateExpr) -> RateExpr {
        let mut terms = Vec::with_capacity(self.terms.len() * rhs.terms.len());
        for a in &self.terms {
            for b in &rhs.terms {
                let mut vars = a.vars.clone();
                vars.extend(b.vars.iter().cloned());
                terms.push(Term {
                    vars,
                    coef: a.coef * b.coef,
                });
            }
        }
        RateExpr::normalize(terms)
    }
}

impl Mul<i64> for RateExpr {
    type Output = RateExpr;

    fn mul(self, rhs: i64) -> RateExpr {
        self * RateExpr::constant(rhs)
    }
}

impl From<i64> for RateExpr {
    fn from(c: i64) -> Self {
        RateExpr::constant(c)
    }
}

impl fmt::Display for RateExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if t.vars.is_empty() {
                write!(f, "{}", t.coef)?;
            } else if t.coef == 1 {
                write!(f, "{}", t.vars.join("*"))?;
            } else {
                write!(f, "{}*{}", t.coef, t.vars.join("*"))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binds(pairs: &[(&str, i64)]) -> Bindings {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn constants_evaluate() {
        assert_eq!(RateExpr::constant(7).eval(&binds(&[])).unwrap(), 7);
        assert_eq!(RateExpr::zero().eval(&binds(&[])).unwrap(), 0);
    }

    #[test]
    fn params_evaluate() {
        let n = RateExpr::param("N");
        assert_eq!(n.eval(&binds(&[("N", 42)])).unwrap(), 42);
        assert_eq!(n.eval(&binds(&[])), Err(Error::UnboundParam("N".into())));
    }

    #[test]
    fn addition_merges_like_terms() {
        let e = RateExpr::param("N") + RateExpr::param("N") + RateExpr::constant(3);
        assert_eq!(e.eval(&binds(&[("N", 5)])).unwrap(), 13);
        assert_eq!(e.to_string(), "3 + 2*N");
    }

    #[test]
    fn multiplication_builds_products() {
        let e = RateExpr::param("rows") * RateExpr::param("cols");
        assert_eq!(e.eval(&binds(&[("rows", 3), ("cols", 4)])).unwrap(), 12);
        assert_eq!(e.degree(), 2);
    }

    #[test]
    fn cancellation_yields_zero() {
        let e = RateExpr::param("N") + (RateExpr::param("N") * -1);
        assert_eq!(e, RateExpr::zero());
        assert!(e.is_constant());
        assert_eq!(e.as_constant(), Some(0));
    }

    #[test]
    fn as_single_param_recognizes_bare_params_only() {
        assert_eq!(RateExpr::param("N").as_single_param(), Some("N"));
        assert_eq!((RateExpr::param("N") * 2).as_single_param(), None);
        assert_eq!(RateExpr::constant(1).as_single_param(), None);
        assert_eq!(
            (RateExpr::param("a") * RateExpr::param("b")).as_single_param(),
            None
        );
    }

    #[test]
    fn params_are_deduped_and_sorted() {
        let e = RateExpr::param("b") * RateExpr::param("a") + RateExpr::param("b");
        assert_eq!(e.params(), vec!["a", "b"]);
    }

    #[test]
    fn equality_is_structural_after_normalization() {
        let a = RateExpr::param("x") * RateExpr::param("y");
        let b = RateExpr::param("y") * RateExpr::param("x");
        assert_eq!(a, b);
    }

    #[test]
    fn display_of_zero() {
        assert_eq!(RateExpr::zero().to_string(), "0");
    }

    #[test]
    fn distributivity() {
        // (N + 1) * (N + 2) == N^2 + 3N + 2
        let lhs = (RateExpr::param("N") + RateExpr::constant(1))
            * (RateExpr::param("N") + RateExpr::constant(2));
        let rhs = RateExpr::param("N") * RateExpr::param("N")
            + RateExpr::param("N") * 3
            + RateExpr::constant(2);
        assert_eq!(lhs, rhs);
    }
}
