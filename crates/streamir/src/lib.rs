//! `streamir` — a StreamIt-like streaming language front-end.
//!
//! This crate implements the substrate the Adaptic compiler consumes: a
//! synchronous-data-flow (SDF) streaming programming model in the style of
//! StreamIt (Thies et al., CC 2002). Programs are built from *actors* —
//! isolated computational units that communicate exclusively through FIFO
//! channels using `pop`, `push` and non-destructive `peek` operations — and
//! composed hierarchically into *pipelines* (sequential composition) and
//! *split-joins* (parallel composition).
//!
//! The crate provides:
//!
//! * a small textual DSL with a lexer and recursive-descent parser
//!   ([`parse`]),
//! * a typed work-function IR ([`ir`]) that the compiler can analyze
//!   (pop/push/peek sites, loops, recurrences, reduction and stencil
//!   patterns),
//! * symbolic data rates ([`rates`]) that may depend on named program
//!   parameters such as the input size,
//! * hierarchical stream graphs and their flattening ([`graph`]),
//! * steady-state scheduling / rate matching ([`schedule`]), and
//! * a reference interpreter ([`interp`]) used as the golden model in
//!   differential tests against compiled GPU kernels.
//!
//! # Example
//!
//! ```
//! use streamir::parse::parse_program;
//! use streamir::interp::Interpreter;
//!
//! let src = r#"
//!     pipeline Main(N) {
//!         actor Square(pop 1, push 1) {
//!             x = pop();
//!             push(x * x);
//!         }
//!         actor Sum(pop N, push 1) {
//!             acc = 0.0;
//!             for i in 0..N {
//!                 acc = acc + pop();
//!             }
//!             push(acc);
//!         }
//!     }
//! "#;
//! let program = parse_program(src).expect("parse");
//! let mut interp = Interpreter::new(&program);
//! interp.bind_param("N", 4);
//! let out = interp.run(&[1.0, 2.0, 3.0, 4.0]).expect("run");
//! assert_eq!(out, vec![1.0 + 4.0 + 9.0 + 16.0]);
//! ```

pub mod actor;
pub mod error;
pub mod graph;
pub mod interp;
pub mod ir;
pub mod parse;
pub mod rates;
pub mod schedule;
pub mod value;

pub use actor::{ActorDef, ActorKind, StateVar, WorkFn};
pub use error::{Error, Result};
pub use graph::{FlatGraph, Joiner, Program, Splitter, StreamNode};
pub use interp::Interpreter;
pub use rates::{RateExpr, RateInterval};
pub use schedule::{
    merged_rate_intervals, partition_rate_regions, RateRegion, RegionPartition, Schedule,
    ScheduleEntry,
};
pub use value::Value;
