//! Lexer and recursive-descent parser for the streaming DSL.
//!
//! The surface syntax is a compact StreamIt dialect:
//!
//! ```text
//! pipeline Main(rows, cols) {
//!     actor Dot(pop cols, push 1) {
//!         state x[cols];
//!         acc = 0.0;
//!         for i in 0..cols {
//!             acc = acc + pop() * x[i];
//!         }
//!         push(acc);
//!     }
//!     splitjoin {
//!         split duplicate;
//!         branch MaxActor;
//!         branch SumActor;
//!         join roundrobin(1, 1);
//!     }
//! }
//! ```
//!
//! * `pipeline Name(params...) { ... }` declares the program; every
//!   top-level item is a pipeline stage in order.
//! * `actor Name(pop R, push R [, peek R]) { ... }` both defines an actor
//!   and instantiates it as the next stage. Leading `state` declarations
//!   introduce persistent scalars (`state c = 0.0;`) or host-bound arrays
//!   (`state x[len];`).
//! * `add Name;` instantiates an already-defined actor as a stage (each
//!   actor may be instantiated at most once).
//! * `splitjoin { split ...; branch ...; join roundrobin(...); }` is
//!   parallel composition; a branch is either a named actor or a nested
//!   `{ ... }` pipeline of items.
//! * Rates are polynomial expressions over the program parameters
//!   (`cols`, `2*N`, `rows*cols + 1`).

use std::collections::HashSet;

use crate::actor::{ActorDef, StateVar, WorkFn};
use crate::error::{Error, Result};
use crate::graph::{Joiner, Program, Splitter, StreamNode};
use crate::ir::{BinOp, Expr, Intrinsic, Stmt, UnOp};
use crate::rates::RateExpr;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f32),
    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Bang,
    DotDot,
    Eof,
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

fn lex(src: &str) -> Result<Vec<Spanned>> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;
    macro_rules! push {
        ($t:expr) => {
            toks.push(Spanned { tok: $t, line, col })
        };
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                push!(Tok::LParen);
                i += 1;
                col += 1;
            }
            ')' => {
                push!(Tok::RParen);
                i += 1;
                col += 1;
            }
            '{' => {
                push!(Tok::LBrace);
                i += 1;
                col += 1;
            }
            '}' => {
                push!(Tok::RBrace);
                i += 1;
                col += 1;
            }
            '[' => {
                push!(Tok::LBracket);
                i += 1;
                col += 1;
            }
            ']' => {
                push!(Tok::RBracket);
                i += 1;
                col += 1;
            }
            ',' => {
                push!(Tok::Comma);
                i += 1;
                col += 1;
            }
            ';' => {
                push!(Tok::Semi);
                i += 1;
                col += 1;
            }
            '+' => {
                push!(Tok::Plus);
                i += 1;
                col += 1;
            }
            '-' => {
                push!(Tok::Minus);
                i += 1;
                col += 1;
            }
            '*' => {
                push!(Tok::Star);
                i += 1;
                col += 1;
            }
            '/' => {
                push!(Tok::Slash);
                i += 1;
                col += 1;
            }
            '%' => {
                push!(Tok::Percent);
                i += 1;
                col += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Ne);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Bang);
                    i += 1;
                    col += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Le);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Lt);
                    i += 1;
                    col += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Ge);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Gt);
                    i += 1;
                    col += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::EqEq);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Assign);
                    i += 1;
                    col += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    push!(Tok::AndAnd);
                    i += 2;
                    col += 2;
                } else {
                    return Err(Error::Lex {
                        offset: i,
                        message: "expected `&&`".into(),
                    });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    push!(Tok::OrOr);
                    i += 2;
                    col += 2;
                } else {
                    return Err(Error::Lex {
                        offset: i,
                        message: "expected `||`".into(),
                    });
                }
            }
            '.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    push!(Tok::DotDot);
                    i += 2;
                    col += 2;
                } else {
                    return Err(Error::Lex {
                        offset: i,
                        message: "stray `.` (floats need a leading digit)".into(),
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                // A `.` followed by a digit makes it a float; `..` is a range.
                let is_float = i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes
                        .get(i + 1)
                        .is_some_and(|b| (*b as char).is_ascii_digit());
                if is_float {
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                    // optional exponent
                    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                        let mut j = i + 1;
                        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                            j += 1;
                        }
                        if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                            i = j;
                            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                                i += 1;
                            }
                        }
                    }
                    let text = &src[start..i];
                    let v: f32 = text.parse().map_err(|_| Error::Lex {
                        offset: start,
                        message: format!("bad float literal `{text}`"),
                    })?;
                    push!(Tok::Float(v));
                } else {
                    let text = &src[start..i];
                    let v: i64 = text.parse().map_err(|_| Error::Lex {
                        offset: start,
                        message: format!("bad integer literal `{text}`"),
                    })?;
                    push!(Tok::Int(v));
                }
                col += i - start;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                push!(Tok::Ident(src[start..i].to_string()));
                col += i - start;
            }
            other => {
                return Err(Error::Lex {
                    offset: i,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    toks.push(Spanned {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(toks)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        let s = &self.toks[self.pos];
        Err(Error::Parse {
            line: s.line,
            col: s.col,
            message: message.into(),
        })
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<()> {
        if *self.peek() == tok {
            self.next();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.next();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found {:?}", self.peek()))
        }
    }

    // ---- program structure -------------------------------------------

    fn program(&mut self) -> Result<Program> {
        self.expect_keyword("pipeline")?;
        let name = self.expect_ident()?;
        self.expect(Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                params.push(self.expect_ident()?);
                if *self.peek() == Tok::Comma {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, "`)`")?;
        self.expect(Tok::LBrace, "`{`")?;

        let mut actors = Vec::new();
        let mut stages = Vec::new();
        self.items(&mut actors, &mut stages, &params)?;
        self.expect(Tok::RBrace, "`}`")?;
        self.expect(Tok::Eof, "end of input")?;

        if stages.is_empty() {
            return self.err("pipeline has no stages");
        }

        let program = Program {
            name,
            params,
            actors,
            graph: StreamNode::Pipeline(stages),
        };
        check_single_instantiation(&program)?;
        Ok(program)
    }

    /// Parse a sequence of items (actor defs / `add` / splitjoins) until the
    /// closing brace, appending definitions to `actors` and stages in order.
    fn items(
        &mut self,
        actors: &mut Vec<ActorDef>,
        stages: &mut Vec<StreamNode>,
        params: &[String],
    ) -> Result<()> {
        while *self.peek() != Tok::RBrace {
            match self.peek().clone() {
                Tok::Ident(kw) if kw == "actor" => {
                    let actor = self.actor_def(params)?;
                    stages.push(StreamNode::Actor(actor.name.clone()));
                    if actors.iter().any(|a| a.name == actor.name) {
                        return self.err(format!("duplicate actor `{}`", actor.name));
                    }
                    actors.push(actor);
                }
                Tok::Ident(kw) if kw == "add" => {
                    self.next();
                    let name = self.expect_ident()?;
                    self.expect(Tok::Semi, "`;`")?;
                    stages.push(StreamNode::Actor(name));
                }
                Tok::Ident(kw) if kw == "splitjoin" => {
                    let sj = self.splitjoin(actors, params)?;
                    stages.push(sj);
                }
                other => {
                    return self.err(format!(
                        "expected `actor`, `add` or `splitjoin`, found {other:?}"
                    ));
                }
            }
        }
        Ok(())
    }

    fn actor_def(&mut self, params: &[String]) -> Result<ActorDef> {
        self.expect_keyword("actor")?;
        let name = self.expect_ident()?;
        self.expect(Tok::LParen, "`(`")?;
        let mut pop = None;
        let mut push = None;
        let mut peek = None;
        loop {
            let kw = self.expect_ident()?;
            let rate = self.rate_expr(params)?;
            match kw.as_str() {
                "pop" => pop = Some(rate),
                "push" => push = Some(rate),
                "peek" => peek = Some(rate),
                other => return self.err(format!("unknown rate `{other}`")),
            }
            if *self.peek() == Tok::Comma {
                self.next();
            } else {
                break;
            }
        }
        self.expect(Tok::RParen, "`)`")?;
        let pop = match pop {
            Some(p) => p,
            None => return self.err("actor missing `pop` rate"),
        };
        let push = match push {
            Some(p) => p,
            None => return self.err("actor missing `push` rate"),
        };
        let peek = peek.unwrap_or_else(|| pop.clone());

        self.expect(Tok::LBrace, "`{`")?;
        // Leading state declarations.
        let mut state = Vec::new();
        while matches!(self.peek(), Tok::Ident(s) if s == "state") {
            self.next();
            let sname = self.expect_ident()?;
            match self.peek() {
                Tok::LBracket => {
                    self.next();
                    let len = self.rate_expr(params)?;
                    self.expect(Tok::RBracket, "`]`")?;
                    state.push(StateVar::Array { name: sname, len });
                }
                Tok::Assign => {
                    self.next();
                    let init = match self.next() {
                        Tok::Float(v) => v,
                        Tok::Int(v) => v as f32,
                        Tok::Minus => match self.next() {
                            Tok::Float(v) => -v,
                            Tok::Int(v) => -(v as f32),
                            _ => return self.err("expected numeric literal"),
                        },
                        _ => return self.err("expected numeric literal"),
                    };
                    state.push(StateVar::Scalar { name: sname, init });
                }
                _ => return self.err("expected `[len]` or `= value` in state declaration"),
            }
            self.expect(Tok::Semi, "`;`")?;
        }
        let body = self.block_body()?;
        self.expect(Tok::RBrace, "`}`")?;
        Ok(ActorDef {
            name,
            state,
            work: WorkFn {
                pop,
                push,
                peek,
                body,
            },
            dyn_rates: std::collections::BTreeMap::new(),
        })
    }

    fn splitjoin(&mut self, actors: &mut Vec<ActorDef>, params: &[String]) -> Result<StreamNode> {
        self.expect_keyword("splitjoin")?;
        self.expect(Tok::LBrace, "`{`")?;
        self.expect_keyword("split")?;
        let splitter = if self.eat_keyword("duplicate") {
            Splitter::Duplicate
        } else {
            self.expect_keyword("roundrobin")?;
            Splitter::RoundRobin(self.weight_list(params)?)
        };
        self.expect(Tok::Semi, "`;`")?;

        let mut branches = Vec::new();
        while matches!(self.peek(), Tok::Ident(s) if s == "branch")
            || matches!(self.peek(), Tok::Ident(s) if s == "actor")
        {
            if self.eat_keyword("branch") {
                match self.peek().clone() {
                    Tok::Ident(_) => {
                        let name = self.expect_ident()?;
                        self.expect(Tok::Semi, "`;`")?;
                        branches.push(StreamNode::Actor(name));
                    }
                    Tok::LBrace => {
                        self.next();
                        let mut stages = Vec::new();
                        self.items(actors, &mut stages, params)?;
                        self.expect(Tok::RBrace, "`}`")?;
                        if stages.is_empty() {
                            return self.err("empty branch");
                        }
                        branches.push(StreamNode::Pipeline(stages));
                    }
                    _ => return self.err("expected actor name or `{` after `branch`"),
                }
            } else {
                // `actor` definition directly as a branch
                let actor = self.actor_def(params)?;
                branches.push(StreamNode::Actor(actor.name.clone()));
                if actors.iter().any(|a| a.name == actor.name) {
                    return self.err(format!("duplicate actor `{}`", actor.name));
                }
                actors.push(actor);
            }
        }

        self.expect_keyword("join")?;
        self.expect_keyword("roundrobin")?;
        let joiner = Joiner::RoundRobin(self.weight_list(params)?);
        self.expect(Tok::Semi, "`;`")?;
        self.expect(Tok::RBrace, "`}`")?;
        Ok(StreamNode::SplitJoin {
            splitter,
            branches,
            joiner,
        })
    }

    fn weight_list(&mut self, params: &[String]) -> Result<Vec<RateExpr>> {
        self.expect(Tok::LParen, "`(`")?;
        let mut ws = Vec::new();
        loop {
            ws.push(self.rate_expr(params)?);
            if *self.peek() == Tok::Comma {
                self.next();
            } else {
                break;
            }
        }
        self.expect(Tok::RParen, "`)`")?;
        Ok(ws)
    }

    // ---- rate expressions (polynomials over parameters) ---------------

    fn rate_expr(&mut self, params: &[String]) -> Result<RateExpr> {
        let mut acc = self.rate_term(params)?;
        loop {
            match self.peek() {
                Tok::Plus => {
                    self.next();
                    acc = acc + self.rate_term(params)?;
                }
                Tok::Minus => {
                    self.next();
                    acc = acc + self.rate_term(params)? * -1;
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn rate_term(&mut self, params: &[String]) -> Result<RateExpr> {
        let mut acc = self.rate_factor(params)?;
        while *self.peek() == Tok::Star {
            self.next();
            acc = acc * self.rate_factor(params)?;
        }
        Ok(acc)
    }

    fn rate_factor(&mut self, params: &[String]) -> Result<RateExpr> {
        match self.next() {
            Tok::Int(v) => Ok(RateExpr::constant(v)),
            Tok::Ident(name) => {
                if params.contains(&name) {
                    Ok(RateExpr::param(&name))
                } else {
                    self.pos -= 1;
                    self.err(format!("`{name}` is not a program parameter"))
                }
            }
            Tok::LParen => {
                let e = self.rate_expr(params)?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            other => {
                self.pos -= 1;
                self.err(format!("expected rate expression, found {other:?}"))
            }
        }
    }

    // ---- statements ----------------------------------------------------

    fn block_body(&mut self) -> Result<Vec<Stmt>> {
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn braced_block(&mut self) -> Result<Vec<Stmt>> {
        self.expect(Tok::LBrace, "`{`")?;
        let body = self.block_body()?;
        self.expect(Tok::RBrace, "`}`")?;
        Ok(body)
    }

    fn stmt(&mut self) -> Result<Stmt> {
        match self.peek().clone() {
            Tok::Ident(kw) if kw == "push" => {
                self.next();
                self.expect(Tok::LParen, "`(`")?;
                let e = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::Push(e))
            }
            Tok::Ident(kw) if kw == "if" => {
                self.next();
                self.expect(Tok::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                let then_body = self.braced_block()?;
                let else_body = if self.eat_keyword("else") {
                    self.braced_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                })
            }
            Tok::Ident(kw) if kw == "for" => {
                self.next();
                let var = self.expect_ident()?;
                self.expect_keyword("in")?;
                let start = self.expr()?;
                self.expect(Tok::DotDot, "`..`")?;
                let end = self.expr()?;
                let body = self.braced_block()?;
                Ok(Stmt::For {
                    var,
                    start,
                    end,
                    body,
                })
            }
            Tok::Ident(kw) if kw == "state" => {
                self.err("`state` declarations must come first in the actor body")
            }
            Tok::Ident(name) => {
                // assignment or state store
                self.next();
                match self.peek() {
                    Tok::Assign => {
                        self.next();
                        let e = self.expr()?;
                        self.expect(Tok::Semi, "`;`")?;
                        Ok(Stmt::Assign { name, expr: e })
                    }
                    Tok::LBracket => {
                        self.next();
                        let index = self.expr()?;
                        self.expect(Tok::RBracket, "`]`")?;
                        self.expect(Tok::Assign, "`=`")?;
                        let e = self.expr()?;
                        self.expect(Tok::Semi, "`;`")?;
                        Ok(Stmt::StateStore {
                            array: name,
                            index,
                            expr: e,
                        })
                    }
                    _ => self.err("expected `=` or `[` after identifier"),
                }
            }
            other => self.err(format!("expected statement, found {other:?}")),
        }
    }

    // ---- expressions (precedence climbing) -----------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == Tok::OrOr {
            self.next();
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.cmp_expr()?;
        while *self.peek() == Tok::AndAnd {
            self.next();
            let rhs = self.cmp_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            Tok::EqEq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.next();
        let rhs = self.add_expr()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.mul_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => break,
            };
            self.next();
            let rhs = self.unary_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        match self.peek() {
            Tok::Minus => {
                self.next();
                let e = self.unary_expr()?;
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    operand: Box::new(e),
                })
            }
            Tok::Bang => {
                self.next();
                let e = self.unary_expr()?;
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    operand: Box::new(e),
                })
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Tok::Float(v) => {
                self.next();
                Ok(Expr::Float(v))
            }
            Tok::Int(v) => {
                self.next();
                Ok(Expr::Int(v))
            }
            Tok::LParen => {
                self.next();
                let e = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if name == "pop" && *self.peek2() == Tok::LParen {
                    self.next();
                    self.next();
                    self.expect(Tok::RParen, "`)`")?;
                    return Ok(Expr::Pop);
                }
                if name == "peek" && *self.peek2() == Tok::LParen {
                    self.next();
                    self.next();
                    let e = self.expr()?;
                    self.expect(Tok::RParen, "`)`")?;
                    return Ok(Expr::Peek(Box::new(e)));
                }
                if let Some(intr) = Intrinsic::from_name(&name) {
                    if *self.peek2() == Tok::LParen {
                        self.next();
                        self.next();
                        let mut args = Vec::new();
                        if *self.peek() != Tok::RParen {
                            loop {
                                args.push(self.expr()?);
                                if *self.peek() == Tok::Comma {
                                    self.next();
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect(Tok::RParen, "`)`")?;
                        if args.len() != intr.arity() {
                            return self.err(format!(
                                "{} expects {} arguments, got {}",
                                intr.name(),
                                intr.arity(),
                                args.len()
                            ));
                        }
                        return Ok(Expr::Call {
                            intrinsic: intr,
                            args,
                        });
                    }
                }
                self.next();
                if *self.peek() == Tok::LBracket {
                    self.next();
                    let idx = self.expr()?;
                    self.expect(Tok::RBracket, "`]`")?;
                    return Ok(Expr::StateLoad {
                        array: name,
                        index: Box::new(idx),
                    });
                }
                Ok(Expr::Var(name))
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }
}

fn check_single_instantiation(program: &Program) -> Result<()> {
    fn walk(node: &StreamNode, seen: &mut HashSet<String>) -> Result<()> {
        match node {
            StreamNode::Actor(name) => {
                if !seen.insert(name.clone()) {
                    return Err(Error::Semantic(format!(
                        "actor `{name}` instantiated more than once"
                    )));
                }
                Ok(())
            }
            StreamNode::Pipeline(children) => {
                for c in children {
                    walk(c, seen)?;
                }
                Ok(())
            }
            StreamNode::SplitJoin { branches, .. } => {
                for b in branches {
                    walk(b, seen)?;
                }
                Ok(())
            }
        }
    }
    let mut seen = HashSet::new();
    walk(&program.graph, &mut seen)?;
    // Every instantiated actor must be defined.
    for name in &seen {
        if program.actor(name).is_none() {
            return Err(Error::Semantic(format!("undefined actor `{name}`")));
        }
    }
    Ok(())
}

/// Parse a complete DSL program.
///
/// # Errors
///
/// Returns [`Error::Lex`], [`Error::Parse`], or [`Error::Semantic`] for
/// malformed programs.
///
/// # Example
///
/// ```
/// let p = streamir::parse::parse_program(
///     "pipeline Main() { actor Id(pop 1, push 1) { push(pop()); } }",
/// ).unwrap();
/// assert_eq!(p.name, "Main");
/// assert_eq!(p.actors.len(), 1);
/// ```
pub fn parse_program(src: &str) -> Result<Program> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::ActorKind;

    #[test]
    fn lex_basic_tokens() {
        let toks = lex("a = 1 + 2.5; // comment\nb").unwrap();
        let kinds: Vec<Tok> = toks.into_iter().map(|s| s.tok).collect();
        assert_eq!(
            kinds,
            vec![
                Tok::Ident("a".into()),
                Tok::Assign,
                Tok::Int(1),
                Tok::Plus,
                Tok::Float(2.5),
                Tok::Semi,
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_range_vs_float() {
        let toks = lex("0..N 1.5 2..3").unwrap();
        let kinds: Vec<Tok> = toks.into_iter().map(|s| s.tok).collect();
        assert_eq!(
            kinds,
            vec![
                Tok::Int(0),
                Tok::DotDot,
                Tok::Ident("N".into()),
                Tok::Float(1.5),
                Tok::Int(2),
                Tok::DotDot,
                Tok::Int(3),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_comparison_operators() {
        let toks = lex("<= >= == != < > && || !").unwrap();
        let kinds: Vec<Tok> = toks.into_iter().map(|s| s.tok).collect();
        assert_eq!(
            kinds,
            vec![
                Tok::Le,
                Tok::Ge,
                Tok::EqEq,
                Tok::Ne,
                Tok::Lt,
                Tok::Gt,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Bang,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_rejects_garbage() {
        assert!(matches!(lex("a $ b"), Err(Error::Lex { .. })));
        assert!(matches!(lex("a & b"), Err(Error::Lex { .. })));
        assert!(matches!(lex(".5"), Err(Error::Lex { .. })));
    }

    #[test]
    fn parse_minimal_pipeline() {
        let p =
            parse_program("pipeline Main() { actor Id(pop 1, push 1) { push(pop()); } }").unwrap();
        assert_eq!(p.name, "Main");
        assert!(p.params.is_empty());
        assert_eq!(p.actors.len(), 1);
        assert_eq!(p.actors[0].kind(), ActorKind::Transfer);
    }

    #[test]
    fn parse_params_and_symbolic_rates() {
        let p = parse_program(
            r#"
            pipeline TMV(rows, cols) {
                actor Dot(pop cols, push 1) {
                    state x[cols];
                    acc = 0.0;
                    for i in 0..cols {
                        acc = acc + pop() * x[i];
                    }
                    push(acc);
                }
            }
            "#,
        )
        .unwrap();
        assert_eq!(p.params, vec!["rows".to_string(), "cols".to_string()]);
        let dot = p.actor("Dot").unwrap();
        assert_eq!(dot.work.pop, RateExpr::param("cols"));
        assert_eq!(dot.work.push, RateExpr::constant(1));
        assert!(matches!(dot.state[0], StateVar::Array { .. }));
    }

    #[test]
    fn parse_polynomial_rate() {
        let p = parse_program("pipeline P(r, c) { actor A(pop r*c + 2, push 1) { push(pop()); } }")
            .unwrap();
        let expect = RateExpr::param("r") * RateExpr::param("c") + RateExpr::constant(2);
        assert_eq!(p.actors[0].work.pop, expect);
    }

    #[test]
    fn parse_splitjoin_with_named_branches() {
        let p = parse_program(
            r#"
            pipeline P() {
                actor Pre(pop 1, push 1) { push(pop()); }
                splitjoin {
                    split duplicate;
                    actor MaxA(pop 1, push 1) { push(max(pop(), 0.0)); }
                    actor MinA(pop 1, push 1) { push(min(pop(), 0.0)); }
                    join roundrobin(1, 1);
                }
            }
            "#,
        )
        .unwrap();
        assert_eq!(p.actors.len(), 3);
        let fg = p.flatten().unwrap();
        assert_eq!(fg.nodes.len(), 5); // Pre, split, join, MaxA, MinA
    }

    #[test]
    fn parse_branch_pipeline() {
        let p = parse_program(
            r#"
            pipeline P() {
                actor Src(pop 1, push 1) { push(pop()); }
                splitjoin {
                    split roundrobin(1, 1);
                    branch Src2;
                    branch {
                        actor Neg(pop 1, push 1) { push(0.0 - pop()); }
                        actor Sq(pop 1, push 1) { x = pop(); push(x * x); }
                    }
                    join roundrobin(1, 1);
                }
                actor Src2Def(pop 1, push 1) { push(pop()); }
            }
            "#,
        );
        // `Src2` is never defined -> semantic error.
        assert!(matches!(p, Err(Error::Semantic(_))));
    }

    #[test]
    fn parse_if_else_and_intrinsics() {
        let p = parse_program(
            r#"
            pipeline P() {
                actor Clamp(pop 1, push 1) {
                    x = pop();
                    if (x < 0.0) {
                        push(0.0);
                    } else {
                        push(sqrt(x));
                    }
                }
            }
            "#,
        )
        .unwrap();
        let body = &p.actors[0].work.body;
        assert!(matches!(body[1], Stmt::If { .. }));
    }

    #[test]
    fn parse_state_scalar_with_negative_init() {
        let p = parse_program(
            r#"
            pipeline P() {
                actor A(pop 1, push 1) {
                    state best = -1000000.0;
                    best = max(best, pop());
                    push(best);
                }
            }
            "#,
        )
        .unwrap();
        assert!(matches!(p.actors[0].state[0], StateVar::Scalar { init, .. } if init < 0.0));
    }

    #[test]
    fn duplicate_actor_rejected() {
        let r = parse_program(
            r#"
            pipeline P() {
                actor A(pop 1, push 1) { push(pop()); }
                actor A(pop 1, push 1) { push(pop()); }
            }
            "#,
        );
        assert!(r.is_err());
    }

    #[test]
    fn double_instantiation_rejected() {
        let r = parse_program(
            r#"
            pipeline P() {
                actor A(pop 1, push 1) { push(pop()); }
                add A;
            }
            "#,
        );
        assert!(matches!(r, Err(Error::Semantic(_))));
    }

    #[test]
    fn non_param_rate_rejected() {
        let r = parse_program("pipeline P(n) { actor A(pop m, push 1) { push(pop()); } }");
        assert!(matches!(r, Err(Error::Parse { .. })));
    }

    #[test]
    fn missing_rate_rejected() {
        let r = parse_program("pipeline P() { actor A(pop 1) { push(pop()); } }");
        assert!(matches!(r, Err(Error::Parse { .. })));
    }

    #[test]
    fn wrong_intrinsic_arity_rejected() {
        let r = parse_program("pipeline P() { actor A(pop 1, push 1) { push(max(pop())); } }");
        assert!(matches!(r, Err(Error::Parse { .. })));
    }

    #[test]
    fn expression_precedence() {
        let p =
            parse_program("pipeline P() { actor A(pop 1, push 1) { push(1.0 + pop() * 2.0); } }")
                .unwrap();
        // Must parse as 1.0 + (pop * 2.0)
        let Stmt::Push(e) = &p.actors[0].work.body[0] else {
            panic!("expected push");
        };
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = e
        else {
            panic!("expected add at the top, got {e}");
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn end_to_end_parse_and_run() {
        let p = parse_program(
            r#"
            pipeline MeanOf4(N) {
                actor Sum(pop N, push 1) {
                    acc = 0.0;
                    for i in 0..N {
                        acc = acc + pop();
                    }
                    push(acc / N);
                }
            }
            "#,
        )
        .unwrap();
        let mut it = crate::interp::Interpreter::new(&p);
        it.bind_param("N", 4);
        assert_eq!(it.run(&[2.0, 4.0, 6.0, 8.0]).unwrap(), vec![5.0]);
    }
}
