//! Actor definitions.
//!
//! An actor is an isolated computational unit with a single input and a
//! single output channel, whose `work` method fires repeatedly as long as
//! input is available. The amount of data consumed per firing is the *pop
//! rate*, the amount produced is the *push rate*, and the furthest offset
//! read non-destructively is the *peek rate*; all three may be symbolic in
//! the program parameters ([`RateExpr`]).

use std::collections::BTreeMap;

use crate::ir::{count_sites, Expr, Stmt};
use crate::rates::{RateExpr, RateInterval};

/// A state variable owned by an actor.
///
/// Scalars persist across firings (e.g. a running counter). Arrays model
/// constant host-bound data such as the `x` vector in matrix-vector
/// multiplication or filter taps; their contents are bound before execution
/// and are read-only unless the actor stores to them.
#[derive(Debug, Clone, PartialEq)]
pub enum StateVar {
    /// A scalar with an initial value.
    Scalar { name: String, init: f32 },
    /// An array whose length may depend on program parameters.
    Array { name: String, len: RateExpr },
}

impl StateVar {
    /// The variable's name.
    pub fn name(&self) -> &str {
        match self {
            StateVar::Scalar { name, .. } | StateVar::Array { name, .. } => name,
        }
    }
}

/// The work method of an actor: declared rates plus the IR body.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkFn {
    /// Items consumed per firing.
    pub pop: RateExpr,
    /// Items produced per firing.
    pub push: RateExpr,
    /// Largest input offset examined per firing (`>= pop`); equals the pop
    /// rate when the actor never peeks beyond what it consumes.
    pub peek: RateExpr,
    /// Statement list executed once per firing.
    pub body: Vec<Stmt>,
}

/// Coarse classification of an actor's body, used by the integration
/// optimizations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActorKind {
    /// Performs real computation.
    Generic,
    /// A *transfer actor*: performs no arithmetic, only reorganizes data
    /// from input to output. After vertical integration these are replaced
    /// by index translation (§4.3.1 of the paper).
    Transfer,
}

/// A named actor definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ActorDef {
    /// Unique name within the program.
    pub name: String,
    /// Persistent state (scalars and host-bound arrays).
    pub state: Vec<StateVar>,
    /// The work method.
    pub work: WorkFn,
    /// Declared runtime intervals for *dynamic* rate parameters. A
    /// parameter appearing here is not fixed at plan time: the actor
    /// promises only that its runtime value stays inside the interval.
    /// Parameters absent from this map are static as before.
    pub dyn_rates: BTreeMap<String, RateInterval>,
}

impl ActorDef {
    /// Create an actor with the given name and work method and no state.
    pub fn new(name: &str, work: WorkFn) -> ActorDef {
        ActorDef {
            name: name.to_string(),
            state: Vec::new(),
            work,
            dyn_rates: BTreeMap::new(),
        }
    }

    /// Declare a rate parameter as dynamic over `interval`.
    ///
    /// The declaration is a promise about runtime traffic, not a rate in
    /// itself: the parameter may (but need not) appear in this actor's
    /// pop/push/peek rates. Re-declaring a parameter replaces its interval.
    pub fn with_rate_interval(mut self, param: &str, interval: RateInterval) -> ActorDef {
        self.dyn_rates.insert(param.to_string(), interval);
        self
    }

    /// The declared interval of `param`, if this actor declares it dynamic.
    pub fn rate_interval(&self, param: &str) -> Option<&RateInterval> {
        self.dyn_rates.get(param)
    }

    /// True when the actor declares at least one dynamic rate parameter.
    pub fn is_dynamic(&self) -> bool {
        !self.dyn_rates.is_empty()
    }

    /// Add a state array of the given (symbolic) length.
    pub fn with_state_array(mut self, name: &str, len: RateExpr) -> ActorDef {
        self.state.push(StateVar::Array {
            name: name.to_string(),
            len,
        });
        self
    }

    /// Add a scalar state variable.
    pub fn with_state_scalar(mut self, name: &str, init: f32) -> ActorDef {
        self.state.push(StateVar::Scalar {
            name: name.to_string(),
            init,
        });
        self
    }

    /// Look up a state variable by name.
    pub fn state_var(&self, name: &str) -> Option<&StateVar> {
        self.state.iter().find(|s| s.name() == name)
    }

    /// Classify the actor as computing or pure-transfer.
    ///
    /// A transfer actor's body consists solely of pushes of `pop()`/`peek(k)`
    /// expressions (possibly inside loops): it moves data without arithmetic.
    pub fn kind(&self) -> ActorKind {
        fn stmt_is_transfer(s: &Stmt) -> bool {
            match s {
                Stmt::Push(e) => expr_is_move(e),
                Stmt::For { body, .. } => body.iter().all(stmt_is_transfer),
                Stmt::Assign { expr, .. } => expr_is_move(expr),
                _ => false,
            }
        }
        fn expr_is_move(e: &Expr) -> bool {
            matches!(e, Expr::Pop | Expr::Peek(_) | Expr::Var(_))
        }
        if !self.work.body.is_empty() && self.work.body.iter().all(stmt_is_transfer) {
            ActorKind::Transfer
        } else {
            ActorKind::Generic
        }
    }

    /// True when the actor peeks beyond its pop window (stencil-like
    /// access); such actors are candidates for the neighboring-access
    /// optimization.
    pub fn peeks_beyond_pops(&self) -> bool {
        self.work.peek != self.work.pop || count_sites(&self.work.body).peeks > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Expr, Stmt};

    fn identity_work() -> WorkFn {
        WorkFn {
            pop: RateExpr::constant(1),
            push: RateExpr::constant(1),
            peek: RateExpr::constant(1),
            body: vec![Stmt::Push(Expr::Pop)],
        }
    }

    #[test]
    fn transfer_actor_detected() {
        let a = ActorDef::new("Id", identity_work());
        assert_eq!(a.kind(), ActorKind::Transfer);
    }

    #[test]
    fn computing_actor_is_generic() {
        let mut w = identity_work();
        w.body = vec![Stmt::Push(Expr::bin(
            BinOp::Mul,
            Expr::Pop,
            Expr::Float(2.0),
        ))];
        let a = ActorDef::new("Scale", w);
        assert_eq!(a.kind(), ActorKind::Generic);
    }

    #[test]
    fn loop_of_moves_is_transfer() {
        let w = WorkFn {
            pop: RateExpr::param("N"),
            push: RateExpr::param("N"),
            peek: RateExpr::param("N"),
            body: vec![Stmt::For {
                var: "i".into(),
                start: Expr::Int(0),
                end: Expr::var("N"),
                body: vec![Stmt::Push(Expr::Pop)],
            }],
        };
        assert_eq!(ActorDef::new("Copy", w).kind(), ActorKind::Transfer);
    }

    #[test]
    fn state_builders_and_lookup() {
        let a = ActorDef::new("A", identity_work())
            .with_state_array("xs", RateExpr::param("N"))
            .with_state_scalar("count", 0.0);
        assert!(matches!(a.state_var("xs"), Some(StateVar::Array { .. })));
        assert!(matches!(
            a.state_var("count"),
            Some(StateVar::Scalar { .. })
        ));
        assert!(a.state_var("nope").is_none());
        assert_eq!(a.state_var("xs").unwrap().name(), "xs");
    }

    #[test]
    fn rate_interval_declarations() {
        let a = ActorDef::new("A", identity_work())
            .with_rate_interval("N", RateInterval::new(4, 64).unwrap());
        assert!(a.is_dynamic());
        assert_eq!(a.rate_interval("N"), Some(&RateInterval { lo: 4, hi: 64 }));
        assert_eq!(a.rate_interval("M"), None);
        // Re-declaration replaces the interval.
        let a = a.with_rate_interval("N", RateInterval::new(8, 16).unwrap());
        assert_eq!(a.rate_interval("N"), Some(&RateInterval { lo: 8, hi: 16 }));
        assert!(!ActorDef::new("B", identity_work()).is_dynamic());
    }

    #[test]
    fn peeks_beyond_pops_for_stencils() {
        let w = WorkFn {
            pop: RateExpr::constant(1),
            push: RateExpr::constant(1),
            peek: RateExpr::constant(3),
            body: vec![Stmt::Push(Expr::Peek(Box::new(Expr::Int(2))))],
        };
        assert!(ActorDef::new("S", w).peeks_beyond_pops());
        assert!(!ActorDef::new("Id", identity_work()).peeks_beyond_pops());
    }
}
