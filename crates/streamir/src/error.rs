//! Error types shared across the `streamir` crate.

use std::fmt;

/// Convenient alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while parsing, scheduling or interpreting streaming
/// programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A lexical error at the given byte offset.
    Lex { offset: usize, message: String },
    /// A syntax error at the given line/column.
    Parse {
        line: usize,
        col: usize,
        message: String,
    },
    /// A semantic error (undefined name, duplicate actor, bad rate, ...).
    Semantic(String),
    /// Rate matching failed: the graph has no steady-state schedule.
    RateMismatch(String),
    /// A program parameter was referenced but never bound to a value.
    UnboundParam(String),
    /// Runtime error while interpreting a work function.
    Runtime(String),
    /// The input stream did not contain enough data for one steady state.
    InsufficientInput { needed: usize, got: usize },
    /// A compiled program's variant table has no entries to select from.
    EmptyVariantTable,
    /// The selector was asked for an input size outside the range the
    /// program's variant table was compiled for.
    InputOutOfRange { x: i64, lo: i64, hi: i64 },
    /// A kernel launch kept failing after the runtime exhausted its retry
    /// budget; `cause` is the last launch failure.
    LaunchFailed {
        kernel: String,
        attempts: u32,
        cause: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { offset, message } => {
                write!(f, "lex error at byte {offset}: {message}")
            }
            Error::Parse { line, col, message } => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
            Error::Semantic(m) => write!(f, "semantic error: {m}"),
            Error::RateMismatch(m) => write!(f, "rate mismatch: {m}"),
            Error::UnboundParam(p) => write!(f, "unbound parameter `{p}`"),
            Error::Runtime(m) => write!(f, "runtime error: {m}"),
            Error::InsufficientInput { needed, got } => {
                write!(f, "insufficient input: needed {needed} items, got {got}")
            }
            Error::EmptyVariantTable => {
                write!(f, "variant table is empty: nothing to select from")
            }
            Error::InputOutOfRange { x, lo, hi } => {
                write!(f, "input size {x} outside the compiled range [{lo}, {hi}]")
            }
            Error::LaunchFailed {
                kernel,
                attempts,
                cause,
            } => {
                write!(
                    f,
                    "kernel `{kernel}` failed after {attempts} attempts: {cause}"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let cases = [
            Error::Lex {
                offset: 3,
                message: "bad char".into(),
            },
            Error::Parse {
                line: 1,
                col: 2,
                message: "expected `{`".into(),
            },
            Error::Semantic("dup".into()),
            Error::RateMismatch("no solution".into()),
            Error::UnboundParam("N".into()),
            Error::Runtime("pop on empty channel".into()),
            Error::InsufficientInput { needed: 8, got: 3 },
            Error::EmptyVariantTable,
            Error::InputOutOfRange {
                x: 0,
                lo: 1,
                hi: 64,
            },
            Error::LaunchFailed {
                kernel: "sum".into(),
                attempts: 3,
                cause: "launch rejected by the device".into(),
            },
        ];
        for c in cases {
            let s = c.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
