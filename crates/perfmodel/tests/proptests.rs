//! Property tests of the analytical model: sanity constraints that must
//! hold over the whole input space the compiler explores.

use proptest::prelude::*;

use gpu_sim::DeviceSpec;
use perfmodel::{
    apply_boundary, estimate, find_crossover, partition_range, recalibrated_boundary,
    tiles_exactly, Hysteresis, LaunchProfile, RangeAssignment,
};

fn profile(grid: u32, block: u32, mem: f64, trans: f64, compute: f64) -> LaunchProfile {
    LaunchProfile {
        grid_dim: grid,
        block_dim: block,
        shared_words: 0,
        mem_insts_per_warp: mem,
        transactions_per_mem_inst: trans,
        compute_insts_per_warp: compute,
        shared_cycles_per_warp: 0.0,
        syncs_per_block: 0.0,
        flops: 1.0,
    }
}

proptest! {
    /// Time estimates are strictly positive, finite, and at least the
    /// launch overhead.
    #[test]
    fn estimates_are_positive_and_bounded_below(
        grid in 1u32..100_000,
        block in prop::sample::select(vec![32u32, 64, 128, 256, 512]),
        mem in 0.0f64..1000.0,
        compute in 0.0f64..10_000.0,
        trans in 1.0f64..32.0,
    ) {
        for device in [DeviceSpec::tesla_c2050(), DeviceSpec::gtx285(), DeviceSpec::gtx480()] {
            let est = estimate(&device, &profile(grid, block, mem, trans, compute));
            prop_assert!(est.total_cycles.is_finite());
            prop_assert!(est.total_cycles >= device.launch_overhead_cycles());
            prop_assert!(est.time_us > 0.0);
            prop_assert!(est.mwp >= 1.0);
            prop_assert!(est.cwp >= 1.0);
            prop_assert!(est.waves >= 1.0);
        }
    }

    /// More uncoalesced transactions never make a memory-bound kernel
    /// faster.
    #[test]
    fn worse_coalescing_never_helps(
        grid in 64u32..10_000,
        mem in 1.0f64..200.0,
        t1 in 1.0f64..16.0,
        extra in 0.0f64..16.0,
    ) {
        let d = DeviceSpec::tesla_c2050();
        let a = estimate(&d, &profile(grid, 256, mem, t1, 4.0));
        let b = estimate(&d, &profile(grid, 256, mem, t1 + extra, 4.0));
        prop_assert!(b.total_cycles >= a.total_cycles * 0.999);
    }

    /// A strictly larger grid (same per-warp work) never takes less time.
    #[test]
    fn more_blocks_never_faster(
        grid in 1u32..5_000,
        extra in 1u32..5_000,
        mem in 1.0f64..100.0,
    ) {
        let d = DeviceSpec::gtx480();
        let a = estimate(&d, &profile(grid, 256, mem, 2.0, 10.0));
        let b = estimate(&d, &profile(grid + extra, 256, mem, 2.0, 10.0));
        prop_assert!(b.total_cycles >= a.total_cycles * 0.999,
            "{} blocks: {:.0} cy, {} blocks: {:.0} cy",
            grid, a.total_cycles, grid + extra, b.total_cycles);
    }

    /// `find_crossover` returns a point that actually separates the two
    /// orderings, when it returns at all.
    #[test]
    fn crossover_point_separates(
        a0 in 1.0f64..1000.0,
        a1 in 0.001f64..1.0,
        b1 in 1.001f64..3.0,
    ) {
        // f = a0 + a1*x vs g = b1*x; orderings flip at most once.
        let f = |x: i64| a0 + a1 * x as f64;
        let g = |x: i64| b1 * x as f64;
        if let Some(c) = find_crossover(1, 1 << 30, f, g) {
            let before = f(c - 1) <= g(c - 1);
            let after = f(c) <= g(c);
            prop_assert_ne!(before, after);
        } else {
            prop_assert_eq!(f(1) <= g(1), f(1 << 30) <= g(1 << 30));
        }
    }

    /// Range partitioning tiles exactly and assigns each probe point to a
    /// cost-minimal variant.
    #[test]
    fn partition_is_exact_and_optimal_at_samples(
        lo in 1i64..100,
        span in 100i64..100_000,
        c0 in 1.0f64..100.0,
        c1 in 0.1f64..10.0,
    ) {
        let hi = lo + span;
        let f0 = move |x: i64| c0 + 0.5 * x as f64;
        let f1 = move |x: i64| c1 * x as f64;
        let mut variants: Vec<Box<dyn FnMut(i64) -> f64>> =
            vec![Box::new(f0), Box::new(f1)];
        let ranges = partition_range(lo, hi, &mut variants);
        prop_assert!(tiles_exactly(lo, hi, &ranges));
        for r in &ranges {
            let mid = (r.lo + r.hi) / 2;
            let costs = [f0(mid), f1(mid)];
            let best = if costs[0] <= costs[1] { 0 } else { 1 };
            // Ties may go either way; require within-epsilon optimality.
            prop_assert!(costs[r.variant] <= costs[best] * (1.0 + 1e-9));
        }
    }

    /// Partitioning still tiles exactly — no gaps, no overlap — for any
    /// number of variants with random affine cost curves.
    #[test]
    fn partition_tiles_for_any_variant_count(
        lo in 1i64..50,
        span in 10i64..50_000,
        curves in prop::collection::vec((0.0f64..500.0, 0.01f64..5.0), 1..6),
    ) {
        let hi = lo + span;
        let mut variants: Vec<Box<dyn FnMut(i64) -> f64>> = curves
            .iter()
            .map(|&(b, m)| Box::new(move |x: i64| b + m * x as f64) as Box<dyn FnMut(i64) -> f64>)
            .collect();
        let ranges = partition_range(lo, hi, &mut variants);
        prop_assert!(tiles_exactly(lo, hi, &ranges));
        for r in &ranges {
            prop_assert!(r.variant < curves.len());
        }
    }

    /// The break-even point moves monotonically when one cost curve is
    /// perturbed: uniformly inflating the variant that wins at large
    /// inputs (`f`, the flatter curve) can only delay its break-even —
    /// the crossover never moves toward smaller inputs.
    #[test]
    fn crossover_monotone_under_perturbation(
        a0 in 10.0f64..1000.0,
        b1 in 1.1f64..4.0,
        scale in 1.0f64..8.0,
    ) {
        // g = b1*x wins small x (no offset); f = a0 + x wins large x
        // (smaller slope). The crossover is the first x where f <= g.
        let f = move |x: i64| a0 + x as f64;
        let g = move |x: i64| b1 * x as f64;
        let base = find_crossover(1, 1 << 30, f, g);
        let scaled = find_crossover(1, 1 << 30, move |x| scale * f(x), g);
        if let (Some(c0), Some(c1)) = (base, scaled) {
            prop_assert!(
                c1 >= c0,
                "inflating f by {scale} moved its break-even down: {c0} -> {c1}"
            );
        }
    }

    /// Recalibrated boundaries always land inside the declared range and
    /// keep the assignment table tiling exactly when applied.
    #[test]
    fn recalibrated_boundary_stays_in_declared_range(
        lo in 1i64..100,
        span in 2i64..100_000,
        cut in 0.001f64..0.999,
        a0 in 1.0f64..1000.0,
        b1 in 1.01f64..8.0,
        left_scale in 0.05f64..20.0,
        right_scale in 0.05f64..20.0,
    ) {
        let hi = lo + span;
        // Any interior starting boundary.
        let current = lo + 1 + ((span - 1) as f64 * cut) as i64;
        let left = move |x: i64| left_scale * (a0 + x as f64);
        let right = move |x: i64| right_scale * b1 * x as f64;
        if let Some(b) = recalibrated_boundary(lo, hi, current, left, right, Hysteresis::default()) {
            prop_assert!(b > lo && b <= hi, "boundary {b} escaped ({lo}, {hi}]");
            let mut ranges = vec![
                RangeAssignment { lo, hi: current - 1, variant: 0 },
                RangeAssignment { lo: current, hi, variant: 1 },
            ];
            prop_assert!(apply_boundary(&mut ranges, 0, b));
            prop_assert!(tiles_exactly(lo, hi, &ranges));
        }
    }
}
