//! "Few fit most" variant-set pruning.
//!
//! A per-device variant table earns its keep only where the variants
//! actually disagree; most of the input axis is covered within a few
//! percent of optimal by a small subset (the multi-versioning SGEMM
//! observation: *A Few Fit Most*). This module selects that subset: given
//! each variant's cost curve sampled over the axis, find the smallest set
//! of variants whose pointwise-best cost stays within a tolerance of the
//! full table's pointwise-best — bounding per-device code size,
//! artifact-store footprint and circuit-breaker surface as devices
//! multiply.
//!
//! Selection is greedy max-coverage: repeatedly admit the variant that
//! covers the most still-uncovered sample points (ties broken by total
//! cost reduction, then by lower index for determinism). Greedy is the
//! classic O(log n)-approximation for set cover and is exact here in the
//! common case where each variant dominates one contiguous band of the
//! axis.

/// Result of pruning one variant table against sampled cost curves.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneSelection {
    /// Retained variants, ascending original indices. Never empty.
    pub kept: Vec<usize>,
    /// `max_i (best_kept(i) / best_full(i) - 1)` over the sample points —
    /// the worst-case slowdown the pruned set admits, guaranteed
    /// `<= tolerance`.
    pub max_overhead: f64,
    /// Mean of the same ratio over the sample points.
    pub mean_overhead: f64,
}

/// Pointwise-best cost over `kept` at sample `i`.
fn best_over(costs: &[Vec<f64>], kept: &[usize], i: usize) -> f64 {
    kept.iter()
        .map(|&v| costs[v][i])
        .fold(f64::INFINITY, f64::min)
}

fn overheads(costs: &[Vec<f64>], kept: &[usize], full_best: &[f64]) -> (f64, f64) {
    let mut max_o = 0.0f64;
    let mut sum_o = 0.0f64;
    for (i, &fb) in full_best.iter().enumerate() {
        let kb = best_over(costs, kept, i);
        let o = if fb.is_finite() && fb > 0.0 {
            (kb / fb - 1.0).max(0.0)
        } else if kb.is_finite() {
            0.0
        } else {
            f64::INFINITY
        };
        max_o = max_o.max(o);
        sum_o += o;
    }
    (max_o, sum_o / full_best.len().max(1) as f64)
}

/// Select the smallest variant subset whose pointwise-best cost stays
/// within `tolerance` (fractional, e.g. `0.10` = 10%) of the full set's
/// at every sample point.
///
/// `costs[v][i]` is the cost of variant `v` at sample point `i`; all rows
/// must have equal length. `f64::INFINITY` marks a variant that cannot run
/// at a point. The full set trivially satisfies the bound, so the greedy
/// loop always terminates with a valid (possibly full) selection.
///
/// # Panics
///
/// Panics when `costs` is empty, rows are ragged, or there are no sample
/// points.
pub fn prune_variant_set(costs: &[Vec<f64>], tolerance: f64) -> PruneSelection {
    assert!(!costs.is_empty(), "no variants to prune");
    let points = costs[0].len();
    assert!(points > 0, "no sample points");
    assert!(
        costs.iter().all(|row| row.len() == points),
        "ragged cost matrix"
    );
    let tolerance = tolerance.max(0.0);
    let nv = costs.len();
    let all: Vec<usize> = (0..nv).collect();
    let full_best: Vec<f64> = (0..points).map(|i| best_over(costs, &all, i)).collect();

    // A point is covered by variant v when v's cost is within tolerance of
    // the full-table best there.
    let covered_by = |v: usize, i: usize| -> bool {
        let fb = full_best[i];
        if !fb.is_finite() {
            return true; // nothing can run here; every subset agrees
        }
        costs[v][i] <= fb * (1.0 + tolerance)
    };

    let mut kept: Vec<usize> = Vec::new();
    let mut uncovered: Vec<usize> = (0..points).collect();
    while !uncovered.is_empty() {
        let mut best_v = None;
        let mut best_gain = 0usize;
        let mut best_cost_sum = f64::INFINITY;
        for v in (0..nv).filter(|v| !kept.contains(v)) {
            let gain = uncovered.iter().filter(|&&i| covered_by(v, i)).count();
            let cost_sum: f64 = uncovered
                .iter()
                .map(|&i| costs[v][i].min(1e30)) // cap ∞ so sums stay comparable
                .sum();
            if gain > best_gain || (gain == best_gain && gain > 0 && cost_sum < best_cost_sum) {
                best_v = Some(v);
                best_gain = gain;
                best_cost_sum = cost_sum;
            }
        }
        match best_v {
            Some(v) => {
                kept.push(v);
                uncovered.retain(|&i| !covered_by(v, i));
            }
            None => {
                // No single remaining variant covers any uncovered point —
                // only possible when coverage needs the *combination*
                // (cannot happen: the full-best at each point is one
                // variant's cost, and that variant covers the point).
                // Defensive: fall back to the full set.
                kept = all.clone();
                break;
            }
        }
    }
    kept.sort_unstable();
    let (max_overhead, mean_overhead) = overheads(costs, &kept, &full_best);
    PruneSelection {
        kept,
        max_overhead,
        mean_overhead,
    }
}

/// One point of the "few fit most" curve: the best achievable worst-case
/// overhead at each variant budget.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetPoint {
    /// Number of variants admitted.
    pub budget: usize,
    /// Worst-case overhead vs the full table with that many variants.
    pub max_overhead: f64,
    /// Mean overhead at that budget.
    pub mean_overhead: f64,
    /// The variants admitted at this budget (ascending indices).
    pub kept: Vec<usize>,
}

/// The paper-style coverage curve: for every budget `1..=V`, greedily
/// admit the variant that most reduces total overhead and record the
/// worst-case and mean overhead of the prefix. Budget `V` is always
/// overhead 0 by construction.
///
/// # Panics
///
/// Same conditions as [`prune_variant_set`].
pub fn coverage_curve(costs: &[Vec<f64>]) -> Vec<BudgetPoint> {
    assert!(!costs.is_empty(), "no variants");
    let points = costs[0].len();
    assert!(points > 0, "no sample points");
    assert!(
        costs.iter().all(|row| row.len() == points),
        "ragged cost matrix"
    );
    let nv = costs.len();
    let all: Vec<usize> = (0..nv).collect();
    let full_best: Vec<f64> = (0..points).map(|i| best_over(costs, &all, i)).collect();

    let mut kept: Vec<usize> = Vec::new();
    let mut curve = Vec::with_capacity(nv);
    for budget in 1..=nv {
        // Admit the variant minimizing the resulting total overhead
        // (sum over points of best_kept/best_full), tie-break lower index.
        let mut best_v = 0usize;
        let mut best_total = f64::INFINITY;
        for v in 0..nv {
            if kept.contains(&v) {
                continue;
            }
            let mut trial = kept.clone();
            trial.push(v);
            let total: f64 = full_best
                .iter()
                .enumerate()
                .map(|(i, &fb)| {
                    let kb = best_over(costs, &trial, i);
                    if fb.is_finite() && fb > 0.0 && kb.is_finite() {
                        kb / fb
                    } else if kb.is_finite() || !fb.is_finite() {
                        1.0
                    } else {
                        1e30
                    }
                })
                .sum();
            if total < best_total {
                best_total = total;
                best_v = v;
            }
        }
        kept.push(best_v);
        let mut sorted = kept.clone();
        sorted.sort_unstable();
        let (max_overhead, mean_overhead) = overheads(costs, &sorted, &full_best);
        curve.push(BudgetPoint {
            budget,
            max_overhead,
            mean_overhead,
            kept: sorted,
        });
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three bands: v0 wins small, v1 middle, v2 large; v1 is nearly as
    /// good as v0 everywhere small.
    fn banded() -> Vec<Vec<f64>> {
        let xs: Vec<f64> = (0..40).map(|i| (i as f64 / 39.0 * 10.0).exp()).collect();
        vec![
            xs.iter().map(|&x| 1.0 + x).collect(), // v0: cheap start
            xs.iter().map(|&x| 1.02 + 1.02 * x).collect(), // v1: v0 + 2%
            xs.iter().map(|&x| 2000.0 + 0.01 * x).collect(), // v2: wins huge x
        ]
    }

    #[test]
    fn near_duplicate_variant_is_pruned() {
        let costs = banded();
        let sel = prune_variant_set(&costs, 0.10);
        assert_eq!(sel.kept, vec![0, 2], "v1 is within 2% of v0 everywhere");
        assert!(sel.max_overhead <= 0.10, "{}", sel.max_overhead);
        assert!(sel.mean_overhead <= sel.max_overhead);
    }

    #[test]
    fn zero_tolerance_keeps_every_winner() {
        let costs = banded();
        let sel = prune_variant_set(&costs, 0.0);
        // v1 never strictly wins, so even at zero tolerance it can go —
        // but v0 and v2 are both pointwise winners and must stay.
        assert!(sel.kept.contains(&0) && sel.kept.contains(&2));
        assert!(sel.max_overhead <= 1e-12);
    }

    #[test]
    fn huge_tolerance_collapses_to_one_variant() {
        let costs = banded();
        let sel = prune_variant_set(&costs, 1e9);
        assert_eq!(sel.kept.len(), 1);
    }

    #[test]
    fn infeasible_points_do_not_wedge_the_solver() {
        // v0 cannot run large points, v1 cannot run small ones.
        let costs = vec![
            vec![1.0, 1.0, f64::INFINITY, f64::INFINITY],
            vec![f64::INFINITY, f64::INFINITY, 1.0, 1.0],
        ];
        let sel = prune_variant_set(&costs, 0.05);
        assert_eq!(sel.kept, vec![0, 1]);
        assert_eq!(sel.max_overhead, 0.0);
    }

    #[test]
    fn coverage_curve_is_monotone_and_ends_at_zero() {
        let costs = banded();
        let curve = coverage_curve(&costs);
        assert_eq!(curve.len(), 3);
        for w in curve.windows(2) {
            assert!(
                w[1].max_overhead <= w[0].max_overhead + 1e-12,
                "more budget must never hurt: {curve:?}"
            );
            assert_eq!(w[1].budget, w[0].budget + 1);
            assert_eq!(w[1].kept.len(), w[1].budget);
        }
        assert!(curve.last().unwrap().max_overhead <= 1e-12);
        // Budget 1 picks the best single variant — for these curves the
        // low-x winner covers most mass, and overhead comes from the tail.
        assert!(curve[0].max_overhead > 0.0);
    }

    #[test]
    fn pruned_set_bound_matches_reported_overhead() {
        let costs = banded();
        for tol in [0.0, 0.02, 0.05, 0.5] {
            let sel = prune_variant_set(&costs, tol);
            // Re-derive the overhead independently.
            let all: Vec<usize> = (0..costs.len()).collect();
            let mut max_o = 0.0f64;
            for i in 0..costs[0].len() {
                let fb = best_over(&costs, &all, i);
                let kb = best_over(&costs, &sel.kept, i);
                max_o = max_o.max(kb / fb - 1.0);
            }
            assert!((max_o - sel.max_overhead).abs() < 1e-12);
            assert!(sel.max_overhead <= tol + 1e-12, "tol {tol}: {sel:?}");
        }
    }
}
