//! Break-even analysis between kernel variants.
//!
//! Adaptic estimates the execution time of a kernel *before and after*
//! applying each optimization as a function of input dimensions; the
//! performance break-even points determine the dimensions at which the
//! optimization is enabled or disabled (§3 of the paper). This module
//! finds those points for arbitrary monotone-crossing cost functions and
//! partitions an input range into per-variant subranges.

/// Find the smallest `x` in `[lo, hi]` where `f(x) <= g(x)` flips to
/// `f(x) > g(x)` (or vice versa), i.e. the break-even point of two cost
/// functions.
///
/// The functions need not be monotone individually — only their *ordering*
/// must flip at most once over the interval, which holds for the cost
/// models compared here. Returns `None` when one variant dominates the
/// whole range.
pub fn find_crossover(
    lo: i64,
    hi: i64,
    mut f: impl FnMut(i64) -> f64,
    mut g: impl FnMut(i64) -> f64,
) -> Option<i64> {
    assert!(lo <= hi, "empty range");
    let first = f(lo) <= g(lo);
    let last = f(hi) <= g(hi);
    if first == last {
        return None;
    }
    let (mut a, mut b) = (lo, hi);
    while b - a > 1 {
        let mid = a + (b - a) / 2;
        if (f(mid) <= g(mid)) == first {
            a = mid;
        } else {
            b = mid;
        }
    }
    Some(b)
}

/// A subrange `[lo, hi]` of the input space assigned to variant `variant`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeAssignment {
    pub lo: i64,
    pub hi: i64,
    /// Index of the winning variant in the candidate list.
    pub variant: usize,
}

/// Partition `[lo, hi]` among `variants`, assigning each point to the
/// cheapest cost function. The boundaries are located with geometric
/// probing plus binary-search refinement, so the cost functions are
/// evaluated O(V² log hi) times rather than at every point.
///
/// # Panics
///
/// Panics when `variants` is empty or the range is empty.
pub fn partition_range(
    lo: i64,
    hi: i64,
    variants: &mut [Box<dyn FnMut(i64) -> f64 + '_>],
) -> Vec<RangeAssignment> {
    assert!(!variants.is_empty(), "no variants to choose from");
    assert!(lo <= hi, "empty range");

    let best_at = |variants: &mut [Box<dyn FnMut(i64) -> f64 + '_>], x: i64| -> usize {
        let mut best = 0;
        let mut best_cost = f64::INFINITY;
        for (i, v) in variants.iter_mut().enumerate() {
            let c = v(x);
            if c < best_cost {
                best_cost = c;
                best = i;
            }
        }
        best
    };

    let mut out: Vec<RangeAssignment> = Vec::new();
    let mut cur_lo = lo;
    let mut cur_best = best_at(variants, lo);
    let mut x = lo;
    while x < hi {
        // Geometric probing to find where the winner changes.
        let mut step = 1i64;
        let mut next = x;
        let mut changed_at: Option<i64> = None;
        loop {
            let probe = (x + step).min(hi);
            let b = best_at(variants, probe);
            if b != cur_best {
                changed_at = Some(probe);
                break;
            }
            next = probe;
            if probe == hi {
                break;
            }
            step *= 2;
        }
        match changed_at {
            None => {
                x = hi;
            }
            Some(probe) => {
                // Binary search in (next, probe] for the first change.
                let (mut a, mut b) = (next, probe);
                while b - a > 1 {
                    let mid = a + (b - a) / 2;
                    if best_at(variants, mid) == cur_best {
                        a = mid;
                    } else {
                        b = mid;
                    }
                }
                out.push(RangeAssignment {
                    lo: cur_lo,
                    hi: b - 1,
                    variant: cur_best,
                });
                cur_lo = b;
                cur_best = best_at(variants, b);
                x = b;
            }
        }
    }
    out.push(RangeAssignment {
        lo: cur_lo,
        hi,
        variant: cur_best,
    });
    out
}

/// Hysteresis thresholds for [`recalibrated_boundary`]: a proposed move is
/// applied only when it clears *both* the absolute and the relative bar,
/// so measurement noise near a break-even point cannot flap the boundary
/// back and forth between launches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hysteresis {
    /// Minimum shift as a fraction of the current boundary position.
    pub min_rel_shift: f64,
    /// Minimum absolute shift in input units (at least 1 is enforced).
    pub min_abs_shift: i64,
}

impl Default for Hysteresis {
    fn default() -> Hysteresis {
        Hysteresis {
            min_rel_shift: 0.05,
            min_abs_shift: 1,
        }
    }
}

/// Re-locate the break-even point between two adjacent variants from
/// measurement-corrected cost curves.
///
/// `current` is the boundary in effect: the left variant owns
/// `[lo, current - 1]`, the right owns `[current, hi]` (so
/// `lo < current <= hi`). `left` and `right` are the corrected cost
/// curves — typically the analytical estimate scaled by each variant's
/// measured/predicted ratio. Returns `Some(new_boundary)` when the
/// corrected curves place the break-even point far enough from `current`
/// to clear `hysteresis`, `None` to keep the boundary where it is.
///
/// The result is always inside `(lo, hi]`, so applying it never empties
/// either variant's range and never leaves the declared input range:
/// when one corrected curve dominates the whole interval the losing
/// variant is shrunk to a single endpoint, not dropped. When the curves
/// cross in the *opposite* direction from the table's layout (the right
/// variant measures cheaper at the low end and dearer at the high end),
/// no boundary between the two can express that ordering and the function
/// keeps `current`.
pub fn recalibrated_boundary(
    lo: i64,
    hi: i64,
    current: i64,
    mut left: impl FnMut(i64) -> f64,
    mut right: impl FnMut(i64) -> f64,
    hysteresis: Hysteresis,
) -> Option<i64> {
    assert!(
        lo < current && current <= hi,
        "boundary {current} outside ({lo}, {hi}]"
    );
    let left_wins_lo = left(lo) <= right(lo);
    let left_wins_hi = left(hi) <= right(hi);
    let candidate = match (left_wins_lo, left_wins_hi) {
        // Normal orientation: the first x the right variant wins is the
        // new boundary.
        (true, false) => find_crossover(lo, hi, &mut left, &mut right)
            .expect("ordering flips, so a crossover exists"),
        // Left dominates everywhere: shrink the right variant to {hi}.
        (true, true) => hi,
        // Right dominates everywhere: shrink the left variant to {lo}.
        (false, false) => lo + 1,
        // Inverted crossing — not expressible as a single boundary.
        (false, true) => return None,
    };
    let candidate = candidate.clamp(lo + 1, hi);
    let shift = (candidate - current).abs();
    let rel = shift as f64 / current.max(1) as f64;
    if shift >= hysteresis.min_abs_shift.max(1) && rel >= hysteresis.min_rel_shift {
        Some(candidate)
    } else {
        None
    }
}

/// Move the boundary between `ranges[left]` and `ranges[left + 1]` to
/// `boundary` (the first point owned by the right range). Returns `false`
/// without touching anything when the move would empty either range or
/// `left + 1` is out of bounds; on success the slice still tiles exactly.
pub fn apply_boundary(ranges: &mut [RangeAssignment], left: usize, boundary: i64) -> bool {
    if left + 1 >= ranges.len() {
        return false;
    }
    if boundary <= ranges[left].lo || boundary > ranges[left + 1].hi {
        return false;
    }
    ranges[left].hi = boundary - 1;
    ranges[left + 1].lo = boundary;
    true
}

/// Check that assignments exactly tile `[lo, hi]` without gaps or overlap
/// (used by tests and by the compiler's internal assertions).
pub fn tiles_exactly(lo: i64, hi: i64, ranges: &[RangeAssignment]) -> bool {
    if ranges.is_empty() {
        return false;
    }
    if ranges[0].lo != lo || ranges[ranges.len() - 1].hi != hi {
        return false;
    }
    ranges.windows(2).all(|w| w[0].hi + 1 == w[1].lo) && ranges.iter().all(|r| r.lo <= r.hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_found_for_linear_functions() {
        // f = 100 + x, g = 2x: g cheaper below 100; f <= g first holds at 100.
        let c = find_crossover(1, 1_000_000, |x| 100.0 + x as f64, |x| 2.0 * x as f64);
        assert_eq!(c, Some(100));
    }

    #[test]
    fn no_crossover_when_dominated() {
        assert_eq!(
            find_crossover(1, 1000, |x| x as f64, |x| x as f64 + 1.0),
            None
        );
    }

    #[test]
    fn partition_two_variants() {
        let mut variants: Vec<Box<dyn FnMut(i64) -> f64>> =
            vec![Box::new(|x| 100.0 + x as f64), Box::new(|x| 2.0 * x as f64)];
        let ranges = partition_range(1, 10_000, &mut variants);
        assert!(tiles_exactly(1, 10_000, &ranges));
        assert_eq!(ranges.len(), 2);
        assert_eq!(ranges[0].variant, 1); // 2x cheaper for small x
        assert_eq!(ranges[1].variant, 0);
        // 2x is strictly cheaper than 100+x up to x=99; ties go to variant 0.
        assert_eq!(ranges[0].hi, 99);
    }

    #[test]
    fn partition_three_variants() {
        // v0 wins small, v1 middle, v2 large.
        let mut variants: Vec<Box<dyn FnMut(i64) -> f64>> = vec![
            Box::new(|x| x as f64),
            Box::new(|x| 50.0 + 0.5 * x as f64),
            Box::new(|x| 400.0 + 0.1 * x as f64),
        ];
        let ranges = partition_range(1, 100_000, &mut variants);
        assert!(tiles_exactly(1, 100_000, &ranges));
        let variants_seen: Vec<usize> = ranges.iter().map(|r| r.variant).collect();
        assert_eq!(variants_seen, vec![0, 1, 2]);
    }

    #[test]
    fn single_variant_whole_range() {
        let mut variants: Vec<Box<dyn FnMut(i64) -> f64>> = vec![Box::new(|_| 1.0)];
        let ranges = partition_range(5, 10, &mut variants);
        assert_eq!(
            ranges,
            vec![RangeAssignment {
                lo: 5,
                hi: 10,
                variant: 0
            }]
        );
    }

    #[test]
    fn degenerate_single_point_range() {
        let mut variants: Vec<Box<dyn FnMut(i64) -> f64>> =
            vec![Box::new(|_| 2.0), Box::new(|_| 1.0)];
        let ranges = partition_range(7, 7, &mut variants);
        assert!(tiles_exactly(7, 7, &ranges));
        assert_eq!(ranges[0].variant, 1);
    }

    #[test]
    fn tiles_exactly_detects_gaps_and_overlap() {
        let ok = vec![
            RangeAssignment {
                lo: 1,
                hi: 5,
                variant: 0,
            },
            RangeAssignment {
                lo: 6,
                hi: 9,
                variant: 1,
            },
        ];
        assert!(tiles_exactly(1, 9, &ok));
        let gap = vec![
            RangeAssignment {
                lo: 1,
                hi: 4,
                variant: 0,
            },
            RangeAssignment {
                lo: 6,
                hi: 9,
                variant: 1,
            },
        ];
        assert!(!tiles_exactly(1, 9, &gap));
        let overlap = vec![
            RangeAssignment {
                lo: 1,
                hi: 6,
                variant: 0,
            },
            RangeAssignment {
                lo: 6,
                hi: 9,
                variant: 1,
            },
        ];
        assert!(!tiles_exactly(1, 9, &overlap));
        assert!(!tiles_exactly(1, 9, &[]));
    }

    #[test]
    fn recalibration_moves_toward_measured_crossover() {
        // Model placed the boundary at 100 (f = 100 + x vs g = 2x), but
        // measurements say the left variant is 4x slower than predicted:
        // corrected curves cross at 400/3 ≈ 134 for g = 2x vs 25 + x/4...
        // here: left corrected = 4*(2x) = 8x, right = 100 + x, crossover
        // where 8x > 100 + x → x > 100/7 → 15.
        let moved = recalibrated_boundary(
            1,
            1_000_000,
            100,
            |x| 8.0 * x as f64,
            |x| 100.0 + x as f64,
            Hysteresis::default(),
        );
        assert_eq!(moved, Some(15));
    }

    #[test]
    fn recalibration_respects_hysteresis() {
        // Corrected crossover at 102 — a 2% shift from 100 stays put under
        // the default 5% relative bar.
        let kept = recalibrated_boundary(
            1,
            1_000_000,
            100,
            |x| 2.0 * x as f64,
            |x| 102.0 + x as f64,
            Hysteresis::default(),
        );
        assert_eq!(kept, None);
        // The same curves move once the caller relaxes the bar.
        let moved = recalibrated_boundary(
            1,
            1_000_000,
            100,
            |x| 2.0 * x as f64,
            |x| 102.0 + x as f64,
            Hysteresis {
                min_rel_shift: 0.0,
                min_abs_shift: 1,
            },
        );
        assert_eq!(moved, Some(103));
    }

    #[test]
    fn recalibration_clamps_domination_to_range_edges() {
        let h = Hysteresis::default();
        // Left always cheaper: right keeps only the top point.
        assert_eq!(
            recalibrated_boundary(1, 1000, 500, |_| 1.0, |_| 2.0, h),
            Some(1000)
        );
        // Right always cheaper: left keeps only the bottom point.
        assert_eq!(
            recalibrated_boundary(1, 1000, 500, |_| 2.0, |_| 1.0, h),
            Some(2)
        );
        // Inverted crossing is not expressible — boundary stays.
        assert_eq!(
            recalibrated_boundary(1, 1000, 500, |x| 1000.0 - x as f64, |x| x as f64, h),
            None
        );
    }

    #[test]
    fn apply_boundary_keeps_tiling() {
        let mut ranges = vec![
            RangeAssignment {
                lo: 1,
                hi: 99,
                variant: 0,
            },
            RangeAssignment {
                lo: 100,
                hi: 1000,
                variant: 1,
            },
        ];
        assert!(apply_boundary(&mut ranges, 0, 15));
        assert!(tiles_exactly(1, 1000, &ranges));
        assert_eq!(ranges[0].hi, 14);
        assert_eq!(ranges[1].lo, 15);
        // Moves that would empty a range are rejected untouched.
        assert!(!apply_boundary(&mut ranges, 0, 1));
        assert!(!apply_boundary(&mut ranges, 0, 1001));
        assert!(!apply_boundary(&mut ranges, 1, 500));
        assert!(tiles_exactly(1, 1000, &ranges));
    }
}
