//! `perfmodel` — analytical GPU performance model with break-even analysis.
//!
//! Implements the performance model Adaptic relies on (§3 of the paper):
//! an enhanced Hong & Kim MWP/CWP model that classifies kernels as
//! memory-bound, computation-bound, or latency-bound and estimates
//! execution cycles from per-warp instruction and memory-transaction
//! counts — quantities that are functions of the program input size and
//! dimensions.
//!
//! Two front doors:
//!
//! * [`estimate`] / [`estimate_stats`] — timing for one launch, from a
//!   closed-form [`LaunchProfile`] or measured simulator statistics;
//! * [`find_crossover`] / [`partition_range`] — the break-even machinery
//!   that decides *where* in the input space each kernel variant wins.
//!
//! # Example
//!
//! ```
//! use gpu_sim::DeviceSpec;
//! use perfmodel::{estimate, KernelClass, LaunchProfile};
//!
//! let device = DeviceSpec::tesla_c2050();
//! let profile = LaunchProfile {
//!     grid_dim: 512,
//!     block_dim: 256,
//!     shared_words: 0,
//!     mem_insts_per_warp: 16.0,
//!     transactions_per_mem_inst: 1.0,
//!     compute_insts_per_warp: 8.0,
//!     shared_cycles_per_warp: 0.0,
//!     syncs_per_block: 0.0,
//!     flops: 1e6,
//! };
//! let est = estimate(&device, &profile);
//! assert_eq!(est.class, KernelClass::MemoryBound);
//! ```

pub mod crossover;
pub mod model;
pub mod pruning;

pub use crossover::{
    apply_boundary, find_crossover, partition_range, recalibrated_boundary, tiles_exactly,
    Hysteresis, RangeAssignment,
};
pub use model::{estimate, estimate_stats, KernelClass, LaunchProfile, TimingEstimate};
pub use pruning::{coverage_curve, prune_variant_set, BudgetPoint, PruneSelection};
