//! The analytical timing model.
//!
//! An adaptation of Hong & Kim's MWP/CWP model (ISCA 2009), which the
//! paper cites as the basis of its performance model (§3). The model
//! classifies a kernel launch as **memory-bound**, **computation-bound**
//! or **latency-bound** from the number of *active warps per SM* and
//! per-warp instruction/memory-access counts, then estimates execution
//! cycles per the three Hong&Kim cases:
//!
//! * Memory-bound (`CWP >= MWP`): memory requests saturate; computation
//!   hides under memory latency.
//! * Computation-bound (`CWP < MWP`): arithmetic dominates; memory latency
//!   hides under computation.
//! * Latency-bound (too few active warps): neither can hide the other;
//!   latencies serialize.
//!
//! The inputs come either from measured simulator statistics
//! ([`LaunchProfile::from_stats`]) or from closed-form counts the compiler
//! derives symbolically ([`LaunchProfile`] literal), which is how
//! optimization decisions are made *before* any code runs.

use gpu_sim::{DeviceSpec, KernelStats};

/// Hong&Kim kernel classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Execution time dominated by memory transactions.
    MemoryBound,
    /// Execution time dominated by arithmetic.
    ComputeBound,
    /// Too few active warps to hide either latency.
    LatencyBound,
}

impl std::fmt::Display for KernelClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            KernelClass::MemoryBound => "memory-bound",
            KernelClass::ComputeBound => "compute-bound",
            KernelClass::LatencyBound => "latency-bound",
        };
        write!(f, "{s}")
    }
}

/// Per-launch quantities the model consumes.
///
/// All `*_per_warp` quantities are averages over the warps of the grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchProfile {
    pub grid_dim: u32,
    pub block_dim: u32,
    pub shared_words: u32,
    /// Warp-level global memory instructions per warp.
    pub mem_insts_per_warp: f64,
    /// Average transactions per warp memory instruction (1 = coalesced).
    pub transactions_per_mem_inst: f64,
    /// Warp-level compute instructions per warp.
    pub compute_insts_per_warp: f64,
    /// Shared-memory access cycles per warp (conflicts included).
    pub shared_cycles_per_warp: f64,
    /// Barriers per block.
    pub syncs_per_block: f64,
    /// Floating-point operations in the whole launch (for GFLOPS).
    pub flops: f64,
}

impl LaunchProfile {
    /// Build a profile from measured simulator statistics.
    pub fn from_stats(device: &DeviceSpec, stats: &KernelStats) -> LaunchProfile {
        let warps = stats.warps_in_grid(device.warp_size).max(1.0);
        let blocks = stats.config.grid_dim.max(1) as f64;
        LaunchProfile {
            grid_dim: stats.config.grid_dim,
            block_dim: stats.config.block_dim,
            shared_words: stats.config.shared_words,
            mem_insts_per_warp: stats.totals.warp_mem_insts() / warps,
            transactions_per_mem_inst: stats.totals.transactions_per_mem_inst(),
            compute_insts_per_warp: stats.totals.warp_compute_insts / warps,
            shared_cycles_per_warp: stats.totals.shared_cycles / warps,
            syncs_per_block: stats.totals.syncs / blocks,
            flops: stats.totals.flops,
        }
    }
}

/// The model's output: classification, cycle estimate and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingEstimate {
    /// Hong&Kim classification.
    pub class: KernelClass,
    /// Total kernel cycles including launch overhead.
    pub total_cycles: f64,
    /// Wall-clock estimate in microseconds.
    pub time_us: f64,
    /// Memory warp parallelism.
    pub mwp: f64,
    /// Computation warp parallelism.
    pub cwp: f64,
    /// Active warps per SM (occupancy).
    pub active_warps: f64,
    /// Block waves needed to drain the grid.
    pub waves: f64,
    /// Achieved GFLOPS under this estimate (0 when no flops recorded).
    pub gflops: f64,
}

/// Estimate the execution time of one kernel launch on `device`.
///
/// # Panics
///
/// Panics if the profile's block shape cannot be scheduled on the device
/// (zero threads or over-budget shared memory) — launches are validated
/// before they get here.
pub fn estimate(device: &DeviceSpec, p: &LaunchProfile) -> TimingEstimate {
    let limit_blocks = device.active_blocks_per_sm(p.block_dim, p.shared_words);
    assert!(
        limit_blocks > 0,
        "unschedulable block shape: {} threads, {} shared words",
        p.block_dim,
        p.shared_words
    );
    let warps_per_block = p.block_dim.div_ceil(device.warp_size) as f64;

    // Actual residency: fewer blocks than the device could hold means idle
    // capacity (Figure 1's "low utilization" region).
    let blocks_per_sm_actual = (p.grid_dim as f64 / device.sm_count as f64)
        .ceil()
        .min(limit_blocks as f64)
        .max(1.0);
    let n_warps = (blocks_per_sm_actual * warps_per_block)
        .min(device.max_warps_per_sm() as f64)
        .max(1.0);

    // Per-warp cycle components.
    let mem_l = device.mem_latency_cycles;
    let trans = p.transactions_per_mem_inst.max(1.0);
    let departure = device.departure_delay_cycles * trans;
    let comp_cycles = device.issue_cycles_per_warp_inst
        * (p.compute_insts_per_warp + p.shared_cycles_per_warp)
        + p.syncs_per_block * warps_per_block * device.issue_cycles_per_warp_inst;
    let mem_cycles = mem_l * p.mem_insts_per_warp;

    // Warp parallelism.
    let mwp_no_bw = mem_l / departure;
    let mwp_peak_bw = device.transactions_per_cycle() * mem_l / (trans * device.sm_count as f64);
    let mwp = mwp_no_bw.min(mwp_peak_bw).min(n_warps).max(1.0);
    let cwp_full = if comp_cycles > 0.0 {
        (mem_cycles + comp_cycles) / comp_cycles
    } else {
        f64::INFINITY
    };
    let cwp = cwp_full.min(n_warps).max(1.0);

    let has_mem = p.mem_insts_per_warp > 0.0;
    let (class, exec_cycles) = if !has_mem {
        // Pure-compute kernel.
        (KernelClass::ComputeBound, comp_cycles * n_warps)
    } else if (mwp == n_warps && cwp == n_warps) || cwp_full <= 1.0 + 1e-9 {
        // Not enough warps to hide latency: latency-bound.
        if n_warps < mwp_no_bw.min(mwp_peak_bw) && cwp_full > n_warps {
            (
                KernelClass::LatencyBound,
                mem_cycles + comp_cycles * n_warps,
            )
        } else {
            // Computation already covers memory latency.
            (KernelClass::ComputeBound, comp_cycles * n_warps + mem_l)
        }
    } else if cwp >= mwp {
        // Memory-bound: requests stream at the departure rate.
        let comp_per_mem = comp_cycles / p.mem_insts_per_warp.max(1.0);
        (
            KernelClass::MemoryBound,
            mem_cycles * n_warps / mwp + comp_per_mem * (mwp - 1.0),
        )
    } else {
        (KernelClass::ComputeBound, comp_cycles * n_warps + mem_l)
    };

    let waves = (p.grid_dim as f64 / (blocks_per_sm_actual * device.sm_count as f64))
        .ceil()
        .max(1.0);
    let total_cycles = exec_cycles * waves + device.launch_overhead_cycles();
    let time_us = total_cycles / (device.clock_ghz * 1e3);
    let gflops = if time_us > 0.0 {
        p.flops / (time_us * 1e3)
    } else {
        0.0
    };

    TimingEstimate {
        class,
        total_cycles,
        time_us,
        mwp,
        cwp,
        active_warps: n_warps,
        waves,
        gflops,
    }
}

/// Estimate directly from measured stats (convenience).
pub fn estimate_stats(device: &DeviceSpec, stats: &KernelStats) -> TimingEstimate {
    estimate(device, &LaunchProfile::from_stats(device, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceSpec {
        DeviceSpec::tesla_c2050()
    }

    fn base_profile() -> LaunchProfile {
        LaunchProfile {
            grid_dim: 256,
            block_dim: 256,
            shared_words: 0,
            mem_insts_per_warp: 8.0,
            transactions_per_mem_inst: 1.0,
            compute_insts_per_warp: 16.0,
            shared_cycles_per_warp: 0.0,
            syncs_per_block: 0.0,
            flops: 1e6,
        }
    }

    #[test]
    fn streaming_kernel_is_memory_bound() {
        let est = estimate(&device(), &base_profile());
        assert_eq!(est.class, KernelClass::MemoryBound);
        assert!(est.time_us > 0.0);
        assert!(est.gflops > 0.0);
    }

    #[test]
    fn heavy_arithmetic_is_compute_bound() {
        let mut p = base_profile();
        p.compute_insts_per_warp = 100_000.0;
        let est = estimate(&device(), &p);
        assert_eq!(est.class, KernelClass::ComputeBound);
    }

    #[test]
    fn tiny_grid_is_latency_bound() {
        let mut p = base_profile();
        p.grid_dim = 2; // 2 blocks on a 14-SM device
        p.compute_insts_per_warp = 4.0;
        let est = estimate(&device(), &p);
        assert_eq!(est.class, KernelClass::LatencyBound);
        assert!(est.active_warps <= 8.0);
    }

    #[test]
    fn uncoalesced_access_is_slower() {
        let coalesced = estimate(&device(), &base_profile());
        let mut p = base_profile();
        p.transactions_per_mem_inst = 16.0;
        let scattered = estimate(&device(), &p);
        assert!(
            scattered.time_us > 2.0 * coalesced.time_us,
            "scattered {} vs coalesced {}",
            scattered.time_us,
            coalesced.time_us
        );
    }

    #[test]
    fn more_data_takes_longer() {
        let small = estimate(&device(), &base_profile());
        let mut p = base_profile();
        p.grid_dim = 4096;
        p.flops = 16e6;
        let large = estimate(&device(), &p);
        assert!(large.time_us > small.time_us);
        assert!(large.waves > small.waves);
    }

    #[test]
    fn launch_overhead_dominates_empty_kernels() {
        let mut p = base_profile();
        p.grid_dim = 1;
        p.block_dim = 32;
        p.mem_insts_per_warp = 1.0;
        p.compute_insts_per_warp = 1.0;
        p.flops = 0.0;
        let est = estimate(&device(), &p);
        let overhead = device().launch_overhead_cycles();
        assert!(est.total_cycles < overhead * 2.0);
        assert!(est.total_cycles >= overhead);
        assert_eq!(est.gflops, 0.0);
    }

    #[test]
    fn monotone_in_memory_instructions() {
        let mut last = 0.0;
        for mem in [1.0, 4.0, 16.0, 64.0, 256.0] {
            let mut p = base_profile();
            p.mem_insts_per_warp = mem;
            let est = estimate(&device(), &p);
            assert!(est.total_cycles >= last, "cycles decreased at mem={mem}");
            last = est.total_cycles;
        }
    }

    #[test]
    fn bank_conflicts_add_time() {
        let mut p = base_profile();
        p.shared_cycles_per_warp = 0.0;
        let clean = estimate(&device(), &p);
        p.shared_cycles_per_warp = 10_000.0;
        let conflicted = estimate(&device(), &p);
        assert!(conflicted.total_cycles > clean.total_cycles);
    }

    #[test]
    fn classification_displays() {
        assert_eq!(KernelClass::MemoryBound.to_string(), "memory-bound");
        assert_eq!(KernelClass::ComputeBound.to_string(), "compute-bound");
        assert_eq!(KernelClass::LatencyBound.to_string(), "latency-bound");
    }

    #[test]
    #[should_panic(expected = "unschedulable")]
    fn unschedulable_profile_panics() {
        let mut p = base_profile();
        p.block_dim = 0;
        let _ = estimate(&device(), &p);
    }
}
