//! Per-device work queues for fleet scheduling.
//!
//! A [`DeviceQueue`] tracks how much *predicted* work is already waiting on
//! one simulated device — the backlog term a fleet scheduler adds to a
//! launch's own predicted cost when deciding where to place it — plus the
//! device's cumulative busy time, which is what fleet-makespan/throughput
//! figures are computed from.
//!
//! The queue is deliberately a ledger, not an executor: launches still run
//! through whatever engine the caller drives. `enqueue` charges the
//! placement decision's cost estimate, `complete` settles it against the
//! measured cost once the launch finishes. All state is atomic —
//! schedulers race placement decisions against completions from worker
//! threads, and a queue read is one relaxed load, never a lock.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Atomically add `delta` (which may be negative) to an `f64` stored as
/// bits, clamping the result at zero. Backlog under-settlement (a launch
/// measuring cheaper than estimated) must never drive the ledger negative.
fn f64_add_clamped(cell: &AtomicU64, delta: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + delta).max(0.0);
        match cell.compare_exchange_weak(cur, next.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(found) => cur = found,
        }
    }
}

/// Outstanding-work ledger of one device in a simulated fleet.
#[derive(Debug, Default)]
pub struct DeviceQueue {
    /// Launches placed but not yet completed.
    depth: AtomicUsize,
    /// Predicted µs of work placed but not yet completed (f64 bits).
    backlog_us: AtomicU64,
    /// Measured µs of device time across completed launches (f64 bits).
    busy_us: AtomicU64,
    /// Launches ever placed on this queue.
    enqueued: AtomicU64,
    /// Launches completed (successfully or not — the ticket is settled
    /// either way, or the backlog would leak on failures).
    completed: AtomicU64,
}

impl DeviceQueue {
    /// An empty queue.
    pub fn new() -> DeviceQueue {
        DeviceQueue::default()
    }

    /// Charge a placement decision: `predicted_us` of estimated work joins
    /// the backlog. Non-finite or negative estimates are charged as zero —
    /// a mispriced launch must not poison the ledger.
    pub fn enqueue(&self, predicted_us: f64) {
        let est = if predicted_us.is_finite() {
            predicted_us.max(0.0)
        } else {
            0.0
        };
        self.depth.fetch_add(1, Ordering::Relaxed);
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        f64_add_clamped(&self.backlog_us, est);
    }

    /// Settle a completed launch: remove its `predicted_us` estimate from
    /// the backlog (the same value passed to [`enqueue`](Self::enqueue))
    /// and account `measured_us` of real device time. Pass
    /// `measured_us = 0.0` for a failed launch — the ticket is settled,
    /// no busy time accrues.
    pub fn complete(&self, predicted_us: f64, measured_us: f64) {
        let est = if predicted_us.is_finite() {
            predicted_us.max(0.0)
        } else {
            0.0
        };
        f64_add_clamped(&self.backlog_us, -est);
        if measured_us.is_finite() && measured_us > 0.0 {
            f64_add_clamped(&self.busy_us, measured_us);
        }
        self.completed.fetch_add(1, Ordering::Relaxed);
        // Depth saturates at zero: a stray double-complete must not wrap.
        let _ = self
            .depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| d.checked_sub(1));
    }

    /// Predicted µs of work currently waiting on this device.
    pub fn backlog_us(&self) -> f64 {
        f64::from_bits(self.backlog_us.load(Ordering::Relaxed))
    }

    /// Measured µs of device time consumed by completed launches — one
    /// device's contribution to the fleet makespan.
    pub fn busy_us(&self) -> f64 {
        f64::from_bits(self.busy_us.load(Ordering::Relaxed))
    }

    /// Launches placed but not yet completed.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Launches ever placed on this queue.
    pub fn enqueued(&self) -> u64 {
        self.enqueued.load(Ordering::Relaxed)
    }

    /// Launches settled so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enqueue_complete_settles_the_ledger() {
        let q = DeviceQueue::new();
        q.enqueue(100.0);
        q.enqueue(50.0);
        assert_eq!(q.depth(), 2);
        assert_eq!(q.enqueued(), 2);
        assert!((q.backlog_us() - 150.0).abs() < 1e-9);
        assert_eq!(q.busy_us(), 0.0);

        q.complete(100.0, 120.0);
        assert_eq!(q.depth(), 1);
        assert_eq!(q.completed(), 1);
        assert!((q.backlog_us() - 50.0).abs() < 1e-9);
        assert!((q.busy_us() - 120.0).abs() < 1e-9);

        // A failed launch settles its ticket without accruing busy time.
        q.complete(50.0, 0.0);
        assert_eq!(q.depth(), 0);
        assert!((q.backlog_us()).abs() < 1e-9);
        assert!((q.busy_us() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn ledger_never_goes_negative_or_wraps() {
        let q = DeviceQueue::new();
        q.enqueue(10.0);
        // Over-settlement (estimate revised upward between enqueue and
        // complete) clamps at zero instead of going negative.
        q.complete(25.0, 5.0);
        assert_eq!(q.backlog_us(), 0.0);
        assert_eq!(q.depth(), 0);
        // Double-complete saturates depth at zero.
        q.complete(5.0, 1.0);
        assert_eq!(q.depth(), 0);
        assert_eq!(q.completed(), 2);
    }

    #[test]
    fn non_finite_estimates_are_inert() {
        let q = DeviceQueue::new();
        q.enqueue(f64::INFINITY);
        q.enqueue(f64::NAN);
        q.enqueue(-4.0);
        assert_eq!(q.backlog_us(), 0.0);
        assert_eq!(q.depth(), 3);
        q.complete(f64::NAN, f64::NAN);
        assert_eq!(q.busy_us(), 0.0);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn concurrent_traffic_balances() {
        let q = DeviceQueue::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        q.enqueue(3.0);
                        q.complete(3.0, 2.0);
                    }
                });
            }
        });
        assert_eq!(q.depth(), 0);
        assert_eq!(q.enqueued(), 4000);
        assert_eq!(q.completed(), 4000);
        assert!(q.backlog_us().abs() < 1e-6);
        assert!((q.busy_us() - 8000.0).abs() < 1e-6);
    }
}
