//! `gpu-sim` — a functional + statistics simulator of a CUDA-class GPU.
//!
//! This crate is the hardware substrate of the Adaptic reproduction: the
//! environment has no GPU, so kernels execute here. The simulator is
//! *functional* (kernels compute real results, block by block, thread by
//! thread) and *statistical* (every global access is grouped into warp
//! instructions and coalesced into memory transactions; shared-memory bank
//! conflicts and barriers are counted). The companion `perfmodel` crate
//! turns these statistics into cycle estimates with a Hong&Kim-style
//! analytical model.
//!
//! What is modeled, because the paper's effects depend on it:
//!
//! * SMs, warps, thread blocks, per-SM residency limits (occupancy);
//! * global-memory transaction coalescing per warp instruction;
//! * shared memory with bank-conflict serialization;
//! * `__syncthreads()` barriers;
//! * kernel-launch overhead (in [`DeviceSpec`]).
//!
//! What is deliberately not modeled: caches beyond coalescing, special
//! function units, instruction-level scheduling — second-order effects the
//! paper's analysis also abstracts away.
//!
//! # Example
//!
//! ```
//! use gpu_sim::{launch, BlockCtx, DeviceSpec, ExecMode, GlobalMem, Kernel, LaunchConfig};
//!
//! struct AddOne { x: gpu_sim::BufId, n: usize }
//!
//! impl Kernel for AddOne {
//!     fn name(&self) -> &str { "add_one" }
//!     fn config(&self) -> LaunchConfig {
//!         LaunchConfig::new((self.n as u32).div_ceil(256), 256, 0)
//!     }
//!     fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
//!         for t in ctx.threads() {
//!             let i = (block * ctx.block_dim() + t) as usize;
//!             if i < self.n {
//!                 let v = ctx.ld_global(0, t, self.x, i);
//!                 ctx.st_global(1, t, self.x, i, v + 1.0);
//!             }
//!         }
//!     }
//! }
//!
//! let device = DeviceSpec::tesla_c2050();
//! let mut mem = GlobalMem::new();
//! let x = mem.alloc_from(&[1.0, 2.0, 3.0]);
//! let stats = launch(&device, &mut mem, &AddOne { x, n: 3 }, ExecMode::Full);
//! assert_eq!(mem.read(x), &[2.0, 3.0, 4.0]);
//! assert!(stats.totals.transactions() >= 2.0); // one load + one store
//! ```

pub mod accounting;
pub mod cache;
pub mod exec;
pub mod faults;
pub mod kernel;
pub mod mem;
pub mod queue;
pub mod spec;

pub use accounting::{BlockScratch, ScratchPool};
pub use cache::ShardedLaunchCache;
pub use exec::{
    launch, launch_pooled, launch_with_policy, try_launch_pooled, ExecMode, ExecPolicy,
    KernelStats, LaunchCache, LaunchKey, ScaledCounters, StatsCache,
};
pub use faults::{Fault, FaultInjector, FaultKind, FaultPlan, LaunchControl, LaunchError};
pub use kernel::{BlockCounters, BlockCtx, Kernel, LaunchConfig, Site};
pub use mem::{bank_conflict_degree, coalesce_transactions, BufId, GlobalMem};
pub use queue::DeviceQueue;
pub use spec::DeviceSpec;
