//! Kernel interface and per-block execution context.
//!
//! Simulated kernels implement [`Kernel`]: they declare a launch
//! configuration and provide `run_block`, which executes *one thread
//! block*. Inside `run_block`, code addresses threads explicitly (the
//! "vector style"): sweep over `ctx.threads()` for each program phase and
//! call [`BlockCtx::sync`] between phases — sequence points that model
//! `__syncthreads()`.
//!
//! All memory traffic goes through the context so the engine can account
//! for warp-level coalescing and shared-memory bank conflicts. Access
//! *sites* (the `site` argument) identify static instructions: the k-th
//! dynamic access of each lane at a given site forms one warp instruction,
//! mirroring SIMT lockstep execution.

use crate::accounting::{AccessKind, BlockScratch};
use crate::mem::{BufId, GlobalMem, SharedMem};
use crate::spec::DeviceSpec;

/// Launch geometry for a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaunchConfig {
    /// Number of thread blocks.
    pub grid_dim: u32,
    /// Threads per block.
    pub block_dim: u32,
    /// Shared memory per block, in 4-byte words.
    pub shared_words: u32,
}

impl LaunchConfig {
    /// Convenience constructor.
    pub fn new(grid_dim: u32, block_dim: u32, shared_words: u32) -> LaunchConfig {
        LaunchConfig {
            grid_dim,
            block_dim,
            shared_words,
        }
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.grid_dim as u64 * self.block_dim as u64
    }
}

/// A simulated GPU kernel.
///
/// # The launch invariant
///
/// Blocks of one launch must not communicate: `run_block` may read
/// locations written by *earlier launches* freely, but must never read a
/// location that another block of the *same* launch writes, and no two
/// blocks of one launch may write the same location. This mirrors CUDA,
/// where the block schedule is undefined and inter-block data flow within
/// a launch (without atomics, which this model does not provide) is a data
/// race. The parallel execution engine ([`crate::exec::ExecPolicy`])
/// relies on it.
pub trait Kernel {
    /// Kernel name, for reports and debugging.
    fn name(&self) -> &str;

    /// Launch geometry (may depend on the kernel's parameters).
    fn config(&self) -> LaunchConfig;

    /// Execute one thread block.
    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>);
}

/// Static access-site identifier (one per load/store instruction in the
/// kernel source).
pub type Site = u32;

/// Raw per-block counters produced by executing one block with recording
/// enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCounters {
    /// Warp-level global load instructions.
    pub warp_load_insts: u64,
    /// Warp-level global store instructions.
    pub warp_store_insts: u64,
    /// Global memory transactions after coalescing.
    pub load_transactions: u64,
    /// Global store transactions after coalescing.
    pub store_transactions: u64,
    /// Warp-level compute instructions (max over lanes per warp).
    pub warp_compute_insts: u64,
    /// Warp-level shared-memory instructions.
    pub shared_insts: u64,
    /// Total shared-access cycles including serialization (>= shared_insts;
    /// equality means conflict-free).
    pub shared_cycles: u64,
    /// `__syncthreads()` executed.
    pub syncs: u64,
    /// Floating-point operations (thread-level, for GFLOPS reporting).
    pub flops: u64,
}

impl BlockCounters {
    /// Merge another block's counters into this one.
    pub fn merge(&mut self, other: &BlockCounters) {
        self.warp_load_insts += other.warp_load_insts;
        self.warp_store_insts += other.warp_store_insts;
        self.load_transactions += other.load_transactions;
        self.store_transactions += other.store_transactions;
        self.warp_compute_insts += other.warp_compute_insts;
        self.shared_insts += other.shared_insts;
        self.shared_cycles += other.shared_cycles;
        self.syncs += other.syncs;
        self.flops += other.flops;
    }
}

/// Execution context for one thread block.
///
/// Borrowed mutably by [`Kernel::run_block`]; provides global/shared memory
/// access with accounting, barrier counting, and compute instrumentation.
/// How a block context reaches global memory: exclusively (serial engine)
/// or through the concurrent view (parallel engine). Both paths perform
/// identical accounting; only the aliasing discipline differs.
enum MemRef<'a> {
    Excl(&'a mut GlobalMem),
    Shared(&'a SharedMem<'a>),
}

impl MemRef<'_> {
    #[inline]
    fn load(&self, buf: BufId, idx: usize) -> f32 {
        match self {
            MemRef::Excl(m) => m.load(buf, idx),
            MemRef::Shared(m) => m.load(buf, idx),
        }
    }

    #[inline]
    fn store(&mut self, buf: BufId, idx: usize, v: f32) {
        match self {
            MemRef::Excl(m) => m.store(buf, idx, v),
            MemRef::Shared(m) => m.store(buf, idx, v),
        }
    }
}

pub struct BlockCtx<'a> {
    device: &'a DeviceSpec,
    mem: MemRef<'a>,
    block: u32,
    config: LaunchConfig,
    record: bool,
    /// Reusable accounting arena owned by the engine worker; reset for
    /// this block at construction (see [`BlockScratch`]).
    scratch: &'a mut BlockScratch,
    syncs: u64,
    flops: u64,
}

impl<'a> BlockCtx<'a> {
    pub(crate) fn new(
        device: &'a DeviceSpec,
        mem: &'a mut GlobalMem,
        block: u32,
        config: LaunchConfig,
        record: bool,
        scratch: &'a mut BlockScratch,
    ) -> Self {
        Self::with_mem(device, MemRef::Excl(mem), block, config, record, scratch)
    }

    /// Context backed by the concurrent memory view (parallel engine).
    pub(crate) fn new_shared(
        device: &'a DeviceSpec,
        mem: &'a SharedMem<'a>,
        block: u32,
        config: LaunchConfig,
        record: bool,
        scratch: &'a mut BlockScratch,
    ) -> Self {
        Self::with_mem(device, MemRef::Shared(mem), block, config, record, scratch)
    }

    fn with_mem(
        device: &'a DeviceSpec,
        mem: MemRef<'a>,
        block: u32,
        config: LaunchConfig,
        record: bool,
        scratch: &'a mut BlockScratch,
    ) -> Self {
        scratch.begin_block(device, config.shared_words, config.block_dim);
        BlockCtx {
            device,
            mem,
            block,
            config,
            record,
            scratch,
            syncs: 0,
            flops: 0,
        }
    }

    /// This block's index.
    pub fn block(&self) -> u32 {
        self.block
    }

    /// Threads per block.
    pub fn block_dim(&self) -> u32 {
        self.config.block_dim
    }

    /// Blocks in the launch.
    pub fn grid_dim(&self) -> u32 {
        self.config.grid_dim
    }

    /// Warp width of the device.
    pub fn warp_size(&self) -> u32 {
        self.device.warp_size
    }

    /// Iterate over the thread indices of this block.
    pub fn threads(&self) -> std::ops::Range<u32> {
        0..self.config.block_dim
    }

    /// Record one warp-instruction-forming access.
    #[inline]
    fn record_access(&mut self, site: Site, kind: AccessKind, tid: u32, addr: u64) {
        if !self.record {
            return;
        }
        self.scratch.record(site, kind, tid, addr);
    }

    /// Global load by thread `tid` at word index `idx` of `buf`.
    #[inline]
    pub fn ld_global(&mut self, site: Site, tid: u32, buf: BufId, idx: usize) -> f32 {
        self.record_access(site, AccessKind::GlobalLoad, tid, idx as u64);
        self.mem.load(buf, idx)
    }

    /// Global store by thread `tid`.
    #[inline]
    pub fn st_global(&mut self, site: Site, tid: u32, buf: BufId, idx: usize, v: f32) {
        self.record_access(site, AccessKind::GlobalStore, tid, idx as u64);
        self.mem.store(buf, idx, v);
    }

    /// Shared-memory load.
    ///
    /// # Panics
    ///
    /// Panics if `idx` exceeds the declared shared allocation — simulated
    /// kernels must size their shared memory explicitly, like real ones.
    #[inline]
    pub fn ld_shared(&mut self, site: Site, tid: u32, idx: usize) -> f32 {
        self.record_access(site, AccessKind::Shared, tid, idx as u64);
        self.scratch.shared[idx]
    }

    /// Shared-memory store.
    ///
    /// # Panics
    ///
    /// Panics if `idx` exceeds the declared shared allocation.
    #[inline]
    pub fn st_shared(&mut self, site: Site, tid: u32, idx: usize, v: f32) {
        self.record_access(site, AccessKind::Shared, tid, idx as u64);
        self.scratch.shared[idx] = v;
    }

    /// Record a whole warp-row access in one call: `addrs[lane]` is the
    /// address of each active lane (`None` = predicated off), for warp
    /// `warp` of this block. Equivalent to per-lane [`record_access`]
    /// calls in ascending lane order; uniform full-warp rows take the
    /// accounting engine's single-pass collapse path.
    ///
    /// [`record_access`]: Self::record_access
    #[inline]
    fn record_row(&mut self, site: Site, kind: AccessKind, warp: u32, addrs: &[Option<u64>]) {
        if !self.record {
            return;
        }
        self.scratch.record_row(site, kind, warp, addrs);
    }

    /// Warp-batched global load: one accounting row for warp `warp`, one
    /// value loaded per active lane (`addrs[lane]`) into `out[lane]`.
    pub fn ld_global_row(
        &mut self,
        site: Site,
        warp: u32,
        buf: BufId,
        addrs: &[Option<u64>],
        out: &mut [f32],
    ) {
        self.record_row(site, AccessKind::GlobalLoad, warp, addrs);
        for (lane, addr) in addrs.iter().enumerate() {
            if let Some(a) = addr {
                out[lane] = self.mem.load(buf, *a as usize);
            }
        }
    }

    /// Warp-batched global store: one accounting row, `vals[lane]` stored
    /// at `addrs[lane]` for each active lane, in ascending lane order.
    pub fn st_global_row(
        &mut self,
        site: Site,
        warp: u32,
        buf: BufId,
        addrs: &[Option<u64>],
        vals: &[f32],
    ) {
        self.record_row(site, AccessKind::GlobalStore, warp, addrs);
        for (lane, addr) in addrs.iter().enumerate() {
            if let Some(a) = addr {
                self.mem.store(buf, *a as usize, vals[lane]);
            }
        }
    }

    /// Warp-batched shared-memory load.
    ///
    /// # Panics
    ///
    /// Panics if any active address exceeds the declared shared
    /// allocation, like [`Self::ld_shared`].
    pub fn ld_shared_row(&mut self, site: Site, warp: u32, addrs: &[Option<u64>], out: &mut [f32]) {
        self.record_row(site, AccessKind::Shared, warp, addrs);
        for (lane, addr) in addrs.iter().enumerate() {
            if let Some(a) = addr {
                out[lane] = self.scratch.shared[*a as usize];
            }
        }
    }

    /// Warp-batched shared-memory store.
    ///
    /// # Panics
    ///
    /// Panics if any active address exceeds the declared shared
    /// allocation.
    pub fn st_shared_row(&mut self, site: Site, warp: u32, addrs: &[Option<u64>], vals: &[f32]) {
        self.record_row(site, AccessKind::Shared, warp, addrs);
        for (lane, addr) in addrs.iter().enumerate() {
            if let Some(a) = addr {
                self.scratch.shared[*a as usize] = vals[lane];
            }
        }
    }

    /// Barrier between phases (`__syncthreads()`).
    pub fn sync(&mut self) {
        self.syncs += 1;
    }

    /// Charge `n` compute instructions to thread `tid`.
    #[inline]
    pub fn compute(&mut self, tid: u32, n: u32) {
        if self.record {
            self.scratch.compute[tid as usize] += n as u64;
        }
    }

    /// Count `n` floating-point operations (for GFLOPS reporting; does not
    /// affect timing beyond the instructions charged via [`Self::compute`]).
    #[inline]
    pub fn count_flops(&mut self, n: u64) {
        if self.record {
            self.flops += n;
        }
    }

    /// Finish the block: collapse the remaining recorded warp rows into
    /// counters, leaving the scratch ready for the next block.
    pub(crate) fn finalize(self) -> BlockCounters {
        self.scratch.finish_block(self.syncs, self.flops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceSpec {
        DeviceSpec::tesla_c2050()
    }

    #[test]
    fn coalesced_sweep_counts_one_transaction_per_warp() {
        let d = device();
        let mut mem = GlobalMem::new();
        let buf = mem.alloc(64);
        let cfg = LaunchConfig::new(1, 64, 0);
        let mut scratch = BlockScratch::new();
        let mut ctx = BlockCtx::new(&d, &mut mem, 0, cfg, true, &mut scratch);
        for t in ctx.threads() {
            let _ = ctx.ld_global(0, t, buf, t as usize);
        }
        let c = ctx.finalize();
        assert_eq!(c.warp_load_insts, 2); // 64 threads = 2 warps
        assert_eq!(c.load_transactions, 2); // 1 per warp
    }

    #[test]
    fn strided_sweep_counts_many_transactions() {
        let d = device();
        let mut mem = GlobalMem::new();
        let buf = mem.alloc(32 * 32);
        let cfg = LaunchConfig::new(1, 32, 0);
        let mut scratch = BlockScratch::new();
        let mut ctx = BlockCtx::new(&d, &mut mem, 0, cfg, true, &mut scratch);
        for t in ctx.threads() {
            let _ = ctx.ld_global(0, t, buf, t as usize * 32);
        }
        let c = ctx.finalize();
        assert_eq!(c.warp_load_insts, 1);
        assert_eq!(c.load_transactions, 32);
    }

    #[test]
    fn occurrences_group_separately() {
        // Each thread loads twice; k-th loads of all lanes form one warp
        // instruction each.
        let d = device();
        let mut mem = GlobalMem::new();
        let buf = mem.alloc(64);
        let cfg = LaunchConfig::new(1, 32, 0);
        let mut scratch = BlockScratch::new();
        let mut ctx = BlockCtx::new(&d, &mut mem, 0, cfg, true, &mut scratch);
        for t in ctx.threads() {
            let _ = ctx.ld_global(0, t, buf, t as usize);
            let _ = ctx.ld_global(0, t, buf, 32 + t as usize);
        }
        let c = ctx.finalize();
        assert_eq!(c.warp_load_insts, 2);
        assert_eq!(c.load_transactions, 2);
    }

    #[test]
    fn shared_memory_works_and_counts_conflicts() {
        let d = device();
        let mut mem = GlobalMem::new();
        let cfg = LaunchConfig::new(1, 32, 64);
        let mut scratch = BlockScratch::new();
        let mut ctx = BlockCtx::new(&d, &mut mem, 0, cfg, true, &mut scratch);
        for t in ctx.threads() {
            ctx.st_shared(0, t, (t as usize * 2) % 64, t as f32);
        }
        ctx.sync();
        for t in ctx.threads() {
            let _ = ctx.ld_shared(1, t, (t as usize * 2) % 64);
        }
        let c = ctx.finalize();
        assert_eq!(c.syncs, 1);
        assert_eq!(c.shared_insts, 2);
        // Stride-2 on 32 banks: 2-way conflict on both instructions.
        assert_eq!(c.shared_cycles, 4);
    }

    #[test]
    fn compute_is_warp_max() {
        let d = device();
        let mut mem = GlobalMem::new();
        let cfg = LaunchConfig::new(1, 32, 0);
        let mut scratch = BlockScratch::new();
        let mut ctx = BlockCtx::new(&d, &mut mem, 0, cfg, true, &mut scratch);
        for t in ctx.threads() {
            // Divergent work: lane 5 does 10 instructions, others 1.
            ctx.compute(t, if t == 5 { 10 } else { 1 });
        }
        let c = ctx.finalize();
        assert_eq!(c.warp_compute_insts, 10);
    }

    #[test]
    fn recording_off_skips_accounting_but_not_effects() {
        let d = device();
        let mut mem = GlobalMem::new();
        let buf = mem.alloc(4);
        let cfg = LaunchConfig::new(1, 4, 0);
        let mut scratch = BlockScratch::new();
        let mut ctx = BlockCtx::new(&d, &mut mem, 0, cfg, false, &mut scratch);
        for t in ctx.threads() {
            ctx.st_global(0, t, buf, t as usize, t as f32 + 1.0);
            ctx.compute(t, 100);
        }
        let c = ctx.finalize();
        assert_eq!(c.warp_store_insts, 0);
        assert_eq!(c.warp_compute_insts, 0);
        assert_eq!(mem.read(buf), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = BlockCounters {
            warp_load_insts: 1,
            flops: 10,
            ..Default::default()
        };
        let b = BlockCounters {
            warp_load_insts: 2,
            flops: 5,
            syncs: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.warp_load_insts, 3);
        assert_eq!(a.flops, 15);
        assert_eq!(a.syncs, 1);
    }
}
