//! Deterministic, seed-driven fault injection for the simulated device.
//!
//! A production runtime treats kernel failure as an *expected* event: real
//! devices reject launches under resource pressure, kernels hit asserts,
//! watchdogs kill hung grids, and counter readbacks occasionally return
//! garbage. This module lets tests and chaos harnesses script those events
//! deterministically, so the resilient launch pipeline upstream (retry,
//! fallback, variant quarantine in `adaptic`) can be exercised and its
//! bit-identical-recovery guarantee checked on every CI run.
//!
//! The pieces:
//!
//! * [`Fault`] / [`FaultKind`] — the taxonomy of injectable failures;
//! * [`FaultInjector`] — the hook the execution engines consult once per
//!   launch attempt ([`crate::exec::try_launch_pooled`]);
//! * [`FaultPlan`] — the standard injector: a seeded, rate-limited,
//!   optionally kernel-targeted and windowed schedule. The same seed
//!   always produces the same fault sequence, so a red chaos run replays
//!   exactly;
//! * [`LaunchError`] — how an injected (or genuine) failure surfaces from
//!   a fallible launch;
//! * [`LaunchControl`] — per-launch knobs (injector, deadline budget)
//!   threaded through the engines.
//!
//! Injection is *observable but transient*: a faulted launch either
//! returns a typed [`LaunchError`] before or instead of completing, or (for
//! [`FaultKind::StatCorruption`]) produces counters that fail the engine's
//! sanity gate and are rejected the same way. Kernels never write their
//! input buffers, so a retried launch recomputes byte-identical output —
//! the invariant the conformance chaos suite pins.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The taxonomy of injectable faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The device rejects the launch outright (driver out of resources).
    LaunchReject,
    /// A block worker panics mid-grid (kernel assert, simulated ECC trap).
    MidBlockPanic,
    /// Counter readback returns garbage: the stats fail the sanity gate.
    StatCorruption,
    /// The grid hangs; the watchdog fires and the launch overruns its
    /// deadline budget.
    Hang,
    /// The device loses SMs (thermal throttle / partial reset) and refuses
    /// the launch until it recovers.
    DegradedSm,
}

impl FaultKind {
    /// Every injectable kind, in a stable order (used by seeded plans to
    /// pick a kind deterministically).
    pub const ALL: [FaultKind; 5] = [
        FaultKind::LaunchReject,
        FaultKind::MidBlockPanic,
        FaultKind::StatCorruption,
        FaultKind::Hang,
        FaultKind::DegradedSm,
    ];
}

/// One concrete fault to inject into one launch attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Reject before executing anything.
    LaunchReject,
    /// Panic the worker that executes this (executed-index, modulo the
    /// grid's executed-block count) block.
    MidBlockPanic { after_blocks: u32 },
    /// Complete the launch but corrupt the merged counters.
    StatCorruption,
    /// Hang until the watchdog fires (simulated: the launch reports a
    /// deadline overrun without executing).
    Hang,
    /// Report the device degraded to this many SMs and refuse the launch.
    DegradedSm { remaining_sms: u32 },
}

impl Fault {
    /// The kind this concrete fault belongs to.
    pub fn kind(&self) -> FaultKind {
        match self {
            Fault::LaunchReject => FaultKind::LaunchReject,
            Fault::MidBlockPanic { .. } => FaultKind::MidBlockPanic,
            Fault::StatCorruption => FaultKind::StatCorruption,
            Fault::Hang => FaultKind::Hang,
            Fault::DegradedSm { .. } => FaultKind::DegradedSm,
        }
    }
}

/// The hook the execution engines consult once per launch attempt.
///
/// Implementations must be `Sync` (the parallel engine and concurrent
/// kernel-management callers share one injector) and deterministic for a
/// fixed construction + consultation order, so chaos runs replay.
pub trait FaultInjector: fmt::Debug + Sync {
    /// Called once at the start of every launch attempt with the kernel's
    /// name. Returning `Some` makes the engine inject that fault.
    fn on_launch(&self, kernel: &str) -> Option<Fault>;

    /// Total faults handed out so far (telemetry).
    fn injected(&self) -> u64 {
        0
    }
}

/// SplitMix64 — the same tiny deterministic mixer the test harnesses use.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A deterministic, seed-driven fault schedule.
///
/// Every consultation advances an attempt counter; whether attempt `n`
/// faults — and which [`FaultKind`] it gets — is a pure function of
/// `(seed, n)`, so two runs with the same plan construction and the same
/// launch order see the same faults. The plan can be *targeted* (only
/// kernels whose name contains a substring fault) and *windowed* (faults
/// fire only while the counter is inside `[start, end)`), which is how the
/// chaos demo scripts "variant X is flaky for a while, then recovers".
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    /// Probability, in [0, 1], that a consulted attempt faults.
    rate: f64,
    kinds: Vec<FaultKind>,
    target: Option<String>,
    /// Half-open `[start, end)` window on the attempt counter.
    window: Option<(u64, u64)>,
    consulted: AtomicU64,
    injected: AtomicU64,
}

impl FaultPlan {
    /// A plan over every fault kind at a 25% per-attempt rate.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rate: 0.25,
            kinds: FaultKind::ALL.to_vec(),
            target: None,
            window: None,
            consulted: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Set the per-attempt fault probability (clamped to [0, 1]).
    pub fn with_rate(mut self, rate: f64) -> FaultPlan {
        self.rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Restrict the plan to these fault kinds.
    ///
    /// # Panics
    ///
    /// Panics when `kinds` is empty — a plan that can fault but has no
    /// kind to inject is a configuration bug.
    pub fn with_kinds(mut self, kinds: Vec<FaultKind>) -> FaultPlan {
        assert!(!kinds.is_empty(), "fault plan needs at least one kind");
        self.kinds = kinds;
        self
    }

    /// Only fault kernels whose name contains `substr`.
    pub fn targeting(mut self, substr: &str) -> FaultPlan {
        self.target = Some(substr.to_string());
        self
    }

    /// Only fault while the attempt counter is in `[start, end)`; outside
    /// the window the plan is inert (the "flaky for a while" schedule).
    pub fn with_window(mut self, start: u64, end: u64) -> FaultPlan {
        self.window = Some((start, end));
        self
    }

    /// Launch attempts consulted so far.
    pub fn consulted(&self) -> u64 {
        self.consulted.load(Ordering::Relaxed)
    }
}

impl FaultInjector for FaultPlan {
    fn on_launch(&self, kernel: &str) -> Option<Fault> {
        let n = self.consulted.fetch_add(1, Ordering::Relaxed);
        if let Some((start, end)) = self.window {
            if n < start || n >= end {
                return None;
            }
        }
        if let Some(t) = &self.target {
            if !kernel.contains(t.as_str()) {
                return None;
            }
        }
        let h = splitmix64(self.seed ^ n.wrapping_mul(0x9e3779b97f4a7c15));
        // Top 53 bits → uniform in [0, 1).
        let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
        if draw >= self.rate {
            return None;
        }
        let h2 = splitmix64(h);
        let kind = self.kinds[(h2 % self.kinds.len() as u64) as usize];
        let h3 = splitmix64(h2);
        let fault = match kind {
            FaultKind::LaunchReject => Fault::LaunchReject,
            FaultKind::MidBlockPanic => Fault::MidBlockPanic {
                after_blocks: (h3 % 64) as u32,
            },
            FaultKind::StatCorruption => Fault::StatCorruption,
            FaultKind::Hang => Fault::Hang,
            FaultKind::DegradedSm => Fault::DegradedSm {
                remaining_sms: (h3 % 4) as u32,
            },
        };
        self.injected.fetch_add(1, Ordering::Relaxed);
        Some(fault)
    }

    fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

/// How a fallible launch failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// The device rejected the launch before executing anything.
    Rejected,
    /// A block worker panicked; the engine isolated it and rolled the
    /// launch up as failed. `message` is the panic payload when it was a
    /// string.
    WorkerPanic { message: String },
    /// The launch overran its deadline budget (real overrun or the
    /// simulated watchdog of an injected [`Fault::Hang`]).
    DeadlineExceeded { elapsed_us: u64, budget_us: u64 },
    /// The device reported itself degraded (fewer live SMs than the spec)
    /// and refused the launch.
    DeviceDegraded { remaining_sms: u32 },
    /// The launch completed but its counters failed the sanity gate
    /// (non-finite or negative totals).
    CorruptStats { detail: String },
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::Rejected => write!(f, "launch rejected by the device"),
            LaunchError::WorkerPanic { message } => {
                write!(f, "launch worker panicked: {message}")
            }
            LaunchError::DeadlineExceeded {
                elapsed_us,
                budget_us,
            } => write!(
                f,
                "launch exceeded its deadline budget ({elapsed_us}us elapsed, \
                 {budget_us}us allowed)"
            ),
            LaunchError::DeviceDegraded { remaining_sms } => {
                write!(f, "device degraded to {remaining_sms} SMs; launch refused")
            }
            LaunchError::CorruptStats { detail } => {
                write!(f, "launch statistics failed the sanity gate: {detail}")
            }
        }
    }
}

impl std::error::Error for LaunchError {}

/// Per-launch control knobs threaded through the fallible engines: the
/// fault injector to consult (if any) and the wall-clock deadline budget
/// the launch must finish within.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaunchControl<'a> {
    /// Injector consulted once at the start of the attempt.
    pub faults: Option<&'a dyn FaultInjector>,
    /// Host wall-clock budget; `None` disables the post-hoc watchdog
    /// (injected [`Fault::Hang`]s still report a deadline overrun).
    pub deadline: Option<Duration>,
}

impl<'a> LaunchControl<'a> {
    /// Control block with this injector and no deadline.
    pub fn with_faults(faults: &'a dyn FaultInjector) -> LaunchControl<'a> {
        LaunchControl {
            faults: Some(faults),
            deadline: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(plan: &FaultPlan, kernel: &str, n: usize) -> Vec<Option<Fault>> {
        (0..n).map(|_| plan.on_launch(kernel)).collect()
    }

    #[test]
    fn same_seed_replays_the_same_schedule() {
        let a = collect(&FaultPlan::new(42).with_rate(0.5), "k", 256);
        let b = collect(&FaultPlan::new(42).with_rate(0.5), "k", 256);
        assert_eq!(a, b);
        assert!(a.iter().any(|f| f.is_some()), "rate 0.5 must fault");
        assert!(a.iter().any(|f| f.is_none()), "rate 0.5 must also pass");
    }

    #[test]
    fn different_seeds_diverge() {
        let a = collect(&FaultPlan::new(1).with_rate(0.5), "k", 256);
        let b = collect(&FaultPlan::new(2).with_rate(0.5), "k", 256);
        assert_ne!(a, b);
    }

    #[test]
    fn rate_bounds_are_honored() {
        let never = FaultPlan::new(7).with_rate(0.0);
        assert!(collect(&never, "k", 128).iter().all(|f| f.is_none()));
        assert_eq!(never.injected(), 0);
        assert_eq!(never.consulted(), 128);

        let always = FaultPlan::new(7).with_rate(1.0);
        assert!(collect(&always, "k", 128).iter().all(|f| f.is_some()));
        assert_eq!(always.injected(), 128);
    }

    #[test]
    fn targeting_spares_other_kernels() {
        let plan = FaultPlan::new(3).with_rate(1.0).targeting("flaky");
        assert!(plan.on_launch("solid_sum").is_none());
        assert!(plan.on_launch("flaky_reduce").is_some());
        assert_eq!(plan.injected(), 1);
        assert_eq!(plan.consulted(), 2);
    }

    #[test]
    fn window_gates_the_schedule() {
        let plan = FaultPlan::new(9).with_rate(1.0).with_window(2, 4);
        let got = collect(&plan, "k", 6);
        let fired: Vec<bool> = got.iter().map(|f| f.is_some()).collect();
        assert_eq!(fired, vec![false, false, true, true, false, false]);
    }

    #[test]
    fn restricted_kinds_are_respected() {
        let plan = FaultPlan::new(5)
            .with_rate(1.0)
            .with_kinds(vec![FaultKind::Hang, FaultKind::LaunchReject]);
        for f in collect(&plan, "k", 64).into_iter().flatten() {
            assert!(
                matches!(f.kind(), FaultKind::Hang | FaultKind::LaunchReject),
                "unexpected kind {f:?}"
            );
        }
        // Over 64 draws both kinds appear.
        let kinds: std::collections::BTreeSet<_> = collect(&plan, "k", 64)
            .into_iter()
            .flatten()
            .map(|f| format!("{:?}", f.kind()))
            .collect();
        assert_eq!(kinds.len(), 2);
    }

    #[test]
    fn launch_error_display_is_lowercase_and_nonempty() {
        let cases = [
            LaunchError::Rejected,
            LaunchError::WorkerPanic {
                message: "boom".into(),
            },
            LaunchError::DeadlineExceeded {
                elapsed_us: 10,
                budget_us: 5,
            },
            LaunchError::DeviceDegraded { remaining_sms: 2 },
            LaunchError::CorruptStats {
                detail: "flops = NaN".into(),
            },
        ];
        for c in cases {
            let s = c.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn fault_kinds_round_trip() {
        for k in FaultKind::ALL {
            let f = match k {
                FaultKind::LaunchReject => Fault::LaunchReject,
                FaultKind::MidBlockPanic => Fault::MidBlockPanic { after_blocks: 3 },
                FaultKind::StatCorruption => Fault::StatCorruption,
                FaultKind::Hang => Fault::Hang,
                FaultKind::DegradedSm => Fault::DegradedSm { remaining_sms: 1 },
            };
            assert_eq!(f.kind(), k);
        }
    }
}
