//! Device specifications.
//!
//! A [`DeviceSpec`] captures the first-order architectural parameters that
//! the paper's effects depend on: number of streaming multiprocessors,
//! warp width, per-SM thread/block/shared-memory limits, memory transaction
//! geometry, latencies and bandwidth. Two presets model the paper's
//! evaluation targets — an NVIDIA Tesla C2050-class (Fermi) part and a
//! GeForce GTX 285-class (GT200) part.

/// Architectural description of a simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, for reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Threads per warp (32 on every NVIDIA part).
    pub warp_size: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum threads per block accepted at launch.
    pub max_threads_per_block: u32,
    /// Shared memory per SM, in 4-byte words.
    pub shared_words_per_sm: u32,
    /// Shared memory available to one block, in 4-byte words.
    pub shared_words_per_block: u32,
    /// Number of shared-memory banks.
    pub shared_banks: u32,
    /// Shader clock in GHz.
    pub clock_ghz: f64,
    /// Off-chip bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Global memory latency in cycles.
    pub mem_latency_cycles: f64,
    /// Cycles between consecutive memory transactions from one SM
    /// (the Hong&Kim "departure delay").
    pub departure_delay_cycles: f64,
    /// Global memory transaction size in 4-byte words (128 B = 32 words).
    pub transaction_words: u32,
    /// Cycles to issue one warp instruction (SM width dependent: 1 on
    /// Fermi's 32-core SMs, 4 on GT200's 8-core SMs).
    pub issue_cycles_per_warp_inst: f64,
    /// Fixed kernel-launch overhead in microseconds.
    pub launch_overhead_us: f64,
}

impl DeviceSpec {
    /// Tesla C2050-class Fermi device (the paper's primary target).
    pub fn tesla_c2050() -> DeviceSpec {
        DeviceSpec {
            name: "Tesla C2050".into(),
            sm_count: 14,
            warp_size: 32,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 8,
            max_threads_per_block: 1024,
            shared_words_per_sm: 48 * 1024 / 4,
            shared_words_per_block: 48 * 1024 / 4,
            shared_banks: 32,
            clock_ghz: 1.15,
            mem_bandwidth_gbps: 144.0,
            mem_latency_cycles: 600.0,
            departure_delay_cycles: 10.0,
            transaction_words: 32,
            issue_cycles_per_warp_inst: 1.0,
            launch_overhead_us: 5.0,
        }
    }

    /// GeForce GTX 285-class GT200 device (the paper's secondary target).
    pub fn gtx285() -> DeviceSpec {
        DeviceSpec {
            name: "GeForce GTX 285".into(),
            sm_count: 30,
            warp_size: 32,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 8,
            max_threads_per_block: 512,
            shared_words_per_sm: 16 * 1024 / 4,
            shared_words_per_block: 16 * 1024 / 4,
            shared_banks: 16,
            clock_ghz: 1.476,
            mem_bandwidth_gbps: 159.0,
            mem_latency_cycles: 500.0,
            departure_delay_cycles: 16.0,
            transaction_words: 32,
            issue_cycles_per_warp_inst: 4.0,
            launch_overhead_us: 7.0,
        }
    }

    /// GeForce GTX 480-class Fermi consumer device — a third target used
    /// to demonstrate target portability ("write once, run anywhere").
    pub fn gtx480() -> DeviceSpec {
        DeviceSpec {
            name: "GeForce GTX 480".into(),
            sm_count: 15,
            warp_size: 32,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 8,
            max_threads_per_block: 1024,
            shared_words_per_sm: 48 * 1024 / 4,
            shared_words_per_block: 48 * 1024 / 4,
            shared_banks: 32,
            clock_ghz: 1.401,
            mem_bandwidth_gbps: 177.4,
            mem_latency_cycles: 600.0,
            departure_delay_cycles: 10.0,
            transaction_words: 32,
            issue_cycles_per_warp_inst: 1.0,
            launch_overhead_us: 5.0,
        }
    }

    /// Small integrated-GPU-class device: few SMs, narrow shared memory,
    /// a fraction of the discrete parts' bandwidth — but the cheapest
    /// launch overhead in the fleet (no PCIe hop). Wins tiny launches,
    /// loses badly once a kernel becomes bandwidth-bound.
    pub fn igpu_small() -> DeviceSpec {
        DeviceSpec {
            name: "Iris iGPU-S".into(),
            sm_count: 6,
            warp_size: 32,
            max_threads_per_sm: 512,
            max_blocks_per_sm: 4,
            max_threads_per_block: 256,
            shared_words_per_sm: 16 * 1024 / 4,
            shared_words_per_block: 16 * 1024 / 4,
            shared_banks: 16,
            clock_ghz: 0.65,
            mem_bandwidth_gbps: 25.6,
            mem_latency_cycles: 800.0,
            departure_delay_cycles: 24.0,
            transaction_words: 16,
            issue_cycles_per_warp_inst: 2.0,
            launch_overhead_us: 2.0,
        }
    }

    /// Wide HPC-class device (V100-era accelerator): many SMs, HBM-class
    /// bandwidth, deep occupancy — and the dearest launch overhead in the
    /// fleet. Wins large launches outright, wastes its width on small
    /// ones.
    pub fn hpc_wide() -> DeviceSpec {
        DeviceSpec {
            name: "HPC Wide-80".into(),
            sm_count: 80,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            shared_words_per_sm: 96 * 1024 / 4,
            shared_words_per_block: 96 * 1024 / 4,
            shared_banks: 32,
            clock_ghz: 1.53,
            mem_bandwidth_gbps: 900.0,
            mem_latency_cycles: 400.0,
            departure_delay_cycles: 4.0,
            transaction_words: 32,
            issue_cycles_per_warp_inst: 1.0,
            launch_overhead_us: 12.0,
        }
    }

    /// Every built-in preset, from narrowest to widest — the simulated
    /// heterogeneous fleet's default population.
    pub fn presets() -> Vec<DeviceSpec> {
        vec![
            DeviceSpec::igpu_small(),
            DeviceSpec::gtx285(),
            DeviceSpec::tesla_c2050(),
            DeviceSpec::gtx480(),
            DeviceSpec::hpc_wide(),
        ]
    }

    /// Stable fingerprint over every architectural parameter, used to key
    /// launch-statistics caches *and persistent compilation artifacts*:
    /// two specs that could produce different counters, timing, or plan
    /// decisions must fingerprint differently, and the value must be
    /// identical across processes, builds and Rust versions (on-disk
    /// artifact keys outlive all three) — hence FNV-1a rather than the
    /// unstable `DefaultHasher`.
    pub fn fingerprint(&self) -> u64 {
        // Exhaustive destructure: adding a DeviceSpec field without
        // deciding how it fingerprints is a compile error, so a new
        // perf-relevant field can never be silently omitted.
        let DeviceSpec {
            name,
            sm_count,
            warp_size,
            max_threads_per_sm,
            max_blocks_per_sm,
            max_threads_per_block,
            shared_words_per_sm,
            shared_words_per_block,
            shared_banks,
            clock_ghz,
            mem_bandwidth_gbps,
            mem_latency_cycles,
            departure_delay_cycles,
            transaction_words,
            issue_cycles_per_warp_inst,
            launch_overhead_us,
        } = self;
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            // Field separator so adjacent fields cannot alias by
            // re-chunking the byte stream.
            h ^= 0xff;
            h = h.wrapping_mul(0x100000001b3);
        };
        eat(name.as_bytes());
        for v in [
            *sm_count,
            *warp_size,
            *max_threads_per_sm,
            *max_blocks_per_sm,
            *max_threads_per_block,
            *shared_words_per_sm,
            *shared_words_per_block,
            *shared_banks,
            *transaction_words,
        ] {
            eat(&v.to_le_bytes());
        }
        for v in [
            *clock_ghz,
            *mem_bandwidth_gbps,
            *mem_latency_cycles,
            *departure_delay_cycles,
            *issue_cycles_per_warp_inst,
            *launch_overhead_us,
        ] {
            eat(&v.to_bits().to_le_bytes());
        }
        h
    }

    /// Maximum concurrently-resident warps on one SM.
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / self.warp_size
    }

    /// How many blocks of the given shape fit on one SM at once, limited by
    /// the thread, block and shared-memory budgets.
    ///
    /// Returns 0 when the block cannot be scheduled at all (too many
    /// threads or too much shared memory for the device).
    pub fn active_blocks_per_sm(&self, threads_per_block: u32, shared_words: u32) -> u32 {
        if threads_per_block == 0
            || threads_per_block > self.max_threads_per_block
            || shared_words > self.shared_words_per_block
        {
            return 0;
        }
        let by_threads = self.max_threads_per_sm / threads_per_block;
        let by_shared = self
            .shared_words_per_sm
            .checked_div(shared_words)
            .unwrap_or(self.max_blocks_per_sm);
        by_threads.min(by_shared).min(self.max_blocks_per_sm)
    }

    /// Active warps per SM for a launch shape — the occupancy quantity the
    /// performance model classifies kernels with.
    pub fn active_warps_per_sm(&self, threads_per_block: u32, shared_words: u32) -> u32 {
        let blocks = self.active_blocks_per_sm(threads_per_block, shared_words);
        let warps_per_block = threads_per_block.div_ceil(self.warp_size);
        (blocks * warps_per_block).min(self.max_warps_per_sm())
    }

    /// Peak memory transactions the device can retire per cycle, derived
    /// from bandwidth, clock and transaction size.
    pub fn transactions_per_cycle(&self) -> f64 {
        let bytes_per_cycle = self.mem_bandwidth_gbps / self.clock_ghz;
        bytes_per_cycle / (self.transaction_words as f64 * 4.0)
    }

    /// Kernel launch overhead in cycles.
    pub fn launch_overhead_cycles(&self) -> f64 {
        self.launch_overhead_us * self.clock_ghz * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let presets = DeviceSpec::presets();
        assert!(presets.len() >= 5, "fleet needs a heterogeneous population");
        for d in presets {
            assert!(d.sm_count > 0);
            assert_eq!(d.warp_size, 32);
            assert!(d.max_threads_per_sm >= d.max_threads_per_block);
            assert!(d.shared_words_per_block <= d.shared_words_per_sm);
            assert!(d.transactions_per_cycle() > 0.0);
            assert!(d.launch_overhead_cycles() > 1000.0);
        }
    }

    #[test]
    fn fleet_presets_span_the_perf_spectrum() {
        // The fleet's scheduling signal only exists if the presets
        // genuinely disagree: the iGPU must have the cheapest launch and
        // the least bandwidth, the HPC part the widest everything.
        let igpu = DeviceSpec::igpu_small();
        let hpc = DeviceSpec::hpc_wide();
        for d in DeviceSpec::presets() {
            assert!(
                igpu.launch_overhead_us <= d.launch_overhead_us,
                "{}",
                d.name
            );
            assert!(
                igpu.mem_bandwidth_gbps <= d.mem_bandwidth_gbps,
                "{}",
                d.name
            );
            assert!(hpc.mem_bandwidth_gbps >= d.mem_bandwidth_gbps, "{}", d.name);
            assert!(hpc.sm_count >= d.sm_count, "{}", d.name);
        }
        assert!(hpc.mem_bandwidth_gbps / igpu.mem_bandwidth_gbps > 10.0);
    }

    #[test]
    fn c2050_has_more_shared_memory_than_gtx285() {
        let fermi = DeviceSpec::tesla_c2050();
        let gt200 = DeviceSpec::gtx285();
        assert!(fermi.shared_words_per_block > gt200.shared_words_per_block);
        assert!(fermi.max_threads_per_block > gt200.max_threads_per_block);
    }

    #[test]
    fn occupancy_limited_by_threads() {
        let d = DeviceSpec::tesla_c2050();
        // 1024-thread blocks: only one fits in 1536 threads.
        assert_eq!(d.active_blocks_per_sm(1024, 0), 1);
        // 192-thread blocks: 8 would fit by threads, capped at 8 blocks.
        assert_eq!(d.active_blocks_per_sm(192, 0), 8);
    }

    #[test]
    fn occupancy_limited_by_shared_memory() {
        let d = DeviceSpec::tesla_c2050();
        // Blocks using all shared memory: one at a time.
        assert_eq!(d.active_blocks_per_sm(256, d.shared_words_per_block), 1);
        // Half the shared memory: two at a time.
        assert_eq!(d.active_blocks_per_sm(256, d.shared_words_per_block / 2), 2);
    }

    #[test]
    fn unschedulable_blocks_are_zero() {
        let d = DeviceSpec::gtx285();
        assert_eq!(d.active_blocks_per_sm(1024, 0), 0); // >512 threads
        assert_eq!(d.active_blocks_per_sm(0, 0), 0);
        assert_eq!(d.active_blocks_per_sm(64, d.shared_words_per_block + 1), 0);
    }

    #[test]
    fn fingerprint_is_stable_and_distinguishes_presets() {
        let d = DeviceSpec::tesla_c2050();
        assert_eq!(d.fingerprint(), DeviceSpec::tesla_c2050().fingerprint());
        // Every preset pair — including the new fleet members — must key
        // distinct artifact-store entries.
        let presets = DeviceSpec::presets();
        for i in 0..presets.len() {
            for j in i + 1..presets.len() {
                assert_ne!(
                    presets[i].fingerprint(),
                    presets[j].fingerprint(),
                    "{} aliases {}",
                    presets[i].name,
                    presets[j].name
                );
            }
        }
    }

    #[test]
    fn fingerprint_covers_every_field() {
        // Mutating any single perf-relevant field must change the
        // fingerprint — persistent artifacts keyed by it would otherwise
        // be replayed on a device they were not planned for. Run the
        // 16-way single-field sweep from every preset base so a new
        // preset cannot sit in a fingerprint blind spot.
        for base in DeviceSpec::presets() {
            fingerprint_covers_every_field_of(base);
        }
    }

    fn fingerprint_covers_every_field_of(base: DeviceSpec) {
        let mutations: Vec<(&str, DeviceSpec)> = vec![
            (
                "name",
                DeviceSpec {
                    name: "Other".into(),
                    ..base.clone()
                },
            ),
            (
                "sm_count",
                DeviceSpec {
                    sm_count: base.sm_count + 1,
                    ..base.clone()
                },
            ),
            (
                "warp_size",
                DeviceSpec {
                    warp_size: 64,
                    ..base.clone()
                },
            ),
            (
                "max_threads_per_sm",
                DeviceSpec {
                    max_threads_per_sm: base.max_threads_per_sm + 1,
                    ..base.clone()
                },
            ),
            (
                "max_blocks_per_sm",
                DeviceSpec {
                    max_blocks_per_sm: base.max_blocks_per_sm + 1,
                    ..base.clone()
                },
            ),
            (
                "max_threads_per_block",
                DeviceSpec {
                    max_threads_per_block: base.max_threads_per_block + 1,
                    ..base.clone()
                },
            ),
            (
                "shared_words_per_sm",
                DeviceSpec {
                    shared_words_per_sm: base.shared_words_per_sm + 1,
                    ..base.clone()
                },
            ),
            (
                "shared_words_per_block",
                DeviceSpec {
                    shared_words_per_block: base.shared_words_per_block + 1,
                    ..base.clone()
                },
            ),
            (
                "shared_banks",
                DeviceSpec {
                    shared_banks: base.shared_banks + 1,
                    ..base.clone()
                },
            ),
            (
                "clock_ghz",
                DeviceSpec {
                    clock_ghz: base.clock_ghz + 0.1,
                    ..base.clone()
                },
            ),
            (
                "mem_bandwidth_gbps",
                DeviceSpec {
                    mem_bandwidth_gbps: base.mem_bandwidth_gbps + 1.0,
                    ..base.clone()
                },
            ),
            (
                "mem_latency_cycles",
                DeviceSpec {
                    mem_latency_cycles: base.mem_latency_cycles + 1.0,
                    ..base.clone()
                },
            ),
            (
                "departure_delay_cycles",
                DeviceSpec {
                    departure_delay_cycles: base.departure_delay_cycles + 1.0,
                    ..base.clone()
                },
            ),
            (
                "transaction_words",
                DeviceSpec {
                    transaction_words: base.transaction_words * 2,
                    ..base.clone()
                },
            ),
            (
                "issue_cycles_per_warp_inst",
                DeviceSpec {
                    issue_cycles_per_warp_inst: base.issue_cycles_per_warp_inst + 1.0,
                    ..base.clone()
                },
            ),
            (
                "launch_overhead_us",
                DeviceSpec {
                    launch_overhead_us: base.launch_overhead_us + 1.0,
                    ..base.clone()
                },
            ),
        ];
        let mut fps = vec![("base", base.fingerprint())];
        for (field, mutated) in &mutations {
            assert_ne!(
                mutated.fingerprint(),
                base.fingerprint(),
                "mutating {field} must change the fingerprint"
            );
            fps.push((field, mutated.fingerprint()));
        }
        // And the mutations are pairwise distinct (no accidental aliasing
        // between adjacent fields).
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i].1, fps[j].1, "{} aliases {}", fps[i].0, fps[j].0);
            }
        }
    }

    #[test]
    fn active_warps_cap_at_device_limit() {
        let d = DeviceSpec::tesla_c2050();
        assert_eq!(d.max_warps_per_sm(), 48);
        // 8 blocks * 8 warps = 64, capped at the 48-warp device limit.
        assert_eq!(d.active_warps_per_sm(256, 0), 48);
    }
}
