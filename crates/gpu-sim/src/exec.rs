//! Kernel launching and statistics collection.
//!
//! [`launch`] executes a [`Kernel`] block-by-block on a [`GlobalMem`],
//! producing [`KernelStats`] — the input of the analytical performance
//! model. Very large grids can be *sampled*: a representative subset of
//! blocks is executed and/or recorded and the counters are scaled up, which
//! keeps figure-scale sweeps (tens of millions of threads) tractable while
//! preserving the aggregate access-pattern statistics.

use crate::kernel::{BlockCounters, BlockCtx, Kernel, LaunchConfig};
use crate::mem::GlobalMem;
use crate::spec::DeviceSpec;

/// How much of the grid to execute and to record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Execute and record every block — exact functional output and exact
    /// statistics. Use in correctness tests.
    Full,
    /// Execute every block (exact output) but record statistics on at most
    /// this many evenly-spaced blocks, scaling counters to the full grid.
    SampledStats(u32),
    /// Execute and record only this many evenly-spaced blocks; the rest of
    /// the output is left unwritten. Use in timing-only sweeps where the
    /// workload is data-independent.
    SampledExec(u32),
}

impl ExecMode {
    /// Reasonable default for figure harnesses.
    pub fn default_sampled() -> ExecMode {
        ExecMode::SampledExec(512)
    }
}

/// Aggregated, scaled statistics of one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    /// Kernel name.
    pub name: String,
    /// Launch geometry.
    pub config: LaunchConfig,
    /// Scaled whole-grid counters.
    pub totals: ScaledCounters,
    /// Blocks whose counters were recorded.
    pub recorded_blocks: u32,
    /// Blocks functionally executed.
    pub executed_blocks: u32,
}

/// Whole-grid counters, scaled from the recorded sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScaledCounters {
    pub warp_load_insts: f64,
    pub warp_store_insts: f64,
    pub load_transactions: f64,
    pub store_transactions: f64,
    pub warp_compute_insts: f64,
    pub shared_insts: f64,
    pub shared_cycles: f64,
    pub syncs: f64,
    pub flops: f64,
}

impl ScaledCounters {
    fn from_counters(c: &BlockCounters, scale: f64) -> ScaledCounters {
        ScaledCounters {
            warp_load_insts: c.warp_load_insts as f64 * scale,
            warp_store_insts: c.warp_store_insts as f64 * scale,
            load_transactions: c.load_transactions as f64 * scale,
            store_transactions: c.store_transactions as f64 * scale,
            warp_compute_insts: c.warp_compute_insts as f64 * scale,
            shared_insts: c.shared_insts as f64 * scale,
            shared_cycles: c.shared_cycles as f64 * scale,
            syncs: c.syncs as f64 * scale,
            flops: c.flops as f64 * scale,
        }
    }

    /// Warp-level global memory instructions (loads + stores).
    pub fn warp_mem_insts(&self) -> f64 {
        self.warp_load_insts + self.warp_store_insts
    }

    /// Global memory transactions (loads + stores).
    pub fn transactions(&self) -> f64 {
        self.load_transactions + self.store_transactions
    }

    /// Average transactions per warp memory instruction: 1.0 means fully
    /// coalesced, `warp_size` means fully scattered.
    pub fn transactions_per_mem_inst(&self) -> f64 {
        let insts = self.warp_mem_insts();
        if insts == 0.0 {
            0.0
        } else {
            self.transactions() / insts
        }
    }
}

impl KernelStats {
    /// Total warps in the grid for the given warp width.
    pub fn warps_in_grid(&self, warp_size: u32) -> f64 {
        self.config.grid_dim as f64 * self.config.block_dim.div_ceil(warp_size) as f64
    }
}

/// Which blocks to include in an evenly-spaced sample of size `sample`.
fn sample_stride(grid: u32, sample: u32) -> u32 {
    if sample == 0 {
        return u32::MAX;
    }
    grid.div_ceil(sample.min(grid)).max(1)
}

/// Execute `kernel` on `device`/`mem` under `mode`.
///
/// Returns whole-grid statistics; functional effects are visible in `mem`
/// (for all blocks under [`ExecMode::Full`]/[`ExecMode::SampledStats`], or
/// the sampled subset under [`ExecMode::SampledExec`]).
///
/// # Panics
///
/// Panics if the launch configuration is impossible for the device (block
/// larger than `max_threads_per_block`, zero-sized grid/block, or more
/// shared memory than a block may allocate) — mirroring a CUDA launch
/// failure.
pub fn launch(
    device: &DeviceSpec,
    mem: &mut GlobalMem,
    kernel: &dyn Kernel,
    mode: ExecMode,
) -> KernelStats {
    let config = kernel.config();
    assert!(config.grid_dim > 0, "launch with empty grid");
    assert!(config.block_dim > 0, "launch with empty block");
    assert!(
        config.block_dim <= device.max_threads_per_block,
        "block of {} threads exceeds device limit {}",
        config.block_dim,
        device.max_threads_per_block
    );
    assert!(
        config.shared_words <= device.shared_words_per_block,
        "shared allocation of {} words exceeds device limit {}",
        config.shared_words,
        device.shared_words_per_block
    );

    let (exec_stride, stat_stride) = match mode {
        ExecMode::Full => (1, 1),
        ExecMode::SampledStats(s) => (1, sample_stride(config.grid_dim, s)),
        ExecMode::SampledExec(s) => {
            let st = sample_stride(config.grid_dim, s);
            (st, st)
        }
    };

    let mut merged = BlockCounters::default();
    let mut recorded = 0u32;
    let mut executed = 0u32;
    let mut block = 0u32;
    while block < config.grid_dim {
        let record = block.is_multiple_of(stat_stride);
        let mut ctx = BlockCtx::new(device, mem, block, config, record);
        kernel.run_block(block, &mut ctx);
        let counters = ctx.finalize();
        if record {
            merged.merge(&counters);
            recorded += 1;
        }
        executed += 1;
        block += exec_stride;
        // When exec_stride > stat_stride is impossible (they are equal in
        // SampledExec), so no recorded block is ever skipped.
    }

    let scale = config.grid_dim as f64 / recorded.max(1) as f64;
    KernelStats {
        name: kernel.name().to_string(),
        config,
        totals: ScaledCounters::from_counters(&merged, scale),
        recorded_blocks: recorded,
        executed_blocks: executed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::BlockCtx;
    use crate::mem::BufId;

    /// y[i] = 2 * x[i], one thread per element.
    struct Scale2 {
        x: BufId,
        y: BufId,
        n: usize,
        block_dim: u32,
    }

    impl Kernel for Scale2 {
        fn name(&self) -> &str {
            "scale2"
        }

        fn config(&self) -> LaunchConfig {
            let grid = (self.n as u32).div_ceil(self.block_dim);
            LaunchConfig::new(grid, self.block_dim, 0)
        }

        fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
            for t in ctx.threads() {
                let i = (block * ctx.block_dim() + t) as usize;
                if i < self.n {
                    let v = ctx.ld_global(0, t, self.x, i);
                    ctx.st_global(1, t, self.y, i, 2.0 * v);
                    ctx.compute(t, 1);
                    ctx.count_flops(1);
                }
            }
        }
    }

    #[test]
    fn full_execution_is_functionally_correct() {
        let d = DeviceSpec::tesla_c2050();
        let mut mem = GlobalMem::new();
        let data: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let x = mem.alloc_from(&data);
        let y = mem.alloc(1000);
        let k = Scale2 {
            x,
            y,
            n: 1000,
            block_dim: 128,
        };
        let stats = launch(&d, &mut mem, &k, ExecMode::Full);
        assert_eq!(stats.executed_blocks, 8);
        assert_eq!(stats.recorded_blocks, 8);
        for (i, v) in mem.read(y).iter().enumerate() {
            assert_eq!(*v, 2.0 * i as f32);
        }
        // 1000 loads fully coalesced: ceil-per-warp transactions.
        assert!(stats.totals.transactions_per_mem_inst() <= 1.01);
        assert_eq!(stats.totals.flops, 1000.0);
    }

    #[test]
    fn sampled_stats_scale_to_full_grid() {
        let d = DeviceSpec::tesla_c2050();
        let mut mem = GlobalMem::new();
        let n = 128 * 64;
        let x = mem.alloc(n);
        let y = mem.alloc(n);
        let k = Scale2 {
            x,
            y,
            n,
            block_dim: 128,
        };
        let full = launch(&d, &mut mem, &k, ExecMode::Full);
        let sampled = launch(&d, &mut mem, &k, ExecMode::SampledStats(8));
        assert_eq!(sampled.executed_blocks, 64);
        assert_eq!(sampled.recorded_blocks, 8);
        // Uniform workload: scaled counters match the exact ones.
        assert!((sampled.totals.load_transactions - full.totals.load_transactions).abs() < 1e-9);
        assert!((sampled.totals.flops - full.totals.flops).abs() < 1e-9);
    }

    #[test]
    fn sampled_exec_executes_subset() {
        let d = DeviceSpec::tesla_c2050();
        let mut mem = GlobalMem::new();
        let n = 128 * 64;
        let x = mem.alloc_from(&vec![1.0; n]);
        let y = mem.alloc(n);
        let k = Scale2 {
            x,
            y,
            n,
            block_dim: 128,
        };
        let s = launch(&d, &mut mem, &k, ExecMode::SampledExec(8));
        assert_eq!(s.executed_blocks, 8);
        // Block 0 was executed; its outputs are written.
        assert_eq!(mem.read(y)[0], 2.0);
        // Counters still describe the whole grid.
        assert_eq!(s.totals.flops, n as f64);
    }

    #[test]
    #[should_panic(expected = "exceeds device limit")]
    fn oversized_block_panics() {
        let d = DeviceSpec::gtx285();
        let mut mem = GlobalMem::new();
        let x = mem.alloc(1024);
        let y = mem.alloc(1024);
        let k = Scale2 {
            x,
            y,
            n: 1024,
            block_dim: 1024, // > 512 on GTX 285
        };
        let _ = launch(&d, &mut mem, &k, ExecMode::Full);
    }

    #[test]
    fn stride_computation() {
        assert_eq!(sample_stride(100, 10), 10);
        assert_eq!(sample_stride(7, 10), 1);
        assert_eq!(sample_stride(1, 1), 1);
        assert_eq!(sample_stride(10, 0), u32::MAX);
    }
}
