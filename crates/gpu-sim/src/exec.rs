//! Kernel launching and statistics collection.
//!
//! [`launch`] executes a [`Kernel`] block-by-block on a [`GlobalMem`],
//! producing [`KernelStats`] — the input of the analytical performance
//! model. Very large grids can be *sampled*: a representative subset of
//! blocks is executed and/or recorded and the counters are scaled up, which
//! keeps figure-scale sweeps (tens of millions of threads) tractable while
//! preserving the aggregate access-pattern statistics.
//!
//! Two engines drive the block loop, selected by [`ExecPolicy`]:
//!
//! * **Serial** — one host thread walks the grid in block order (the
//!   original engine; use it to pin down behaviour in correctness tests).
//! * **Parallel** — the executed blocks are split into contiguous ranges,
//!   one per worker on `std::thread::scope`, each worker accumulating its
//!   own [`BlockCounters`]; the per-worker counters are merged back **in
//!   block-index order**, so the resulting [`KernelStats`] are bit-for-bit
//!   identical to the serial engine's. This is sound because blocks of one
//!   launch never communicate (see the invariant on [`Kernel`]).
//!
//! Either engine serves both scalar and warp-batched kernels: a kernel's
//! `run_block` may record accesses one lane at a time
//! ([`BlockCtx::ld_global`] etc.) or one warp-row per instruction
//! ([`BlockCtx::ld_global_row`] etc., the warp evaluator's shape). The
//! streaming accounting engine groups accesses by
//! `(site, kind, occurrence, warp)` and its collapse contributions
//! commute, so counters depend only on each lane's own access sequence,
//! never on cross-lane arrival order — row-batched and lane-at-a-time
//! recording produce bit-identical [`KernelStats`].
//!
//! Repeated identical launches inside figure sweeps can additionally be
//! memoized with [`LaunchCache`].

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

use crate::accounting::{BlockScratch, ScratchPool};
use crate::faults::{Fault, LaunchControl, LaunchError};
use crate::kernel::{BlockCounters, BlockCtx, Kernel, LaunchConfig};
use crate::mem::GlobalMem;
use crate::spec::DeviceSpec;

/// How much of the grid to execute and to record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Execute and record every block — exact functional output and exact
    /// statistics. Use in correctness tests.
    Full,
    /// Execute every block (exact output) but record statistics on at most
    /// this many evenly-spaced blocks, scaling counters to the full grid.
    /// The sample size must be at least 1; zero is rejected at launch.
    SampledStats(u32),
    /// Execute and record only this many evenly-spaced blocks; the rest of
    /// the output is left unwritten. Use in timing-only sweeps where the
    /// workload is data-independent. The sample size must be at least 1;
    /// zero is rejected at launch.
    SampledExec(u32),
}

impl ExecMode {
    /// Reasonable default for figure harnesses.
    pub fn default_sampled() -> ExecMode {
        ExecMode::SampledExec(512)
    }
}

/// Which engine drives the block loop of a launch.
///
/// Both engines produce **identical** functional output and identical
/// [`KernelStats`]; `Parallel` only changes host wall-clock. Tests that
/// want a pinned, single-threaded execution order should use `Serial`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecPolicy {
    /// One host thread, blocks in index order.
    Serial,
    /// Up to this many workers over contiguous block ranges. `Parallel(0)`
    /// and `Parallel(1)` degrade to the serial engine.
    Parallel(usize),
}

impl ExecPolicy {
    /// Parallel engine sized to the host
    /// (`std::thread::available_parallelism`).
    pub fn auto() -> ExecPolicy {
        ExecPolicy::Parallel(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Worker count this policy resolves to.
    pub fn workers(&self) -> usize {
        match self {
            ExecPolicy::Serial => 1,
            ExecPolicy::Parallel(n) => (*n).max(1),
        }
    }
}

/// Aggregated, scaled statistics of one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    /// Kernel name. `Arc<str>` so reports and memoization caches clone
    /// stats without re-allocating the name in every sweep iteration.
    pub name: Arc<str>,
    /// Launch geometry.
    pub config: LaunchConfig,
    /// Scaled whole-grid counters.
    pub totals: ScaledCounters,
    /// Blocks whose counters were recorded.
    pub recorded_blocks: u32,
    /// Blocks functionally executed.
    pub executed_blocks: u32,
}

/// Whole-grid counters, scaled from the recorded sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScaledCounters {
    pub warp_load_insts: f64,
    pub warp_store_insts: f64,
    pub load_transactions: f64,
    pub store_transactions: f64,
    pub warp_compute_insts: f64,
    pub shared_insts: f64,
    pub shared_cycles: f64,
    pub syncs: f64,
    pub flops: f64,
}

impl ScaledCounters {
    fn from_counters(c: &BlockCounters, scale: f64) -> ScaledCounters {
        ScaledCounters {
            warp_load_insts: c.warp_load_insts as f64 * scale,
            warp_store_insts: c.warp_store_insts as f64 * scale,
            load_transactions: c.load_transactions as f64 * scale,
            store_transactions: c.store_transactions as f64 * scale,
            warp_compute_insts: c.warp_compute_insts as f64 * scale,
            shared_insts: c.shared_insts as f64 * scale,
            shared_cycles: c.shared_cycles as f64 * scale,
            syncs: c.syncs as f64 * scale,
            flops: c.flops as f64 * scale,
        }
    }

    /// Warp-level global memory instructions (loads + stores).
    pub fn warp_mem_insts(&self) -> f64 {
        self.warp_load_insts + self.warp_store_insts
    }

    /// Global memory transactions (loads + stores).
    pub fn transactions(&self) -> f64 {
        self.load_transactions + self.store_transactions
    }

    /// Average transactions per warp memory instruction: 1.0 means fully
    /// coalesced, `warp_size` means fully scattered.
    pub fn transactions_per_mem_inst(&self) -> f64 {
        let insts = self.warp_mem_insts();
        if insts == 0.0 {
            0.0
        } else {
            self.transactions() / insts
        }
    }
}

impl KernelStats {
    /// Total warps in the grid for the given warp width.
    pub fn warps_in_grid(&self, warp_size: u32) -> f64 {
        self.config.grid_dim as f64 * self.config.block_dim.div_ceil(warp_size) as f64
    }

    /// Sanity gate over the counters: every total must be finite and
    /// non-negative, and the block tallies must be consistent with the
    /// grid. A launch whose stats fail this gate is treated as failed
    /// (see [`LaunchError::CorruptStats`]) — this is what catches an
    /// injected [`Fault::StatCorruption`], and what would catch a garbage
    /// counter readback on real hardware.
    pub fn sanity_check(&self) -> Result<(), String> {
        let t = &self.totals;
        let fields = [
            ("warp_load_insts", t.warp_load_insts),
            ("warp_store_insts", t.warp_store_insts),
            ("load_transactions", t.load_transactions),
            ("store_transactions", t.store_transactions),
            ("warp_compute_insts", t.warp_compute_insts),
            ("shared_insts", t.shared_insts),
            ("shared_cycles", t.shared_cycles),
            ("syncs", t.syncs),
            ("flops", t.flops),
        ];
        for (name, v) in fields {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} = {v}"));
            }
        }
        if self.recorded_blocks == 0 || self.executed_blocks == 0 {
            return Err(format!(
                "no blocks recorded ({}/{} recorded/executed)",
                self.recorded_blocks, self.executed_blocks
            ));
        }
        Ok(())
    }
}

/// Which blocks to include in an evenly-spaced sample of size `sample`.
/// Zero-sized samples are rejected earlier, in [`validate`].
fn sample_stride(grid: u32, sample: u32) -> u32 {
    debug_assert!(sample > 0, "zero sample rejected at validate()");
    grid.div_ceil(sample.min(grid)).max(1)
}

/// Execute `kernel` on `device`/`mem` under `mode` with the serial engine.
///
/// Returns whole-grid statistics; functional effects are visible in `mem`
/// (for all blocks under [`ExecMode::Full`]/[`ExecMode::SampledStats`], or
/// the sampled subset under [`ExecMode::SampledExec`]).
///
/// # Panics
///
/// Panics if the launch configuration is impossible for the device (block
/// larger than `max_threads_per_block`, zero-sized grid/block, more
/// shared memory than a block may allocate, or a zero-sized statistics
/// sample) — mirroring a CUDA launch failure.
pub fn launch(
    device: &DeviceSpec,
    mem: &mut GlobalMem,
    kernel: &dyn Kernel,
    mode: ExecMode,
) -> KernelStats {
    let (config, exec_stride, stat_stride) = validate(device, kernel, mode);
    let mut scratch = BlockScratch::new();
    let (merged, recorded, executed) = run_serial(
        device,
        mem,
        kernel,
        config,
        (exec_stride, stat_stride),
        &mut scratch,
        None,
    );
    finish(kernel, config, merged, recorded, executed)
}

/// Execute `kernel` under `mode` with the engine chosen by `policy`.
///
/// Functional output and [`KernelStats`] are identical to [`launch`] for
/// every policy; [`ExecPolicy::Parallel`] only reduces host wall-clock.
/// Requires `Kernel + Sync` because block execution may be distributed
/// over scoped worker threads.
///
/// # Panics
///
/// Same launch-validation panics as [`launch`].
pub fn launch_with_policy(
    device: &DeviceSpec,
    mem: &mut GlobalMem,
    kernel: &(dyn Kernel + Sync),
    mode: ExecMode,
    policy: ExecPolicy,
) -> KernelStats {
    launch_pooled(device, mem, kernel, mode, policy, &ScratchPool::new())
}

/// [`launch_with_policy`] drawing its per-worker [`BlockScratch`] arenas
/// from `pool`, so accounting buffers are recycled across the launches of
/// a sweep instead of reallocated per launch.
///
/// # Panics
///
/// Same launch-validation panics as [`launch`].
pub fn launch_pooled(
    device: &DeviceSpec,
    mem: &mut GlobalMem,
    kernel: &(dyn Kernel + Sync),
    mode: ExecMode,
    policy: ExecPolicy,
    pool: &ScratchPool,
) -> KernelStats {
    match try_launch_pooled(
        device,
        mem,
        kernel,
        mode,
        policy,
        pool,
        LaunchControl::default(),
    ) {
        Ok(stats) => stats,
        // Without an injector the only reachable failure is a genuine
        // worker panic; re-raise it so the infallible API keeps its
        // historical panic-on-kernel-panic contract.
        Err(e) => panic!("launch failed: {e}"),
    }
}

/// Extract a human-readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fallible [`launch_pooled`]: the engine the resilient runtime pipeline
/// builds on.
///
/// Differences from the infallible launchers:
///
/// * **Panic isolation** — a panicking block worker (kernel assert, or an
///   injected [`Fault::MidBlockPanic`]) is caught with `catch_unwind` and
///   reported as [`LaunchError::WorkerPanic`] instead of unwinding through
///   the caller. Device memory may hold a partial write set; kernels never
///   read their output buffers, so a retry recomputes identical bytes.
/// * **Fault injection** — `ctl.faults`, when present, is consulted once
///   at the start of the attempt and the returned [`Fault`] is acted out.
/// * **Deadline budget** — with `ctl.deadline` set, an attempt whose host
///   wall-clock exceeds the budget reports
///   [`LaunchError::DeadlineExceeded`] (post-hoc watchdog); an injected
///   [`Fault::Hang`] reports the same without executing.
/// * **Stats sanity gate** — completed launches run
///   [`KernelStats::sanity_check`]; corrupt counters (injected or real)
///   surface as [`LaunchError::CorruptStats`] rather than poisoning
///   downstream caches and cost models.
///
/// # Panics
///
/// Launch *validation* still panics ([`launch`]'s contract): an impossible
/// configuration is a programming error, not a runtime fault.
pub fn try_launch_pooled(
    device: &DeviceSpec,
    mem: &mut GlobalMem,
    kernel: &(dyn Kernel + Sync),
    mode: ExecMode,
    policy: ExecPolicy,
    pool: &ScratchPool,
    ctl: LaunchControl<'_>,
) -> Result<KernelStats, LaunchError> {
    let (config, exec_stride, stat_stride) = validate(device, kernel, mode);
    // Number of blocks the stride actually executes.
    let n_exec = config.grid_dim.div_ceil(exec_stride);

    let fault = ctl.faults.and_then(|f| f.on_launch(kernel.name()));
    let mut panic_at: Option<u32> = None;
    let mut corrupt = false;
    match fault {
        Some(Fault::LaunchReject) => return Err(LaunchError::Rejected),
        Some(Fault::Hang) => {
            // The simulated watchdog: the grid never completes, the driver
            // kills it once the budget elapses.
            return Err(LaunchError::DeadlineExceeded {
                elapsed_us: ctl.deadline.map(|d| d.as_micros() as u64).unwrap_or(0),
                budget_us: ctl.deadline.map(|d| d.as_micros() as u64).unwrap_or(0),
            });
        }
        Some(Fault::DegradedSm { remaining_sms }) => {
            return Err(LaunchError::DeviceDegraded { remaining_sms });
        }
        Some(Fault::MidBlockPanic { after_blocks }) => {
            panic_at = Some(after_blocks % n_exec);
        }
        Some(Fault::StatCorruption) => corrupt = true,
        None => {}
    }

    let start = Instant::now();
    let workers = policy.workers().min(n_exec as usize).max(1);
    let (merged, recorded, executed) = if workers == 1 {
        // Serial engine, panic-isolated. The scratch is moved into the
        // closure; on a panic it is simply dropped instead of returned to
        // the pool (its per-block state is mid-flight and must not be
        // recycled).
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            let mut scratch = pool.take();
            let out = run_serial(
                device,
                mem,
                kernel,
                config,
                (exec_stride, stat_stride),
                &mut scratch,
                panic_at,
            );
            pool.give(scratch);
            out
        }));
        match result {
            Ok(out) => out,
            Err(payload) => {
                return Err(LaunchError::WorkerPanic {
                    message: panic_message(payload),
                })
            }
        }
    } else {
        // Contiguous executed-block ranges, one per worker: worker w
        // executes blocks with executed-index in
        // [w*chunk, min((w+1)*chunk, n_exec)).
        let chunk = n_exec.div_ceil(workers as u32);
        let view = mem.shared_view();
        let mut results: Vec<(BlockCounters, u32, u32)> = Vec::with_capacity(workers);
        let mut panicked: Option<String> = None;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers as u32 {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n_exec);
                let view = &view;
                handles.push(scope.spawn(move || {
                    // Each worker owns one scratch for its whole block range.
                    let mut scratch = pool.take();
                    let mut merged = BlockCounters::default();
                    let mut recorded = 0u32;
                    let mut executed = 0u32;
                    for i in lo..hi {
                        if panic_at == Some(i) {
                            panic!("injected fault: mid-block panic at executed block {i}");
                        }
                        let block = i * exec_stride;
                        let record = block.is_multiple_of(stat_stride);
                        let mut ctx =
                            BlockCtx::new_shared(device, view, block, config, record, &mut scratch);
                        kernel.run_block(block, &mut ctx);
                        let counters = ctx.finalize();
                        if record {
                            merged.merge(&counters);
                            recorded += 1;
                        }
                        executed += 1;
                    }
                    pool.give(scratch);
                    (merged, recorded, executed)
                }));
            }
            // Joining in spawn order == block-index order (ranges are
            // contiguous and ascending), so the merge below is
            // deterministic. A panicking worker is isolated here: its
            // payload is recorded and the launch rolls up as failed after
            // every sibling has joined.
            for h in handles {
                match h.join() {
                    Ok(r) => results.push(r),
                    Err(payload) => panicked = Some(panic_message(payload)),
                }
            }
        });
        drop(view);
        if let Some(message) = panicked {
            return Err(LaunchError::WorkerPanic { message });
        }

        let mut merged = BlockCounters::default();
        let mut recorded = 0u32;
        let mut executed = 0u32;
        for (c, r, e) in &results {
            merged.merge(c);
            recorded += r;
            executed += e;
        }
        (merged, recorded, executed)
    };

    if let Some(budget) = ctl.deadline {
        let elapsed = start.elapsed();
        if elapsed > budget {
            return Err(LaunchError::DeadlineExceeded {
                elapsed_us: elapsed.as_micros() as u64,
                budget_us: budget.as_micros() as u64,
            });
        }
    }

    let mut stats = finish(kernel, config, merged, recorded, executed);
    if corrupt {
        // Transient counter-readback corruption: poison the totals so the
        // sanity gate below rejects them, exactly as a garbage DMA would.
        stats.totals.flops = f64::NAN;
        stats.totals.load_transactions = -1.0;
    }
    stats
        .sanity_check()
        .map_err(|detail| LaunchError::CorruptStats { detail })?;
    Ok(stats)
}

/// Validate the launch against device limits and resolve the sampling
/// strides for `mode`.
fn validate(
    device: &DeviceSpec,
    kernel: &(impl Kernel + ?Sized),
    mode: ExecMode,
) -> (LaunchConfig, u32, u32) {
    let config = kernel.config();
    assert!(config.grid_dim > 0, "launch with empty grid");
    assert!(config.block_dim > 0, "launch with empty block");
    assert!(
        config.block_dim <= device.max_threads_per_block,
        "block of {} threads exceeds device limit {}",
        config.block_dim,
        device.max_threads_per_block
    );
    assert!(
        config.shared_words <= device.shared_words_per_block,
        "shared allocation of {} words exceeds device limit {}",
        config.shared_words,
        device.shared_words_per_block
    );
    if let ExecMode::SampledStats(s) | ExecMode::SampledExec(s) = mode {
        assert!(
            s > 0,
            "launch with zero-sized sample ({mode:?}): sampled modes must \
             record at least one block"
        );
    }

    let (exec_stride, stat_stride) = match mode {
        ExecMode::Full => (1, 1),
        ExecMode::SampledStats(s) => (1, sample_stride(config.grid_dim, s)),
        ExecMode::SampledExec(s) => {
            let st = sample_stride(config.grid_dim, s);
            (st, st)
        }
    };
    (config, exec_stride, stat_stride)
}

/// Serial block loop over the whole grid, merging counters in block order.
/// `scratch` is reset and reused for every block.
fn run_serial(
    device: &DeviceSpec,
    mem: &mut GlobalMem,
    kernel: &(impl Kernel + ?Sized),
    config: LaunchConfig,
    (exec_stride, stat_stride): (u32, u32),
    scratch: &mut BlockScratch,
    panic_at: Option<u32>,
) -> (BlockCounters, u32, u32) {
    let n_exec = config.grid_dim.div_ceil(exec_stride);
    let mut merged = BlockCounters::default();
    let mut recorded = 0u32;
    let mut executed = 0u32;
    for i in 0..n_exec {
        if panic_at == Some(i) {
            panic!("injected fault: mid-block panic at executed block {i}");
        }
        let block = i * exec_stride;
        let record = block.is_multiple_of(stat_stride);
        let mut ctx = BlockCtx::new(device, mem, block, config, record, scratch);
        kernel.run_block(block, &mut ctx);
        let counters = ctx.finalize();
        if record {
            merged.merge(&counters);
            recorded += 1;
        }
        executed += 1;
        // When exec_stride > stat_stride is impossible (they are equal in
        // SampledExec), so no recorded block is ever skipped.
    }
    (merged, recorded, executed)
}

/// Intern a kernel name: every launch of a kernel hands back the *same*
/// `Arc<str>`, so the per-launch stats path performs no name allocation
/// after a kernel's first launch. Kernel names are static-ish labels (one
/// per generated kernel), so the interner stays small for the life of the
/// process.
fn intern_name(name: &str) -> Arc<str> {
    static NAMES: OnceLock<Mutex<HashMap<String, Arc<str>>>> = OnceLock::new();
    let names = NAMES.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = names.lock().unwrap();
    if let Some(interned) = guard.get(name) {
        return interned.clone();
    }
    let interned: Arc<str> = Arc::from(name);
    guard.insert(name.to_string(), interned.clone());
    interned
}

/// Scale merged counters into whole-grid [`KernelStats`].
fn finish(
    kernel: &(impl Kernel + ?Sized),
    config: LaunchConfig,
    merged: BlockCounters,
    recorded: u32,
    executed: u32,
) -> KernelStats {
    let scale = config.grid_dim as f64 / recorded.max(1) as f64;
    KernelStats {
        name: intern_name(kernel.name()),
        config,
        totals: ScaledCounters::from_counters(&merged, scale),
        recorded_blocks: recorded,
        executed_blocks: executed,
    }
}

/// Key of one memoizable launch: the device, the kernel's identity and
/// geometry, the caller-supplied input-dimension fingerprint, and the
/// execution mode.
///
/// Data *values* are deliberately not part of the key: memoization is meant
/// for timing sweeps over data-independent workloads (the only place the
/// harnesses re-launch identical configurations), where statistics depend
/// on shapes, not values. The device *is* part of the key — counters
/// depend on warp width, transaction geometry and bank count, so stats
/// recorded on one [`DeviceSpec`] must never serve a launch on another.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LaunchKey {
    /// Device fingerprint ([`DeviceSpec::fingerprint`]).
    pub device: u64,
    /// Kernel name.
    pub name: Arc<str>,
    /// Launch geometry.
    pub config: LaunchConfig,
    /// Caller-defined input dimensions (e.g. `(rows, cols)` or `(n, 0)`).
    pub dims: (u64, u64),
    /// Execution mode the stats were collected under.
    pub mode: ExecMode,
}

/// A launch-statistics memoization layer the runtime can route launches
/// through. Implemented by the single-map [`LaunchCache`] and the
/// lock-striped [`crate::ShardedLaunchCache`]; the runtime only sees this
/// trait, so callers pick the concurrency profile they need.
pub trait StatsCache: Sync {
    /// Launch through the cache: on a hit return the memoized stats (the
    /// kernel is *not* executed, `mem` is untouched); on a miss execute
    /// with `policy`, memoize, and return. The boolean is `true` on a hit.
    ///
    /// Failed launches (see [`try_launch_pooled`] and `ctl`) are **never**
    /// memoized — a transient fault must not serve poisoned stats to later
    /// callers — and are reported as `Err` without touching the cache.
    #[allow(clippy::too_many_arguments)]
    fn launch_cached(
        &self,
        device: &DeviceSpec,
        mem: &mut GlobalMem,
        kernel: &(dyn Kernel + Sync),
        mode: ExecMode,
        policy: ExecPolicy,
        dims: (u64, u64),
        pool: &ScratchPool,
        ctl: LaunchControl<'_>,
    ) -> Result<(KernelStats, bool), LaunchError>;

    /// Lookups served from the cache so far.
    fn hit_count(&self) -> u64;

    /// Lookups that had to execute so far.
    fn miss_count(&self) -> u64;

    /// Memoized entries dropped to respect a capacity bound (0 for
    /// unbounded caches).
    fn eviction_count(&self) -> u64;
}

/// Memoization cache of [`KernelStats`] for repeated identical launches.
///
/// Figure sweeps re-simulate the same baseline/variant configuration many
/// times (same kernel, same geometry, same input dims, same mode); a hit
/// returns the cached stats **without executing the kernel**, so device
/// memory is *not* written. Use it only for timing-only sweeps where
/// outputs are discarded ([`ExecMode::SampledExec`]-style usage); never in
/// correctness tests.
#[derive(Debug, Default)]
pub struct LaunchCache {
    map: Mutex<HashMap<LaunchKey, KernelStats>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl LaunchCache {
    /// An empty cache.
    pub fn new() -> LaunchCache {
        LaunchCache::default()
    }

    /// Launch through the cache: on a hit return the memoized stats (the
    /// kernel is *not* executed, `mem` is untouched); on a miss execute
    /// with `policy` and memoize. The boolean is `true` on a hit.
    pub fn launch(
        &self,
        device: &DeviceSpec,
        mem: &mut GlobalMem,
        kernel: &(dyn Kernel + Sync),
        mode: ExecMode,
        policy: ExecPolicy,
        dims: (u64, u64),
    ) -> (KernelStats, bool) {
        self.launch_pooled(device, mem, kernel, mode, policy, dims, &ScratchPool::new())
    }

    /// [`LaunchCache::launch`] drawing accounting scratch from `pool` on
    /// misses (see [`launch_pooled`]).
    #[allow(clippy::too_many_arguments)]
    pub fn launch_pooled(
        &self,
        device: &DeviceSpec,
        mem: &mut GlobalMem,
        kernel: &(dyn Kernel + Sync),
        mode: ExecMode,
        policy: ExecPolicy,
        dims: (u64, u64),
        pool: &ScratchPool,
    ) -> (KernelStats, bool) {
        match self.try_launch_pooled(
            device,
            mem,
            kernel,
            mode,
            policy,
            dims,
            pool,
            LaunchControl::default(),
        ) {
            Ok(out) => out,
            Err(e) => panic!("launch failed: {e}"),
        }
    }

    /// Fallible [`LaunchCache::launch_pooled`] honoring a
    /// [`LaunchControl`]. Failed launches are not memoized. Lock poisoning
    /// is recovered: the map only ever holds *completed* entries, so a
    /// panic elsewhere never leaves it half-written.
    #[allow(clippy::too_many_arguments)]
    pub fn try_launch_pooled(
        &self,
        device: &DeviceSpec,
        mem: &mut GlobalMem,
        kernel: &(dyn Kernel + Sync),
        mode: ExecMode,
        policy: ExecPolicy,
        dims: (u64, u64),
        pool: &ScratchPool,
        ctl: LaunchControl<'_>,
    ) -> Result<(KernelStats, bool), LaunchError> {
        let key = launch_key(device, kernel, mode, dims);
        if let Some(stats) = self
            .map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((stats.clone(), true));
        }
        let stats = try_launch_pooled(device, mem, kernel, mode, policy, pool, ctl)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, stats.clone());
        Ok((stats, false))
    }

    /// Number of lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to execute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of memoized launches.
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fraction of lookups served from the cache (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits() as f64, self.misses() as f64);
        if h + m > 0.0 {
            h / (h + m)
        } else {
            0.0
        }
    }
}

impl StatsCache for LaunchCache {
    fn launch_cached(
        &self,
        device: &DeviceSpec,
        mem: &mut GlobalMem,
        kernel: &(dyn Kernel + Sync),
        mode: ExecMode,
        policy: ExecPolicy,
        dims: (u64, u64),
        pool: &ScratchPool,
        ctl: LaunchControl<'_>,
    ) -> Result<(KernelStats, bool), LaunchError> {
        self.try_launch_pooled(device, mem, kernel, mode, policy, dims, pool, ctl)
    }

    fn hit_count(&self) -> u64 {
        self.hits()
    }

    fn miss_count(&self) -> u64 {
        self.misses()
    }

    fn eviction_count(&self) -> u64 {
        0
    }
}

/// Build the [`LaunchKey`] of one launch (shared by every [`StatsCache`]
/// implementation so all caches agree on what identifies a launch).
pub(crate) fn launch_key(
    device: &DeviceSpec,
    kernel: &(dyn Kernel + Sync),
    mode: ExecMode,
    dims: (u64, u64),
) -> LaunchKey {
    LaunchKey {
        device: device.fingerprint(),
        name: intern_name(kernel.name()),
        config: kernel.config(),
        dims,
        mode,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::BlockCtx;
    use crate::mem::BufId;

    /// y[i] = 2 * x[i], one thread per element.
    struct Scale2 {
        x: BufId,
        y: BufId,
        n: usize,
        block_dim: u32,
    }

    impl Kernel for Scale2 {
        fn name(&self) -> &str {
            "scale2"
        }

        fn config(&self) -> LaunchConfig {
            let grid = (self.n as u32).div_ceil(self.block_dim);
            LaunchConfig::new(grid, self.block_dim, 0)
        }

        fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
            for t in ctx.threads() {
                let i = (block * ctx.block_dim() + t) as usize;
                if i < self.n {
                    let v = ctx.ld_global(0, t, self.x, i);
                    ctx.st_global(1, t, self.y, i, 2.0 * v);
                    ctx.compute(t, 1);
                    ctx.count_flops(1);
                }
            }
        }
    }

    #[test]
    fn full_execution_is_functionally_correct() {
        let d = DeviceSpec::tesla_c2050();
        let mut mem = GlobalMem::new();
        let data: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let x = mem.alloc_from(&data);
        let y = mem.alloc(1000);
        let k = Scale2 {
            x,
            y,
            n: 1000,
            block_dim: 128,
        };
        let stats = launch(&d, &mut mem, &k, ExecMode::Full);
        assert_eq!(stats.executed_blocks, 8);
        assert_eq!(stats.recorded_blocks, 8);
        for (i, v) in mem.read(y).iter().enumerate() {
            assert_eq!(*v, 2.0 * i as f32);
        }
        // 1000 loads fully coalesced: ceil-per-warp transactions.
        assert!(stats.totals.transactions_per_mem_inst() <= 1.01);
        assert_eq!(stats.totals.flops, 1000.0);
    }

    #[test]
    fn sampled_stats_scale_to_full_grid() {
        let d = DeviceSpec::tesla_c2050();
        let mut mem = GlobalMem::new();
        let n = 128 * 64;
        let x = mem.alloc(n);
        let y = mem.alloc(n);
        let k = Scale2 {
            x,
            y,
            n,
            block_dim: 128,
        };
        let full = launch(&d, &mut mem, &k, ExecMode::Full);
        let sampled = launch(&d, &mut mem, &k, ExecMode::SampledStats(8));
        assert_eq!(sampled.executed_blocks, 64);
        assert_eq!(sampled.recorded_blocks, 8);
        // Uniform workload: scaled counters match the exact ones.
        assert!((sampled.totals.load_transactions - full.totals.load_transactions).abs() < 1e-9);
        assert!((sampled.totals.flops - full.totals.flops).abs() < 1e-9);
    }

    #[test]
    fn sampled_exec_executes_subset() {
        let d = DeviceSpec::tesla_c2050();
        let mut mem = GlobalMem::new();
        let n = 128 * 64;
        let x = mem.alloc_from(&vec![1.0; n]);
        let y = mem.alloc(n);
        let k = Scale2 {
            x,
            y,
            n,
            block_dim: 128,
        };
        let s = launch(&d, &mut mem, &k, ExecMode::SampledExec(8));
        assert_eq!(s.executed_blocks, 8);
        // Block 0 was executed; its outputs are written.
        assert_eq!(mem.read(y)[0], 2.0);
        // Counters still describe the whole grid.
        assert_eq!(s.totals.flops, n as f64);
    }

    #[test]
    #[should_panic(expected = "exceeds device limit")]
    fn oversized_block_panics() {
        let d = DeviceSpec::gtx285();
        let mut mem = GlobalMem::new();
        let x = mem.alloc(1024);
        let y = mem.alloc(1024);
        let k = Scale2 {
            x,
            y,
            n: 1024,
            block_dim: 1024, // > 512 on GTX 285
        };
        let _ = launch(&d, &mut mem, &k, ExecMode::Full);
    }

    #[test]
    fn parallel_policy_matches_serial_exactly() {
        let d = DeviceSpec::tesla_c2050();
        for mode in [
            ExecMode::Full,
            ExecMode::SampledStats(8),
            ExecMode::SampledExec(8),
        ] {
            let n = 128 * 37; // non-power-of-two block count
            let data: Vec<f32> = (0..n).map(|i| (i % 17) as f32).collect();

            let mut mem_s = GlobalMem::new();
            let x = mem_s.alloc_from(&data);
            let y = mem_s.alloc(n);
            let k = Scale2 {
                x,
                y,
                n,
                block_dim: 128,
            };
            let serial = launch(&d, &mut mem_s, &k, mode);

            for workers in [2usize, 3, 8] {
                let mut mem_p = GlobalMem::new();
                let x = mem_p.alloc_from(&data);
                let y = mem_p.alloc(n);
                let k = Scale2 {
                    x,
                    y,
                    n,
                    block_dim: 128,
                };
                let parallel =
                    launch_with_policy(&d, &mut mem_p, &k, mode, ExecPolicy::Parallel(workers));
                assert_eq!(serial, parallel, "mode {mode:?}, {workers} workers");
                assert_eq!(mem_s.read(y), mem_p.read(y), "mode {mode:?}");
            }
        }
    }

    #[test]
    fn parallel_degrades_to_serial_for_tiny_grids() {
        let d = DeviceSpec::tesla_c2050();
        let mut mem = GlobalMem::new();
        let x = mem.alloc_from(&[1.0, 2.0, 3.0]);
        let y = mem.alloc(3);
        let k = Scale2 {
            x,
            y,
            n: 3,
            block_dim: 128,
        }; // 1 block
        let s = launch_with_policy(&d, &mut mem, &k, ExecMode::Full, ExecPolicy::Parallel(16));
        assert_eq!(s.executed_blocks, 1);
        assert_eq!(mem.read(y), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn policy_workers_resolution() {
        assert_eq!(ExecPolicy::Serial.workers(), 1);
        assert_eq!(ExecPolicy::Parallel(0).workers(), 1);
        assert_eq!(ExecPolicy::Parallel(6).workers(), 6);
        assert!(ExecPolicy::auto().workers() >= 1);
    }

    #[test]
    fn cache_hits_skip_execution_and_count() {
        let d = DeviceSpec::tesla_c2050();
        let cache = LaunchCache::new();
        let n = 1024usize;

        let mut mem = GlobalMem::new();
        let x = mem.alloc_from(&vec![1.0; n]);
        let y = mem.alloc(n);
        let k = Scale2 {
            x,
            y,
            n,
            block_dim: 128,
        };
        let (first, hit) = cache.launch(
            &d,
            &mut mem,
            &k,
            ExecMode::Full,
            ExecPolicy::Serial,
            (n as u64, 0),
        );
        assert!(!hit);
        assert_eq!(mem.read(y)[5], 2.0);

        // Identical launch in fresh memory: served from cache, memory
        // untouched.
        let mut mem2 = GlobalMem::new();
        let x = mem2.alloc_from(&vec![1.0; n]);
        let y = mem2.alloc(n);
        let k = Scale2 {
            x,
            y,
            n,
            block_dim: 128,
        };
        let (second, hit) = cache.launch(
            &d,
            &mut mem2,
            &k,
            ExecMode::Full,
            ExecPolicy::Serial,
            (n as u64, 0),
        );
        assert!(hit);
        assert_eq!(first, second);
        assert_eq!(mem2.read(y)[5], 0.0, "hit must not execute");

        // Different dims or mode miss.
        let (_, hit) = cache.launch(
            &d,
            &mut mem2,
            &k,
            ExecMode::Full,
            ExecPolicy::Serial,
            (n as u64, 1),
        );
        assert!(!hit);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
        assert!((cache.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stride_computation() {
        assert_eq!(sample_stride(100, 10), 10);
        assert_eq!(sample_stride(7, 10), 1);
        assert_eq!(sample_stride(1, 1), 1);
    }

    #[test]
    #[should_panic(expected = "zero-sized sample")]
    fn zero_sampled_stats_is_rejected() {
        let d = DeviceSpec::tesla_c2050();
        let mut mem = GlobalMem::new();
        let x = mem.alloc(128);
        let y = mem.alloc(128);
        let k = Scale2 {
            x,
            y,
            n: 128,
            block_dim: 128,
        };
        let _ = launch(&d, &mut mem, &k, ExecMode::SampledStats(0));
    }

    #[test]
    #[should_panic(expected = "zero-sized sample")]
    fn zero_sampled_exec_is_rejected() {
        let d = DeviceSpec::tesla_c2050();
        let mut mem = GlobalMem::new();
        let x = mem.alloc(128);
        let y = mem.alloc(128);
        let k = Scale2 {
            x,
            y,
            n: 128,
            block_dim: 128,
        };
        let _ = launch(&d, &mut mem, &k, ExecMode::SampledExec(0));
    }

    #[test]
    fn kernel_names_are_interned_across_launches() {
        let d = DeviceSpec::tesla_c2050();
        let mut mem = GlobalMem::new();
        let x = mem.alloc(256);
        let y = mem.alloc(256);
        let k = Scale2 {
            x,
            y,
            n: 256,
            block_dim: 128,
        };
        let a = launch(&d, &mut mem, &k, ExecMode::Full);
        let b = launch(&d, &mut mem, &k, ExecMode::Full);
        assert!(
            Arc::ptr_eq(&a.name, &b.name),
            "repeated launches must share one interned name"
        );
    }

    /// Shared-memory kernel whose bank-conflict accounting depends on the
    /// device (32 banks on Fermi, 16 on GT200).
    struct SharedStride2;

    impl Kernel for SharedStride2 {
        fn name(&self) -> &str {
            "shared_stride2"
        }

        fn config(&self) -> LaunchConfig {
            LaunchConfig::new(1, 32, 64)
        }

        fn run_block(&self, _block: u32, ctx: &mut BlockCtx<'_>) {
            for t in ctx.threads() {
                ctx.st_shared(0, t, (t as usize * 2) % 64, t as f32);
            }
        }
    }

    #[test]
    fn cache_keys_include_the_device() {
        // Regression: stats recorded on one device must not serve a
        // launch on another — 32-bank Fermi and 16-bank GT200 disagree on
        // shared-memory serialization for the same kernel.
        let fermi = DeviceSpec::tesla_c2050();
        let gt200 = DeviceSpec::gtx285();
        let cache = LaunchCache::new();
        let mut mem = GlobalMem::new();
        let (on_fermi, hit) = cache.launch(
            &fermi,
            &mut mem,
            &SharedStride2,
            ExecMode::Full,
            ExecPolicy::Serial,
            (0, 0),
        );
        assert!(!hit);
        let (on_gt200, hit) = cache.launch(
            &gt200,
            &mut mem,
            &SharedStride2,
            ExecMode::Full,
            ExecPolicy::Serial,
            (0, 0),
        );
        assert!(!hit, "different device must miss, not reuse stats");
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
        // Stride-2: 2-way conflicts on 32 banks, still 2-way on 16 banks
        // but over different words — counters genuinely differ.
        assert_ne!(on_fermi.totals.shared_cycles, on_gt200.totals.shared_cycles);
        // Same device again: now it hits.
        let (_, hit) = cache.launch(
            &fermi,
            &mut mem,
            &SharedStride2,
            ExecMode::Full,
            ExecPolicy::Serial,
            (0, 0),
        );
        assert!(hit);
    }

    #[test]
    fn pooled_launches_recycle_scratch() {
        let d = DeviceSpec::tesla_c2050();
        let pool = ScratchPool::new();
        let mut mem = GlobalMem::new();
        let x = mem.alloc_from(&vec![1.0; 1024]);
        let y = mem.alloc(1024);
        let k = Scale2 {
            x,
            y,
            n: 1024,
            block_dim: 128,
        };
        let baseline = launch(&d, &mut mem, &k, ExecMode::Full);
        for _ in 0..3 {
            let s = launch_pooled(&d, &mut mem, &k, ExecMode::Full, ExecPolicy::Serial, &pool);
            assert_eq!(s, baseline);
        }
        assert_eq!(pool.idle(), 1, "serial launches share one scratch");
        let s = launch_pooled(
            &d,
            &mut mem,
            &k,
            ExecMode::Full,
            ExecPolicy::Parallel(4),
            &pool,
        );
        assert_eq!(s, baseline);
        // Every worker returns its scratch; a fast worker's scratch may be
        // re-taken by a late-starting one, so the idle count lands anywhere
        // in [1, workers].
        let idle = pool.idle();
        assert!(
            (1..=4).contains(&idle),
            "workers must return scratches, got {idle}"
        );
    }

    /// Injector that returns the same fault on every consult.
    #[derive(Debug)]
    struct Always(Fault);

    impl crate::faults::FaultInjector for Always {
        fn on_launch(&self, _: &str) -> Option<Fault> {
            Some(self.0)
        }
    }

    fn scale2_setup(n: usize) -> (DeviceSpec, GlobalMem, Scale2) {
        let d = DeviceSpec::tesla_c2050();
        let mut mem = GlobalMem::new();
        let data: Vec<f32> = (0..n).map(|i| (i % 13) as f32).collect();
        let x = mem.alloc_from(&data);
        let y = mem.alloc(n);
        (
            d,
            mem,
            Scale2 {
                x,
                y,
                n,
                block_dim: 128,
            },
        )
    }

    fn try_launch(
        d: &DeviceSpec,
        mem: &mut GlobalMem,
        k: &Scale2,
        policy: ExecPolicy,
        ctl: LaunchControl<'_>,
    ) -> Result<KernelStats, LaunchError> {
        try_launch_pooled(d, mem, k, ExecMode::Full, policy, &ScratchPool::new(), ctl)
    }

    #[test]
    fn fault_free_try_launch_matches_infallible_launch() {
        let (d, mut mem_a, k_a) = scale2_setup(1024);
        let baseline = launch(&d, &mut mem_a, &k_a, ExecMode::Full);
        let (_, mut mem_b, k_b) = scale2_setup(1024);
        let stats = try_launch(
            &d,
            &mut mem_b,
            &k_b,
            ExecPolicy::Serial,
            LaunchControl::default(),
        )
        .expect("fault-free launch succeeds");
        assert_eq!(stats, baseline);
        assert_eq!(mem_a.read(k_a.y), mem_b.read(k_b.y));
    }

    #[test]
    fn injected_faults_surface_as_typed_errors() {
        let cases = [
            (Fault::LaunchReject, LaunchError::Rejected),
            (
                Fault::Hang,
                LaunchError::DeadlineExceeded {
                    elapsed_us: 0,
                    budget_us: 0,
                },
            ),
            (
                Fault::DegradedSm { remaining_sms: 2 },
                LaunchError::DeviceDegraded { remaining_sms: 2 },
            ),
        ];
        for (fault, want) in cases {
            let (d, mut mem, k) = scale2_setup(512);
            let before = mem.read(k.y).to_vec();
            let inj = Always(fault);
            let got = try_launch(
                &d,
                &mut mem,
                &k,
                ExecPolicy::Serial,
                LaunchControl::with_faults(&inj),
            );
            assert_eq!(got, Err(want), "fault {fault:?}");
            // Pre-execution faults leave device memory untouched.
            assert_eq!(mem.read(k.y), &before[..], "fault {fault:?}");
        }
    }

    #[test]
    fn corrupt_stats_are_gated_not_returned() {
        let (d, mut mem, k) = scale2_setup(512);
        let inj = Always(Fault::StatCorruption);
        let got = try_launch(
            &d,
            &mut mem,
            &k,
            ExecPolicy::Serial,
            LaunchControl::with_faults(&inj),
        );
        assert!(
            matches!(got, Err(LaunchError::CorruptStats { .. })),
            "got {got:?}"
        );
        // The grid did run (corruption is a readback fault), so a retry's
        // output is already in place and byte-identical to a clean run.
        let (_, mut mem_clean, k_clean) = scale2_setup(512);
        launch(&d, &mut mem_clean, &k_clean, ExecMode::Full);
        assert_eq!(mem.read(k.y), mem_clean.read(k_clean.y));
    }

    #[test]
    fn mid_block_panic_is_isolated_and_retry_is_bit_identical() {
        let (d, mut mem_clean, k_clean) = scale2_setup(128 * 10);
        let baseline = launch(&d, &mut mem_clean, &k_clean, ExecMode::Full);

        for policy in [ExecPolicy::Serial, ExecPolicy::Parallel(4)] {
            let (d, mut mem, k) = scale2_setup(128 * 10);
            let inj = Always(Fault::MidBlockPanic { after_blocks: 3 });
            let got = try_launch(&d, &mut mem, &k, policy, LaunchControl::with_faults(&inj));
            match got {
                Err(LaunchError::WorkerPanic { message }) => {
                    assert!(
                        message.contains("injected fault"),
                        "unexpected payload: {message}"
                    );
                }
                other => panic!("expected WorkerPanic under {policy:?}, got {other:?}"),
            }
            // Retry without the injector: the partially-written output
            // buffer is fully recomputed — stats and bytes match a run
            // that never faulted.
            let stats = try_launch(&d, &mut mem, &k, policy, LaunchControl::default())
                .expect("retry succeeds");
            assert_eq!(stats, baseline, "{policy:?}");
            assert_eq!(mem.read(k.y), mem_clean.read(k_clean.y), "{policy:?}");
        }
    }

    #[test]
    fn zero_deadline_reports_overrun() {
        let (d, mut mem, k) = scale2_setup(128 * 32);
        let ctl = LaunchControl {
            faults: None,
            deadline: Some(std::time::Duration::ZERO),
        };
        let got = try_launch(&d, &mut mem, &k, ExecPolicy::Serial, ctl);
        assert!(
            matches!(got, Err(LaunchError::DeadlineExceeded { .. })),
            "got {got:?}"
        );
    }
}
