//! Streaming warp-accounting engine.
//!
//! The per-access recorder is the wall-clock bottleneck of figure-scale
//! sweeps: every simulated load/store must be grouped into a warp
//! instruction and collapsed into transaction / bank-conflict counts.
//! The original recorder kept one `HashMap` entry per `(site, kind, tid)`
//! occurrence counter and one freshly-allocated `Vec<Option<u64>>` per
//! `(site, kind, occurrence, warp)` group — two hash lookups and an
//! amortized allocation per access, plus an end-of-block key sort.
//!
//! This engine replaces all of that with three ideas:
//!
//! * **Dense site tables.** Access sites are small static `u32`s (one per
//!   load/store instruction in the kernel source), so per-`(site, kind)`
//!   state lives in a flat `Vec` indexed by `site * 3 + kind`, grown on
//!   first touch. No hashing anywhere on the hot path.
//!
//! * **Eager per-warp coalescing.** Each warp keeps a short queue of
//!   *pending* lane-address rows, one per outstanding occurrence. A row
//!   is complete — no future access can land in it — as soon as every
//!   resident lane of the warp has advanced past its occurrence index;
//!   the engine tracks the per-warp minimum occurrence and collapses
//!   completed rows into running counters the moment the minimum moves
//!   (and collapses the stragglers at block finalization). Memory stays
//!   O(sites × warps × outstanding occurrences) — in practice a handful
//!   of rows — instead of O(total accesses), and the end-of-block key
//!   sort disappears entirely: counter totals are sums of per-row `u64`
//!   contributions, which commute, so collapse order cannot change the
//!   result.
//!
//! * **Reusable [`BlockScratch`].** The shared-memory buffer, per-thread
//!   compute counters, site tables and row buffers are owned by the
//!   engine worker and recycled across every block it executes (and,
//!   through [`ScratchPool`], across launches), so a sweep over millions
//!   of blocks performs a bounded number of allocations instead of
//!   several per block.
//!
//! Counters are bit-for-bit identical to the original recorder; the old
//! implementation is preserved under `#[cfg(test)]` as a differential
//! oracle driven by a property test below.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::kernel::BlockCounters;
use crate::mem::{bank_conflict_degree, coalesce_transactions};
use crate::spec::DeviceSpec;

/// Classification of one recorded access; each `(site, kind)` pair owns
/// one dense table slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) enum AccessKind {
    GlobalLoad = 0,
    GlobalStore = 1,
    Shared = 2,
}

/// Number of [`AccessKind`] variants (table-index stride per site).
const KINDS: usize = 3;

impl AccessKind {
    fn from_index(i: usize) -> AccessKind {
        match i {
            0 => AccessKind::GlobalLoad,
            1 => AccessKind::GlobalStore,
            _ => AccessKind::Shared,
        }
    }
}

/// One warp's lane-address row for a single occurrence (`None` = lane
/// inactive at that occurrence).
type LaneRow = Box<[Option<u64>]>;

/// Pending accounting state of one warp at one `(site, kind)`.
#[derive(Debug, Default)]
struct WarpState {
    /// Occurrence index of `rows[0]`.
    base_k: u32,
    /// Pending lane rows for occurrences `base_k..base_k + rows.len()`.
    rows: VecDeque<LaneRow>,
    /// Minimum next-occurrence index over the warp's resident lanes.
    min_occ: u32,
    /// How many resident lanes still sit at `min_occ`.
    lanes_at_min: u32,
}

/// Dense per-`(site, kind)` table: occurrence counters per thread and
/// pending rows per warp.
#[derive(Debug, Default)]
struct SiteState {
    /// True when this table has been touched in the current block.
    live: bool,
    /// Next occurrence index per thread (length = block_dim once live).
    occ: Vec<u32>,
    warps: Vec<WarpState>,
}

/// Reusable per-worker arena for block execution: shared-memory buffer,
/// compute counters, dense accounting tables and recycled row buffers.
///
/// One scratch serves one block at a time; [`crate::exec::run_serial`]
/// reuses a single scratch across the whole grid and each parallel worker
/// owns one. Use a [`ScratchPool`] to recycle scratches across launches
/// (figure sweeps run millions of blocks through a handful of scratches).
#[derive(Debug, Default)]
pub struct BlockScratch {
    /// Simulated shared memory of the current block.
    pub(crate) shared: Vec<f32>,
    /// Per-thread compute instruction counters of the current block.
    pub(crate) compute: Vec<u64>,
    /// Dense site tables, indexed by `site * KINDS + kind`.
    tables: Vec<SiteState>,
    /// Table indices touched by the current block (for O(touched) reset).
    touched: Vec<u32>,
    /// Recycled lane-row buffers.
    row_pool: Vec<LaneRow>,
    /// Counters accumulated by eager row collapses in the current block.
    partial: BlockCounters,
    // Geometry/device parameters of the current block.
    warp_size: u32,
    block_dim: u32,
    transaction_words: u32,
    shared_banks: u32,
}

impl BlockScratch {
    /// An empty scratch; buffers grow on first use and are then recycled.
    pub fn new() -> BlockScratch {
        BlockScratch::default()
    }

    /// Reset for a new block: size and zero the shared/compute buffers,
    /// clear the tables touched by the previous block, and capture the
    /// device parameters the collapse step needs.
    pub(crate) fn begin_block(&mut self, device: &DeviceSpec, shared_words: u32, block_dim: u32) {
        self.shared.clear();
        self.shared.resize(shared_words as usize, 0.0);
        self.compute.clear();
        self.compute.resize(block_dim as usize, 0);
        for &idx in &self.touched {
            let state = &mut self.tables[idx as usize];
            state.live = false;
            state.occ.clear();
            for w in &mut state.warps {
                while let Some(row) = w.rows.pop_front() {
                    self.row_pool.push(row);
                }
                w.base_k = 0;
                w.min_occ = 0;
                w.lanes_at_min = 0;
            }
        }
        self.touched.clear();
        self.partial = BlockCounters::default();
        self.warp_size = device.warp_size;
        self.block_dim = block_dim;
        self.transaction_words = device.transaction_words;
        self.shared_banks = device.shared_banks;
    }

    /// Ensure the `(site, kind)` table exists and is initialized for the
    /// current block; returns its index.
    fn ensure_live(&mut self, site: u32, kind: AccessKind) -> usize {
        let ws = self.warp_size as usize;
        let idx = site as usize * KINDS + kind as usize;
        if idx >= self.tables.len() {
            self.tables.resize_with(idx + 1, SiteState::default);
        }
        let state = &mut self.tables[idx];
        if !state.live {
            state.live = true;
            self.touched.push(idx as u32);
            let bd = self.block_dim as usize;
            state.occ.clear();
            state.occ.resize(bd, 0);
            let n_warps = bd.div_ceil(ws);
            if state.warps.len() != n_warps {
                state.warps.truncate(n_warps);
                state.warps.resize_with(n_warps, WarpState::default);
            }
            for (w, warp) in state.warps.iter_mut().enumerate() {
                debug_assert!(warp.rows.is_empty());
                warp.base_k = 0;
                warp.min_occ = 0;
                warp.lanes_at_min = (bd - w * ws).min(ws) as u32;
            }
        }
        idx
    }

    /// Record one access of thread `tid` at static site `site`; collapses
    /// any warp rows that become complete.
    pub(crate) fn record(&mut self, site: u32, kind: AccessKind, tid: u32, addr: u64) {
        let ws = self.warp_size as usize;
        let idx = self.ensure_live(site, kind);
        let state = &mut self.tables[idx];
        let k = state.occ[tid as usize];
        state.occ[tid as usize] = k + 1;
        let warp_idx = tid as usize / ws;
        let lane = tid as usize % ws;
        let SiteState { occ, warps, .. } = state;
        let warp = &mut warps[warp_idx];
        // A lane's occurrences are contiguous from 0 and `base_k` only
        // advances past completed minima, so `k >= base_k` always holds.
        let row_idx = (k - warp.base_k) as usize;
        while warp.rows.len() <= row_idx {
            let mut row = self
                .row_pool
                .pop()
                .unwrap_or_else(|| vec![None; ws].into_boxed_slice());
            if row.len() == ws {
                row.fill(None);
            } else {
                row = vec![None; ws].into_boxed_slice();
            }
            warp.rows.push_back(row);
        }
        warp.rows[row_idx][lane] = Some(addr);
        if k == warp.min_occ {
            warp.lanes_at_min -= 1;
            if warp.lanes_at_min == 0 {
                // Every resident lane advanced past the old minimum: rows
                // below the new minimum can never be written again.
                let lo = warp_idx * ws;
                let hi = (lo + ws).min(self.block_dim as usize);
                let mut new_min = u32::MAX;
                let mut at_min = 0u32;
                for &o in &occ[lo..hi] {
                    if o < new_min {
                        new_min = o;
                        at_min = 1;
                    } else if o == new_min {
                        at_min += 1;
                    }
                }
                while warp.base_k < new_min {
                    let row = warp.rows.pop_front().expect("completed row pending");
                    collapse(
                        &mut self.partial,
                        kind,
                        &row,
                        self.transaction_words,
                        self.shared_banks,
                    );
                    self.row_pool.push(row);
                    warp.base_k += 1;
                }
                warp.min_occ = new_min;
                warp.lanes_at_min = at_min;
            }
        }
    }

    /// Record one whole warp row — the `addrs[lane]` access of every
    /// `Some` lane of warp `warp_idx` — in a single call.
    ///
    /// Semantically identical to calling [`BlockScratch::record`] per
    /// `Some` lane in ascending lane order (the warp evaluator feeds one
    /// such row per warp memory instruction). The payoff is the uniform
    /// fast path: when every resident lane of the warp is active and sits
    /// at the same occurrence with nothing pending, the row is complete
    /// the moment it arrives, so it collapses straight into the running
    /// counters — one pass instead of 32 occurrence updates, row-queue
    /// probes and minimum rescans. Divergent or ragged rows fall back to
    /// the exact per-lane bookkeeping.
    pub(crate) fn record_row(
        &mut self,
        site: u32,
        kind: AccessKind,
        warp_idx: u32,
        addrs: &[Option<u64>],
    ) {
        let ws = self.warp_size as usize;
        let lo = warp_idx as usize * ws;
        let hi = (lo + ws).min(self.block_dim as usize);
        let resident = hi - lo;
        debug_assert!(resident > 0, "warp index within block");
        debug_assert!(addrs.len() >= resident);
        let idx = self.ensure_live(site, kind);
        let state = &mut self.tables[idx];
        let warp = &mut state.warps[warp_idx as usize];
        if warp.rows.is_empty()
            && warp.lanes_at_min == resident as u32
            && addrs[..resident].iter().all(|a| a.is_some())
            && addrs[resident..].iter().all(|a| a.is_none())
        {
            // Uniform fast path: all resident lanes active at the same
            // occurrence — the row can never be written again, so skip
            // the queue and collapse it now.
            for o in &mut state.occ[lo..hi] {
                *o += 1;
            }
            warp.min_occ += 1;
            warp.base_k += 1;
            collapse(
                &mut self.partial,
                kind,
                addrs,
                self.transaction_words,
                self.shared_banks,
            );
            return;
        }
        for (lane, addr) in addrs.iter().enumerate().take(resident) {
            if let Some(a) = addr {
                self.record(site, kind, (lo + lane) as u32, *a);
            }
        }
    }

    /// Finish the block: collapse all still-pending rows (incomplete or
    /// divergent warps), fold in barrier/compute/flop counts, and leave
    /// the scratch ready for reuse.
    pub(crate) fn finish_block(&mut self, syncs: u64, flops: u64) -> BlockCounters {
        let mut c = self.partial;
        self.partial = BlockCounters::default();
        for &idx in &self.touched {
            let kind = AccessKind::from_index(idx as usize % KINDS);
            let state = &mut self.tables[idx as usize];
            for warp in &mut state.warps {
                while let Some(row) = warp.rows.pop_front() {
                    collapse(
                        &mut c,
                        kind,
                        &row,
                        self.transaction_words,
                        self.shared_banks,
                    );
                    self.row_pool.push(row);
                    warp.base_k += 1;
                }
            }
        }
        c.syncs = syncs;
        c.flops = flops;
        // Warp compute instructions: SIMT lockstep executes the longest
        // lane's path.
        let ws = (self.warp_size as usize).max(1);
        for warp in self.compute.chunks(ws) {
            c.warp_compute_insts += warp.iter().copied().max().unwrap_or(0);
        }
        c
    }
}

/// Fold one completed warp row into the counters.
fn collapse(
    c: &mut BlockCounters,
    kind: AccessKind,
    lanes: &[Option<u64>],
    transaction_words: u32,
    banks: u32,
) {
    match kind {
        AccessKind::GlobalLoad => {
            c.warp_load_insts += 1;
            c.load_transactions += coalesce_transactions(lanes, transaction_words) as u64;
        }
        AccessKind::GlobalStore => {
            c.warp_store_insts += 1;
            c.store_transactions += coalesce_transactions(lanes, transaction_words) as u64;
        }
        AccessKind::Shared => {
            c.shared_insts += 1;
            c.shared_cycles += bank_conflict_degree(lanes, banks) as u64;
        }
    }
}

/// Thread-safe pool of [`BlockScratch`] arenas, recycled across launches.
///
/// Serial launches take one scratch; a parallel launch takes one per
/// worker. Holding a pool across the launches of a sweep (as
/// `adaptic::runtime` and the benches do) caps allocator traffic at the
/// high-water mark of a single launch.
#[derive(Debug, Default)]
pub struct ScratchPool {
    inner: Mutex<Vec<BlockScratch>>,
}

impl ScratchPool {
    /// An empty pool; scratches are created on demand and returned after
    /// each launch.
    pub fn new() -> ScratchPool {
        ScratchPool::default()
    }

    /// Take a scratch (recycled if available, fresh otherwise).
    pub(crate) fn take(&self) -> BlockScratch {
        self.inner.lock().unwrap().pop().unwrap_or_default()
    }

    /// Return a scratch after use.
    pub(crate) fn give(&self, scratch: BlockScratch) {
        self.inner.lock().unwrap().push(scratch);
    }

    /// Number of idle scratches currently pooled.
    pub fn idle(&self) -> usize {
        self.inner.lock().unwrap().len()
    }
}

/// The pre-streaming recorder, preserved verbatim as a differential
/// oracle: two `HashMap`s keyed by occurrence tuples, fresh lane vectors
/// per warp group, and a deterministic end-of-block key sort. The
/// property test below proves the streaming engine produces bit-for-bit
/// identical counters on random access streams.
#[cfg(test)]
pub(crate) mod oracle {
    use std::collections::HashMap;

    use super::AccessKind;
    use crate::kernel::BlockCounters;
    use crate::mem::{bank_conflict_degree, coalesce_transactions};

    #[derive(Debug, Default)]
    pub(crate) struct OracleRecorder {
        /// Per-(site, kind, tid) occurrence counters.
        occ: HashMap<(u32, AccessKind, u32), u32>,
        /// Per-(site, kind, occurrence, warp) lane address vectors.
        groups: HashMap<(u32, AccessKind, u32, u32), Vec<Option<u64>>>,
    }

    impl OracleRecorder {
        pub(crate) fn record(
            &mut self,
            warp_size: u32,
            site: u32,
            kind: AccessKind,
            tid: u32,
            addr: u64,
        ) {
            let occ = self.occ.entry((site, kind, tid)).or_insert(0);
            let k = *occ;
            *occ += 1;
            let warp = tid / warp_size;
            let lane = (tid % warp_size) as usize;
            let group = self
                .groups
                .entry((site, kind, k, warp))
                .or_insert_with(|| vec![None; warp_size as usize]);
            group[lane] = Some(addr);
        }

        pub(crate) fn finalize(self, transaction_words: u32, banks: u32) -> BlockCounters {
            let mut c = BlockCounters::default();
            let mut keys: Vec<_> = self.groups.keys().copied().collect();
            keys.sort_unstable();
            for key in keys {
                let (_, kind, _, _) = key;
                let lanes = &self.groups[&key];
                match kind {
                    AccessKind::GlobalLoad => {
                        c.warp_load_insts += 1;
                        c.load_transactions +=
                            coalesce_transactions(lanes, transaction_words) as u64;
                    }
                    AccessKind::GlobalStore => {
                        c.warp_store_insts += 1;
                        c.store_transactions +=
                            coalesce_transactions(lanes, transaction_words) as u64;
                    }
                    AccessKind::Shared => {
                        c.shared_insts += 1;
                        c.shared_cycles += bank_conflict_degree(lanes, banks) as u64;
                    }
                }
            }
            c
        }
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::oracle::OracleRecorder;
    use super::*;

    fn device() -> DeviceSpec {
        DeviceSpec::tesla_c2050()
    }

    /// Run one access stream through a scratch (beginning a fresh block)
    /// and return the finalized counters.
    fn run_stream(
        scratch: &mut BlockScratch,
        d: &DeviceSpec,
        block_dim: u32,
        ops: &[(u32, AccessKind, u32, u64)],
    ) -> BlockCounters {
        scratch.begin_block(d, 0, block_dim);
        for &(site, kind, tid, addr) in ops {
            scratch.record(site, kind, tid, addr);
        }
        scratch.finish_block(0, 0)
    }

    fn oracle_counters(d: &DeviceSpec, ops: &[(u32, AccessKind, u32, u64)]) -> BlockCounters {
        let mut o = OracleRecorder::default();
        for &(site, kind, tid, addr) in ops {
            o.record(d.warp_size, site, kind, tid, addr);
        }
        o.finalize(d.transaction_words, d.shared_banks)
    }

    #[test]
    fn dense_tables_grow_across_sparse_site_ids() {
        let d = device();
        let mut scratch = BlockScratch::new();
        // Sites 0, 7 and 999 in one block: the table grows on demand and
        // each site forms its own warp instruction.
        let mut ops = Vec::new();
        for site in [0u32, 7, 999] {
            for tid in 0..32u32 {
                ops.push((site, AccessKind::GlobalLoad, tid, tid as u64));
            }
        }
        let c = run_stream(&mut scratch, &d, 32, &ops);
        assert_eq!(c.warp_load_insts, 3);
        assert_eq!(c.load_transactions, 3);
        assert_eq!(c, oracle_counters(&d, &ops));
    }

    #[test]
    fn eager_collapse_matches_oracle_on_multi_occurrence_sites() {
        let d = device();
        let mut scratch = BlockScratch::new();
        // Lane-major iteration (the kernel style in this repo): each lane
        // burns through all its occurrences before the next lane starts,
        // so rows complete only as the *last* lane sweeps by. Addresses
        // differ per occurrence so a wrongly-split row would change the
        // transaction count.
        let mut ops = Vec::new();
        for tid in 0..64u32 {
            for k in 0..5u64 {
                ops.push((3, AccessKind::GlobalLoad, tid, tid as u64 + 100 * k));
                ops.push((4, AccessKind::Shared, tid, (tid as u64 * 2 + k) % 64));
            }
        }
        let c = run_stream(&mut scratch, &d, 64, &ops);
        assert_eq!(c.warp_load_insts, 10); // 2 warps x 5 occurrences
        assert_eq!(c, oracle_counters(&d, &ops));
    }

    #[test]
    fn divergent_lanes_only_collapse_at_finalize() {
        let d = device();
        let mut scratch = BlockScratch::new();
        // Lane 0 never accesses: per-warp minimum stays 0, so every row
        // must survive to finalize and still match the oracle.
        let mut ops = Vec::new();
        for tid in 1..32u32 {
            for k in 0..3u64 {
                ops.push((0, AccessKind::GlobalStore, tid, tid as u64 * 32 + k));
            }
        }
        let c = run_stream(&mut scratch, &d, 32, &ops);
        assert_eq!(c.warp_store_insts, 3);
        assert_eq!(c, oracle_counters(&d, &ops));
    }

    #[test]
    fn scratch_reuse_does_not_leak_counters_across_blocks() {
        let d = device();
        let heavy: Vec<_> = (0..128u32)
            .flat_map(|tid| {
                (0..4u64).map(move |k| (5u32, AccessKind::GlobalLoad, tid, tid as u64 * 7 + k))
            })
            .collect();
        let light: Vec<_> = (0..32u32)
            .map(|tid| (5u32, AccessKind::Shared, tid, tid as u64))
            .collect();

        let mut reused = BlockScratch::new();
        let _ = run_stream(&mut reused, &d, 128, &heavy);
        let b = run_stream(&mut reused, &d, 32, &light);

        let mut fresh = BlockScratch::new();
        let expect = run_stream(&mut fresh, &d, 32, &light);
        assert_eq!(b, expect, "block N counters leaked into block N+1");
        assert_eq!(b.warp_load_insts, 0);
        assert_eq!(b.shared_insts, 1);
    }

    #[test]
    fn compute_and_sync_counts_survive_reuse() {
        let d = device();
        let mut scratch = BlockScratch::new();
        scratch.begin_block(&d, 0, 64);
        for t in 0..64usize {
            scratch.compute[t] += if t == 5 { 9 } else { 1 };
        }
        let c = scratch.finish_block(2, 77);
        assert_eq!(c.warp_compute_insts, 9 + 1);
        assert_eq!(c.syncs, 2);
        assert_eq!(c.flops, 77);

        // Reused block with no compute: nothing carries over.
        scratch.begin_block(&d, 0, 64);
        let c2 = scratch.finish_block(0, 0);
        assert_eq!(c2, BlockCounters::default());
    }

    /// Map a proptest op tuple onto a sparse site ID, a kind and a
    /// resident thread.
    fn decode_op(block_dim: u32, raw: (u8, u8, u32, u64)) -> (u32, AccessKind, u32, u64) {
        const SITES: [u32; 6] = [0, 1, 7, 63, 64, 999];
        let site = SITES[raw.0 as usize % SITES.len()];
        let kind = AccessKind::from_index(raw.1 as usize % KINDS);
        let tid = raw.2 % block_dim;
        (site, kind, tid, raw.3 % 10_000)
    }

    proptest! {
        /// Warp-row recording (the warp evaluator's batched entry point)
        /// is bit-identical to per-lane recording in lane order — full
        /// rows hitting the fast collapse path, divergent and ragged
        /// rows the fallback, interleaved with plain per-lane traffic.
        #[test]
        fn record_row_matches_per_lane_record(
            block_dim in 1u32..100,
            rows in proptest::collection::vec(
                (any::<u8>(), any::<u8>(), any::<u64>(), any::<u64>()),
                0..60,
            ),
            gt200 in any::<bool>(),
        ) {
            let d = if gt200 { DeviceSpec::gtx285() } else { device() };
            let ws = d.warp_size;
            let n_warps = block_dim.div_ceil(ws);
            let mut by_row = BlockScratch::new();
            let mut by_lane = BlockScratch::new();
            by_row.begin_block(&d, 0, block_dim);
            by_lane.begin_block(&d, 0, block_dim);
            for (i, &(s, k, mask, base)) in rows.iter().enumerate() {
                let site = [0u32, 7, 63][s as usize % 3];
                let kind = AccessKind::from_index(k as usize % KINDS);
                let warp_idx = (i as u32) % n_warps;
                let lo = warp_idx * ws;
                let hi = (lo + ws).min(block_dim);
                // Bias toward full rows so the fast path is exercised.
                let mask = if i % 2 == 0 { u64::MAX } else { mask };
                let mut row = vec![None; ws as usize];
                for lane in 0..(hi - lo) {
                    if mask & (1u64 << lane) != 0 {
                        row[lane as usize] =
                            Some(base.wrapping_add(lane as u64) % 10_000);
                    }
                }
                by_row.record_row(site, kind, warp_idx, &row);
                for (lane, addr) in row.iter().enumerate() {
                    if let Some(a) = addr {
                        by_lane.record(site, kind, lo + lane as u32, *a);
                    }
                }
            }
            prop_assert_eq!(
                by_row.finish_block(0, 0),
                by_lane.finish_block(0, 0)
            );
        }

        /// The tentpole equivalence: on random access streams (sparse
        /// sites, all kinds, random thread orders, divergent lanes) the
        /// streaming engine's counters are bit-for-bit identical to the
        /// original HashMap recorder — including when the scratch is
        /// reused across consecutive blocks.
        #[test]
        fn streaming_engine_matches_hashmap_oracle(
            block_dim in 1u32..150,
            raw_ops in proptest::collection::vec(
                (any::<u8>(), any::<u8>(), any::<u32>(), any::<u64>()),
                0..400,
            ),
            gt200 in any::<bool>(),
        ) {
            let d = if gt200 { DeviceSpec::gtx285() } else { device() };
            let ops: Vec<_> = raw_ops
                .iter()
                .map(|&r| decode_op(block_dim, r))
                .collect();

            let expect = oracle_counters(&d, &ops);
            let mut scratch = BlockScratch::new();
            let first = run_stream(&mut scratch, &d, block_dim, &ops);
            prop_assert_eq!(&first, &expect);

            // Same stream on the reused scratch: identical again (reset
            // is complete, pooled row buffers are cleared).
            let second = run_stream(&mut scratch, &d, block_dim, &ops);
            prop_assert_eq!(&second, &expect);
        }
    }
}
