//! Lock-striped, LRU-bounded launch-statistics cache.
//!
//! [`crate::LaunchCache`] guards one `HashMap` with one mutex — fine for a
//! figure sweep on one thread, a serialization point when many callers
//! share a kernel-management unit. [`ShardedLaunchCache`] stripes the key
//! space over independently locked shards (key hash picks the shard, so a
//! lookup contends only with lookups that would collide anyway) and bounds
//! every shard with least-recently-used eviction, so a long-running
//! service cannot grow the cache without limit. Eviction, hit and miss
//! counters feed the runtime's telemetry.
//!
//! Robustness properties (see DESIGN.md "Fault model"):
//!
//! * **Single-flight** — each shard tracks keys currently being simulated;
//!   callers racing on a cold key wait on the shard's condvar instead of
//!   simulating the same launch twice.
//! * **Poison recovery** — every shard lock is taken through
//!   [`PoisonError::into_inner`]; a caller that panics (kernel assert or
//!   injected fault) cannot permanently poison a stripe. Shard state is
//!   only ever mutated to a consistent snapshot while the lock is held, so
//!   recovering the lock is sound.
//! * **In-flight eviction** — the in-flight marker is held by an RAII
//!   guard; if the simulating caller panics or the launch fails, the key
//!   is removed and waiters are woken (one of them takes over the flight)
//!   instead of deadlocking. Failed launches are never memoized.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use crate::accounting::ScratchPool;
use crate::exec::{launch_key, try_launch_pooled, ExecMode, ExecPolicy, KernelStats, StatsCache};
use crate::exec::{LaunchCache, LaunchKey};
use crate::faults::{LaunchControl, LaunchError};
use crate::kernel::Kernel;
use crate::mem::GlobalMem;
use crate::spec::DeviceSpec;

/// One stripe: a bounded map from launch key to stats plus the recency
/// tick of each entry's last use, and the set of keys some caller is
/// currently simulating (single-flight).
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<LaunchKey, Entry>,
    inflight: HashSet<LaunchKey>,
}

#[derive(Debug)]
struct Entry {
    stats: KernelStats,
    last_used: u64,
}

/// A shard plus the condvar its waiters park on while another caller
/// simulates a cold key.
#[derive(Debug, Default)]
struct ShardSlot {
    state: Mutex<Shard>,
    /// Signalled whenever a flight completes — successfully (stats are in
    /// the map) or not (the key left `inflight` and a waiter takes over).
    done: Condvar,
}

/// Lock a shard, recovering from poisoning. A panic while the lock was
/// held can only have happened between complete mutations (all updates
/// below are single-statement inserts/removes), so the recovered state is
/// consistent.
fn lock_shard(slot: &ShardSlot) -> MutexGuard<'_, Shard> {
    slot.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Removes `key` from the shard's in-flight set and wakes waiters when
/// dropped — on success, failure, *or unwind* — so a panicking simulate
/// can never strand waiters behind a key that nobody is computing.
struct InflightGuard<'a> {
    slot: &'a ShardSlot,
    key: LaunchKey,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        let mut shard = lock_shard(self.slot);
        shard.inflight.remove(&self.key);
        drop(shard);
        self.slot.done.notify_all();
    }
}

/// A concurrent [`StatsCache`]: lock-striped over `shards` mutexes, each
/// shard LRU-bounded to `capacity_per_shard` entries.
///
/// Semantics match [`LaunchCache`] exactly — hits return memoized stats
/// without executing the kernel (device memory untouched), so the same
/// restriction applies: use only where outputs are already discarded
/// (timing-only sweeps, [`crate::ExecMode::SampledExec`]-style usage).
/// Unlike [`LaunchCache`] it is safe *and fast* under many concurrent
/// callers, and it never outgrows `shards * capacity_per_shard` entries.
#[derive(Debug)]
pub struct ShardedLaunchCache {
    shards: Box<[ShardSlot]>,
    /// Shard-picking hasher; `RandomState` per cache keeps stripe choice
    /// O(1) and private to this cache.
    hasher: RandomState,
    capacity_per_shard: usize,
    /// Monotonic recency clock; ticks on every lookup.
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for ShardedLaunchCache {
    fn default() -> Self {
        ShardedLaunchCache::new(16, 256)
    }
}

impl ShardedLaunchCache {
    /// A cache with `shards` stripes (rounded up to a power of two, at
    /// least 1) of at most `capacity_per_shard` entries each (at least 1).
    pub fn new(shards: usize, capacity_per_shard: usize) -> ShardedLaunchCache {
        let n = shards.max(1).next_power_of_two();
        ShardedLaunchCache {
            shards: (0..n).map(|_| ShardSlot::default()).collect(),
            hasher: RandomState::new(),
            capacity_per_shard: capacity_per_shard.max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &LaunchKey) -> &ShardSlot {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h & (self.shards.len() - 1)]
    }

    /// Number of stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Upper bound on memoized entries (`shards * capacity_per_shard`).
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.capacity_per_shard
    }

    /// Memoized launches currently held.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).map.len()).sum()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to execute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries dropped to respect the per-shard capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Fraction of lookups served from the cache (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits() as f64, self.misses() as f64);
        if h + m > 0.0 {
            h / (h + m)
        } else {
            0.0
        }
    }
}

impl StatsCache for ShardedLaunchCache {
    fn launch_cached(
        &self,
        device: &DeviceSpec,
        mem: &mut GlobalMem,
        kernel: &(dyn Kernel + Sync),
        mode: ExecMode,
        policy: ExecPolicy,
        dims: (u64, u64),
        pool: &ScratchPool,
        ctl: LaunchControl<'_>,
    ) -> Result<(KernelStats, bool), LaunchError> {
        let key = launch_key(device, kernel, mode, dims);
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let slot = self.shard_of(&key);
        // Single-flight admission: leave with either a hit, or ownership
        // of the flight for this key (registered in `inflight`, released
        // by `_guard` on every exit path including unwind).
        let _guard = {
            let mut shard = lock_shard(slot);
            loop {
                if let Some(entry) = shard.map.get_mut(&key) {
                    entry.last_used = now;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((entry.stats.clone(), true));
                }
                if !shard.inflight.contains(&key) {
                    shard.inflight.insert(key.clone());
                    break;
                }
                // Another caller is simulating this key: park until its
                // flight resolves, then re-check (the flight may have
                // failed, in which case we take over).
                shard = slot
                    .done
                    .wait(shard)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            InflightGuard {
                slot,
                key: key.clone(),
            }
        };
        // Simulate outside the shard lock: a slow launch must not stall
        // unrelated lookups. Failed launches (`Err` here, or a panic that
        // unwinds past us) are not memoized; `_guard` evicts the in-flight
        // marker so waiters retry instead of deadlocking.
        let stats = try_launch_pooled(device, mem, kernel, mode, policy, pool, ctl)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut shard = lock_shard(slot);
        if shard.map.len() >= self.capacity_per_shard && !shard.map.contains_key(&key) {
            // Full: drop the least-recently-used entry. The scan is
            // O(capacity) but runs only on insert into a full shard, and
            // capacities are small (hundreds).
            if let Some(lru) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(
            key,
            Entry {
                stats: stats.clone(),
                last_used: now,
            },
        );
        Ok((stats, false))
    }

    fn hit_count(&self) -> u64 {
        self.hits()
    }

    fn miss_count(&self) -> u64 {
        self.misses()
    }

    fn eviction_count(&self) -> u64 {
        self.evictions()
    }
}

/// The unbounded single-mutex cache also reports through the same
/// counters, so code generic over [`StatsCache`] can swap either in.
impl LaunchCache {
    /// View this cache as a [`StatsCache`] trait object.
    pub fn as_stats_cache(&self) -> &dyn StatsCache {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultKind, FaultPlan};
    use crate::kernel::{BlockCtx, LaunchConfig};
    use crate::mem::BufId;

    /// y[i] = x[i] + 1, one thread per element; `n` varies the key.
    struct AddOne {
        x: BufId,
        y: BufId,
        n: usize,
    }

    impl Kernel for AddOne {
        fn name(&self) -> &str {
            "add_one"
        }

        fn config(&self) -> LaunchConfig {
            LaunchConfig::new((self.n as u32).div_ceil(128), 128, 0)
        }

        fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
            for t in ctx.threads() {
                let i = (block * ctx.block_dim() + t) as usize;
                if i < self.n {
                    let v = ctx.ld_global(0, t, self.x, i);
                    ctx.st_global(1, t, self.y, i, v + 1.0);
                }
            }
        }
    }

    fn run_ctl(
        cache: &ShardedLaunchCache,
        n: usize,
        dims: (u64, u64),
        ctl: LaunchControl<'_>,
    ) -> Result<(KernelStats, bool), LaunchError> {
        let d = DeviceSpec::tesla_c2050();
        let mut mem = GlobalMem::new();
        let x = mem.alloc_from(&vec![1.0; n]);
        let y = mem.alloc(n);
        let k = AddOne { x, y, n };
        cache.launch_cached(
            &d,
            &mut mem,
            &k,
            ExecMode::Full,
            ExecPolicy::Serial,
            dims,
            &ScratchPool::new(),
            ctl,
        )
    }

    fn run_once(cache: &ShardedLaunchCache, n: usize, dims: (u64, u64)) -> (KernelStats, bool) {
        run_ctl(cache, n, dims, LaunchControl::default()).expect("fault-free launch")
    }

    #[test]
    fn hits_match_single_mutex_cache_semantics() {
        let sharded = ShardedLaunchCache::new(4, 8);
        let (first, hit) = run_once(&sharded, 1024, (1024, 0));
        assert!(!hit);
        let (second, hit) = run_once(&sharded, 1024, (1024, 0));
        assert!(hit);
        assert_eq!(first, second);
        // Different dims miss.
        let (_, hit) = run_once(&sharded, 1024, (1024, 1));
        assert!(!hit);
        assert_eq!(sharded.hits(), 1);
        assert_eq!(sharded.misses(), 2);
        assert_eq!(sharded.evictions(), 0);
        assert_eq!(sharded.len(), 2);
    }

    #[test]
    fn lru_eviction_bounds_every_shard() {
        // One shard of capacity 2 makes the LRU order observable.
        let cache = ShardedLaunchCache::new(1, 2);
        run_once(&cache, 128, (1, 0));
        run_once(&cache, 128, (2, 0));
        // Touch (1, 0) so (2, 0) is the least recently used.
        let (_, hit) = run_once(&cache, 128, (1, 0));
        assert!(hit);
        // Inserting a third key evicts (2, 0).
        run_once(&cache, 128, (3, 0));
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        let (_, hit) = run_once(&cache, 128, (1, 0));
        assert!(hit, "recently-used entry survives");
        let (_, hit) = run_once(&cache, 128, (2, 0));
        assert!(!hit, "LRU entry was evicted");
    }

    #[test]
    fn concurrent_callers_agree_on_stats() {
        let cache = ShardedLaunchCache::new(8, 64);
        let baseline = run_once(&cache, 2048, (2048, 0)).0;
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for dims in [(2048u64, 0u64), (4096, 0), (2048, 7)] {
                        let (stats, _) = run_once(&cache, 2048, dims);
                        if dims == (2048, 0) {
                            assert_eq!(stats, baseline);
                        }
                    }
                });
            }
        });
        // 3 distinct keys, no capacity pressure. Single-flight admission
        // guarantees each cold key is simulated exactly once — threads
        // racing on it park on the shard condvar and resolve as hits.
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits() + cache.misses(), 25);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedLaunchCache::new(3, 4).shard_count(), 4);
        assert_eq!(ShardedLaunchCache::new(0, 4).shard_count(), 1);
        assert_eq!(ShardedLaunchCache::new(16, 4).shard_count(), 16);
        assert_eq!(ShardedLaunchCache::new(5, 0).capacity(), 8);
    }

    #[test]
    fn poisoned_shard_recovers() {
        let cache = ShardedLaunchCache::new(1, 8);
        // Poison the only shard: panic while holding its lock.
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _held = cache.shards[0].state.lock().unwrap();
            panic!("poison the shard");
        }));
        assert!(poison.is_err());
        assert!(cache.shards[0].state.is_poisoned());
        // The cache keeps serving: lookups recover the lock.
        let (_, hit) = run_once(&cache, 128, (1, 0));
        assert!(!hit);
        let (_, hit) = run_once(&cache, 128, (1, 0));
        assert!(hit, "poisoned shard still serves hits");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn failed_launch_not_memoized_and_inflight_key_released() {
        let cache = ShardedLaunchCache::new(1, 8);
        // Every consult rejects the launch.
        let plan = FaultPlan::new(7)
            .with_rate(1.0)
            .with_kinds(vec![FaultKind::LaunchReject]);
        let err = run_ctl(&cache, 128, (1, 0), LaunchControl::with_faults(&plan));
        assert!(matches!(err, Err(LaunchError::Rejected)));
        // The failure was not cached and the in-flight marker is gone: a
        // fault-free retry on the same key simulates (a miss, no deadlock).
        assert_eq!(cache.len(), 0);
        let (_, hit) = run_once(&cache, 128, (1, 0));
        assert!(!hit);
        assert!(cache.shards[0].state.lock().unwrap().inflight.is_empty());
    }

    #[test]
    fn panicking_simulation_evicts_inflight_key() {
        let cache = ShardedLaunchCache::new(1, 8);
        // Zero-thread blocks fail launch *validation*, which panics (a
        // programming error, not a runtime fault) — and the panic unwinds
        // straight through launch_cached while the key is in flight.
        struct Invalid;
        impl Kernel for Invalid {
            fn name(&self) -> &str {
                "invalid"
            }
            fn config(&self) -> LaunchConfig {
                LaunchConfig::new(1, 0, 0)
            }
            fn run_block(&self, _: u32, _: &mut BlockCtx<'_>) {}
        }
        let d = DeviceSpec::tesla_c2050();
        for _ in 0..2 {
            let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut mem = GlobalMem::new();
                cache.launch_cached(
                    &d,
                    &mut mem,
                    &Invalid,
                    ExecMode::Full,
                    ExecPolicy::Serial,
                    (0, 0),
                    &ScratchPool::new(),
                    LaunchControl::default(),
                )
            }));
            assert!(unwound.is_err());
            // Guard ran during unwind: nothing in flight, nothing cached,
            // so the second iteration does not park forever.
            let shard = lock_shard(&cache.shards[0]);
            assert!(shard.inflight.is_empty());
            assert!(shard.map.is_empty());
        }
    }
}
