//! Lock-striped, LRU-bounded launch-statistics cache.
//!
//! [`crate::LaunchCache`] guards one `HashMap` with one mutex — fine for a
//! figure sweep on one thread, a serialization point when many callers
//! share a kernel-management unit. [`ShardedLaunchCache`] stripes the key
//! space over independently locked shards (key hash picks the shard, so a
//! lookup contends only with lookups that would collide anyway) and bounds
//! every shard with least-recently-used eviction, so a long-running
//! service cannot grow the cache without limit. Eviction, hit and miss
//! counters feed the runtime's telemetry.

use std::collections::HashMap;
use std::hash::{BuildHasher, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::accounting::ScratchPool;
use crate::exec::{launch_key, launch_pooled, ExecMode, ExecPolicy, KernelStats, StatsCache};
use crate::exec::{LaunchCache, LaunchKey};
use crate::kernel::Kernel;
use crate::mem::GlobalMem;
use crate::spec::DeviceSpec;

/// One stripe: a bounded map from launch key to stats plus the recency
/// tick of each entry's last use.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<LaunchKey, Entry>,
}

#[derive(Debug)]
struct Entry {
    stats: KernelStats,
    last_used: u64,
}

/// A concurrent [`StatsCache`]: lock-striped over `shards` mutexes, each
/// shard LRU-bounded to `capacity_per_shard` entries.
///
/// Semantics match [`LaunchCache`] exactly — hits return memoized stats
/// without executing the kernel (device memory untouched), so the same
/// restriction applies: use only where outputs are already discarded
/// (timing-only sweeps, [`crate::ExecMode::SampledExec`]-style usage).
/// Unlike [`LaunchCache`] it is safe *and fast* under many concurrent
/// callers, and it never outgrows `shards * capacity_per_shard` entries.
#[derive(Debug)]
pub struct ShardedLaunchCache {
    shards: Box<[Mutex<Shard>]>,
    /// Shard-picking hasher; `RandomState` per cache keeps stripe choice
    /// O(1) and private to this cache.
    hasher: RandomState,
    capacity_per_shard: usize,
    /// Monotonic recency clock; ticks on every lookup.
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for ShardedLaunchCache {
    fn default() -> Self {
        ShardedLaunchCache::new(16, 256)
    }
}

impl ShardedLaunchCache {
    /// A cache with `shards` stripes (rounded up to a power of two, at
    /// least 1) of at most `capacity_per_shard` entries each (at least 1).
    pub fn new(shards: usize, capacity_per_shard: usize) -> ShardedLaunchCache {
        let n = shards.max(1).next_power_of_two();
        ShardedLaunchCache {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            hasher: RandomState::new(),
            capacity_per_shard: capacity_per_shard.max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &LaunchKey) -> &Mutex<Shard> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h & (self.shards.len() - 1)]
    }

    /// Number of stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Upper bound on memoized entries (`shards * capacity_per_shard`).
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.capacity_per_shard
    }

    /// Memoized launches currently held.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to execute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries dropped to respect the per-shard capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Fraction of lookups served from the cache (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits() as f64, self.misses() as f64);
        if h + m > 0.0 {
            h / (h + m)
        } else {
            0.0
        }
    }
}

impl StatsCache for ShardedLaunchCache {
    fn launch_cached(
        &self,
        device: &DeviceSpec,
        mem: &mut GlobalMem,
        kernel: &(dyn Kernel + Sync),
        mode: ExecMode,
        policy: ExecPolicy,
        dims: (u64, u64),
        pool: &ScratchPool,
    ) -> (KernelStats, bool) {
        let key = launch_key(device, kernel, mode, dims);
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        {
            let mut shard = self.shard_of(&key).lock().unwrap();
            if let Some(entry) = shard.map.get_mut(&key) {
                entry.last_used = now;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (entry.stats.clone(), true);
            }
        }
        // Simulate outside the shard lock: a slow launch must not stall
        // unrelated lookups. Two callers racing on the same key both
        // simulate; the stats are a pure function of the key, so whichever
        // insert lands last changes nothing.
        let stats = launch_pooled(device, mem, kernel, mode, policy, pool);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_of(&key).lock().unwrap();
        if shard.map.len() >= self.capacity_per_shard && !shard.map.contains_key(&key) {
            // Full: drop the least-recently-used entry. The scan is
            // O(capacity) but runs only on insert into a full shard, and
            // capacities are small (hundreds).
            if let Some(lru) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(
            key,
            Entry {
                stats: stats.clone(),
                last_used: now,
            },
        );
        (stats, false)
    }

    fn hit_count(&self) -> u64 {
        self.hits()
    }

    fn miss_count(&self) -> u64 {
        self.misses()
    }

    fn eviction_count(&self) -> u64 {
        self.evictions()
    }
}

/// The unbounded single-mutex cache also reports through the same
/// counters, so code generic over [`StatsCache`] can swap either in.
impl LaunchCache {
    /// View this cache as a [`StatsCache`] trait object.
    pub fn as_stats_cache(&self) -> &dyn StatsCache {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{BlockCtx, LaunchConfig};
    use crate::mem::BufId;

    /// y[i] = x[i] + 1, one thread per element; `n` varies the key.
    struct AddOne {
        x: BufId,
        y: BufId,
        n: usize,
    }

    impl Kernel for AddOne {
        fn name(&self) -> &str {
            "add_one"
        }

        fn config(&self) -> LaunchConfig {
            LaunchConfig::new((self.n as u32).div_ceil(128), 128, 0)
        }

        fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
            for t in ctx.threads() {
                let i = (block * ctx.block_dim() + t) as usize;
                if i < self.n {
                    let v = ctx.ld_global(0, t, self.x, i);
                    ctx.st_global(1, t, self.y, i, v + 1.0);
                }
            }
        }
    }

    fn run_once(cache: &ShardedLaunchCache, n: usize, dims: (u64, u64)) -> (KernelStats, bool) {
        let d = DeviceSpec::tesla_c2050();
        let mut mem = GlobalMem::new();
        let x = mem.alloc_from(&vec![1.0; n]);
        let y = mem.alloc(n);
        let k = AddOne { x, y, n };
        cache.launch_cached(
            &d,
            &mut mem,
            &k,
            ExecMode::Full,
            ExecPolicy::Serial,
            dims,
            &ScratchPool::new(),
        )
    }

    #[test]
    fn hits_match_single_mutex_cache_semantics() {
        let sharded = ShardedLaunchCache::new(4, 8);
        let (first, hit) = run_once(&sharded, 1024, (1024, 0));
        assert!(!hit);
        let (second, hit) = run_once(&sharded, 1024, (1024, 0));
        assert!(hit);
        assert_eq!(first, second);
        // Different dims miss.
        let (_, hit) = run_once(&sharded, 1024, (1024, 1));
        assert!(!hit);
        assert_eq!(sharded.hits(), 1);
        assert_eq!(sharded.misses(), 2);
        assert_eq!(sharded.evictions(), 0);
        assert_eq!(sharded.len(), 2);
    }

    #[test]
    fn lru_eviction_bounds_every_shard() {
        // One shard of capacity 2 makes the LRU order observable.
        let cache = ShardedLaunchCache::new(1, 2);
        run_once(&cache, 128, (1, 0));
        run_once(&cache, 128, (2, 0));
        // Touch (1, 0) so (2, 0) is the least recently used.
        let (_, hit) = run_once(&cache, 128, (1, 0));
        assert!(hit);
        // Inserting a third key evicts (2, 0).
        run_once(&cache, 128, (3, 0));
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        let (_, hit) = run_once(&cache, 128, (1, 0));
        assert!(hit, "recently-used entry survives");
        let (_, hit) = run_once(&cache, 128, (2, 0));
        assert!(!hit, "LRU entry was evicted");
    }

    #[test]
    fn concurrent_callers_agree_on_stats() {
        let cache = ShardedLaunchCache::new(8, 64);
        let baseline = run_once(&cache, 2048, (2048, 0)).0;
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for dims in [(2048u64, 0u64), (4096, 0), (2048, 7)] {
                        let (stats, _) = run_once(&cache, 2048, dims);
                        if dims == (2048, 0) {
                            assert_eq!(stats, baseline);
                        }
                    }
                });
            }
        });
        // 3 distinct keys, no capacity pressure. Threads racing on the
        // same cold key may each simulate (misses are recorded outside the
        // shard lock, by design), so the miss count is a floor, not an
        // exact value; every lookup still resolves to a hit or a miss and
        // duplicate inserts merge.
        assert_eq!(cache.len(), 3);
        assert!(cache.misses() >= 3, "misses = {}", cache.misses());
        assert_eq!(cache.hits() + cache.misses(), 25);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedLaunchCache::new(3, 4).shard_count(), 4);
        assert_eq!(ShardedLaunchCache::new(0, 4).shard_count(), 1);
        assert_eq!(ShardedLaunchCache::new(16, 4).shard_count(), 16);
        assert_eq!(ShardedLaunchCache::new(5, 0).capacity(), 8);
    }
}
