//! Simulated device memory.
//!
//! Global memory is a set of named `f32` buffers. The interesting part is
//! the *accounting*: when a warp issues one memory instruction, the memory
//! controller coalesces the 32 lane addresses into as few aligned
//! transactions as possible — one when the lanes hit consecutive addresses
//! in a single segment, up to 32 when they are scattered. Shared memory is
//! modeled per block with bank-conflict accounting.

use std::fmt;

/// Handle to a global-memory buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufId(pub(crate) usize);

impl fmt::Display for BufId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "buf{}", self.0)
    }
}

/// Simulated global (off-chip) memory: named buffers of `f32`.
#[derive(Debug, Default)]
pub struct GlobalMem {
    buffers: Vec<Vec<f32>>,
}

impl GlobalMem {
    /// Create an empty memory.
    pub fn new() -> GlobalMem {
        GlobalMem::default()
    }

    /// Allocate a zero-initialized buffer of `len` words.
    pub fn alloc(&mut self, len: usize) -> BufId {
        self.buffers.push(vec![0.0; len]);
        BufId(self.buffers.len() - 1)
    }

    /// Allocate a buffer initialized from host data (models the
    /// host-to-device transfer).
    pub fn alloc_from(&mut self, data: &[f32]) -> BufId {
        self.buffers.push(data.to_vec());
        BufId(self.buffers.len() - 1)
    }

    /// Read back a whole buffer (models the device-to-host transfer).
    pub fn read(&self, buf: BufId) -> &[f32] {
        &self.buffers[buf.0]
    }

    /// Mutable view of a buffer (host-side initialization/restructuring).
    pub fn write(&mut self, buf: BufId) -> &mut [f32] {
        &mut self.buffers[buf.0]
    }

    /// Length of a buffer in words.
    pub fn len(&self, buf: BufId) -> usize {
        self.buffers[buf.0].len()
    }

    /// True when the buffer has no elements.
    pub fn is_empty(&self, buf: BufId) -> bool {
        self.buffers[buf.0].is_empty()
    }

    /// Load one word (device-side access; accounting happens in the
    /// execution engine, not here).
    #[inline]
    pub fn load(&self, buf: BufId, idx: usize) -> f32 {
        self.buffers[buf.0][idx]
    }

    /// Store one word.
    #[inline]
    pub fn store(&mut self, buf: BufId, idx: usize, v: f32) {
        self.buffers[buf.0][idx] = v;
    }

    /// Number of allocated buffers.
    pub fn buffer_count(&self) -> usize {
        self.buffers.len()
    }

    /// A view of this memory that many execution workers can access
    /// concurrently. The `&mut self` borrow guarantees nothing else touches
    /// the memory while views are alive; safety *between* workers rests on
    /// the launch invariant documented on [`SharedMem`].
    pub(crate) fn shared_view(&mut self) -> SharedMem<'_> {
        SharedMem {
            buffers: self
                .buffers
                .iter_mut()
                .map(|b| (b.as_mut_ptr(), b.len()))
                .collect(),
            _mem: std::marker::PhantomData,
        }
    }
}

/// Concurrent view of [`GlobalMem`] for parallel block execution.
///
/// # The launch invariant
///
/// Thread blocks of one kernel launch have **no communication mechanism**
/// in this model (exactly as CUDA blocks without atomics): a block never
/// reads a location that another block of the same launch writes, and no
/// two blocks write the same location. Every kernel in this repository
/// writes block-disjoint output ranges. Under that invariant, concurrent
/// block execution through this view is race-free; a kernel that violated
/// it would already be nondeterministic under CUDA's undefined block
/// schedule, and the serial engine's fixed block order would merely hide
/// the bug. The view is deliberately `pub(crate)` so external code cannot
/// construct aliasing accesses.
pub(crate) struct SharedMem<'a> {
    /// Raw (base, len) pairs per buffer; the lifetime ties them to the
    /// exclusive `GlobalMem` borrow that produced the view.
    buffers: Vec<(*mut f32, usize)>,
    _mem: std::marker::PhantomData<&'a mut GlobalMem>,
}

// SAFETY: the pointers are valid for the lifetime of the exclusive borrow
// of `GlobalMem`, and disjointness of concurrent accesses is guaranteed by
// the launch invariant above.
unsafe impl Send for SharedMem<'_> {}
unsafe impl Sync for SharedMem<'_> {}

impl SharedMem<'_> {
    /// Load one word (bounds-checked like the exclusive path).
    #[inline]
    pub(crate) fn load(&self, buf: BufId, idx: usize) -> f32 {
        let (ptr, len) = self.buffers[buf.0];
        assert!(idx < len, "load out of bounds: {buf}[{idx}], len {len}");
        // SAFETY: in-bounds; no concurrent writer per the launch invariant.
        unsafe { *ptr.add(idx) }
    }

    /// Store one word (bounds-checked like the exclusive path).
    #[inline]
    pub(crate) fn store(&self, buf: BufId, idx: usize, v: f32) {
        let (ptr, len) = self.buffers[buf.0];
        assert!(idx < len, "store out of bounds: {buf}[{idx}], len {len}");
        // SAFETY: in-bounds; no concurrent reader/writer of this location
        // per the launch invariant.
        unsafe { *ptr.add(idx) = v }
    }
}

/// Count the global-memory transactions needed to service one warp-wide
/// memory instruction.
///
/// Addresses are word indices; the controller fetches aligned segments of
/// `transaction_words` words. The result is the number of *distinct*
/// segments touched — 1 for perfectly coalesced access, up to the warp
/// size for fully scattered access. Inactive lanes pass `None`.
pub fn coalesce_transactions(addrs: &[Option<u64>], transaction_words: u32) -> u32 {
    debug_assert!(transaction_words.is_power_of_two());
    let shift = transaction_words.trailing_zeros();
    // Warp-sized rows (every in-repo caller) fit a stack buffer; this
    // function runs once per simulated warp instruction, so it must not
    // touch the heap.
    if addrs.len() <= STACK_LANES {
        let mut buf = [0u64; STACK_LANES];
        let mut n = 0;
        for a in addrs.iter().flatten() {
            buf[n] = a >> shift;
            n += 1;
        }
        let segments = &mut buf[..n];
        segments.sort_unstable();
        let mut distinct = 0u32;
        let mut prev = None;
        for &s in segments.iter() {
            if Some(s) != prev {
                distinct += 1;
                prev = Some(s);
            }
        }
        distinct
    } else {
        let mut segments: Vec<u64> = addrs.iter().flatten().map(|a| a >> shift).collect();
        segments.sort_unstable();
        segments.dedup();
        segments.len() as u32
    }
}

/// Stack-buffer capacity for the hot accounting paths (≥ any real warp).
const STACK_LANES: usize = 64;

/// Count the serialization degree of one warp-wide shared-memory access.
///
/// Returns the number of cycles the access takes relative to a
/// conflict-free access: 1 when every lane hits a different bank (or all
/// lanes broadcast-read the same word), otherwise the maximum number of
/// *distinct words* mapped to a single bank.
pub fn bank_conflict_degree(addrs: &[Option<u64>], banks: u32) -> u32 {
    if addrs.len() <= STACK_LANES {
        // Sort (bank, word) pairs on the stack; the degree is the longest
        // run of distinct words within one bank.
        let mut buf = [(0u64, 0u64); STACK_LANES];
        let mut n = 0;
        for a in addrs.iter().flatten() {
            buf[n] = (a % banks as u64, *a);
            n += 1;
        }
        let pairs = &mut buf[..n];
        pairs.sort_unstable();
        let mut degree = 1u32;
        let mut run = 0u32;
        let mut prev = None;
        for &(bank, word) in pairs.iter() {
            match prev {
                Some((b, w)) if b == bank && w == word => {} // same word again
                Some((b, _)) if b == bank => {
                    run += 1;
                    degree = degree.max(run);
                }
                _ => {
                    run = 1;
                    degree = degree.max(run);
                }
            }
            prev = Some((bank, word));
        }
        degree
    } else {
        let mut per_bank: Vec<Vec<u64>> = vec![Vec::new(); banks as usize];
        for a in addrs.iter().flatten() {
            let bank = (a % banks as u64) as usize;
            if !per_bank[bank].contains(a) {
                per_bank[bank].push(*a);
            }
        }
        per_bank
            .iter()
            .map(|v| v.len() as u32)
            .max()
            .unwrap_or(0)
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(xs: &[u64]) -> Vec<Option<u64>> {
        xs.iter().copied().map(Some).collect()
    }

    #[test]
    fn buffers_round_trip() {
        let mut m = GlobalMem::new();
        let a = m.alloc(4);
        let b = m.alloc_from(&[1.0, 2.0]);
        m.store(a, 2, 9.0);
        assert_eq!(m.read(a), &[0.0, 0.0, 9.0, 0.0]);
        assert_eq!(m.load(b, 1), 2.0);
        assert_eq!(m.len(a), 4);
        assert!(!m.is_empty(a));
        assert_eq!(m.buffer_count(), 2);
        m.write(b)[0] = 5.0;
        assert_eq!(m.load(b, 0), 5.0);
    }

    #[test]
    fn consecutive_addresses_coalesce_to_one() {
        let a: Vec<u64> = (0..32).collect();
        assert_eq!(coalesce_transactions(&addrs(&a), 32), 1);
    }

    #[test]
    fn aligned_offset_matters() {
        // 32 consecutive words starting at 16 straddle two segments.
        let a: Vec<u64> = (16..48).collect();
        assert_eq!(coalesce_transactions(&addrs(&a), 32), 2);
    }

    #[test]
    fn strided_access_needs_many_transactions() {
        // Stride 32: every lane in its own segment.
        let a: Vec<u64> = (0..32).map(|i| i * 32).collect();
        assert_eq!(coalesce_transactions(&addrs(&a), 32), 32);
        // Stride 2: half-density, still touches 2 segments.
        let a: Vec<u64> = (0..32).map(|i| i * 2).collect();
        assert_eq!(coalesce_transactions(&addrs(&a), 32), 2);
    }

    #[test]
    fn broadcast_is_single_transaction() {
        let a = vec![Some(7u64); 32];
        assert_eq!(coalesce_transactions(&a, 32), 1);
    }

    #[test]
    fn inactive_lanes_ignored() {
        let mut a = addrs(&[0, 1, 2, 3]);
        a.extend(std::iter::repeat_n(None, 28));
        assert_eq!(coalesce_transactions(&a, 32), 1);
        assert_eq!(coalesce_transactions(&[None; 32], 32), 0);
    }

    #[test]
    fn conflict_free_shared_access() {
        let a: Vec<u64> = (0..32).collect();
        assert_eq!(bank_conflict_degree(&addrs(&a), 32), 1);
    }

    #[test]
    fn broadcast_shared_access_is_free() {
        let a = vec![Some(5u64); 32];
        assert_eq!(bank_conflict_degree(&a, 32), 1);
    }

    #[test]
    fn stride_two_creates_two_way_conflicts_on_16_banks() {
        let a: Vec<u64> = (0..16).map(|i| i * 2).collect();
        assert_eq!(bank_conflict_degree(&addrs(&a), 16), 2);
    }

    #[test]
    fn worst_case_conflict_is_warp_wide() {
        // All lanes hit distinct words in the same bank.
        let a: Vec<u64> = (0..32).map(|i| i * 32).collect();
        assert_eq!(bank_conflict_degree(&addrs(&a), 32), 32);
    }

    #[test]
    fn empty_access_degree_is_one() {
        assert_eq!(bank_conflict_degree(&[], 32), 1);
    }
}
