//! Property tests of the GPU simulator's accounting.

use proptest::prelude::*;

use gpu_sim::{
    bank_conflict_degree, coalesce_transactions, launch, launch_with_policy, BlockCtx, DeviceSpec,
    ExecMode, ExecPolicy, GlobalMem, Kernel, LaunchConfig,
};

proptest! {
    /// Strided warp accesses need exactly the closed-form number of
    /// transactions: `ceil(span / segment)` distinct aligned segments.
    #[test]
    fn strided_transactions_match_closed_form(
        stride in 1u64..64,
        base in 0u64..1000,
    ) {
        let addrs: Vec<Option<u64>> = (0..32).map(|i| Some(base + i * stride)).collect();
        let got = coalesce_transactions(&addrs, 32);
        // Closed form: distinct values of (base + i*stride) >> 5.
        let mut segs: Vec<u64> = (0..32).map(|i| (base + i * stride) >> 5).collect();
        segs.sort_unstable();
        segs.dedup();
        prop_assert_eq!(got as usize, segs.len());
    }

    /// Transactions are monotone under adding lanes.
    #[test]
    fn transactions_monotone_in_active_lanes(
        addrs in proptest::collection::vec(0u64..10_000, 1..32),
    ) {
        let mut with_none: Vec<Option<u64>> = addrs.iter().copied().map(Some).collect();
        let full = coalesce_transactions(&with_none, 32);
        with_none.pop();
        let fewer = coalesce_transactions(&with_none, 32);
        prop_assert!(fewer <= full);
    }

    /// Bank conflict degree is between 1 and the number of distinct
    /// addresses, and broadcast never conflicts.
    #[test]
    fn bank_conflicts_bounded(
        addrs in proptest::collection::vec(0u64..512, 1..32),
        banks in prop::sample::select(vec![16u32, 32]),
    ) {
        let lanes: Vec<Option<u64>> = addrs.iter().copied().map(Some).collect();
        let degree = bank_conflict_degree(&lanes, banks);
        let mut distinct = addrs.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert!(degree >= 1);
        prop_assert!(degree as usize <= distinct.len().max(1));

        let broadcast: Vec<Option<u64>> = vec![Some(addrs[0]); addrs.len()];
        prop_assert_eq!(bank_conflict_degree(&broadcast, banks), 1);
    }
}

/// Kernel that writes `base + i` everywhere, used to check scaling.
struct Fill {
    buf: gpu_sim::BufId,
    n: usize,
}

impl Kernel for Fill {
    fn name(&self) -> &str {
        "fill"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig::new((self.n as u32).div_ceil(128), 128, 0)
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        for tid in ctx.threads() {
            let i = (block * 128 + tid) as usize;
            if i < self.n {
                ctx.st_global(0, tid, self.buf, i, i as f32);
                ctx.compute(tid, 1);
                ctx.count_flops(1);
            }
        }
    }
}

/// A randomly-parameterized kernel exercising every accounting path:
/// strided global loads (coalescing), shared-memory traffic with a
/// barrier (bank conflicts + syncs), compute rounds, and a
/// block-disjoint global store — the launch invariant the parallel
/// engine relies on.
struct RandomKernel {
    input: gpu_sim::BufId,
    out: gpu_sim::BufId,
    n_in: usize,
    grid: u32,
    block_dim: u32,
    stride: usize,
    rounds: u32,
    use_shared: bool,
}

impl Kernel for RandomKernel {
    fn name(&self) -> &str {
        "random_kernel"
    }

    fn config(&self) -> LaunchConfig {
        let shared = if self.use_shared { self.block_dim } else { 0 };
        LaunchConfig::new(self.grid, self.block_dim, shared)
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        let bd = self.block_dim as usize;
        for tid in ctx.threads() {
            let gid = block as usize * bd + tid as usize;
            let mut acc = ctx.ld_global(0, tid, self.input, (gid * self.stride) % self.n_in);
            for r in 0..self.rounds {
                let idx = (gid + r as usize * 31 + 1) % self.n_in;
                acc += ctx.ld_global(1, tid, self.input, idx) * (r + 1) as f32;
                ctx.compute(tid, 2);
                ctx.count_flops(2);
            }
            if self.use_shared {
                ctx.st_shared(2, tid, tid as usize, acc);
            } else {
                // Keep the store below unconditional on the same value.
                ctx.st_global(3, tid, self.out, gid, acc);
            }
        }
        if self.use_shared {
            ctx.sync();
            for tid in ctx.threads() {
                let bd = self.block_dim as usize;
                let gid = block as usize * bd + tid as usize;
                let neighbor = (tid as usize + 1) % bd;
                let v = ctx.ld_shared(4, tid, tid as usize) + ctx.ld_shared(5, tid, neighbor);
                ctx.compute(tid, 1);
                ctx.count_flops(1);
                ctx.st_global(3, tid, self.out, gid, v);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// The tentpole property: for random kernels, grids, execution modes,
    /// and worker counts, the parallel engine is *bit-for-bit* identical
    /// to the serial engine — same output buffer, same `KernelStats`
    /// (counters, scaled totals, executed/recorded block counts).
    #[test]
    fn parallel_engine_is_bit_identical_to_serial(
        grid in 1u32..48,
        block_dim in prop::sample::select(vec![32u32, 64, 128]),
        stride in 1usize..9,
        rounds in 0u32..4,
        shared_sel in 0u32..2,
        mode_sel in prop::sample::select(vec![
            ExecMode::Full,
            ExecMode::SampledStats(4),
            ExecMode::SampledExec(3),
            ExecMode::SampledExec(7),
        ]),
        workers in 1usize..9,
        seed in 0u64..1_000_000,
    ) {
        let device = DeviceSpec::tesla_c2050();
        let n = (grid * block_dim) as usize;
        let data: Vec<f32> = (0..n)
            .map(|i| ((i as u64).wrapping_mul(seed | 1) % 1024) as f32 - 512.0)
            .collect();

        let mut mem_s = GlobalMem::new();
        let input_s = mem_s.alloc_from(&data);
        let out_s = mem_s.alloc(n);
        let k_s = RandomKernel {
            input: input_s,
            out: out_s,
            n_in: n,
            grid,
            block_dim,
            stride,
            rounds,
            use_shared: shared_sel == 1,
        };
        let serial = launch_with_policy(&device, &mut mem_s, &k_s, mode_sel, ExecPolicy::Serial);

        let mut mem_p = GlobalMem::new();
        let input_p = mem_p.alloc_from(&data);
        let out_p = mem_p.alloc(n);
        let k_p = RandomKernel { input: input_p, out: out_p, ..k_s };
        let parallel = launch_with_policy(
            &device,
            &mut mem_p,
            &k_p,
            mode_sel,
            ExecPolicy::Parallel(workers),
        );

        // Full stats equality: name, config, per-counter totals, scaled
        // counters, block counts — everything `KernelStats` carries.
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(serial.executed_blocks, parallel.executed_blocks);
        prop_assert_eq!(serial.totals, parallel.totals);
        // Output buffers match bit-for-bit (both engines executed the
        // same block subset and wrote the same words).
        prop_assert_eq!(mem_s.read(out_s), mem_p.read(out_p));
    }
}

proptest! {
    /// Sampled statistics scale exactly for uniform workloads, for every
    /// sample size.
    #[test]
    fn sampled_stats_scale_exactly(
        blocks in 2u32..64,
        sample in 1u32..64,
    ) {
        let device = DeviceSpec::tesla_c2050();
        let n = blocks as usize * 128;
        let mut mem = GlobalMem::new();
        let buf = mem.alloc(n);
        let k = Fill { buf, n };
        let full = launch(&device, &mut mem, &k, ExecMode::Full);
        let sampled = launch(&device, &mut mem, &k, ExecMode::SampledStats(sample));
        prop_assert!((full.totals.flops - sampled.totals.flops).abs() < 1e-6);
        prop_assert!(
            (full.totals.store_transactions - sampled.totals.store_transactions).abs() < 1e-6
        );
        prop_assert_eq!(sampled.executed_blocks, blocks);
    }
}
