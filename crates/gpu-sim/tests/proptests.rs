//! Property tests of the GPU simulator's accounting.

use proptest::prelude::*;

use gpu_sim::{
    bank_conflict_degree, coalesce_transactions, launch, BlockCtx, DeviceSpec, ExecMode,
    GlobalMem, Kernel, LaunchConfig,
};

proptest! {
    /// Strided warp accesses need exactly the closed-form number of
    /// transactions: `ceil(span / segment)` distinct aligned segments.
    #[test]
    fn strided_transactions_match_closed_form(
        stride in 1u64..64,
        base in 0u64..1000,
    ) {
        let addrs: Vec<Option<u64>> = (0..32).map(|i| Some(base + i * stride)).collect();
        let got = coalesce_transactions(&addrs, 32);
        // Closed form: distinct values of (base + i*stride) >> 5.
        let mut segs: Vec<u64> = (0..32).map(|i| (base + i * stride) >> 5).collect();
        segs.sort_unstable();
        segs.dedup();
        prop_assert_eq!(got as usize, segs.len());
    }

    /// Transactions are monotone under adding lanes.
    #[test]
    fn transactions_monotone_in_active_lanes(
        addrs in proptest::collection::vec(0u64..10_000, 1..32),
    ) {
        let mut with_none: Vec<Option<u64>> = addrs.iter().copied().map(Some).collect();
        let full = coalesce_transactions(&with_none, 32);
        with_none.pop();
        let fewer = coalesce_transactions(&with_none, 32);
        prop_assert!(fewer <= full);
    }

    /// Bank conflict degree is between 1 and the number of distinct
    /// addresses, and broadcast never conflicts.
    #[test]
    fn bank_conflicts_bounded(
        addrs in proptest::collection::vec(0u64..512, 1..32),
        banks in prop::sample::select(vec![16u32, 32]),
    ) {
        let lanes: Vec<Option<u64>> = addrs.iter().copied().map(Some).collect();
        let degree = bank_conflict_degree(&lanes, banks);
        let mut distinct = addrs.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert!(degree >= 1);
        prop_assert!(degree as usize <= distinct.len().max(1));

        let broadcast: Vec<Option<u64>> = vec![Some(addrs[0]); addrs.len()];
        prop_assert_eq!(bank_conflict_degree(&broadcast, banks), 1);
    }
}

/// Kernel that writes `base + i` everywhere, used to check scaling.
struct Fill {
    buf: gpu_sim::BufId,
    n: usize,
}

impl Kernel for Fill {
    fn name(&self) -> &str {
        "fill"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig::new((self.n as u32).div_ceil(128), 128, 0)
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        for tid in ctx.threads() {
            let i = (block * 128 + tid) as usize;
            if i < self.n {
                ctx.st_global(0, tid, self.buf, i, i as f32);
                ctx.compute(tid, 1);
                ctx.count_flops(1);
            }
        }
    }
}

proptest! {
    /// Sampled statistics scale exactly for uniform workloads, for every
    /// sample size.
    #[test]
    fn sampled_stats_scale_exactly(
        blocks in 2u32..64,
        sample in 1u32..64,
    ) {
        let device = DeviceSpec::tesla_c2050();
        let n = blocks as usize * 128;
        let mut mem = GlobalMem::new();
        let buf = mem.alloc(n);
        let k = Fill { buf, n };
        let full = launch(&device, &mut mem, &k, ExecMode::Full);
        let sampled = launch(&device, &mut mem, &k, ExecMode::SampledStats(sample));
        prop_assert!((full.totals.flops - sampled.totals.flops).abs() < 1e-6);
        prop_assert!(
            (full.totals.store_transactions - sampled.totals.store_transactions).abs() < 1e-6
        );
        prop_assert_eq!(sampled.executed_blocks, blocks);
    }
}
