//! Error-path coverage: the compiler and runtime must fail loudly and
//! precisely, never silently mis-execute.

use adaptic::{compile, compile_single, InputAxis, StateBinding};
use gpu_sim::{DeviceSpec, ExecMode};
use streamir::error::Error;
use streamir::graph::bindings;
use streamir::parse::parse_program;

fn device() -> DeviceSpec {
    DeviceSpec::tesla_c2050()
}

#[test]
fn missing_state_binding_is_reported_with_names() {
    let p = parse_program(
        r#"pipeline P(N) {
            actor Scale(pop 1, push 1) {
                state a[1];
                push(a[0] * pop());
            }
        }"#,
    )
    .unwrap();
    let axis = InputAxis::total_size("N", 16, 4096);
    let compiled = compile(&p, &device(), &axis).unwrap();
    let err = compiled.run(64, &vec![1.0; 64]).unwrap_err();
    match err {
        Error::Runtime(msg) => {
            assert!(msg.contains("Scale"), "{msg}");
            assert!(msg.contains('a'), "{msg}");
        }
        other => panic!("expected runtime error, got {other:?}"),
    }
}

#[test]
fn insufficient_input_reports_requirements() {
    let p = parse_program(
        r#"pipeline P(N) {
            actor Sum(pop N, push 1) {
                acc = 0.0;
                for i in 0..N { acc = acc + pop(); }
                push(acc);
            }
        }"#,
    )
    .unwrap();
    let axis = InputAxis::total_size("N", 16, 4096);
    let compiled = compile(&p, &device(), &axis).unwrap();
    let err = compiled.run(1024, &[1.0; 10]).unwrap_err();
    assert!(matches!(
        err,
        Error::InsufficientInput {
            needed: 1024,
            got: 10
        }
    ));
}

#[test]
fn roundrobin_splitjoin_compiles_to_clear_error() {
    let p = parse_program(
        r#"pipeline P(N) {
            splitjoin {
                split roundrobin(1, 1);
                actor A(pop 1, push 1) { push(pop()); }
                actor B(pop 1, push 1) { push(pop()); }
                join roundrobin(1, 1);
            }
        }"#,
    )
    .unwrap();
    let axis = InputAxis::total_size("N", 16, 4096);
    let err = compile(&p, &device(), &axis).unwrap_err();
    match err {
        Error::Semantic(msg) => assert!(msg.contains("round-robin"), "{msg}"),
        other => panic!("expected semantic error, got {other:?}"),
    }
}

#[test]
fn mixed_splitjoin_branches_rejected() {
    // A reduction sibling next to a map sibling is neither supported shape.
    let p = parse_program(
        r#"pipeline P(N) {
            splitjoin {
                split duplicate;
                actor Sum4(pop 4, push 1) {
                    s = 0.0;
                    for i in 0..4 { s = s + pop(); }
                    push(s);
                }
                actor First(pop 4, push 1) { x = pop(); push(x); }
                join roundrobin(1, 1);
            }
        }"#,
    )
    .unwrap();
    let axis = InputAxis::total_size("N", 16, 4096);
    let err = compile(&p, &device(), &axis).unwrap_err();
    assert!(matches!(err, Error::Semantic(_)), "{err:?}");
}

#[test]
fn compile_single_runs_at_its_point() {
    let p = parse_program(
        r#"pipeline P(N) {
            actor Neg(pop 1, push 1) { push(0.0 - pop()); }
        }"#,
    )
    .unwrap();
    let compiled = compile_single(&p, &device(), &bindings(&[("N", 256)])).unwrap();
    assert_eq!(compiled.variant_count(), 1);
    let rep = compiled
        .run_with(1, &[1.0, -2.0, 3.0], &[], ExecMode::Full)
        .unwrap();
    assert_eq!(rep.output, vec![-1.0, 2.0, -3.0]);
}

#[test]
fn state_binding_surplus_is_harmless() {
    // Extra (unused) bindings must not fail the run.
    let p = parse_program("pipeline P(N) { actor Id(pop 1, push 1) { push(pop()); } }").unwrap();
    let axis = InputAxis::total_size("N", 16, 4096);
    let compiled = compile(&p, &device(), &axis).unwrap();
    let rep = compiled
        .run_with(
            64,
            &vec![2.0; 64],
            &[StateBinding::new("Ghost", "x", vec![1.0])],
            ExecMode::Full,
        )
        .unwrap();
    assert_eq!(rep.output, vec![2.0; 64]);
}

#[test]
fn axis_clamps_out_of_range_queries() {
    let p = parse_program("pipeline P(N) { actor Id(pop 1, push 1) { push(pop()); } }").unwrap();
    let axis = InputAxis::total_size("N", 100, 200);
    let compiled = compile(&p, &device(), &axis).unwrap();
    // Below and above the compiled range: clamped variants still run.
    let (lo_idx, _) = compiled.variant_for(1);
    let (hi_idx, _) = compiled.variant_for(1_000_000);
    assert_eq!(lo_idx, 0);
    assert_eq!(hi_idx, compiled.variant_count() - 1);
}
