//! Golden tests on the emitted CUDA text: the code generator's output for
//! representative kernels must keep the structural landmarks of the
//! paper's figures.

use adaptic::{compile, InputAxis};
use gpu_sim::DeviceSpec;
use streamir::parse::parse_program;

fn compiled_src(dsl: &str, param: &str, at: i64) -> String {
    let program = parse_program(dsl).unwrap();
    let device = DeviceSpec::tesla_c2050();
    let axis = InputAxis::total_size(param, 64, 1 << 22);
    let compiled = compile(&program, &device, &axis).unwrap();
    compiled.cuda_source(at)
}

#[test]
fn reduction_kernel_follows_figure8() {
    let src = compiled_src(
        r#"pipeline Sum(N) {
            actor Sum(pop N, push 1) {
                acc = 0.0;
                for i in 0..N { acc = acc + pop(); }
                push(acc);
            }
        }"#,
        "N",
        1 << 20,
    );
    // Figure 8's landmarks, in order: grid-stride global phase, shared
    // dump, barrier, L1 halving loop down to the warp, barrier-free L2.
    let landmarks = [
        "/* global memory reduction phase */",
        "i += blockDim.x",
        "sdata[threadIdx.x] =",
        "__syncthreads();",
        "/* shared memory reduction phase (L1) */",
        "stride >= WARP_SIZE",
        "/* warp tail, no barriers (L2) */",
        "out[blockIdx.x]",
    ];
    let mut cursor = 0usize;
    for l in landmarks {
        match src[cursor..].find(l) {
            Some(p) => cursor += p + l.len(),
            None => panic!("missing `{l}` after byte {cursor} in:\n{src}"),
        }
    }
}

#[test]
fn two_kernel_scheme_emits_initial_and_merge() {
    let src = compiled_src(
        r#"pipeline Sum(N) {
            actor Sum(pop N, push 1) {
                acc = 0.0;
                for i in 0..N { acc = acc + pop(); }
                push(acc);
            }
        }"#,
        "N",
        1 << 22,
    );
    assert!(src.contains("initial_reduce"), "{src}");
    assert!(src.contains("_merge"), "{src}");
}

#[test]
fn stencil_kernel_follows_figure6() {
    let program = parse_program(
        r#"pipeline Heat(rows, cols) {
            actor S(pop rows*cols, push rows*cols, peek rows*cols) {
                for idx in 0..rows*cols {
                    r = idx / cols;
                    c = idx % cols;
                    if (r > 0 && r < rows - 1 && c > 0 && c < cols - 1) {
                        push(0.25 * (peek(idx - 1) + peek(idx + 1)
                            + peek(idx - cols) + peek(idx + cols)));
                    } else {
                        push(peek(idx));
                    }
                }
            }
        }"#,
    )
    .unwrap();
    let device = DeviceSpec::tesla_c2050();
    let axis = InputAxis::new("side", 32, 2048, |s| {
        streamir::graph::bindings(&[("rows", s), ("cols", s)])
    });
    let compiled = compile(&program, &device, &axis).unwrap();
    let src = compiled.cuda_source(512);
    // Landmarks of Figure 6: staged tile in shared memory, one barrier,
    // then shared-served computation.
    assert!(src.contains("__shared__ float tile"), "{src}");
    assert!(src.contains("stage super tile + halo (Figure 6)"), "{src}");
    assert!(src.contains("__syncthreads();"));
    assert!(src.contains("#define PEEK(g) tile["));
}

#[test]
fn map_layout_macros_reflect_restructuring() {
    let src = compiled_src(
        "pipeline P(N) { actor M(pop 1, push 1) { push(exp(pop())); } }",
        "N",
        1 << 16,
    );
    assert!(src.contains("#define IN_ADDR"), "{src}");
    assert!(src.contains("expf("));
    assert!(src.contains("if (unit >= units) continue;"));
}

#[test]
fn emitted_source_braces_balance() {
    for (dsl, param, at) in [
        (
            r#"pipeline Sum(N) {
                actor Sum(pop N, push 1) {
                    acc = 0.0;
                    for i in 0..N { acc = acc + pop(); }
                    push(sqrt(acc));
                }
            }"#,
            "N",
            1i64 << 18,
        ),
        (
            "pipeline P(N) { actor M(pop 2, push 1) { a = pop(); b = pop(); push(max(a, b)); } }",
            "N",
            4096,
        ),
    ] {
        let src = compiled_src(dsl, param, at);
        let opens = src.matches('{').count();
        let closes = src.matches('}').count();
        assert_eq!(opens, closes, "unbalanced braces in:\n{src}");
        let popen = src.matches('(').count();
        let pclose = src.matches(')').count();
        assert_eq!(popen, pclose, "unbalanced parens in:\n{src}");
    }
}
