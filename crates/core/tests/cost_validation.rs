//! Cross-validation of the closed-form cost profiles against measured
//! simulator statistics — the promise DESIGN.md makes: the formulas the
//! compiler decides with must track what the kernels actually do.

use adaptic::analysis::reduction::CombineOp;
use adaptic::cost::{initial_reduce_profile, map_profile, single_reduce_profile};
use adaptic::layout::Layout;
use adaptic::templates::{two_kernel_reduce, MapKernel, ReduceSpec, SingleKernelReduce};
use gpu_sim::{launch, DeviceSpec, ExecMode, GlobalMem};
use perfmodel::LaunchProfile;
use streamir::graph::bindings;
use streamir::parse::parse_program;

fn within(a: f64, b: f64, factor: f64) -> bool {
    if a == 0.0 && b == 0.0 {
        return true;
    }
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    hi <= lo * factor + 1e-9
}

fn check(predicted: &LaunchProfile, measured: &LaunchProfile, what: &str) {
    assert_eq!(predicted.grid_dim, measured.grid_dim, "{what}: grid");
    assert!(
        within(
            predicted.mem_insts_per_warp,
            measured.mem_insts_per_warp,
            1.6
        ),
        "{what}: mem insts/warp predicted {:.2} vs measured {:.2}",
        predicted.mem_insts_per_warp,
        measured.mem_insts_per_warp
    );
    assert!(
        within(
            predicted.transactions_per_mem_inst,
            measured.transactions_per_mem_inst,
            1.6
        ),
        "{what}: trans/inst predicted {:.2} vs measured {:.2}",
        predicted.transactions_per_mem_inst,
        measured.transactions_per_mem_inst
    );
}

#[test]
fn map_profile_tracks_measurement() {
    let device = DeviceSpec::tesla_c2050();
    let src = "pipeline P(N) { actor M(pop 2, push 1) { a = pop(); b = pop(); push(a * b); } }";
    let program = parse_program(src).unwrap();
    let units = 1usize << 14;
    for (layout, staged_input) in [(Layout::RowMajor, false), (Layout::Transposed, true)] {
        let input: Vec<f32> = (0..2 * units).map(|i| (i % 7) as f32).collect();
        let data = if staged_input {
            adaptic::restructure(&input, 2)
        } else {
            input
        };
        let mut mem = GlobalMem::new();
        let in_buf = mem.alloc_from(&data);
        let out_buf = mem.alloc(units);
        let k = MapKernel::new(
            "m",
            program.actors[0].work.body.clone(),
            bindings(&[]),
            None,
            units,
            2,
            1,
            in_buf,
            out_buf,
        )
        .with_layouts(layout, layout);
        let stats = launch(&device, &mut mem, &k, ExecMode::Full);
        let measured = LaunchProfile::from_stats(&device, &stats);
        let predicted = map_profile(&device, units, 2, 1, 0.0, 2.0, 1.0, layout, layout, 1, 256);
        check(&predicted, &measured, &format!("map {layout:?}"));
    }
}

#[test]
fn single_reduce_profile_tracks_measurement() {
    let device = DeviceSpec::tesla_c2050();
    let (n_arrays, n_elements) = (64usize, 2048usize);
    let data: Vec<f32> = (0..n_arrays * n_elements).map(|i| (i % 5) as f32).collect();
    let mut mem = GlobalMem::new();
    let in_buf = mem.alloc_from(&data);
    let out_buf = mem.alloc(n_arrays);
    let k = SingleKernelReduce {
        spec: ReduceSpec::raw(CombineOp::Add, bindings(&[])),
        name: "sum".into(),
        n_arrays,
        n_elements,
        arrays_per_block: 1,
        block_dim: 256,
        in_buf,
        in_layout: Layout::RowMajor,
        out_buf,
        apply_post: true,
        out_stride: 1,
        out_offset: 0,
    };
    let stats = launch(&device, &mut mem, &k, ExecMode::Full);
    let measured = LaunchProfile::from_stats(&device, &stats);
    let predicted = single_reduce_profile(
        &device,
        n_arrays,
        n_elements,
        1,
        0.0,
        2.0,
        1,
        256,
        Layout::RowMajor,
    );
    check(&predicted, &measured, "single-kernel reduce");
}

#[test]
fn initial_reduce_profile_tracks_measurement() {
    let device = DeviceSpec::tesla_c2050();
    let n = 1usize << 18;
    let blocks = 28usize;
    let data: Vec<f32> = (0..n).map(|i| (i % 3) as f32).collect();
    let mut mem = GlobalMem::new();
    let in_buf = mem.alloc_from(&data);
    let partials = mem.alloc(blocks);
    let out = mem.alloc(1);
    let (k1, _k2) = two_kernel_reduce(
        ReduceSpec::raw(CombineOp::Add, bindings(&[])),
        1,
        n,
        blocks,
        256,
        in_buf,
        Layout::RowMajor,
        partials,
        out,
    );
    let stats = launch(&device, &mut mem, &k1, ExecMode::Full);
    let measured = LaunchProfile::from_stats(&device, &stats);
    let predicted =
        initial_reduce_profile(&device, 1, n, 1, 0.0, 2.0, blocks, 256, Layout::RowMajor);
    check(&predicted, &measured, "initial reduce");
}

#[test]
fn predicted_ordering_matches_measured_ordering_for_reduction_schemes() {
    // The decision the compiler actually makes: at 1 array x 256K
    // elements, both the model and the measurement must rank two-kernel
    // ahead of one-kernel; at 4096 x 64 the ranking must flip.
    let device = DeviceSpec::tesla_c2050();
    let measure = |n_arrays: usize, n_elements: usize, two: bool| -> f64 {
        let data = vec![1.0f32; n_arrays * n_elements];
        let mut mem = GlobalMem::new();
        let in_buf = mem.alloc_from(&data);
        let out = mem.alloc(n_arrays);
        let mut total = 0.0;
        if two {
            let blocks = 28usize.min(n_elements.div_ceil(256)).max(2);
            let partials = mem.alloc(n_arrays * blocks);
            let (k1, k2) = two_kernel_reduce(
                ReduceSpec::raw(CombineOp::Add, bindings(&[])),
                n_arrays,
                n_elements,
                blocks,
                256,
                in_buf,
                Layout::RowMajor,
                partials,
                out,
            );
            for k in [&k1 as &dyn gpu_sim::Kernel, &k2] {
                let stats = launch(&device, &mut mem, k, ExecMode::SampledExec(64));
                total += perfmodel::estimate_stats(&device, &stats).time_us;
            }
        } else {
            let k = SingleKernelReduce {
                spec: ReduceSpec::raw(CombineOp::Add, bindings(&[])),
                name: "one".into(),
                n_arrays,
                n_elements,
                arrays_per_block: 1,
                block_dim: 256,
                in_buf,
                in_layout: Layout::RowMajor,
                out_buf: out,
                apply_post: true,
                out_stride: 1,
                out_offset: 0,
            };
            let stats = launch(&device, &mut mem, &k, ExecMode::SampledExec(64));
            total = perfmodel::estimate_stats(&device, &stats).time_us;
        }
        total
    };
    // One huge array: two-kernel wins.
    assert!(measure(1, 1 << 18, true) < measure(1, 1 << 18, false));
    // Many short arrays: one-kernel wins.
    assert!(measure(4096, 64, false) < measure(4096, 64, true));
}
