//! Property tests of the compiler's transformations and templates.

use proptest::prelude::*;

use adaptic::analysis::reduction::CombineOp;
use adaptic::layout::Layout;
use adaptic::templates::{two_kernel_reduce, ReduceSpec, SingleKernelReduce};
use gpu_sim::{launch, DeviceSpec, ExecMode, GlobalMem};
use streamir::graph::bindings;

fn close(a: f32, b: f32, tol: f32) -> bool {
    (a - b).abs() <= tol * b.abs().max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every reduction lowering (one-kernel with any group shape, and
    /// two-kernel with any chunking) computes the same value.
    #[test]
    fn reduction_variants_agree(
        log_n in 5u32..13,
        arrays_per_block in prop::sample::select(vec![1usize, 2, 4, 8]),
        block_dim in prop::sample::select(vec![128u32, 256]),
        initial_blocks in 2usize..24,
        seed in 0u64..1000,
    ) {
        let n = 1usize << log_n;
        let data: Vec<f32> = (0..n)
            .map(|i| (((i as u64).wrapping_mul(seed + 7) % 37) as f32) - 18.0)
            .collect();
        let want: f32 = data.iter().sum();
        let device = DeviceSpec::tesla_c2050();

        // One-kernel with group shape constraints honored.
        if block_dim as usize / arrays_per_block >= 32 {
            let mut mem = GlobalMem::new();
            let in_buf = mem.alloc_from(&data);
            let out = mem.alloc(1);
            let k = SingleKernelReduce {
                spec: ReduceSpec::raw(CombineOp::Add, bindings(&[])),
                name: "one".into(),
                n_arrays: 1,
                n_elements: n,
                arrays_per_block: 1, // one array: groups beyond 1 idle
                block_dim,
                in_buf,
                in_layout: Layout::RowMajor,
                out_buf: out,
                apply_post: true,
                out_stride: 1,
                out_offset: 0,
            };
            launch(&device, &mut mem, &k, ExecMode::Full);
            prop_assert!(close(mem.read(out)[0], want, 1e-3));
        }

        // Two-kernel with arbitrary chunking.
        let mut mem = GlobalMem::new();
        let in_buf = mem.alloc_from(&data);
        let partials = mem.alloc(initial_blocks);
        let out = mem.alloc(1);
        let (k1, k2) = two_kernel_reduce(
            ReduceSpec::raw(CombineOp::Add, bindings(&[])),
            1,
            n,
            initial_blocks,
            block_dim,
            in_buf,
            Layout::RowMajor,
            partials,
            out,
        );
        launch(&device, &mut mem, &k1, ExecMode::Full);
        launch(&device, &mut mem, &k2, ExecMode::Full);
        prop_assert!(close(mem.read(out)[0], want, 1e-3));
    }

    /// Max/min reductions are exact (no reassociation error) under every
    /// lowering.
    #[test]
    fn extremum_reductions_are_exact(
        log_n in 5u32..12,
        op_is_max in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let n = 1usize << log_n;
        let data: Vec<f32> = (0..n)
            .map(|i| (((i as u64).wrapping_mul(seed + 13) % 1009) as f32) - 500.0)
            .collect();
        let op = if op_is_max { CombineOp::Max } else { CombineOp::Min };
        let want = data
            .iter()
            .cloned()
            .fold(op.identity(), |a, b| op.apply(a, b));
        let device = DeviceSpec::gtx285();
        let mut mem = GlobalMem::new();
        let in_buf = mem.alloc_from(&data);
        let out = mem.alloc(1);
        let k = SingleKernelReduce {
            spec: ReduceSpec::raw(op, bindings(&[])),
            name: "ext".into(),
            n_arrays: 1,
            n_elements: n,
            arrays_per_block: 1,
            block_dim: 128,
            in_buf,
            in_layout: Layout::RowMajor,
            out_buf: out,
            apply_post: true,
            out_stride: 1,
            out_offset: 0,
        };
        launch(&device, &mut mem, &k, ExecMode::Full);
        prop_assert_eq!(mem.read(out)[0], want);
    }

    /// Layout choice never changes a map kernel's output, only its
    /// access pattern; and the transposed layout is never worse in
    /// transactions.
    #[test]
    fn layout_preserves_results_and_helps_coalescing(
        rate in prop::sample::select(vec![2usize, 3, 4, 8]),
        firings in 16usize..200,
    ) {
        use adaptic::templates::MapKernel;
        use streamir::parse::parse_program;

        let program = parse_program(
            "pipeline P(N) { actor M(pop 2, push 2) { a = pop(); b = pop(); push(b); push(a); } }",
        ).unwrap();
        let _ = &program;
        // Build a swap-all body at the requested rate programmatically.
        use streamir::ir::{Expr, Stmt};
        let mut body = Vec::new();
        for j in 0..rate {
            body.push(Stmt::Assign {
                name: format!("v{j}"),
                expr: Expr::Pop,
            });
        }
        for j in (0..rate).rev() {
            body.push(Stmt::Push(Expr::var(&format!("v{j}"))));
        }

        let data: Vec<f32> = (0..rate * firings).map(|i| i as f32).collect();
        let device = DeviceSpec::tesla_c2050();
        let mut outs = Vec::new();
        let mut txs = Vec::new();
        for layout in [Layout::RowMajor, Layout::Transposed] {
            let mut mem = GlobalMem::new();
            let staged = match layout {
                Layout::RowMajor => data.clone(),
                Layout::Transposed => adaptic::restructure(&data, rate),
            };
            let in_buf = mem.alloc_from(&staged);
            let out_buf = mem.alloc(data.len());
            let k = MapKernel::new(
                "m", body.clone(), bindings(&[]), None, firings, rate, rate, in_buf, out_buf,
            )
            .with_layouts(layout, layout);
            let stats = launch(&device, &mut mem, &k, ExecMode::Full);
            let raw = mem.read(out_buf).to_vec();
            let out = match layout {
                Layout::RowMajor => raw,
                Layout::Transposed => adaptic::unrestructure(&raw, rate),
            };
            outs.push(out);
            txs.push(stats.totals.transactions());
        }
        prop_assert_eq!(&outs[0], &outs[1]);
        prop_assert!(txs[1] <= txs[0], "transposed {} > row-major {}", txs[1], txs[0]);
    }
}
