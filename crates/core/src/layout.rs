//! Buffer layouts and the memory-restructuring transform (§4.1.1).
//!
//! In the natural streaming layout ([`Layout::RowMajor`]), firing `f`'s
//! window occupies words `[f*pop, (f+1)*pop)`. When one GPU thread executes
//! one firing, lane-consecutive threads then access addresses `pop` words
//! apart — non-coalesced for any `pop > 1` (Figure 3a of the paper).
//!
//! *Memory restructuring* transposes the buffer ([`Layout::Transposed`]):
//! the j-th item of every firing is stored contiguously across firings, so
//! each pop instruction of a warp touches consecutive addresses
//! (Figure 3b). The host performs the transform at data-generation time,
//! so no kernel cycles are spent on it; the kernels merely compute
//! different addresses.

/// How a stream buffer is laid out in device memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Firing-major: firing `f`, item `j` at `f*rate + j`.
    RowMajor,
    /// Item-major (restructured): firing `f`, item `j` at `j*firings + f`.
    Transposed,
}

impl Layout {
    /// Device address of item `j` in firing `f`'s window.
    #[inline]
    pub fn addr(self, firing: usize, j: usize, rate: usize, firings: usize) -> usize {
        match self {
            Layout::RowMajor => firing * rate + j,
            Layout::Transposed => j * firings + firing,
        }
    }

    /// Transactions per warp memory instruction when `warp_size`
    /// lane-consecutive threads each access item `j` of consecutive
    /// firings (the closed-form the compiler uses before running anything).
    pub fn transactions_per_access(self, rate: usize, warp_size: u32) -> f64 {
        match self {
            // Stride = rate: lanes span `rate * warp_size` words; each
            // transaction covers `warp_size` words.
            Layout::RowMajor => (rate as f64).min(warp_size as f64).max(1.0),
            Layout::Transposed => 1.0,
        }
    }
}

/// Restructure a row-major stream buffer into the transposed layout.
///
/// `rate` is the per-firing window size; `data.len()` must be a multiple
/// of it.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `rate` or `rate` is zero.
pub fn restructure(data: &[f32], rate: usize) -> Vec<f32> {
    assert!(rate > 0, "rate must be positive");
    assert_eq!(
        data.len() % rate,
        0,
        "buffer length {} not a multiple of rate {rate}",
        data.len()
    );
    let firings = data.len() / rate;
    let mut out = vec![0.0; data.len()];
    for f in 0..firings {
        for j in 0..rate {
            out[j * firings + f] = data[f * rate + j];
        }
    }
    out
}

/// Invert [`restructure`].
///
/// # Panics
///
/// Panics under the same conditions as [`restructure`].
pub fn unrestructure(data: &[f32], rate: usize) -> Vec<f32> {
    assert!(rate > 0, "rate must be positive");
    assert_eq!(
        data.len() % rate,
        0,
        "buffer length {} not a multiple of rate {rate}",
        data.len()
    );
    let firings = data.len() / rate;
    let mut out = vec![0.0; data.len()];
    for f in 0..firings {
        for j in 0..rate {
            out[f * rate + j] = data[j * firings + f];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_addressing() {
        assert_eq!(Layout::RowMajor.addr(2, 1, 4, 10), 9);
        assert_eq!(Layout::Transposed.addr(2, 1, 4, 10), 12);
    }

    #[test]
    fn restructure_round_trips() {
        let data: Vec<f32> = (0..24).map(|i| i as f32).collect();
        for rate in [1, 2, 3, 4, 6, 8, 12, 24] {
            let t = restructure(&data, rate);
            assert_eq!(unrestructure(&t, rate), data, "rate {rate}");
        }
    }

    #[test]
    fn restructure_matches_addressing() {
        let rate = 3;
        let firings = 4;
        let data: Vec<f32> = (0..rate * firings).map(|i| i as f32).collect();
        let t = restructure(&data, rate);
        for f in 0..firings {
            for j in 0..rate {
                assert_eq!(
                    t[Layout::Transposed.addr(f, j, rate, firings)],
                    data[Layout::RowMajor.addr(f, j, rate, firings)]
                );
            }
        }
    }

    #[test]
    fn transaction_estimates() {
        assert_eq!(Layout::RowMajor.transactions_per_access(1, 32), 1.0);
        assert_eq!(Layout::RowMajor.transactions_per_access(4, 32), 4.0);
        assert_eq!(Layout::RowMajor.transactions_per_access(64, 32), 32.0);
        assert_eq!(Layout::Transposed.transactions_per_access(64, 32), 1.0);
    }

    #[test]
    fn rate_one_is_identity() {
        let data = vec![1.0, 2.0, 3.0];
        assert_eq!(restructure(&data, 1), data);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_buffer_panics() {
        let _ = restructure(&[1.0, 2.0, 3.0], 2);
    }
}
