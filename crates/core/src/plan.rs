//! The compilation pipeline: structure building, per-input-range decision
//! making, and the variant table (§3 of the paper, Figure 2).
//!
//! `compile` takes a platform-independent streaming program, a target
//! device and a *range of interest* over one input axis, and produces a
//! [`CompiledProgram`]: a fixed graph *structure* (what got fused with
//! what, which pattern each actor matched) plus a table of *variants*,
//! each covering a sub-range of the axis with concrete lowering choices
//! (reduction scheme, tile geometry, coarsening factor). At run time the
//! kernel-management unit (`runtime` module) selects the variant for the
//! actual input and launches it.

use std::fmt;
use std::sync::Arc;

use gpu_sim::DeviceSpec;
use perfmodel::estimate;
use streamir::error::{Error, Result};
use streamir::graph::{FlatNode, Program, Splitter};
use streamir::ir::{Expr, Stmt};
use streamir::rates::Bindings;
use streamir::schedule::{rate_match, Schedule};

use crate::analysis::opcount::{body_counts, eval_bound};
use crate::analysis::recurrence::ParallelLoop;
use crate::analysis::reduction::ReductionPattern;
use crate::analysis::stencil::StencilPattern;
use crate::analysis::{classify, ActorClass};
use crate::bytecode::{self, FramePool};
use crate::cost::map_profile;
use crate::layout::Layout;
use crate::opt::integration::{can_fuse_horizontal, fuse_into_reduction, fuse_parallel_loops};
use crate::opt::memory::{choose_edge_layout, choose_tile};
use crate::opt::segmentation::{best_reduce_choice, ReduceChoice};

/// The one-dimensional family of input shapes a program is compiled for.
///
/// Every evaluation in the paper sweeps a one-parameter family (total
/// size, or shape at a fixed element count); `bind` maps the axis value to
/// full parameter bindings.
#[derive(Clone)]
pub struct InputAxis {
    /// Descriptive name of the axis (e.g. `"N"`, `"rows"`).
    pub name: String,
    /// Inclusive range of interest `[lo, hi]`.
    pub lo: i64,
    pub hi: i64,
    binder: Arc<dyn Fn(i64) -> Bindings + Send + Sync>,
    /// Expected program-input length at each axis point; `None` means one
    /// steady state. This is how the compiler knows the *firing counts*
    /// (e.g. TMV's row count) before any data exists.
    items: Option<Arc<dyn Fn(i64) -> i64 + Send + Sync>>,
}

impl fmt::Debug for InputAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InputAxis")
            .field("name", &self.name)
            .field("lo", &self.lo)
            .field("hi", &self.hi)
            .finish_non_exhaustive()
    }
}

impl InputAxis {
    /// An axis binding a single parameter to the axis value.
    pub fn total_size(param: &str, lo: i64, hi: i64) -> InputAxis {
        let p = param.to_string();
        InputAxis {
            name: p.clone(),
            lo,
            hi,
            binder: Arc::new(move |x| {
                let mut b = Bindings::new();
                b.insert(p.clone(), x);
                b
            }),
            items: None,
        }
    }

    /// A general axis with a custom binder.
    pub fn new(
        name: &str,
        lo: i64,
        hi: i64,
        binder: impl Fn(i64) -> Bindings + Send + Sync + 'static,
    ) -> InputAxis {
        InputAxis {
            name: name.to_string(),
            lo,
            hi,
            binder: Arc::new(binder),
            items: None,
        }
    }

    /// Declare the expected program-input length as a function of the axis
    /// value. Without it, compile-time decisions assume one steady state
    /// per execution; with it, firing counts (and thus e.g. a reduction's
    /// array count) are input-aware.
    pub fn with_items(mut self, f: impl Fn(i64) -> i64 + Send + Sync + 'static) -> InputAxis {
        self.items = Some(Arc::new(f));
        self
    }

    /// Steady-state iterations expected at axis value `x`.
    pub fn expected_iterations(&self, x: i64, steady_input: u64) -> u64 {
        match (&self.items, steady_input) {
            (Some(f), s) if s > 0 => ((f(x).max(0) as u64) / s).max(1),
            _ => 1,
        }
    }

    /// Parameter bindings at axis value `x`.
    pub fn bind(&self, x: i64) -> Bindings {
        (self.binder)(x)
    }

    /// Geometric midpoint of the range (the structure probe point).
    pub fn probe_point(&self) -> i64 {
        let (lo, hi) = (self.lo.max(1) as f64, self.hi.max(1) as f64);
        (lo * hi).sqrt() as i64
    }
}

/// Which optimization families the compiler may use — the knob behind the
/// paper's Figure 11/12 breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Actor segmentation (§4.2): input-aware reduction schemes and
    /// intra-actor parallelization beyond the baseline lowering.
    pub segmentation: bool,
    /// Memory optimizations (§4.1): restructuring and adaptive super
    /// tiles.
    pub memory: bool,
    /// Actor integration (§4.3): vertical/horizontal fusion and thread
    /// coarsening.
    pub integration: bool,
    /// Probe points used when building the variant table.
    pub probes: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            segmentation: true,
            memory: true,
            integration: true,
            probes: 33,
        }
    }
}

impl CompileOptions {
    /// The input-unaware baseline (§3's "input-unaware optimizations"
    /// only).
    pub fn baseline() -> Self {
        CompileOptions {
            segmentation: false,
            memory: false,
            integration: false,
            probes: 9,
        }
    }
}

/// Optimizations active in a variant, for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OptTag {
    MemoryRestructuring,
    NeighboringAccess,
    StreamReduction,
    IntraActorParallelization,
    VerticalIntegration,
    HorizontalIntegration,
    ThreadIntegration,
}

/// How the input is counted for one work unit of a segment.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum UnitsPerFiring {
    /// One unit per firing (plain map actor).
    One,
    /// One unit per loop iteration; expression gives iterations/firing.
    Loop(Expr),
}

/// A map-like segment (plain maps, parallelized loops, fused chains).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct UnitSeg {
    pub body: Vec<Stmt>,
    pub loop_var: Option<String>,
    pub units_per_firing: UnitsPerFiring,
    pub pops_per_unit: usize,
    pub pushes_per_unit: usize,
    /// For peek-window loops: the firing's input window size (the actor's
    /// pop rate); iterations share the window read-only.
    pub window_pop: Option<streamir::rates::RateExpr>,
    /// Actors whose state arrays this segment reads.
    pub state_actors: Vec<String>,
    pub fused_count: usize,
    pub has_parloop: bool,
}

/// A reduction segment.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ReduceSeg {
    pub pattern: ReductionPattern,
    pub actor: String,
    pub fused_producer: bool,
}

/// A stencil segment.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct StencilSeg {
    pub pattern: StencilPattern,
    pub actor: String,
}

/// A horizontally-integrable split-join of sibling reductions.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct HFusedSeg {
    pub patterns: Vec<ReductionPattern>,
    pub actors: Vec<String>,
}

/// A duplicate split-join of sibling *map* actors that could not be fused
/// (integration disabled or non-straightline bodies): lowered as one
/// kernel per sibling with interleaved output groups.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct MapSiblingsSeg {
    /// (body, pushes, actor name) per sibling; all share the same pop
    /// window.
    pub branches: Vec<(Vec<Stmt>, usize, String)>,
    pub pops_per_unit: usize,
    pub total_push: usize,
}

/// One stage of the lowered pipeline.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum SegKind {
    Unit(UnitSeg),
    Reduce(ReduceSeg),
    Stencil(StencilSeg),
    HFused(HFusedSeg),
    MapSiblings(MapSiblingsSeg),
    /// Host-interpreted actor (index into `Program::actors`).
    Opaque(usize),
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Segment {
    pub kind: SegKind,
    /// Flat-graph node whose repetition count drives this segment.
    pub node: usize,
    pub label: String,
}

/// Plan-time bytecode for one segment (parallel to
/// [`CompiledProgram::segments`]): every work body is lowered exactly once
/// at compile time; launches only re-bind parameter slots against the
/// concrete axis value.
#[derive(Debug, Clone)]
pub(crate) enum SegPrograms {
    Unit(Arc<bytecode::Program>),
    Reduce {
        elem: Arc<bytecode::Program>,
        post: Option<Arc<bytecode::Program>>,
        /// The serial (thread-per-array) lowering of the same pattern.
        serial: Arc<bytecode::Program>,
    },
    Stencil(Arc<bytecode::Program>),
    /// `(elem, post)` per sibling reduction.
    HFused(Vec<(Arc<bytecode::Program>, Option<Arc<bytecode::Program>>)>),
    MapSiblings(Vec<Arc<bytecode::Program>>),
    /// Opaque host body; `None` when the body does not lower (the host
    /// fallback then walks the AST).
    Opaque(Option<Arc<bytecode::Program>>),
}

/// Lower every segment body to bytecode once. Parameter *names* are what
/// matter here — [`InputAxis::bind`] produces the same keys at every axis
/// value, so programs compiled at the probe point re-bind at any `x`.
fn compile_programs(
    program: &Program,
    segments: &[Segment],
    binds: &Bindings,
) -> Result<Vec<SegPrograms>> {
    let reduce_programs = |p: &ReductionPattern| -> Result<_> {
        let elem = Arc::new(bytecode::compile_expr(&p.elem, binds, &[&p.loop_var])?);
        let post = if p.post_is_identity() {
            None
        } else {
            Some(Arc::new(bytecode::compile_expr(&p.post, binds, &[&p.acc])?))
        };
        Ok((elem, post))
    };
    segments
        .iter()
        .map(|seg| {
            Ok(match &seg.kind {
                SegKind::Unit(u) => {
                    let presets: Vec<&str> = u.loop_var.iter().map(String::as_str).collect();
                    SegPrograms::Unit(Arc::new(bytecode::compile_body(&u.body, binds, &presets)?))
                }
                SegKind::Reduce(r) => {
                    let (elem, post) = reduce_programs(&r.pattern)?;
                    let serial_body = crate::runtime::pattern_to_serial_body(&r.pattern);
                    let serial = Arc::new(bytecode::compile_body(&serial_body, binds, &[])?);
                    SegPrograms::Reduce { elem, post, serial }
                }
                SegKind::Stencil(s) => SegPrograms::Stencil(Arc::new(bytecode::compile_body(
                    &s.pattern.body,
                    binds,
                    &[&s.pattern.loop_var],
                )?)),
                SegKind::HFused(h) => SegPrograms::HFused(
                    h.patterns
                        .iter()
                        .map(reduce_programs)
                        .collect::<Result<_>>()?,
                ),
                SegKind::MapSiblings(m) => SegPrograms::MapSiblings(
                    m.branches
                        .iter()
                        .map(|(body, _, _)| Ok(Arc::new(bytecode::compile_body(body, binds, &[])?)))
                        .collect::<Result<_>>()?,
                ),
                SegKind::Opaque(idx) => {
                    let actor = &program.actors[*idx];
                    let presets: Vec<&str> = actor
                        .state
                        .iter()
                        .filter_map(|sv| match sv {
                            streamir::actor::StateVar::Scalar { name, .. } => Some(name.as_str()),
                            _ => None,
                        })
                        .collect();
                    SegPrograms::Opaque(
                        bytecode::compile_body(&actor.work.body, binds, &presets)
                            .ok()
                            .map(Arc::new),
                    )
                }
            })
        })
        .collect()
}

/// Lowering decision for one segment in one variant.
#[derive(Debug, Clone, PartialEq)]
pub enum SegChoice {
    /// Map-like segment with a thread-coarsening factor.
    Map { coarsen: usize },
    /// Reduction scheme.
    Reduce { choice: ReduceChoice },
    /// Stencil super-tile geometry.
    Stencil { tile: (usize, usize) },
    /// Split-join of reductions: fused into one kernel or not.
    HFused { fused: bool },
    /// Split-join of maps lowered one kernel per sibling.
    MapSiblings,
    /// Host execution.
    Opaque,
}

/// A sub-range of the input axis with its lowering decisions.
#[derive(Debug, Clone, PartialEq)]
pub struct Variant {
    /// Inclusive axis sub-range.
    pub lo: i64,
    pub hi: i64,
    /// One choice per segment.
    pub choices: Vec<SegChoice>,
    /// Active optimizations (for reports).
    pub tags: Vec<OptTag>,
}

/// A compiled program: structure + variant table + everything needed to
/// run it.
///
/// Execution entry points live in [`crate::runtime`]:
/// [`run`](CompiledProgram::run) and
/// [`run_with`](CompiledProgram::run_with) use the serial engine, while
/// [`run_opts`](CompiledProgram::run_opts) selects the execution engine
/// via [`crate::RunOptions`] (deterministic parallel block execution) and
/// can memoize launch statistics through a [`crate::LaunchCache`] for
/// timing-only sweeps.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// [`content_hash`] of the (program, axis, options) this was compiled
    /// from — one half of the program's [`artifact
    /// key`](CompiledProgram::artifact_key).
    pub(crate) content_hash: u64,
    pub(crate) program: Program,
    pub(crate) device: DeviceSpec,
    pub(crate) axis: InputAxis,
    pub(crate) options: CompileOptions,
    pub(crate) segments: Vec<Segment>,
    /// Per-segment bytecode, lowered once at compile time (parallel to
    /// `segments`).
    pub(crate) programs: Vec<SegPrograms>,
    /// Frame pool shared by every launch of this program: kernel workers
    /// recycle slot/stack frames across firings, blocks and runs.
    pub(crate) frames: Arc<FramePool>,
    /// Warp-frame pool: the SoA lane-row analogue of `frames`, recycled
    /// by the warp-batched evaluator across blocks and runs.
    pub(crate) warp_frames: Arc<crate::warp::WarpFramePool>,
    pub(crate) edge_layouts: Vec<Layout>,
    /// Variant table ordered by `lo`.
    pub variants: Vec<Variant>,
}

impl CompiledProgram {
    /// The variant covering axis value `x` (clamped into the range).
    ///
    /// # Panics
    ///
    /// Panics when the variant table is empty; use
    /// [`try_variant_for`](CompiledProgram::try_variant_for) for a typed
    /// error instead.
    pub fn variant_for(&self, x: i64) -> (usize, &Variant) {
        let x = x.clamp(self.axis.lo, self.axis.hi);
        self.try_variant_for(x)
            .expect("variant table tiles the axis")
    }

    /// The variant covering axis value `x`, rejecting invalid selections
    /// with typed errors instead of clamping or panicking: an empty table
    /// is [`Error::EmptyVariantTable`], an `x` outside the compiled range
    /// is [`Error::InputOutOfRange`].
    pub fn try_variant_for(&self, x: i64) -> Result<(usize, &Variant)> {
        if self.variants.is_empty() {
            return Err(Error::EmptyVariantTable);
        }
        if x < self.axis.lo || x > self.axis.hi {
            return Err(Error::InputOutOfRange {
                x,
                lo: self.axis.lo,
                hi: self.axis.hi,
            });
        }
        let idx = self
            .variants
            .iter()
            .position(|v| x >= v.lo && x <= v.hi)
            .expect("variant table tiles the axis");
        Ok((idx, &self.variants[idx]))
    }

    /// The declared input range `[lo, hi]` of the compiled axis.
    pub fn axis_range(&self) -> (i64, i64) {
        (self.axis.lo, self.axis.hi)
    }

    /// Stable [`content_hash`] of the compilation request.
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// The content address of this program on its device — the key its
    /// plan and learned KMU state live under in an
    /// [`ArtifactStore`](crate::artifact::ArtifactStore).
    pub fn artifact_key(&self) -> crate::artifact::ArtifactKey {
        crate::artifact::ArtifactKey {
            content: self.content_hash,
            device: self.device.fingerprint(),
        }
    }

    /// A copy of this program's plan-time tables — the exact payload
    /// [`compile_with_store`] persists — for explicit
    /// [`ArtifactStore::store_plan`](crate::artifact::ArtifactStore::store_plan)
    /// calls and roundtrip tests.
    pub fn export_plan(&self) -> crate::artifact::PlanArtifact {
        crate::artifact::PlanArtifact::new(
            self.programs.clone(),
            self.edge_layouts.clone(),
            self.variants.clone(),
        )
    }

    /// The analytical model's predicted execution time (µs) of running
    /// variant `variant_index`'s lowering decisions at axis value `x` —
    /// the same per-segment cost readout the planner used to place the
    /// table's boundaries, exposed so the runtime kernel-management unit
    /// can compare prediction against measurement and recalibrate.
    ///
    /// `x` need not lie inside the variant's own sub-range: the KMU
    /// evaluates each variant's cost curve across a *neighboring* range
    /// when re-locating a break-even point. Returns `None` when the
    /// variant index is out of bounds or the axis value cannot be
    /// scheduled.
    pub fn predicted_time_us(&self, x: i64, variant_index: usize) -> Option<f64> {
        let variant = self.variants.get(variant_index)?;
        let binds = self.axis.bind(x);
        let fg = self.program.flatten().ok()?;
        let sched = rate_match(&fg, &binds).ok()?;
        let iterations = self.axis.expected_iterations(x, sched.steady_input);
        let layouts = &self.edge_layouts;
        let mut total = 0.0f64;
        for (i, (seg, choice)) in self.segments.iter().zip(&variant.choices).enumerate() {
            let reps = sched.reps(seg.node).max(1) * iterations.max(1);
            let t = match (&seg.kind, choice) {
                (SegKind::Unit(u), SegChoice::Map { coarsen }) => {
                    let units = (probe_units(u, seg.node, &sched, &binds).unwrap_or(1).max(1)
                        * iterations.max(1) as i64) as usize;
                    let counts = body_counts(&u.body, &binds);
                    let p = map_profile(
                        &self.device,
                        units,
                        u.pops_per_unit,
                        u.pushes_per_unit,
                        counts.state_loads + counts.state_stores + counts.peeks,
                        counts.compute,
                        counts.flops,
                        layouts[i],
                        layouts[i + 1],
                        *coarsen,
                        256,
                    );
                    estimate(&self.device, &p).time_us
                }
                (SegKind::Reduce(r), SegChoice::Reduce { choice }) => {
                    let n_arrays = reps as usize;
                    let n_elements =
                        eval_bound(&r.pattern.bound, &binds).unwrap_or(1).max(1) as usize;
                    let ec = body_counts(&[Stmt::Push(r.pattern.elem.clone())], &binds);
                    crate::opt::segmentation::reduce_choice_time(
                        &self.device,
                        *choice,
                        n_arrays,
                        n_elements,
                        r.pattern.pops_per_elem,
                        ec.state_loads,
                        ec.compute + 1.0,
                        layouts[i],
                    )
                }
                (SegKind::Stencil(s), SegChoice::Stencil { tile }) => {
                    let total_pts = eval_bound(&s.pattern.bound, &binds).unwrap_or(1).max(1);
                    let cols = match &s.pattern.width_param {
                        Some(w) => binds.get(w).copied().unwrap_or(total_pts).max(1),
                        None => total_pts,
                    };
                    let rows = (total_pts / cols).max(1);
                    let (hr, hc) = s.pattern.halo();
                    let taps = s.pattern.offsets.len();
                    let ext = (tile.0 + 2 * hc as usize) * (tile.1 + 2 * hr as usize);
                    if ext > self.device.shared_words_per_block as usize {
                        return Some(f64::INFINITY);
                    }
                    let p = crate::cost::stencil_profile(
                        &self.device,
                        rows as usize,
                        cols as usize,
                        tile.0,
                        tile.1,
                        hr as usize,
                        hc as usize,
                        taps,
                        2.0 * taps as f64 + 2.0,
                        taps as f64,
                        256,
                    );
                    estimate(&self.device, &p).time_us
                }
                (SegKind::HFused(h), SegChoice::HFused { fused }) => {
                    let n_arrays = reps as usize;
                    let first = h.patterns.first()?;
                    let n_elements = eval_bound(&first.bound, &binds).unwrap_or(1).max(1) as usize;
                    let per = h.patterns.iter().map(|pat| {
                        let ec = body_counts(&[Stmt::Push(pat.elem.clone())], &binds);
                        crate::opt::segmentation::reduce_choice_time(
                            &self.device,
                            ReduceChoice::OneKernel {
                                arrays_per_block: 1,
                                block_dim: 256,
                            },
                            n_arrays,
                            n_elements,
                            pat.pops_per_elem,
                            ec.state_loads,
                            ec.compute + 1.0,
                            layouts[i],
                        )
                    });
                    if *fused {
                        // One kernel reads the shared window once; cost is
                        // dominated by the most expensive sibling.
                        per.fold(0.0, f64::max)
                    } else {
                        per.sum()
                    }
                }
                (SegKind::MapSiblings(m), SegChoice::MapSiblings) => {
                    let units = reps as usize;
                    m.branches
                        .iter()
                        .map(|(body, pushes, _)| {
                            let counts = body_counts(body, &binds);
                            let p = map_profile(
                                &self.device,
                                units,
                                m.pops_per_unit,
                                *pushes,
                                counts.state_loads + counts.state_stores + counts.peeks,
                                counts.compute,
                                counts.flops,
                                layouts[i],
                                Layout::RowMajor,
                                1,
                                256,
                            );
                            estimate(&self.device, &p).time_us
                        })
                        .sum()
                }
                (SegKind::Opaque(idx), SegChoice::Opaque) => {
                    let actor = &self.program.actors[*idx];
                    let counts = body_counts(&actor.work.body, &binds);
                    crate::cost::host_cost_us(reps as usize, counts.compute)
                }
                _ => return None,
            };
            total += t;
        }
        Some(total)
    }

    /// Number of generated kernel variants (a proxy for the paper's code
    /// size discussion in §5.1).
    pub fn variant_count(&self) -> usize {
        self.variants.len()
    }

    /// Sample every variant's predicted cost curve at `samples`
    /// geometrically-spaced points of the axis. Returns the sample points
    /// and the cost matrix `costs[variant][point]` (∞ where a variant
    /// cannot be priced) — the input shape
    /// [`perfmodel::prune_variant_set`] and
    /// [`perfmodel::coverage_curve`] consume.
    ///
    /// `scale` multiplies every prediction (1.0 = the raw model); the
    /// kernel-management unit passes its per-variant measured/predicted
    /// ratios here so pruning sees *corrected* curves.
    pub fn sample_cost_matrix(
        &self,
        samples: usize,
        scale: impl Fn(usize) -> f64,
    ) -> (Vec<i64>, Vec<Vec<f64>>) {
        let n = samples.max(2);
        let (lo, hi) = (self.axis.lo, self.axis.hi);
        let mut points: Vec<i64> = (0..n)
            .map(|k| {
                let t = k as f64 / (n - 1) as f64;
                let x = ((lo.max(1) as f64).ln() * (1.0 - t) + (hi.max(1) as f64).ln() * t).exp();
                (x as i64).clamp(lo, hi)
            })
            .collect();
        points.push(lo);
        points.push(hi);
        points.sort_unstable();
        points.dedup();
        let costs = (0..self.variants.len())
            .map(|v| {
                let s = scale(v);
                points
                    .iter()
                    .map(|&x| {
                        self.predicted_time_us(x, v)
                            .map(|t| s * t)
                            .unwrap_or(f64::INFINITY)
                    })
                    .collect()
            })
            .collect();
        (points, costs)
    }

    /// Restrict the variant table to `kept` (ascending original variant
    /// indices), re-tiling the axis among the survivors by cheapest
    /// predicted cost — "few fit most" variant-set pruning. The program
    /// structure, bytecode and edge layouts are shared (`Arc`s cloned);
    /// only the table shrinks, which is exactly what bounds plan-table
    /// bytes, artifact-store footprint and the runtime's per-variant
    /// breaker surface.
    ///
    /// A [`KernelManager`](crate::KernelManager) built on the pruned
    /// program sees only the surviving variants. The pruned table keeps
    /// its parent's content hash — storing its plan would *replace* the
    /// full table's artifact entry under the same key, so persist one or
    /// the other deliberately.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyVariantTable`] when `kept` is empty;
    /// [`Error::Semantic`] when `kept` is not strictly ascending or indexes
    /// past the table.
    pub fn prune_to(&self, kept: &[usize]) -> Result<CompiledProgram> {
        if kept.is_empty() {
            return Err(Error::EmptyVariantTable);
        }
        if kept.windows(2).any(|w| w[0] >= w[1]) || *kept.last().unwrap() >= self.variants.len() {
            return Err(Error::Semantic(format!(
                "prune_to: kept {kept:?} must be strictly ascending indices into {} variants",
                self.variants.len()
            )));
        }
        let mut curves: Vec<Box<dyn FnMut(i64) -> f64 + '_>> = kept
            .iter()
            .map(|&v| {
                let f: Box<dyn FnMut(i64) -> f64> =
                    Box::new(move |x| self.predicted_time_us(x, v).unwrap_or(f64::INFINITY));
                f
            })
            .collect();
        let assignments = perfmodel::partition_range(self.axis.lo, self.axis.hi, &mut curves);
        let variants = assignments
            .iter()
            .map(|a| {
                let src = &self.variants[kept[a.variant]];
                Variant {
                    lo: a.lo,
                    hi: a.hi,
                    choices: src.choices.clone(),
                    tags: src.tags.clone(),
                }
            })
            .collect();
        Ok(CompiledProgram {
            variants,
            ..self.clone()
        })
    }

    /// The target device.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The options the program was compiled with.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// The compiled program's segments' labels, in pipeline order.
    pub fn segment_labels(&self) -> Vec<&str> {
        self.segments.iter().map(|s| s.label.as_str()).collect()
    }
}

fn pl_from_map(body: &[Stmt], pop: usize, push: usize, probe_units: i64) -> ParallelLoop {
    ParallelLoop {
        loop_var: "__unit".into(),
        bound: Expr::Int(probe_units),
        pops_per_iter: pop,
        pushes_per_iter: push,
        body: body.to_vec(),
        ivs_applied: false,
        window_peeks: false,
    }
}

fn seg_as_parloop(seg: &UnitSeg, probe_units: i64) -> ParallelLoop {
    ParallelLoop {
        loop_var: seg.loop_var.clone().unwrap_or_else(|| "__unit".into()),
        bound: Expr::Int(probe_units),
        pops_per_iter: seg.pops_per_unit,
        pushes_per_iter: seg.pushes_per_unit,
        body: seg.body.clone(),
        ivs_applied: false,
        window_peeks: seg.window_pop.is_some(),
    }
}

/// Units per steady state of a unit segment at a schedule point.
fn probe_units(seg: &UnitSeg, node: usize, sched: &Schedule, binds: &Bindings) -> Option<i64> {
    let reps = sched.reps(node) as i64;
    match &seg.units_per_firing {
        UnitsPerFiring::One => Some(reps),
        UnitsPerFiring::Loop(e) => Some(reps * eval_bound(e, binds)?),
    }
}

/// Build the lowered structure of the program at a probe binding.
fn build_structure(
    program: &Program,
    options: &CompileOptions,
    binds: &Bindings,
) -> Result<(Vec<Segment>, Vec<OptTag>)> {
    let fg = program.flatten()?;
    let topo = fg.topo_order()?;
    let sched = rate_match(&fg, binds)?;

    let mut segments: Vec<Segment> = Vec::new();
    let mut structure_tags: Vec<OptTag> = Vec::new();
    let mut skip_until_join: Option<usize> = None;

    for &node in &topo {
        if let Some(join) = skip_until_join {
            if node != join {
                continue;
            }
            skip_until_join = None;
            continue;
        }
        match &fg.nodes[node] {
            FlatNode::Actor { actor } => {
                let def = &program.actors[*actor];
                let class = classify(def, binds);
                let kind = match class {
                    ActorClass::Reduction(pattern) => SegKind::Reduce(ReduceSeg {
                        pattern,
                        actor: def.name.clone(),
                        fused_producer: false,
                    }),
                    ActorClass::Stencil(pattern) => SegKind::Stencil(StencilSeg {
                        pattern,
                        actor: def.name.clone(),
                    }),
                    ActorClass::ParallelLoop(pl) => SegKind::Unit(UnitSeg {
                        window_pop: pl.window_peeks.then(|| def.work.pop.clone()),
                        body: pl.body,
                        loop_var: Some(pl.loop_var),
                        units_per_firing: UnitsPerFiring::Loop(pl.bound),
                        pops_per_unit: pl.pops_per_iter,
                        pushes_per_unit: pl.pushes_per_iter,
                        state_actors: vec![def.name.clone()],
                        fused_count: 1,
                        has_parloop: true,
                    }),
                    ActorClass::Map | ActorClass::Transfer => {
                        let pop = def.work.pop.as_constant().unwrap_or(1) as usize;
                        let push = def.work.push.as_constant().unwrap_or(1) as usize;
                        SegKind::Unit(UnitSeg {
                            body: def.work.body.clone(),
                            loop_var: None,
                            units_per_firing: UnitsPerFiring::One,
                            pops_per_unit: pop.max(1),
                            pushes_per_unit: push.max(1),
                            window_pop: None,
                            state_actors: vec![def.name.clone()],
                            fused_count: 1,
                            has_parloop: false,
                        })
                    }
                    ActorClass::Opaque => SegKind::Opaque(*actor),
                };
                segments.push(Segment {
                    kind,
                    node,
                    label: def.name.clone(),
                });
            }
            FlatNode::Split(Splitter::Duplicate) => {
                // Recognize duplicate split-joins of sibling reductions
                // (horizontal actor integration's headline case) or
                // sibling maps over the same windows.
                let branch_entries: Vec<usize> = fg
                    .out_channels(node)
                    .iter()
                    .map(|&c| fg.channels[c].dst)
                    .collect();
                let mut patterns = Vec::new();
                let mut maps: Vec<(Vec<Stmt>, usize, usize, String)> = Vec::new();
                let mut actors = Vec::new();
                let mut join = None;
                let mut ok = true;
                for &b in &branch_entries {
                    let FlatNode::Actor { actor } = &fg.nodes[b] else {
                        ok = false;
                        break;
                    };
                    let def = &program.actors[*actor];
                    match classify(def, binds) {
                        ActorClass::Reduction(p) => {
                            patterns.push(p);
                            actors.push(def.name.clone());
                        }
                        ActorClass::Map | ActorClass::Transfer => {
                            let pop = def.work.pop.as_constant().unwrap_or(0).max(1) as usize;
                            let push = def.work.push.as_constant().unwrap_or(0).max(1) as usize;
                            maps.push((def.work.body.clone(), pop, push, def.name.clone()));
                            actors.push(def.name.clone());
                        }
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                    let outs = fg.out_channels(b);
                    let j = fg.channels[outs[0]].dst;
                    match join {
                        None => join = Some(j),
                        Some(prev) if prev == j => {}
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                }
                // Mixed or neither-kind branch sets are unsupported.
                if !ok || join.is_none() || (patterns.is_empty() == maps.is_empty()) {
                    return Err(Error::Semantic(
                        "unsupported split-join: duplicate splitters must feed \
                         sibling reduction actors or sibling map actors"
                            .into(),
                    ));
                }
                if !patterns.is_empty() {
                    let refs: Vec<&ReductionPattern> = patterns.iter().collect();
                    if !can_fuse_horizontal(&refs) {
                        return Err(Error::Semantic(
                            "sibling reductions must share element windows to be \
                             GPU-lowerable"
                                .into(),
                        ));
                    }
                    segments.push(Segment {
                        kind: SegKind::HFused(HFusedSeg { patterns, actors }),
                        node: branch_entries[0],
                        label: "splitjoin".into(),
                    });
                } else {
                    let pop = maps[0].1;
                    if maps.iter().any(|(_, p, _, _)| *p != pop) {
                        return Err(Error::Semantic(
                            "sibling maps must pop the same window".into(),
                        ));
                    }
                    let total_push: usize = maps.iter().map(|(_, _, q, _)| *q).sum();
                    let fused = if options.integration {
                        crate::opt::integration::fuse_duplicate_maps(
                            &maps
                                .iter()
                                .map(|(b, _, _, n)| (b.clone(), n.clone()))
                                .collect::<Vec<_>>(),
                            pop,
                        )
                    } else {
                        None
                    };
                    match fused {
                        Some(body) => {
                            structure_tags.push(OptTag::HorizontalIntegration);
                            segments.push(Segment {
                                kind: SegKind::Unit(UnitSeg {
                                    body,
                                    loop_var: None,
                                    units_per_firing: UnitsPerFiring::One,
                                    pops_per_unit: pop,
                                    pushes_per_unit: total_push,
                                    window_pop: None,
                                    state_actors: actors,
                                    fused_count: maps.len(),
                                    has_parloop: false,
                                }),
                                node: branch_entries[0],
                                label: "splitjoin".into(),
                            });
                        }
                        None => {
                            segments.push(Segment {
                                kind: SegKind::MapSiblings(MapSiblingsSeg {
                                    branches: maps
                                        .into_iter()
                                        .map(|(b, _, q, n)| (b, q, n))
                                        .collect(),
                                    pops_per_unit: pop,
                                    total_push,
                                }),
                                node: branch_entries[0],
                                label: "splitjoin".into(),
                            });
                        }
                    }
                }
                // Skip the branch actors; resume after the join.
                skip_until_join = join;
            }
            FlatNode::Split(_) => {
                return Err(Error::Semantic(
                    "round-robin splitters are not GPU-lowerable by this reproduction".into(),
                ));
            }
            FlatNode::Join(_) => {
                // Joins of recognized split-joins are skipped above; a
                // stray join means the structure was unsupported.
            }
        }
    }

    // Vertical integration (§4.3.1): fuse adjacent unit segments, then
    // unit→reduction producers.
    if options.integration {
        let mut fused_any = false;
        let mut i = 0;
        while i + 1 < segments.len() {
            let (left, right) = segments.split_at_mut(i + 1);
            let a_seg = &left[i];
            let b_seg = &right[0];
            let merged = match (&a_seg.kind, &b_seg.kind) {
                (SegKind::Unit(a), SegKind::Unit(b))
                    if a.window_pop.is_none() && b.window_pop.is_none() =>
                {
                    let ua = probe_units(a, a_seg.node, &sched, binds);
                    let ub = probe_units(b, b_seg.node, &sched, binds);
                    match (ua, ub) {
                        (Some(ua), Some(ub)) if ua == ub => {
                            let pa = match a.loop_var {
                                Some(_) => seg_as_parloop(a, ua),
                                None => {
                                    pl_from_map(&a.body, a.pops_per_unit, a.pushes_per_unit, ua)
                                }
                            };
                            let pb = match b.loop_var {
                                Some(_) => seg_as_parloop(b, ub),
                                None => {
                                    pl_from_map(&b.body, b.pops_per_unit, b.pushes_per_unit, ub)
                                }
                            };
                            fuse_parallel_loops(&pa, &pb, binds).map(|f| {
                                let mut state = a.state_actors.clone();
                                state.extend(b.state_actors.clone());
                                // Unit accounting follows whichever side
                                // gives the loop variable real semantics:
                                // the consumer when it has one (its body
                                // indexes with it), else the producer.
                                let (upf, node) = if b.loop_var.is_some() {
                                    (b.units_per_firing.clone(), b_seg.node)
                                } else {
                                    (a.units_per_firing.clone(), a_seg.node)
                                };
                                Segment {
                                    kind: SegKind::Unit(UnitSeg {
                                        body: f.body,
                                        loop_var: Some(f.loop_var),
                                        units_per_firing: upf,
                                        pops_per_unit: f.pops_per_iter,
                                        pushes_per_unit: f.pushes_per_iter,
                                        window_pop: None,
                                        state_actors: state,
                                        fused_count: a.fused_count + b.fused_count,
                                        has_parloop: a.has_parloop || b.has_parloop,
                                    }),
                                    node,
                                    label: format!("{}+{}", a_seg.label, b_seg.label),
                                }
                            })
                        }
                        _ => None,
                    }
                }
                (SegKind::Unit(a), SegKind::Reduce(r)) => {
                    let ua = probe_units(a, a_seg.node, &sched, binds);
                    match ua {
                        Some(ua) => {
                            let pa = match a.loop_var {
                                Some(_) => seg_as_parloop(a, ua),
                                None => {
                                    pl_from_map(&a.body, a.pops_per_unit, a.pushes_per_unit, ua)
                                }
                            };
                            fuse_into_reduction(&pa, &r.pattern, binds).map(|p| Segment {
                                kind: SegKind::Reduce(ReduceSeg {
                                    pattern: p,
                                    actor: r.actor.clone(),
                                    fused_producer: true,
                                }),
                                node: b_seg.node,
                                label: format!("{}+{}", a_seg.label, b_seg.label),
                            })
                        }
                        None => None,
                    }
                }
                _ => None,
            };
            match merged {
                Some(seg) => {
                    segments[i] = seg;
                    segments.remove(i + 1);
                    fused_any = true;
                }
                None => i += 1,
            }
        }
        if fused_any {
            structure_tags.push(OptTag::VerticalIntegration);
        }
    }

    if segments
        .iter()
        .any(|s| matches!(&s.kind, SegKind::Unit(u) if u.has_parloop))
    {
        structure_tags.push(OptTag::IntraActorParallelization);
    }
    if segments
        .iter()
        .any(|s| matches!(s.kind, SegKind::HFused(_)))
        && options.integration
    {
        structure_tags.push(OptTag::HorizontalIntegration);
    }

    Ok((segments, structure_tags))
}

/// Choose the layout of every edge of the pipeline (edge i feeds segment
/// i; the last edge is the program output).
fn choose_layouts(segments: &[Segment], memory_enabled: bool) -> Vec<Layout> {
    let n = segments.len();
    let mut layouts = vec![Layout::RowMajor; n + 1];
    if !memory_enabled {
        return layouts;
    }
    let window_in = |s: &Segment| -> Option<usize> {
        match &s.kind {
            // Peek-window loops address raw firing windows (row-major).
            SegKind::Unit(u) if u.window_pop.is_some() => None,
            SegKind::Unit(u) => Some(u.pops_per_unit),
            SegKind::Reduce(r) => Some(r.pattern.pops_per_elem),
            SegKind::HFused(h) => h.patterns.first().map(|p| p.pops_per_elem),
            SegKind::MapSiblings(m) => Some(m.pops_per_unit),
            // Stencils address the raw grid; opaque runs on the host.
            SegKind::Stencil(_) | SegKind::Opaque(_) => None,
        }
    };
    let window_out = |s: &Segment| -> Option<usize> {
        match &s.kind {
            SegKind::Unit(u) => Some(u.pushes_per_unit),
            // Reductions emit one scalar per array — already coalesced.
            SegKind::Reduce(_) | SegKind::HFused(_) => Some(1),
            // Sibling kernels interleave output groups: row-major only.
            SegKind::MapSiblings(_) => None,
            SegKind::Stencil(_) | SegKind::Opaque(_) => None,
        }
    };
    for (i, layout) in layouts.iter_mut().enumerate() {
        let producer = if i == 0 { None } else { Some(&segments[i - 1]) };
        let consumer = segments.get(i);
        let p = match producer {
            None => None, // host can restructure freely
            Some(s) => match window_out(s) {
                Some(w) => Some(w),
                None => {
                    continue; // stencil/opaque producer: keep row-major
                }
            },
        };
        let c = match consumer {
            None => None,
            Some(s) => match window_in(s) {
                Some(w) => Some(w),
                None => {
                    continue;
                }
            },
        };
        // Host-to-host trivial case would be (None, None): skip.
        if p.is_none() && c.is_none() {
            continue;
        }
        *layout = choose_edge_layout(p, c);
    }
    layouts
}

/// Fractional advantage a challenger must have over the incumbent choice
/// before the variant table switches — hysteresis that keeps near-tie
/// cost-model noise from fragmenting the table into spurious variants.
const SWITCH_MARGIN: f64 = 1.05;

/// Keep `prev` unless `best` is at least [`SWITCH_MARGIN`] cheaper.
fn sticky<T: Clone + PartialEq>(
    prev: Option<&T>,
    best: T,
    cost_of: impl Fn(&T) -> Option<f64>,
) -> T {
    match prev {
        Some(p) if *p != best => match (cost_of(p), cost_of(&best)) {
            (Some(cp), Some(cb)) if cp.is_finite() && cb * SWITCH_MARGIN >= cp => p.clone(),
            _ => best,
        },
        _ => best,
    }
}

/// Decide the lowering of every segment at one axis point. `prev` is the
/// incumbent signature (the decision at smaller inputs), used for
/// hysteresis.
#[allow(clippy::too_many_arguments)]
fn decide(
    segments: &[Segment],
    device: &DeviceSpec,
    options: &CompileOptions,
    layouts: &[Layout],
    binds: &Bindings,
    sched: &Schedule,
    iterations: u64,
    prev: Option<&[SegChoice]>,
) -> Vec<SegChoice> {
    segments
        .iter()
        .enumerate()
        .map(|(i, seg)| match &seg.kind {
            SegKind::Unit(u) => {
                let units = (probe_units(u, seg.node, sched, binds).unwrap_or(1).max(1)
                    * iterations.max(1) as i64) as usize;
                let counts = body_counts(&u.body, binds);
                let coarsens: &[usize] = if options.integration {
                    &[1, 2, 4, 8, 16]
                } else {
                    &[1]
                };
                let cost = |c: usize| -> f64 {
                    let p = map_profile(
                        device,
                        units,
                        u.pops_per_unit,
                        u.pushes_per_unit,
                        counts.state_loads + counts.state_stores + counts.peeks,
                        counts.compute,
                        counts.flops,
                        layouts[i],
                        layouts[i + 1],
                        c,
                        256,
                    );
                    estimate(device, &p).time_us
                };
                let best = coarsens
                    .iter()
                    .map(|&c| (c, cost(c)))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .map(|(c, _)| c)
                    .unwrap_or(1);
                let prev_c = prev.and_then(|p| match p.get(i) {
                    Some(SegChoice::Map { coarsen }) => Some(*coarsen),
                    _ => None,
                });
                let best = sticky(prev_c.as_ref(), best, |c| Some(cost(*c)));
                SegChoice::Map { coarsen: best }
            }
            SegKind::Reduce(r) => {
                let n_arrays = (sched.reps(seg.node).max(1) * iterations.max(1)) as usize;
                let n_elements = eval_bound(&r.pattern.bound, binds).unwrap_or(1).max(1) as usize;
                if !options.segmentation {
                    return SegChoice::Reduce {
                        choice: ReduceChoice::OneKernel {
                            arrays_per_block: 1,
                            block_dim: 256,
                        },
                    };
                }
                let elem_counts = body_counts(&[Stmt::Push(r.pattern.elem.clone())], binds);
                let reduce_cost = |c: &ReduceChoice| -> Option<f64> {
                    // Reject infeasible incumbents at this shape.
                    if let ReduceChoice::OneKernel {
                        arrays_per_block, ..
                    } = c
                    {
                        if *arrays_per_block > n_arrays.max(1) {
                            return None;
                        }
                    }
                    Some(crate::opt::segmentation::reduce_choice_time(
                        device,
                        *c,
                        n_arrays,
                        n_elements,
                        r.pattern.pops_per_elem,
                        elem_counts.state_loads,
                        elem_counts.compute + 1.0,
                        layouts[i],
                    ))
                };
                let (mut choice, _) = best_reduce_choice(
                    device,
                    n_arrays,
                    n_elements,
                    r.pattern.pops_per_elem,
                    elem_counts.state_loads,
                    elem_counts.compute + 1.0,
                    layouts[i],
                );
                // Thread-per-array needs the array-major restructured
                // layout, which only the host can provide — restrict it to
                // the host-fed first segment (and to the memory opt).
                if matches!(choice, ReduceChoice::ThreadPerArray { .. })
                    && (i != 0 || !options.memory)
                {
                    choice =
                        crate::opt::segmentation::reduce_candidates(device, n_arrays, n_elements)
                            .into_iter()
                            .filter(|c| !matches!(c, ReduceChoice::ThreadPerArray { .. }))
                            .map(|c| {
                                (
                                    c,
                                    crate::opt::segmentation::reduce_choice_time(
                                        device,
                                        c,
                                        n_arrays,
                                        n_elements,
                                        r.pattern.pops_per_elem,
                                        elem_counts.state_loads,
                                        elem_counts.compute + 1.0,
                                        layouts[i],
                                    ),
                                )
                            })
                            .min_by(|a, b| a.1.total_cmp(&b.1))
                            .map(|(c, _)| c)
                            .expect("non-TPA candidates exist");
                }
                let prev_c = prev.and_then(|p| match p.get(i) {
                    Some(SegChoice::Reduce { choice }) => Some(*choice),
                    _ => None,
                });
                let choice = sticky(prev_c.as_ref(), choice, |c| reduce_cost(c));
                SegChoice::Reduce { choice }
            }
            SegKind::Stencil(s) => {
                let total = eval_bound(&s.pattern.bound, binds).unwrap_or(1).max(1);
                let cols = match &s.pattern.width_param {
                    Some(w) => binds.get(w).copied().unwrap_or(total).max(1),
                    None => total,
                };
                let rows = (total / cols).max(1);
                let (hr, hc) = s.pattern.halo();
                let taps = s.pattern.offsets.len();
                let tile_cost = |t: &(usize, usize)| -> Option<f64> {
                    let ext = (t.0 + 2 * hc as usize) * (t.1 + 2 * hr as usize);
                    if ext > device.shared_words_per_block as usize {
                        return None;
                    }
                    let p = crate::cost::stencil_profile(
                        device,
                        rows as usize,
                        cols as usize,
                        t.0,
                        t.1,
                        hr as usize,
                        hc as usize,
                        taps,
                        2.0 * taps as f64 + 2.0,
                        taps as f64,
                        256,
                    );
                    Some(estimate(device, &p).time_us)
                };
                let tile = if options.memory {
                    let best = choose_tile(
                        device,
                        rows as usize,
                        cols as usize,
                        hr as usize,
                        hc as usize,
                        taps,
                    );
                    let prev_t = prev.and_then(|p| match p.get(i) {
                        Some(SegChoice::Stencil { tile }) => Some(*tile),
                        _ => None,
                    });
                    sticky(prev_t.as_ref(), best, |t| tile_cost(t))
                } else {
                    // Fixed, input-unaware tile.
                    (32, if rows == 1 { 1 } else { 4 })
                };
                SegChoice::Stencil { tile }
            }
            SegKind::HFused(_) => SegChoice::HFused {
                fused: options.integration,
            },
            SegKind::MapSiblings(_) => SegChoice::MapSiblings,
            SegKind::Opaque(_) => SegChoice::Opaque,
        })
        .collect()
}

fn variant_tags(
    choices: &[SegChoice],
    layouts: &[Layout],
    structure_tags: &[OptTag],
    segments: &[Segment],
) -> Vec<OptTag> {
    let mut tags: Vec<OptTag> = structure_tags.to_vec();
    if layouts.contains(&Layout::Transposed) {
        tags.push(OptTag::MemoryRestructuring);
    }
    for (choice, seg) in choices.iter().zip(segments) {
        match choice {
            SegChoice::Reduce { choice } => {
                tags.push(OptTag::StreamReduction);
                if matches!(
                    choice,
                    ReduceChoice::OneKernel { arrays_per_block, .. } if *arrays_per_block > 1
                ) {
                    tags.push(OptTag::ThreadIntegration);
                }
            }
            SegChoice::Map { coarsen } if *coarsen > 1 => {
                tags.push(OptTag::ThreadIntegration);
            }
            SegChoice::Stencil { .. } => tags.push(OptTag::NeighboringAccess),
            SegChoice::HFused { fused: true } => tags.push(OptTag::HorizontalIntegration),
            _ => {}
        }
        let _ = seg;
    }
    tags.sort_unstable();
    tags.dedup();
    tags
}

/// Compile a program for a device over an input axis with default options.
///
/// # Errors
///
/// Returns [`Error::Semantic`] for graphs this reproduction cannot lower
/// (round-robin splitters, non-reduction split-joins) and propagates
/// scheduling errors at the probe points.
pub fn compile(
    program: &Program,
    device: &DeviceSpec,
    axis: &InputAxis,
) -> Result<CompiledProgram> {
    compile_with_options(program, device, axis, CompileOptions::default())
}

/// Compile with explicit optimization toggles (used for the paper's
/// optimization-breakdown figures).
pub fn compile_with_options(
    program: &Program,
    device: &DeviceSpec,
    axis: &InputAxis,
    options: CompileOptions,
) -> Result<CompiledProgram> {
    let probe_binds = axis.bind(axis.probe_point());
    let (segments, structure_tags) = build_structure(program, &options, &probe_binds)?;
    let plan = plan_tables(
        program,
        device,
        axis,
        &options,
        &segments,
        &structure_tags,
        &probe_binds,
    )?;
    Ok(assemble(program, device, axis, options, segments, plan))
}

/// Load-or-compile through a persistent [`ArtifactStore`].
///
/// The cheap structure pass (one probe-point flatten + classify) always
/// runs — it rebuilds the segment list the persisted tables are validated
/// against. On a store hit the expensive plan-time work — bytecode
/// lowering of every segment body plus the probe/binary-search
/// construction of the variant table — is skipped entirely and the
/// persisted [`PlanArtifact`](crate::artifact::PlanArtifact) is spliced
/// in. On a miss (including corrupt or version-mismatched files, which the
/// store counts as rejects) the program is compiled normally and the fresh
/// plan is written back atomically; write failures are swallowed — a
/// read-only store degrades to cold compiles, never an error.
///
/// # Errors
///
/// Exactly the errors of [`compile_with_options`]; store problems are
/// never surfaced as errors.
pub fn compile_with_store(
    program: &Program,
    device: &DeviceSpec,
    axis: &InputAxis,
    options: CompileOptions,
    store: &crate::artifact::ArtifactStore,
) -> Result<CompiledProgram> {
    let probe_binds = axis.bind(axis.probe_point());
    let (segments, structure_tags) = build_structure(program, &options, &probe_binds)?;
    let key = crate::artifact::ArtifactKey {
        content: content_hash(program, axis, &options),
        device: device.fingerprint(),
    };
    if let Some(plan) = store.load_plan(key, segments.len(), axis.lo, axis.hi) {
        return Ok(assemble(program, device, axis, options, segments, plan));
    }
    let plan = plan_tables(
        program,
        device,
        axis,
        &options,
        &segments,
        &structure_tags,
        &probe_binds,
    )?;
    let _ = store.store_plan(key, &plan);
    Ok(assemble(program, device, axis, options, segments, plan))
}

/// Content address of a compilation request: a stable structural hash of
/// (program AST, compile options, input axis). Two requests with the same
/// hash produce the same plan on the same device, so the hash keys the
/// artifact store (together with
/// [`DeviceSpec::fingerprint`](gpu_sim::DeviceSpec::fingerprint)).
///
/// The axis carries two closures (`bind`, `items`) that cannot be hashed
/// directly; their *behavior* is sampled at the range endpoints and the
/// probe point instead. Axes that differ only between sample points can
/// alias — acceptable, because the variant table is validated structurally
/// against the freshly rebuilt segments on every load.
pub fn content_hash(program: &Program, axis: &InputAxis, options: &CompileOptions) -> u64 {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(
        s,
        "{program:?}|{options:?}|axis {}=[{},{}]",
        axis.name, axis.lo, axis.hi
    );
    for x in [axis.lo, axis.probe_point(), axis.hi] {
        let _ = write!(s, "|@{x}:");
        for (k, v) in axis.bind(x) {
            let _ = write!(s, "{k}={v},");
        }
        let _ = write!(s, "items={}", axis.expected_iterations(x, 1));
    }
    crate::artifact::fnv1a64(s.as_bytes())
}

/// The expensive plan-time pass: lower every segment body to bytecode,
/// choose edge layouts, and build the variant table by probing the axis.
/// This is exactly what a warm boot skips.
fn plan_tables(
    program: &Program,
    device: &DeviceSpec,
    axis: &InputAxis,
    options: &CompileOptions,
    segments: &[Segment],
    structure_tags: &[OptTag],
    probe_binds: &Bindings,
) -> Result<crate::artifact::PlanArtifact> {
    let seg_programs = compile_programs(program, segments, probe_binds)?;
    let layouts = choose_layouts(segments, options.memory);

    let fg = program.flatten()?;
    let decide_at = |x: i64, prev: Option<&[SegChoice]>| -> Result<Vec<SegChoice>> {
        let binds = axis.bind(x);
        let sched = rate_match(&fg, &binds)?;
        let iterations = axis.expected_iterations(x, sched.steady_input);
        Ok(decide(
            segments, device, options, &layouts, &binds, &sched, iterations, prev,
        ))
    };

    // Probe the axis geometrically and refine the boundaries where the
    // decision signature changes.
    let mut probes: Vec<i64> = Vec::new();
    let n = options.probes.max(2);
    let (lo, hi) = (axis.lo, axis.hi);
    for k in 0..n {
        let t = k as f64 / (n - 1) as f64;
        let x = ((lo.max(1) as f64).ln() * (1.0 - t) + (hi.max(1) as f64).ln() * t).exp();
        probes.push((x as i64).clamp(lo, hi));
    }
    probes.push(lo);
    probes.push(hi);
    probes.sort_unstable();
    probes.dedup();

    let mut variants: Vec<Variant> = Vec::new();
    let mut cur_lo = lo;
    let mut cur_sig = decide_at(lo, None)?;
    // `cursor` is the largest x known to share `cur_sig`; one probe
    // interval may contain several decision changes, so keep splitting
    // until the probe itself agrees with the running signature.
    let mut cursor = lo;
    for &x in probes.iter().skip(1) {
        loop {
            let sig = decide_at(x, Some(&cur_sig))?;
            if sig == cur_sig {
                cursor = x;
                break;
            }
            // Binary search the first change in (cursor, x].
            let (mut a, mut b) = (cursor, x);
            while b - a > 1 {
                let mid = a + (b - a) / 2;
                if decide_at(mid, Some(&cur_sig))? == cur_sig {
                    a = mid;
                } else {
                    b = mid;
                }
            }
            let next_sig = decide_at(b, Some(&cur_sig))?;
            variants.push(Variant {
                lo: cur_lo,
                hi: b - 1,
                tags: variant_tags(&cur_sig, &layouts, structure_tags, segments),
                choices: cur_sig,
            });
            cur_lo = b;
            cur_sig = next_sig;
            cursor = b;
            if b == x {
                break;
            }
        }
    }
    variants.push(Variant {
        lo: cur_lo,
        hi,
        tags: variant_tags(&cur_sig, &layouts, structure_tags, segments),
        choices: cur_sig,
    });

    Ok(crate::artifact::PlanArtifact::new(
        seg_programs,
        layouts,
        variants,
    ))
}

/// Splice plan-time tables (freshly computed or loaded from the artifact
/// store) into the run-time [`CompiledProgram`] shell.
fn assemble(
    program: &Program,
    device: &DeviceSpec,
    axis: &InputAxis,
    options: CompileOptions,
    segments: Vec<Segment>,
    plan: crate::artifact::PlanArtifact,
) -> CompiledProgram {
    CompiledProgram {
        content_hash: content_hash(program, axis, &options),
        program: program.clone(),
        device: device.clone(),
        axis: axis.clone(),
        options,
        segments,
        programs: plan.programs,
        frames: Arc::new(FramePool::new()),
        warp_frames: Arc::new(crate::warp::WarpFramePool::new()),
        edge_layouts: plan.edge_layouts,
        variants: plan.variants,
    }
}

/// Compile for a single concrete binding (one-shot execution).
pub fn compile_single(
    program: &Program,
    device: &DeviceSpec,
    binds: &Bindings,
) -> Result<CompiledProgram> {
    let b = binds.clone();
    let axis = InputAxis::new("point", 1, 1, move |_| b.clone());
    let opts = CompileOptions {
        probes: 2,
        ..CompileOptions::default()
    };
    compile_with_options(program, device, &axis, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamir::parse::parse_program;

    fn device() -> DeviceSpec {
        DeviceSpec::tesla_c2050()
    }

    const SUM_SRC: &str = r#"pipeline P(N) {
        actor Sum(pop N, push 1) {
            acc = 0.0;
            for i in 0..N { acc = acc + pop(); }
            push(acc);
        }
    }"#;

    #[test]
    fn sum_compiles_with_multiple_variants() {
        let p = parse_program(SUM_SRC).unwrap();
        let axis = InputAxis::total_size("N", 64, 1 << 22);
        let compiled = compile(&p, &device(), &axis).unwrap();
        // The reduction scheme must change across this enormous range.
        assert!(
            compiled.variant_count() >= 2,
            "expected multiple variants, got {}",
            compiled.variant_count()
        );
        // The table tiles the axis exactly.
        assert_eq!(compiled.variants[0].lo, 64);
        assert_eq!(compiled.variants.last().unwrap().hi, 1 << 22);
        for w in compiled.variants.windows(2) {
            assert_eq!(w[0].hi + 1, w[1].lo);
        }
    }

    #[test]
    fn variant_lookup_clamps() {
        let p = parse_program(SUM_SRC).unwrap();
        let axis = InputAxis::total_size("N", 64, 4096);
        let compiled = compile(&p, &device(), &axis).unwrap();
        let (i_lo, _) = compiled.variant_for(1);
        assert_eq!(i_lo, 0);
        let (i_hi, _) = compiled.variant_for(1 << 30);
        assert_eq!(i_hi, compiled.variant_count() - 1);
    }

    #[test]
    fn baseline_options_produce_fixed_reduction() {
        let p = parse_program(SUM_SRC).unwrap();
        let axis = InputAxis::total_size("N", 64, 1 << 22);
        let compiled =
            compile_with_options(&p, &device(), &axis, CompileOptions::baseline()).unwrap();
        assert_eq!(compiled.variant_count(), 1);
        assert!(matches!(
            compiled.variants[0].choices[0],
            SegChoice::Reduce {
                choice: ReduceChoice::OneKernel {
                    arrays_per_block: 1,
                    block_dim: 256
                }
            }
        ));
    }

    #[test]
    fn map_chain_fuses_vertically() {
        let src = r#"pipeline P(N) {
            actor Scale(pop 1, push 1) { push(pop() * 2.0); }
            actor Offset(pop 1, push 1) { push(pop() + 1.0); }
        }"#;
        let p = parse_program(src).unwrap();
        let axis = InputAxis::total_size("N", 1 << 10, 1 << 20);
        let fused = compile(&p, &device(), &axis).unwrap();
        assert_eq!(fused.segments.len(), 1);
        assert!(fused.variants[0]
            .tags
            .contains(&OptTag::VerticalIntegration));

        let unfused = compile_with_options(
            &p,
            &device(),
            &axis,
            CompileOptions {
                integration: false,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert_eq!(unfused.segments.len(), 2);
    }

    #[test]
    fn duplicate_splitjoin_of_reductions_recognized() {
        let src = r#"pipeline P(N) {
            splitjoin {
                split duplicate;
                actor MaxA(pop N, push 1) {
                    m = -100000.0;
                    for i in 0..N { m = max(m, pop()); }
                    push(m);
                }
                actor SumA(pop N, push 1) {
                    s = 0.0;
                    for i in 0..N { s = s + pop(); }
                    push(s);
                }
                join roundrobin(1, 1);
            }
        }"#;
        let p = parse_program(src).unwrap();
        let axis = InputAxis::total_size("N", 1 << 10, 1 << 20);
        let compiled = compile(&p, &device(), &axis).unwrap();
        assert_eq!(compiled.segments.len(), 1);
        assert!(matches!(compiled.segments[0].kind, SegKind::HFused(_)));
        assert!(compiled.variants[0]
            .tags
            .contains(&OptTag::HorizontalIntegration));
    }

    #[test]
    fn duplicate_splitjoin_of_maps_fuses_horizontally() {
        let src = r#"pipeline P(N) {
            splitjoin {
                split duplicate;
                actor SinA(pop 1, push 1) { push(sin(pop())); }
                actor CosA(pop 1, push 1) { push(cos(pop())); }
                join roundrobin(1, 1);
            }
        }"#;
        let p = parse_program(src).unwrap();
        let axis = InputAxis::total_size("N", 64, 1 << 16);
        let fused = compile(&p, &device(), &axis).unwrap();
        assert_eq!(fused.segments.len(), 1);
        assert!(matches!(fused.segments[0].kind, SegKind::Unit(_)));
        assert!(fused.variants[0]
            .tags
            .contains(&OptTag::HorizontalIntegration));

        let unfused = compile_with_options(
            &p,
            &device(),
            &axis,
            CompileOptions {
                integration: false,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert!(matches!(unfused.segments[0].kind, SegKind::MapSiblings(_)));
    }

    #[test]
    fn roundrobin_splitter_rejected() {
        let src = r#"pipeline P() {
            splitjoin {
                split roundrobin(1, 1);
                actor A(pop 1, push 1) { push(pop()); }
                actor B(pop 1, push 1) { push(pop()); }
                join roundrobin(1, 1);
            }
        }"#;
        let p = parse_program(src).unwrap();
        let axis = InputAxis::total_size("N", 1, 100);
        assert!(compile(&p, &device(), &axis).is_err());
    }

    #[test]
    fn sdot_edge_gets_restructured() {
        let src = r#"pipeline P(N) {
            actor Dot(pop 2*N, push 1) {
                acc = 0.0;
                for i in 0..N { acc = acc + pop() * pop(); }
                push(acc);
            }
        }"#;
        let p = parse_program(src).unwrap();
        let axis = InputAxis::total_size("N", 1 << 10, 1 << 20);
        let compiled = compile(&p, &device(), &axis).unwrap();
        assert_eq!(compiled.edge_layouts[0], Layout::Transposed);
        assert!(compiled.variants[0]
            .tags
            .contains(&OptTag::MemoryRestructuring));
    }
}
