//! Warp-batched SIMT execution of compiled bytecode.
//!
//! The scalar evaluator in [`crate::bytecode`] dispatches every opcode
//! once *per thread per firing*; after PR 3 that dispatch loop became the
//! dominant cost of figure-scale sweeps. Real GPU hardware does not pay
//! it: a warp fetches one instruction and applies it to 32 lanes in
//! lockstep. This module reproduces that shape in software:
//!
//! * **SoA warp frames.** A [`WarpFrame`] holds one *row* per register
//!   slot and per operand-stack depth — `lanes` consecutive [`Value`]s,
//!   lane-indexed — so each opcode executes once and loops over a
//!   resident-lane bitmask. The operand stack is a preallocated slab
//!   (`max_stack × lanes`); pushes and pops are pointer bumps, never
//!   `Vec` traffic.
//!
//! * **Predicate masks + a reconvergence worklist.** Divergence
//!   (per-lane branches, uneven loop trip counts) is handled by
//!   splitting the active mask: the taken lanes continue, the others are
//!   *parked* as a `(pc, mask)` fragment. The scheduler always runs the
//!   fragment with the smallest program counter and merges fragments
//!   that meet at the same pc, which for the structured control flow the
//!   compiler emits (forward `if`/`else` joins, backward loop edges) is
//!   exactly immediate-post-dominator reconvergence. The compiler emits
//!   every branch opcode at operand-stack depth 0 (statements have net
//!   zero stack effect and `JumpIfFalse` pops its own condition), so one
//!   shared SoA stack serves all fragments; the scheduler asserts the
//!   stack is empty at every suspend and merge point.
//!
//! * **Masked lane loops.** An opcode only ever evaluates *active*
//!   lanes: inactive lanes may hold garbage whose evaluation could fault
//!   (integer division by zero, boolean coercion of a float), exactly as
//!   inactive hardware lanes are predicated off. A full-mask fast path
//!   iterates `0..lanes` without bit scanning.
//!
//! Per-lane semantics are *identical* to the scalar evaluator — wrapping
//! `i64` arithmetic, non-short-circuit `&&`/`||`, variant-preserving
//! `select` — because both paths share the same `bin`/`call` kernels.
//! Each lane executes its own control path in program order, so the
//! per-thread access sequences observed by `gpu_sim::accounting` are
//! unchanged; only cross-lane interleaving differs, which the streaming
//! engine's counters are invariant to. The scalar interpreter and the
//! AST walker remain behind [`crate::runtime::EvalBackend`] as
//! differential oracles.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use streamir::ir::BinOp;
use streamir::value::Value;

use crate::bytecode::{as_f32, as_i64, bin, call, Op, Program};

/// Maximum lanes per warp frame (mask width).
pub const MAX_LANES: usize = 64;

/// All-resident mask for a `lanes`-wide warp.
#[inline]
pub fn full_mask(lanes: usize) -> u64 {
    debug_assert!(0 < lanes && lanes <= MAX_LANES);
    if lanes >= 64 {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// Iterate the set lanes of `mask`, fast-pathing the full mask.
#[inline]
pub fn for_lanes(mask: u64, lanes: usize, mut f: impl FnMut(usize)) {
    if mask == full_mask(lanes) {
        for l in 0..lanes {
            f(l);
        }
    } else {
        let mut m = mask;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            f(l);
        }
    }
}

/// Warp-wide I/O hooks: the row-granular counterpart of
/// [`crate::exec_ir::IrIo`]. Each method serves one opcode for every set
/// lane of `mask` at once, letting implementations batch whole lane-rows
/// into `gpu_sim` (one accounting call per warp instruction instead of
/// one per lane). Lane indices are warp-relative; implementations map
/// them to threads/units themselves.
pub trait WarpIo {
    /// One `pop()` per set lane; write `Value::F32` results into
    /// `out[lane]`.
    fn pop_row(&mut self, mask: u64, out: &mut [Value]);
    /// In place: `row[lane]` holds the peek offset (integral) on entry
    /// and must hold the peeked `Value::F32` on exit.
    fn peek_row(&mut self, mask: u64, row: &mut [Value]);
    /// One `push(v)` per set lane, `vals[lane]` being the value.
    fn push_row(&mut self, mask: u64, vals: &[Value]);
    /// In place: `row[lane]` holds the state index on entry, the loaded
    /// `Value::F32` on exit.
    fn state_load_row(&mut self, id: u16, array: &str, mask: u64, row: &mut [Value]);
    /// One state store per set lane (`idx[lane]`, `vals[lane]`).
    fn state_store_row(&mut self, id: u16, array: &str, mask: u64, idx: &[Value], vals: &[Value]);
}

/// A reusable warp-wide evaluation frame: SoA slot rows plus an SoA
/// operand-stack slab, both `lanes` values wide. Obtained from a
/// [`WarpFramePool`]; reset per warp of firings by broadcasting the
/// launch's bound slot prototype across every lane.
#[derive(Debug, Default)]
pub struct WarpFrame {
    lanes: usize,
    n_slots: usize,
    /// Slot-major rows: `slots[slot * lanes + lane]`.
    slots: Vec<Value>,
    /// Depth-major rows: `stack[depth * lanes + lane]`.
    stack: Vec<Value>,
    /// Operand-stack depth in rows.
    sp: usize,
}

impl WarpFrame {
    /// Size the frame for `prog` at `lanes` lanes so evaluation never
    /// reallocates. Must precede [`WarpFrame::reset`].
    pub fn fit(&mut self, prog: &Program, lanes: usize) {
        assert!(0 < lanes && lanes <= MAX_LANES, "warp width {lanes}");
        self.lanes = lanes;
        self.n_slots = prog.n_slots();
        self.slots.clear();
        self.slots.resize(prog.n_slots() * lanes, Value::F32(0.0));
        self.stack.clear();
        self.stack.resize(prog.max_stack() * lanes, Value::F32(0.0));
        self.sp = 0;
    }

    /// Prepare for one warp of firings: every lane's slots become a copy
    /// of `proto`, the operand stack empties.
    pub fn reset(&mut self, proto: &[Value]) {
        debug_assert_eq!(proto.len(), self.n_slots, "fit() before reset()");
        for (s, v) in proto.iter().enumerate() {
            self.slots[s * self.lanes..(s + 1) * self.lanes].fill(*v);
        }
        self.sp = 0;
    }

    /// Lane count this frame was fitted for.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Write one lane of a preset slot (loop variable, accumulator).
    #[inline]
    pub fn set_lane(&mut self, slot: u16, lane: usize, v: Value) {
        self.slots[slot as usize * self.lanes + lane] = v;
    }

    /// Read one lane of a slot back.
    #[inline]
    pub fn get_lane(&self, slot: u16, lane: usize) -> Value {
        self.slots[slot as usize * self.lanes + lane]
    }

    /// Push a fresh stack row and return it for writing.
    #[inline]
    fn push_row(&mut self) -> &mut [Value] {
        let base = self.sp * self.lanes;
        self.sp += 1;
        &mut self.stack[base..base + self.lanes]
    }

    /// Pop the top row and return it (still valid until the next push).
    #[inline]
    fn pop_row(&mut self) -> &[Value] {
        self.sp -= 1;
        let base = self.sp * self.lanes;
        &self.stack[base..base + self.lanes]
    }

    /// The top row, mutable in place.
    #[inline]
    fn top_row_mut(&mut self) -> &mut [Value] {
        let base = (self.sp - 1) * self.lanes;
        &mut self.stack[base..base + self.lanes]
    }

    /// The two top rows `(below, top)`, for binary operators.
    #[inline]
    fn top2_mut(&mut self) -> (&mut [Value], &mut [Value]) {
        let mid = (self.sp - 1) * self.lanes;
        let lo = mid - self.lanes;
        let (a, b) = self.stack.split_at_mut(mid);
        (&mut a[lo..], &mut b[..self.lanes])
    }

    /// Take the single result row of an expression program: asserts the
    /// stack holds exactly one row and empties it.
    pub fn take_value_row(&mut self) -> &[Value] {
        assert_eq!(self.sp, 1, "expression leaves one value row");
        self.sp = 0;
        &self.stack[..self.lanes]
    }
}

/// A shared pool of [`WarpFrame`]s mirroring [`crate::bytecode::FramePool`]
/// (one frame per block, zero steady-state allocation). Locks recover
/// from poisoning: frame contents are reset before every use, so a
/// panicking worker cannot leave a frame in a state the next taker could
/// observe.
#[derive(Debug, Default)]
pub struct WarpFramePool {
    inner: Mutex<Vec<WarpFrame>>,
    created: AtomicUsize,
    reused: AtomicUsize,
}

impl WarpFramePool {
    /// An empty pool.
    pub fn new() -> WarpFramePool {
        WarpFramePool::default()
    }

    fn lock_inner(&self) -> MutexGuard<'_, Vec<WarpFrame>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Take a frame (recycled when available).
    pub fn take(&self) -> WarpFrame {
        let recycled = self.lock_inner().pop();
        match recycled {
            Some(f) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                f
            }
            None => {
                self.created.fetch_add(1, Ordering::Relaxed);
                WarpFrame::default()
            }
        }
    }

    /// Return a frame for reuse.
    pub fn give(&self, frame: WarpFrame) {
        self.lock_inner().push(frame);
    }

    /// Frames allocated fresh over the pool's lifetime.
    pub fn created(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }

    /// Takes satisfied by recycling.
    pub fn reused(&self) -> usize {
        self.reused.load(Ordering::Relaxed)
    }

    /// Frames currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.lock_inner().len()
    }
}

/// One `Op::Bin` over a whole row: `a[l] = a[l] op b[l]` for active
/// lanes.
///
/// The generic path calls [`bin`] per lane, which re-dispatches the
/// operator *and* both operand variants on every lane — exactly the
/// per-firing cost warp batching exists to amortize. Full-mask rows
/// whose operands are uniformly `f32` (by far the common case in
/// numeric bodies) instead match the operator once per row and run a
/// tight untag/compute/retag loop. The arithmetic inside is the same
/// `f32` expression `bin` evaluates, so results stay per-lane
/// bit-identical to the scalar evaluator.
#[inline]
fn bin_row(op: BinOp, mask: u64, lanes: usize, a: &mut [Value], b: &[Value]) {
    let (a, b) = (&mut a[..lanes], &b[..lanes]);
    let uniform_f32 = mask == full_mask(lanes)
        && a.iter().all(|v| matches!(v, Value::F32(_)))
        && b.iter().all(|v| matches!(v, Value::F32(_)));
    if uniform_f32 {
        #[inline(always)]
        fn f(v: Value) -> f32 {
            match v {
                Value::F32(x) => x,
                _ => unreachable!("row checked uniform f32"),
            }
        }
        macro_rules! arith {
            ($w:expr) => {
                for l in 0..lanes {
                    a[l] = Value::F32($w(f(a[l]), f(b[l])));
                }
            };
        }
        macro_rules! cmp {
            ($w:expr) => {
                for l in 0..lanes {
                    a[l] = Value::Bool($w(f(a[l]), f(b[l])));
                }
            };
        }
        match op {
            BinOp::Add => arith!(|x, y| x + y),
            BinOp::Sub => arith!(|x, y| x - y),
            BinOp::Mul => arith!(|x, y| x * y),
            BinOp::Div => arith!(|x, y| x / y),
            BinOp::Rem => arith!(|x: f32, y: f32| x % y),
            BinOp::Lt => cmp!(|x, y| x < y),
            BinOp::Le => cmp!(|x, y| x <= y),
            BinOp::Gt => cmp!(|x, y| x > y),
            BinOp::Ge => cmp!(|x, y| x >= y),
            BinOp::Eq => cmp!(|x, y| x == y),
            BinOp::Ne => cmp!(|x, y| x != y),
            // Boolean coercion of floats is `bin`'s business.
            BinOp::And | BinOp::Or => {
                for l in 0..lanes {
                    a[l] = bin(op, a[l], b[l]);
                }
            }
        }
        return;
    }
    for_lanes(mask, lanes, |l| a[l] = bin(op, a[l], b[l]));
}

/// A suspended divergent fragment: lanes in `mask` are waiting to resume
/// at `pc`.
#[derive(Debug, Clone, Copy)]
struct Frag {
    pc: u32,
    mask: u64,
}

/// Park lanes at `pc`, merging with a fragment already waiting there
/// (lanes of one loop exiting at different iterations accumulate into a
/// single fragment at the exit pc).
#[inline]
fn park(pending: &mut Vec<Frag>, pc: u32, mask: u64) {
    for f in pending.iter_mut() {
        if f.pc == pc {
            f.mask |= mask;
            return;
        }
    }
    pending.push(Frag { pc, mask });
}

/// Remove and return the fragment with the smallest pc.
#[inline]
fn take_min(pending: &mut Vec<Frag>) -> Frag {
    let mut mi = 0;
    for i in 1..pending.len() {
        if pending[i].pc < pending[mi].pc {
            mi = i;
        }
    }
    pending.swap_remove(mi)
}

#[inline]
fn min_pc(pending: &[Frag]) -> u32 {
    pending.iter().map(|f| f.pc).min().unwrap_or(u32::MAX)
}

/// Execute a compiled body warp-wide: one dispatch per opcode, a masked
/// lane loop per dispatch. `init_mask` selects the resident lanes (a
/// ragged final warp simply passes fewer bits). The frame must have been
/// [`WarpFrame::fit`] for `prog` and [`WarpFrame::reset`] with the bound
/// prototype, preset rows seeded per lane.
///
/// Infallible like the scalar evaluator; data-dependent faults panic on
/// the faulting lane just as they would scalar (inactive lanes are never
/// evaluated, so predicated-off garbage cannot fault).
pub fn eval(prog: &Program, wf: &mut WarpFrame, init_mask: u64, io: &mut dyn WarpIo) {
    let ops = prog.ops();
    let n_ops = ops.len() as u32;
    let lanes = wf.lanes;
    debug_assert!(lanes > 0, "fit() before eval()");
    debug_assert_eq!(init_mask & !full_mask(lanes), 0, "mask exceeds lanes");
    if init_mask == 0 {
        return;
    }
    let mut pc: u32 = 0;
    let mut mask = init_mask;
    // Suspended fragments, at most one per structured-control-flow
    // nesting level — a handful, so linear scans beat any heap.
    let mut pending: Vec<Frag> = Vec::new();
    // min pc over `pending`: the next reconvergence point. One compare
    // per straight-line op.
    let mut next_wait: u32 = u32::MAX;
    loop {
        // Fragment scheduling: the running fragment must hold the
        // minimum pc (else divergent partners could starve), and all
        // fragments meeting at one pc merge before executing it.
        while pc >= next_wait {
            debug_assert_eq!(wf.sp, 0, "operand stack empty at fragment switch");
            if pc == next_wait {
                let mut i = 0;
                while i < pending.len() {
                    if pending[i].pc == pc {
                        mask |= pending[i].mask;
                        pending.swap_remove(i);
                    } else {
                        i += 1;
                    }
                }
            } else {
                park(&mut pending, pc, mask);
                let f = take_min(&mut pending);
                pc = f.pc;
                mask = f.mask;
            }
            next_wait = min_pc(&pending);
        }
        if pc >= n_ops {
            // This fragment's lanes completed the program. Resume the
            // earliest waiter, or finish.
            if pending.is_empty() {
                break;
            }
            debug_assert_eq!(wf.sp, 0, "operand stack empty at fragment retire");
            let f = take_min(&mut pending);
            pc = f.pc;
            mask = f.mask;
            next_wait = min_pc(&pending);
            continue;
        }
        match ops[pc as usize] {
            // Constants broadcast to the whole row: writing inactive
            // lanes is harmless (their values are never read) and a
            // `fill` beats a masked loop.
            Op::ConstF(x) => wf.push_row().fill(Value::F32(x)),
            Op::ConstI(i) => wf.push_row().fill(Value::I64(i)),
            Op::ConstB(b) => wf.push_row().fill(Value::Bool(b)),
            Op::Load(s) => {
                let base = s as usize * lanes;
                let sp = wf.sp;
                wf.sp += 1;
                let (slots, stack) = (&wf.slots, &mut wf.stack);
                stack[sp * lanes..(sp + 1) * lanes].copy_from_slice(&slots[base..base + lanes]);
            }
            Op::Store(s) => {
                // Masked: inactive lanes keep their slot values across
                // divergent branches (full mask is a straight row copy).
                wf.sp -= 1;
                let sp = wf.sp;
                let base = s as usize * lanes;
                let (slots, stack) = (&mut wf.slots, &wf.stack);
                if mask == full_mask(lanes) {
                    slots[base..base + lanes].copy_from_slice(&stack[sp * lanes..(sp + 1) * lanes]);
                } else {
                    for_lanes(mask, lanes, |l| slots[base + l] = stack[sp * lanes + l]);
                }
            }
            Op::Pop => io.pop_row(mask, wf.push_row()),
            Op::Peek => io.peek_row(mask, wf.top_row_mut()),
            Op::StateLoad(id) => {
                io.state_load_row(id, &prog.state_names()[id as usize], mask, wf.top_row_mut());
            }
            Op::StateStore(id) => {
                wf.sp -= 2;
                let base = wf.sp * lanes;
                let (idx, vals) = wf.stack[base..base + 2 * lanes].split_at(lanes);
                io.state_store_row(id, &prog.state_names()[id as usize], mask, idx, vals);
            }
            Op::PushOut => io.push_row(mask, wf.pop_row()),
            Op::Bin(op) => {
                let (a, b) = wf.top2_mut();
                bin_row(op, mask, lanes, a, b);
                wf.sp -= 1;
            }
            Op::Neg => {
                let row = wf.top_row_mut();
                for_lanes(mask, lanes, |l| {
                    row[l] = match row[l] {
                        Value::I64(i) => Value::I64(i.wrapping_neg()),
                        other => Value::F32(-as_f32(other)),
                    };
                });
            }
            Op::Not => {
                let row = wf.top_row_mut();
                for_lanes(mask, lanes, |l| row[l] = Value::Bool(!row[l].as_bool()));
            }
            Op::Call(intr) => {
                let n = intr.arity();
                wf.sp -= n - 1;
                let base = (wf.sp - 1) * lanes;
                let rows = &mut wf.stack[base..base + n * lanes];
                for_lanes(mask, lanes, |l| {
                    let mut args = [Value::F32(0.0); 3];
                    for (i, a) in args.iter_mut().enumerate().take(n) {
                        *a = rows[i * lanes + l];
                    }
                    rows[l] = call(intr, &args[..n]);
                });
            }
            Op::Jump(t) => {
                pc = t;
                continue;
            }
            Op::JumpIfFalse(t) => {
                let row = wf.pop_row();
                let mut false_mask = 0u64;
                for_lanes(mask, lanes, |l| {
                    if !row[l].as_bool() {
                        false_mask |= 1 << l;
                    }
                });
                if false_mask == mask {
                    pc = t;
                    continue;
                }
                if false_mask != 0 {
                    debug_assert_eq!(wf.sp, 0, "branch at operand depth 0");
                    park(&mut pending, t, false_mask);
                    next_wait = next_wait.min(t);
                    mask &= !false_mask;
                }
            }
            Op::ForInit { counter, end } => {
                wf.sp -= 2;
                let base = wf.sp * lanes;
                let (cb, eb) = (counter as usize * lanes, end as usize * lanes);
                let (slots, stack) = (&mut wf.slots, &wf.stack);
                for_lanes(mask, lanes, |l| {
                    let hi = stack[base + lanes + l];
                    let lo = stack[base + l];
                    slots[cb + l] = Value::I64(as_i64(lo));
                    slots[eb + l] = Value::I64(as_i64(hi));
                });
            }
            Op::ForTest {
                counter,
                end,
                var,
                exit,
            } => {
                let (cb, eb, vb) = (
                    counter as usize * lanes,
                    end as usize * lanes,
                    var as usize * lanes,
                );
                let slots = &mut wf.slots;
                let mut exit_mask = 0u64;
                for_lanes(mask, lanes, |l| {
                    let c = as_i64(slots[cb + l]);
                    if c < as_i64(slots[eb + l]) {
                        slots[vb + l] = Value::I64(c);
                    } else {
                        exit_mask |= 1 << l;
                    }
                });
                if exit_mask == mask {
                    pc = exit;
                    continue;
                }
                if exit_mask != 0 {
                    debug_assert_eq!(wf.sp, 0, "branch at operand depth 0");
                    park(&mut pending, exit, exit_mask);
                    next_wait = next_wait.min(exit);
                    mask &= !exit_mask;
                }
            }
            Op::ForStep { counter, head } => {
                let cb = counter as usize * lanes;
                let slots = &mut wf.slots;
                for_lanes(mask, lanes, |l| {
                    let c = as_i64(slots[cb + l]);
                    slots[cb + l] = Value::I64(c.wrapping_add(1));
                });
                pc = head;
                continue;
            }
        }
        pc += 1;
    }
}

/// Execute a compiled *expression* warp-wide and write each active
/// lane's `f32` result into `out[lane]`.
pub fn eval_row(
    prog: &Program,
    wf: &mut WarpFrame,
    mask: u64,
    io: &mut dyn WarpIo,
    out: &mut [f32],
) {
    eval(prog, wf, mask, io);
    let lanes = wf.lanes;
    let row = wf.take_value_row();
    for_lanes(mask, lanes, |l| out[l] = as_f32(row[l]));
}

/// Host-side warp I/O over plain vectors: the row-granular counterpart of
/// [`crate::exec_ir::VecIo`], used by differential tests and benches.
/// Each lane owns an independent cursor into the shared `input` and a
/// preassigned output range, so lane results land exactly where a scalar
/// per-lane run would put them. State arrays are shared; within a row,
/// lanes are served in ascending lane order.
#[derive(Debug, Default)]
pub struct VecWarpIo {
    /// Shared input words.
    pub input: Vec<f32>,
    /// Per-lane read cursor into `input` (peeks are cursor-relative).
    pub cursor: Vec<usize>,
    /// Flat output buffer; must be pre-sized.
    pub output: Vec<f32>,
    /// Per-lane next write index into `output`.
    pub out_pos: Vec<usize>,
    /// Shared state arrays.
    pub state: HashMap<String, Vec<f32>>,
}

impl WarpIo for VecWarpIo {
    fn pop_row(&mut self, mask: u64, out: &mut [Value]) {
        for_lanes(mask, out.len(), |l| {
            let v = self.input[self.cursor[l]];
            self.cursor[l] += 1;
            out[l] = Value::F32(v);
        });
    }

    fn peek_row(&mut self, mask: u64, row: &mut [Value]) {
        for_lanes(mask, row.len(), |l| {
            let off = as_i64(row[l]);
            row[l] = Value::F32(self.input[(self.cursor[l] as i64 + off) as usize]);
        });
    }

    fn push_row(&mut self, mask: u64, vals: &[Value]) {
        for_lanes(mask, vals.len(), |l| {
            self.output[self.out_pos[l]] = as_f32(vals[l]);
            self.out_pos[l] += 1;
        });
    }

    fn state_load_row(&mut self, _id: u16, array: &str, mask: u64, row: &mut [Value]) {
        let arr = &self.state[array];
        for_lanes(mask, row.len(), |l| {
            row[l] = Value::F32(arr[as_i64(row[l]) as usize]);
        });
    }

    fn state_store_row(&mut self, _id: u16, array: &str, mask: u64, idx: &[Value], vals: &[Value]) {
        let arr = self.state.get_mut(array).expect("bound state array");
        for_lanes(mask, idx.len(), |l| {
            arr[as_i64(idx[l]) as usize] = as_f32(vals[l]);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{compile_body, compile_expr, eval as scalar_eval, Frame};
    use crate::exec_ir::VecIo;
    use streamir::graph::bindings;
    use streamir::ir::Stmt;
    use streamir::parse::parse_program;

    fn body_of(src: &str) -> Vec<Stmt> {
        parse_program(src).unwrap().actors[0].work.body.clone()
    }

    /// Run `body` scalar (per lane) and warp-wide over per-lane inputs;
    /// assert bit-identical outputs and cursors.
    fn run_both(body: &[Stmt], lane_inputs: &[Vec<f32>], pushes_per_lane: usize) {
        let binds = bindings(&[]);
        let prog = compile_body(body, &binds, &["lane"]).unwrap();
        let proto = prog.bind(&binds).unwrap();
        let lane_slot = prog.slot_of("lane");
        let lanes = lane_inputs.len();

        // Scalar reference: lane-by-lane with private cursors.
        let mut want = Vec::new();
        let mut want_cursors = Vec::new();
        for (l, input) in lane_inputs.iter().enumerate() {
            let mut frame = Frame::default();
            frame.fit(&prog);
            frame.reset(&proto);
            if let Some(s) = lane_slot {
                frame.set(s, Value::I64(l as i64));
            }
            let mut io = VecIo {
                input: input.clone(),
                ..Default::default()
            };
            scalar_eval(&prog, &mut frame, &mut io);
            want.extend(io.output);
            want_cursors.push(io.cursor);
        }

        // Warp run: one shared input with per-lane segments.
        let seg = lane_inputs[0].len();
        let mut wio = VecWarpIo {
            input: lane_inputs.iter().flatten().copied().collect(),
            cursor: (0..lanes).map(|l| l * seg).collect(),
            output: vec![0.0; pushes_per_lane * lanes],
            out_pos: (0..lanes).map(|l| l * pushes_per_lane).collect(),
            ..Default::default()
        };
        let mut wf = WarpFrame::default();
        wf.fit(&prog, lanes);
        wf.reset(&proto);
        if let Some(s) = lane_slot {
            for l in 0..lanes {
                wf.set_lane(s, l, Value::I64(l as i64));
            }
        }
        eval(&prog, &mut wf, full_mask(lanes), &mut wio);

        assert_eq!(want.len(), wio.output.len());
        for (i, (a, b)) in want.iter().zip(&wio.output).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "output {i}: {a} vs {b}");
        }
        for (l, c) in wio.cursor.iter().enumerate() {
            assert_eq!(c - l * seg, want_cursors[l], "lane {l} cursor");
        }
    }

    #[test]
    fn uniform_body_matches_scalar() {
        let body = body_of(
            r#"pipeline P() {
                actor H(pop 1, push 1) {
                    x = pop();
                    acc = 0.0;
                    for i in 0..16 { acc = acc * x + 1.0; }
                    push(acc);
                }
            }"#,
        );
        let inputs: Vec<Vec<f32>> = (0..32).map(|l| vec![l as f32 * 0.25 - 3.0]).collect();
        run_both(&body, &inputs, 1);
    }

    #[test]
    fn divergent_branches_match_scalar() {
        let body = body_of(
            r#"pipeline P() {
                actor D(pop 1, push 1) {
                    x = pop();
                    if (x < 0.0) { x = 0.0 - x; if (x > 2.0) { x = x * 0.5; } }
                    else { x = x * 1.5; }
                    push(x);
                }
            }"#,
        );
        let inputs: Vec<Vec<f32>> = (0..32).map(|l| vec![l as f32 - 16.0]).collect();
        run_both(&body, &inputs, 1);
    }

    #[test]
    fn uneven_trip_counts_match_scalar() {
        // Trip count depends on the lane id: lanes exit the loop at
        // different iterations and must reconverge at the exit pc.
        let body = body_of(
            r#"pipeline P() {
                actor U(pop 1, push 1) {
                    x = pop();
                    for i in 0..lane { x = x + i * 1.0; if (i % 2 == 0) { x = x * 1.0625; } }
                    push(x);
                }
            }"#,
        );
        let inputs: Vec<Vec<f32>> = (0..32).map(|l| vec![l as f32 * 0.5]).collect();
        run_both(&body, &inputs, 1);
    }

    #[test]
    fn pops_under_divergence_match_scalar() {
        // Divergent lanes consume different numbers of inputs.
        let body = body_of(
            r#"pipeline P() {
                actor V(pop 4, push 1) {
                    x = pop();
                    if (x < 8.0) { x = x + pop(); } else { x = x * 2.0; }
                    push(x);
                }
            }"#,
        );
        let inputs: Vec<Vec<f32>> = (0..32)
            .map(|l| vec![l as f32, 100.0, 200.0, 300.0])
            .collect();
        run_both(&body, &inputs, 1);
    }

    #[test]
    fn ragged_final_warp_runs_partial_mask() {
        let body = body_of(
            r#"pipeline P() {
                actor R(pop 1, push 1) { push(pop() + 1.0); }
            }"#,
        );
        let binds = bindings(&[]);
        let prog = compile_body(&body, &binds, &[]).unwrap();
        let proto = prog.bind(&binds).unwrap();
        let lanes = 32;
        let resident = 5usize; // ragged: only 5 of 32 lanes live
        let mut wio = VecWarpIo {
            input: (0..lanes).map(|l| l as f32).collect(),
            cursor: (0..lanes).collect(),
            output: vec![-1.0; lanes],
            out_pos: (0..lanes).collect(),
            ..Default::default()
        };
        let mut wf = WarpFrame::default();
        wf.fit(&prog, lanes);
        wf.reset(&proto);
        eval(&prog, &mut wf, full_mask(resident), &mut wio);
        for l in 0..lanes {
            let want = if l < resident { l as f32 + 1.0 } else { -1.0 };
            assert_eq!(wio.output[l], want, "lane {l}");
        }
    }

    #[test]
    fn wrapping_integer_semantics_preserved() {
        let body = body_of(
            r#"pipeline P() {
                actor W(pop 1, push 1) {
                    k = 9223372036854775807;
                    k = k + 1;
                    x = pop();
                    push(select(k < 0, x, 0.0 - x));
                }
            }"#,
        );
        let inputs: Vec<Vec<f32>> = (0..8).map(|l| vec![l as f32]).collect();
        run_both(&body, &inputs, 1);
    }

    #[test]
    fn state_rows_read_and_write() {
        let body = body_of(
            r#"pipeline P() {
                actor S(pop 1, push 1) {
                    state s[64];
                    x = pop();
                    s[lane] = x * 2.0;
                    push(s[lane] + 1.0);
                }
            }"#,
        );
        let binds = bindings(&[]);
        let prog = compile_body(&body, &binds, &["lane"]).unwrap();
        let proto = prog.bind(&binds).unwrap();
        let lane_slot = prog.slot_of("lane").unwrap();
        let lanes = 16;
        let mut wio = VecWarpIo {
            input: (0..lanes).map(|l| l as f32).collect(),
            cursor: (0..lanes).collect(),
            output: vec![0.0; lanes],
            out_pos: (0..lanes).collect(),
            ..Default::default()
        };
        wio.state.insert("s".into(), vec![0.0; 64]);
        let mut wf = WarpFrame::default();
        wf.fit(&prog, lanes);
        wf.reset(&proto);
        for l in 0..lanes {
            wf.set_lane(lane_slot, l, Value::I64(l as i64));
        }
        eval(&prog, &mut wf, full_mask(lanes), &mut wio);
        for l in 0..lanes {
            assert_eq!(wio.output[l], l as f32 * 2.0 + 1.0);
            assert_eq!(wio.state["s"][l], l as f32 * 2.0);
        }
    }

    #[test]
    fn expression_rows_yield_values() {
        use streamir::ir::{BinOp, Expr};
        let e = Expr::bin(BinOp::Mul, Expr::var("acc"), Expr::Float(0.5));
        let binds = bindings(&[]);
        let prog = compile_expr(&e, &binds, &["acc"]).unwrap();
        let slot = prog.slot_of("acc").unwrap();
        let proto = prog.bind(&binds).unwrap();
        let lanes = 8;
        let mut wf = WarpFrame::default();
        wf.fit(&prog, lanes);
        wf.reset(&proto);
        for l in 0..lanes {
            wf.set_lane(slot, l, Value::F32(l as f32 * 2.0));
        }
        let mut io = VecWarpIo::default();
        let mut out = vec![0.0f32; lanes];
        eval_row(&prog, &mut wf, full_mask(lanes), &mut io, &mut out);
        for (l, v) in out.iter().enumerate() {
            assert_eq!(*v, l as f32);
        }
    }

    #[test]
    fn warp_frame_pool_recycles_and_recovers_poison() {
        let pool = WarpFramePool::new();
        let f1 = pool.take();
        pool.give(f1);
        assert_eq!(pool.idle(), 1);
        let _f2 = pool.take();
        assert_eq!(pool.created(), 1);
        assert_eq!(pool.reused(), 1);
    }
}
