//! Closed-form cost profiles for the kernel templates.
//!
//! The compiler must decide between kernel variants *without running
//! anything*: each template's per-warp instruction and transaction counts
//! are written down as functions of the launch shape and the input
//! dimensions, and fed to the analytical model. These formulas mirror what
//! the templates actually do; `tests/` cross-checks them against measured
//! simulator statistics.

use gpu_sim::DeviceSpec;
use perfmodel::{estimate, LaunchProfile, TimingEstimate};

use crate::layout::Layout;

/// Closed-form profile of a [`crate::templates::MapKernel`] launch.
#[allow(clippy::too_many_arguments)]
pub fn map_profile(
    device: &DeviceSpec,
    units: usize,
    pops_per_unit: usize,
    pushes_per_unit: usize,
    state_accesses_per_unit: f64,
    compute_per_unit: f64,
    flops_per_unit: f64,
    in_layout: Layout,
    out_layout: Layout,
    coarsen: usize,
    block_dim: u32,
) -> LaunchProfile {
    let coarsen = coarsen.max(1);
    let grid = units.div_ceil(block_dim as usize * coarsen).max(1) as u32;
    // SIMT lockstep: the lanes of a warp each process one unit per
    // coarsening step, so a warp issues each access site once per step —
    // per-warp instruction counts are per-unit counts times the coarsening
    // factor, NOT times the lane count.
    let steps = coarsen as f64;
    let in_insts = pops_per_unit as f64 * steps;
    let out_insts = pushes_per_unit as f64 * steps;
    let state_insts = state_accesses_per_unit * steps;
    let mem_insts = in_insts + out_insts + state_insts;
    let t_in = in_layout.transactions_per_access(pops_per_unit, device.warp_size);
    let t_out = out_layout.transactions_per_access(pushes_per_unit, device.warp_size);
    // State arrays are indexed uniformly across a warp (broadcast) in the
    // workloads we lower: one transaction per access.
    let transactions = in_insts * t_in + out_insts * t_out + state_insts;
    LaunchProfile {
        grid_dim: grid,
        block_dim,
        shared_words: 0,
        mem_insts_per_warp: mem_insts,
        transactions_per_mem_inst: if mem_insts > 0.0 {
            transactions / mem_insts
        } else {
            1.0
        },
        compute_insts_per_warp: compute_per_unit * steps,
        shared_cycles_per_warp: 0.0,
        syncs_per_block: 0.0,
        flops: flops_per_unit * units as f64,
    }
}

/// Closed-form profile of a [`crate::templates::SingleKernelReduce`]
/// launch (also used for the merge stage of the two-kernel scheme).
#[allow(clippy::too_many_arguments)]
pub fn single_reduce_profile(
    device: &DeviceSpec,
    n_arrays: usize,
    n_elements: usize,
    pops_per_elem: usize,
    state_accesses_per_elem: f64,
    compute_per_elem: f64,
    arrays_per_block: usize,
    block_dim: u32,
    in_layout: Layout,
) -> LaunchProfile {
    let apb = arrays_per_block.max(1);
    let grid = n_arrays.div_ceil(apb).max(1) as u32;
    let tpa = (block_dim as usize / apb).max(1);
    let elems_per_thread = n_elements.div_ceil(tpa) as f64;
    // Phase 1: each thread strides over its array.
    let mem_insts = elems_per_thread * (pops_per_elem as f64 + state_accesses_per_elem);
    let t_in = in_layout.transactions_per_access(pops_per_elem, device.warp_size);
    // Phase 2: tree reduction in shared memory.
    let tree_steps = (tpa as f64).log2().max(1.0);
    let shared_cycles = 1.0 + 3.0 * tree_steps;
    let syncs = tree_steps.min((tpa as f64 / device.warp_size as f64).log2().max(0.0)) + 2.0;
    LaunchProfile {
        grid_dim: grid,
        block_dim,
        shared_words: block_dim,
        mem_insts_per_warp: mem_insts,
        transactions_per_mem_inst: (pops_per_elem as f64 * t_in + state_accesses_per_elem)
            / (pops_per_elem as f64 + state_accesses_per_elem).max(1.0),
        compute_insts_per_warp: compute_per_elem * elems_per_thread + 2.0 * tree_steps,
        shared_cycles_per_warp: shared_cycles,
        syncs_per_block: syncs,
        flops: (n_arrays * n_elements) as f64 * (1.0 + pops_per_elem as f64),
    }
    .finish(device)
}

/// Closed-form profile of an [`crate::templates::InitialReduce`] launch.
#[allow(clippy::too_many_arguments)]
pub fn initial_reduce_profile(
    device: &DeviceSpec,
    n_arrays: usize,
    n_elements: usize,
    pops_per_elem: usize,
    state_accesses_per_elem: f64,
    compute_per_elem: f64,
    initial_blocks: usize,
    block_dim: u32,
    in_layout: Layout,
) -> LaunchProfile {
    let grid = (n_arrays * initial_blocks).max(1) as u32;
    let chunk = n_elements.div_ceil(initial_blocks);
    let elems_per_thread = chunk.div_ceil(block_dim as usize) as f64;
    let mem_insts = elems_per_thread * (pops_per_elem as f64 + state_accesses_per_elem);
    let t_in = in_layout.transactions_per_access(pops_per_elem, device.warp_size);
    let tree_steps = (block_dim as f64).log2().max(1.0);
    LaunchProfile {
        grid_dim: grid,
        block_dim,
        shared_words: block_dim,
        mem_insts_per_warp: mem_insts,
        transactions_per_mem_inst: (pops_per_elem as f64 * t_in + state_accesses_per_elem)
            / (pops_per_elem as f64 + state_accesses_per_elem).max(1.0),
        compute_insts_per_warp: compute_per_elem * elems_per_thread + 2.0 * tree_steps,
        shared_cycles_per_warp: 1.0 + 3.0 * tree_steps,
        syncs_per_block: tree_steps + 2.0,
        flops: (n_arrays * n_elements) as f64 * (1.0 + pops_per_elem as f64),
    }
    .finish(device)
}

/// Closed-form profile of a [`crate::templates::StencilKernel`] launch.
#[allow(clippy::too_many_arguments)]
pub fn stencil_profile(
    device: &DeviceSpec,
    rows: usize,
    cols: usize,
    tile_w: usize,
    tile_h: usize,
    halo_r: usize,
    halo_c: usize,
    taps: usize,
    compute_per_elem: f64,
    flops_per_elem: f64,
    block_dim: u32,
) -> LaunchProfile {
    let tiles = rows.div_ceil(tile_h) * cols.div_ceil(tile_w);
    let grid = tiles.max(1) as u32;
    let ext = (tile_w + 2 * halo_c) * (tile_h + 2 * halo_r);
    let warps_per_block = block_dim.div_ceil(device.warp_size) as f64;
    // Phase 1 loads the extended tile, coalesced row segments.
    let loads_per_warp = ext as f64 / (warps_per_block * device.warp_size as f64);
    // Phase 2 stores one output per element.
    let elems = tile_w * tile_h;
    let stores_per_warp = elems as f64 / (warps_per_block * device.warp_size as f64);
    let elems_per_thread = elems.div_ceil(block_dim as usize) as f64;
    LaunchProfile {
        grid_dim: grid,
        block_dim,
        shared_words: ext as u32,
        mem_insts_per_warp: loads_per_warp + stores_per_warp,
        transactions_per_mem_inst: 1.2, // tile-edge fragmentation
        compute_insts_per_warp: compute_per_elem * elems_per_thread,
        shared_cycles_per_warp: (taps as f64 + 1.0) * elems_per_thread + loads_per_warp,
        syncs_per_block: 1.0,
        flops: flops_per_elem * (rows * cols) as f64,
    }
    .finish(device)
}

/// Profile of the host-side fallback for an opaque actor: a pure CPU cost
/// expressed as an equivalent time (the model charges a fixed per-item
/// cost at host speed).
pub fn host_cost_us(items: usize, compute_per_item: f64) -> f64 {
    // ~1 GHz effective scalar rate, 2 inst/item floor.
    items as f64 * (compute_per_item.max(2.0)) * 1e-3
}

/// Convenience: run the analytical model on a profile.
pub fn profile_time(device: &DeviceSpec, p: &LaunchProfile) -> TimingEstimate {
    estimate(device, p)
}

trait Finish {
    fn finish(self, device: &DeviceSpec) -> LaunchProfile;
}

impl Finish for LaunchProfile {
    /// Clamp shared allocations to the device budget (profiles are used to
    /// *reject* infeasible shapes, not to panic).
    fn finish(mut self, device: &DeviceSpec) -> LaunchProfile {
        if self.shared_words > device.shared_words_per_block {
            self.shared_words = device.shared_words_per_block;
        }
        if self.block_dim > device.max_threads_per_block {
            self.block_dim = device.max_threads_per_block;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfmodel::KernelClass;

    fn device() -> DeviceSpec {
        DeviceSpec::tesla_c2050()
    }

    #[test]
    fn map_profile_transposed_beats_row_major_for_wide_pops() {
        let d = device();
        let rm = map_profile(
            &d,
            1 << 16,
            8,
            8,
            0.0,
            10.0,
            8.0,
            Layout::RowMajor,
            Layout::RowMajor,
            1,
            256,
        );
        let tp = map_profile(
            &d,
            1 << 16,
            8,
            8,
            0.0,
            10.0,
            8.0,
            Layout::Transposed,
            Layout::Transposed,
            1,
            256,
        );
        let t_rm = estimate(&d, &rm).time_us;
        let t_tp = estimate(&d, &tp).time_us;
        assert!(t_tp < t_rm, "transposed {t_tp} vs row-major {t_rm}");
    }

    #[test]
    fn reduce_profiles_capture_the_crossover() {
        // Many arrays: single-kernel wins (two-kernel pays a second launch
        // and extra global traffic). One huge array: two-kernel wins
        // (single kernel leaves the device idle with 1 block).
        let d = device();
        let time_single = |n_arrays: usize, n_elements: usize| {
            estimate(
                &d,
                &single_reduce_profile(
                    &d,
                    n_arrays,
                    n_elements,
                    1,
                    0.0,
                    3.0,
                    1,
                    256,
                    Layout::RowMajor,
                ),
            )
            .time_us
        };
        let time_two = |n_arrays: usize, n_elements: usize| {
            let blocks = 2 * d.sm_count as usize;
            let init = estimate(
                &d,
                &initial_reduce_profile(
                    &d,
                    n_arrays,
                    n_elements,
                    1,
                    0.0,
                    3.0,
                    blocks,
                    256,
                    Layout::RowMajor,
                ),
            )
            .time_us;
            let merge = estimate(
                &d,
                &single_reduce_profile(&d, n_arrays, blocks, 1, 0.0, 1.0, 1, 64, Layout::RowMajor),
            )
            .time_us;
            init + merge
        };
        // 4M-element single array.
        assert!(
            time_two(1, 1 << 22) < time_single(1, 1 << 22),
            "two-kernel should win on one huge array: {} vs {}",
            time_two(1, 1 << 22),
            time_single(1, 1 << 22)
        );
        // 4K arrays of 1K elements.
        assert!(
            time_single(4096, 1024) < time_two(4096, 1024),
            "single-kernel should win on many arrays: {} vs {}",
            time_single(4096, 1024),
            time_two(4096, 1024)
        );
    }

    #[test]
    fn stencil_bigger_tiles_cost_less_memory_time() {
        let d = device();
        let small = stencil_profile(&d, 1024, 1024, 8, 8, 1, 1, 5, 10.0, 5.0, 256);
        let large = stencil_profile(&d, 1024, 1024, 64, 16, 1, 1, 5, 10.0, 5.0, 256);
        let ts = estimate(&d, &small).time_us;
        let tl = estimate(&d, &large).time_us;
        assert!(tl < ts, "large tiles {tl} vs small tiles {ts}");
    }

    #[test]
    fn tiny_grid_profiles_classify_latency_bound() {
        let d = device();
        let p = single_reduce_profile(&d, 2, 1 << 20, 1, 0.0, 3.0, 1, 256, Layout::RowMajor);
        let est = estimate(&d, &p);
        assert_eq!(est.class, KernelClass::LatencyBound);
    }

    #[test]
    fn host_cost_scales_linearly() {
        assert!(host_cost_us(1000, 4.0) < host_cost_us(2000, 4.0));
        assert_eq!(host_cost_us(0, 4.0), 0.0);
    }
}
