//! Persistent compilation artifacts and the warm-start autotune cache.
//!
//! Every process used to recompile every plan and relearn every KMU
//! boundary from scratch — the adaptive selection of §5 only pays off
//! after warm-up, so a fleet-scale deployment wasted that warm-up on
//! every boot. This module persists the two halves of that warm-up to a
//! content-addressed on-disk store:
//!
//! - **plan-time state** ([`PlanArtifact`]): the per-segment bytecode
//!   programs, edge layouts and the planner's variant table — everything
//!   `compile` derives from the program that does not depend on any
//!   launch. A store hit skips bytecode lowering and the probe/binary-
//!   search construction of the variant table entirely.
//! - **run-time *learned* state** ([`LearnedState`]): the kernel-management
//!   unit's recalibrated boundaries and per-variant [`VariantHistogram`]
//!   EWMA summaries. A reloaded manager starts where the last process
//!   left off — and [`LearnedState::to_bytes`] lets one node ship its
//!   learned boundaries to peers. Circuit-breaker/quarantine state is
//!   deliberately **not** part of this type: quarantine reflects *this
//!   process's* observation of a possibly-transient device fault, and a
//!   fresh process must start with closed (healthy) breakers.
//!
//! Artifacts are keyed by ([`content hash`](crate::plan::content_hash),
//! [`DeviceSpec::fingerprint`](gpu_sim::DeviceSpec::fingerprint),
//! [`FORMAT_VERSION`]). No serde exists in this offline workspace, so the
//! format is a hand-rolled length-prefixed binary codec: a magic header,
//! a format-version field, the key (so a hash-named file cannot be
//! swapped for another), then length-prefixed records each carrying an
//! FNV-1a checksum. Corrupt, truncated or version-mismatched files are
//! *counted misses* ([`ArtifactStore`] telemetry), never a crash: every
//! decode path returns a typed [`ArtifactError`].
//!
//! Writes are atomic (write to a temp file in the same directory, then
//! rename), so a crashed writer can never leave a half-written artifact
//! that a later boot would read.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use streamir::ir::{BinOp, Intrinsic};

use crate::bytecode::{self, Op, SlotKind};
use crate::kmu::VariantHistogram;
use crate::layout::Layout;
use crate::opt::segmentation::ReduceChoice;
use crate::plan::{OptTag, SegChoice, SegPrograms, Variant};

/// Bump on any change to the on-disk layout *or* to the semantics of what
/// is persisted (opcode set, variant-table meaning, histogram fields).
/// Version-mismatched files are rejected as misses and overwritten.
pub const FORMAT_VERSION: u32 = 1;

/// Magic bytes opening every artifact file.
const MAGIC: [u8; 4] = *b"ADPT";

/// File kind discriminants (byte after the version field).
const KIND_PLAN: u8 = 1;
const KIND_LEARNED: u8 = 2;

/// Why an artifact could not be used. Every decoder path returns this —
/// never a panic, never silent garbage.
#[derive(Debug)]
pub enum ArtifactError {
    /// Filesystem error reading or writing the store.
    Io(io::Error),
    /// The file does not open with the expected magic bytes.
    BadMagic,
    /// The file was written by a different format version.
    Version { found: u32, expected: u32 },
    /// The file's embedded key does not match the requested key (a
    /// renamed or hash-colliding file).
    KeyMismatch,
    /// The payload ended before a field could be read.
    Truncated,
    /// A record's checksum does not match its payload.
    Checksum,
    /// A decoded value is structurally invalid (unknown tag, index out of
    /// range, non-UTF-8 string, table that does not tile its axis, ...).
    Malformed(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact io error: {e}"),
            ArtifactError::BadMagic => write!(f, "not an artifact file (bad magic)"),
            ArtifactError::Version { found, expected } => {
                write!(f, "artifact format v{found}, expected v{expected}")
            }
            ArtifactError::KeyMismatch => write!(f, "artifact key does not match request"),
            ArtifactError::Truncated => write!(f, "artifact truncated"),
            ArtifactError::Checksum => write!(f, "artifact checksum mismatch"),
            ArtifactError::Malformed(why) => write!(f, "malformed artifact: {why}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<io::Error> for ArtifactError {
    fn from(e: io::Error) -> ArtifactError {
        ArtifactError::Io(e)
    }
}

type Result<T> = std::result::Result<T, ArtifactError>;

/// FNV-1a 64-bit — the store's stable hash, used for record checksums and
/// (via [`crate::plan::content_hash`]) content addressing. Chosen over
/// `DefaultHasher` because artifacts outlive processes: the hash must be
/// identical across runs, builds and Rust versions.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The content address of one compiled program on one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// Structural hash of (program AST, compile options, input axis) —
    /// see [`crate::plan::content_hash`].
    pub content: u64,
    /// [`gpu_sim::DeviceSpec::fingerprint`] of the target device.
    pub device: u64,
}

impl ArtifactKey {
    fn stem(&self) -> String {
        format!("{:016x}-{:016x}", self.content, self.device)
    }
}

// ---------------------------------------------------------------------------
// Codec primitives
// ---------------------------------------------------------------------------

/// Little-endian append-only encoder.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    /// Element count prefix (shared by every variable-length sequence).
    fn count(&mut self, n: usize) {
        self.u32(n as u32);
    }
}

/// Bounds-checked little-endian reader over one record's payload.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(ArtifactError::Truncated)?;
        if end > self.buf.len() {
            return Err(ArtifactError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(ArtifactError::Malformed(format!("bool byte {b}"))),
        }
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> Result<f32> {
        Ok(f32::from_bits(self.u32()?))
    }
    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn usize(&mut self) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| ArtifactError::Malformed(format!("usize {v}")))
    }
    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ArtifactError::Malformed("non-UTF-8 string".into()))
    }
    /// Element count, sanity-bounded by the bytes remaining (every element
    /// encodes to at least one byte) so a corrupted count cannot trigger a
    /// huge allocation.
    fn count(&mut self) -> Result<usize> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.pos {
            return Err(ArtifactError::Truncated);
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Enum tags
// ---------------------------------------------------------------------------

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Rem => 4,
        BinOp::Lt => 5,
        BinOp::Le => 6,
        BinOp::Gt => 7,
        BinOp::Ge => 8,
        BinOp::Eq => 9,
        BinOp::Ne => 10,
        BinOp::And => 11,
        BinOp::Or => 12,
    }
}

fn binop_of(tag: u8) -> Result<BinOp> {
    Ok(match tag {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Rem,
        5 => BinOp::Lt,
        6 => BinOp::Le,
        7 => BinOp::Gt,
        8 => BinOp::Ge,
        9 => BinOp::Eq,
        10 => BinOp::Ne,
        11 => BinOp::And,
        12 => BinOp::Or,
        t => return Err(ArtifactError::Malformed(format!("binop tag {t}"))),
    })
}

fn intrinsic_tag(i: Intrinsic) -> u8 {
    match i {
        Intrinsic::Sqrt => 0,
        Intrinsic::Exp => 1,
        Intrinsic::Log => 2,
        Intrinsic::Abs => 3,
        Intrinsic::Sin => 4,
        Intrinsic::Cos => 5,
        Intrinsic::Floor => 6,
        Intrinsic::Max => 7,
        Intrinsic::Min => 8,
        Intrinsic::Pow => 9,
        Intrinsic::Select => 10,
    }
}

fn intrinsic_of(tag: u8) -> Result<Intrinsic> {
    Ok(match tag {
        0 => Intrinsic::Sqrt,
        1 => Intrinsic::Exp,
        2 => Intrinsic::Log,
        3 => Intrinsic::Abs,
        4 => Intrinsic::Sin,
        5 => Intrinsic::Cos,
        6 => Intrinsic::Floor,
        7 => Intrinsic::Max,
        8 => Intrinsic::Min,
        9 => Intrinsic::Pow,
        10 => Intrinsic::Select,
        t => return Err(ArtifactError::Malformed(format!("intrinsic tag {t}"))),
    })
}

fn layout_tag(l: Layout) -> u8 {
    match l {
        Layout::RowMajor => 0,
        Layout::Transposed => 1,
    }
}

fn layout_of(tag: u8) -> Result<Layout> {
    Ok(match tag {
        0 => Layout::RowMajor,
        1 => Layout::Transposed,
        t => return Err(ArtifactError::Malformed(format!("layout tag {t}"))),
    })
}

fn opt_tag_tag(t: OptTag) -> u8 {
    match t {
        OptTag::MemoryRestructuring => 0,
        OptTag::NeighboringAccess => 1,
        OptTag::StreamReduction => 2,
        OptTag::IntraActorParallelization => 3,
        OptTag::VerticalIntegration => 4,
        OptTag::HorizontalIntegration => 5,
        OptTag::ThreadIntegration => 6,
    }
}

fn opt_tag_of(tag: u8) -> Result<OptTag> {
    Ok(match tag {
        0 => OptTag::MemoryRestructuring,
        1 => OptTag::NeighboringAccess,
        2 => OptTag::StreamReduction,
        3 => OptTag::IntraActorParallelization,
        4 => OptTag::VerticalIntegration,
        5 => OptTag::HorizontalIntegration,
        6 => OptTag::ThreadIntegration,
        t => return Err(ArtifactError::Malformed(format!("opt tag {t}"))),
    })
}

// ---------------------------------------------------------------------------
// Bytecode programs
// ---------------------------------------------------------------------------

fn enc_op(e: &mut Enc, op: Op) {
    match op {
        Op::ConstF(x) => {
            e.u8(0);
            e.f32(x);
        }
        Op::ConstI(i) => {
            e.u8(1);
            e.i64(i);
        }
        Op::ConstB(b) => {
            e.u8(2);
            e.bool(b);
        }
        Op::Load(s) => {
            e.u8(3);
            e.u16(s);
        }
        Op::Store(s) => {
            e.u8(4);
            e.u16(s);
        }
        Op::Pop => e.u8(5),
        Op::Peek => e.u8(6),
        Op::StateLoad(id) => {
            e.u8(7);
            e.u16(id);
        }
        Op::StateStore(id) => {
            e.u8(8);
            e.u16(id);
        }
        Op::PushOut => e.u8(9),
        Op::Bin(op) => {
            e.u8(10);
            e.u8(binop_tag(op));
        }
        Op::Neg => e.u8(11),
        Op::Not => e.u8(12),
        Op::Call(i) => {
            e.u8(13);
            e.u8(intrinsic_tag(i));
        }
        Op::Jump(t) => {
            e.u8(14);
            e.u32(t);
        }
        Op::JumpIfFalse(t) => {
            e.u8(15);
            e.u32(t);
        }
        Op::ForInit { counter, end } => {
            e.u8(16);
            e.u16(counter);
            e.u16(end);
        }
        Op::ForTest {
            counter,
            end,
            var,
            exit,
        } => {
            e.u8(17);
            e.u16(counter);
            e.u16(end);
            e.u16(var);
            e.u32(exit);
        }
        Op::ForStep { counter, head } => {
            e.u8(18);
            e.u16(counter);
            e.u32(head);
        }
    }
}

fn dec_op(d: &mut Dec<'_>) -> Result<Op> {
    Ok(match d.u8()? {
        0 => Op::ConstF(d.f32()?),
        1 => Op::ConstI(d.i64()?),
        2 => Op::ConstB(d.bool()?),
        3 => Op::Load(d.u16()?),
        4 => Op::Store(d.u16()?),
        5 => Op::Pop,
        6 => Op::Peek,
        7 => Op::StateLoad(d.u16()?),
        8 => Op::StateStore(d.u16()?),
        9 => Op::PushOut,
        10 => Op::Bin(binop_of(d.u8()?)?),
        11 => Op::Neg,
        12 => Op::Not,
        13 => Op::Call(intrinsic_of(d.u8()?)?),
        14 => Op::Jump(d.u32()?),
        15 => Op::JumpIfFalse(d.u32()?),
        16 => Op::ForInit {
            counter: d.u16()?,
            end: d.u16()?,
        },
        17 => Op::ForTest {
            counter: d.u16()?,
            end: d.u16()?,
            var: d.u16()?,
            exit: d.u32()?,
        },
        18 => Op::ForStep {
            counter: d.u16()?,
            head: d.u32()?,
        },
        t => return Err(ArtifactError::Malformed(format!("opcode tag {t}"))),
    })
}

fn enc_program(e: &mut Enc, p: &bytecode::Program) {
    e.count(p.ops().len());
    for &op in p.ops() {
        enc_op(e, op);
    }
    e.count(p.kinds().len());
    for (kind, name) in p.kinds().iter().zip(p.names()) {
        e.u8(match kind {
            SlotKind::Local => 0,
            SlotKind::Param => 1,
            SlotKind::Preset => 2,
        });
        e.str(name);
    }
    e.count(p.state_names().len());
    for s in p.state_names() {
        e.str(s);
    }
    e.usize(p.max_stack());
}

fn dec_program(d: &mut Dec<'_>) -> Result<bytecode::Program> {
    let n_ops = d.count()?;
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        ops.push(dec_op(d)?);
    }
    let n_slots = d.count()?;
    let mut kinds = Vec::with_capacity(n_slots);
    let mut names = Vec::with_capacity(n_slots);
    for _ in 0..n_slots {
        kinds.push(match d.u8()? {
            0 => SlotKind::Local,
            1 => SlotKind::Param,
            2 => SlotKind::Preset,
            t => return Err(ArtifactError::Malformed(format!("slot kind {t}"))),
        });
        names.push(d.str()?);
    }
    let n_state = d.count()?;
    let mut state_names = Vec::with_capacity(n_state);
    for _ in 0..n_state {
        state_names.push(d.str()?);
    }
    let max_stack = d.usize()?;
    bytecode::Program::from_raw(ops, kinds, names, state_names, max_stack)
        .map_err(ArtifactError::Malformed)
}

fn enc_arc_program(e: &mut Enc, p: &Arc<bytecode::Program>) {
    enc_program(e, p);
}

fn enc_opt_program(e: &mut Enc, p: &Option<Arc<bytecode::Program>>) {
    match p {
        Some(p) => {
            e.bool(true);
            enc_program(e, p);
        }
        None => e.bool(false),
    }
}

fn dec_arc_program(d: &mut Dec<'_>) -> Result<Arc<bytecode::Program>> {
    Ok(Arc::new(dec_program(d)?))
}

fn dec_opt_program(d: &mut Dec<'_>) -> Result<Option<Arc<bytecode::Program>>> {
    Ok(if d.bool()? {
        Some(dec_arc_program(d)?)
    } else {
        None
    })
}

fn enc_seg_programs(e: &mut Enc, sp: &SegPrograms) {
    match sp {
        SegPrograms::Unit(p) => {
            e.u8(0);
            enc_arc_program(e, p);
        }
        SegPrograms::Reduce { elem, post, serial } => {
            e.u8(1);
            enc_arc_program(e, elem);
            enc_opt_program(e, post);
            enc_arc_program(e, serial);
        }
        SegPrograms::Stencil(p) => {
            e.u8(2);
            enc_arc_program(e, p);
        }
        SegPrograms::HFused(v) => {
            e.u8(3);
            e.count(v.len());
            for (elem, post) in v {
                enc_arc_program(e, elem);
                enc_opt_program(e, post);
            }
        }
        SegPrograms::MapSiblings(v) => {
            e.u8(4);
            e.count(v.len());
            for p in v {
                enc_arc_program(e, p);
            }
        }
        SegPrograms::Opaque(p) => {
            e.u8(5);
            enc_opt_program(e, p);
        }
    }
}

fn dec_seg_programs(d: &mut Dec<'_>) -> Result<SegPrograms> {
    Ok(match d.u8()? {
        0 => SegPrograms::Unit(dec_arc_program(d)?),
        1 => SegPrograms::Reduce {
            elem: dec_arc_program(d)?,
            post: dec_opt_program(d)?,
            serial: dec_arc_program(d)?,
        },
        2 => SegPrograms::Stencil(dec_arc_program(d)?),
        3 => {
            let n = d.count()?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push((dec_arc_program(d)?, dec_opt_program(d)?));
            }
            SegPrograms::HFused(v)
        }
        4 => {
            let n = d.count()?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(dec_arc_program(d)?);
            }
            SegPrograms::MapSiblings(v)
        }
        5 => SegPrograms::Opaque(dec_opt_program(d)?),
        t => return Err(ArtifactError::Malformed(format!("segment tag {t}"))),
    })
}

// ---------------------------------------------------------------------------
// Variant table
// ---------------------------------------------------------------------------

fn enc_choice(e: &mut Enc, c: &SegChoice) {
    match c {
        SegChoice::Map { coarsen } => {
            e.u8(0);
            e.usize(*coarsen);
        }
        SegChoice::Reduce { choice } => {
            e.u8(1);
            match choice {
                ReduceChoice::TwoKernel { block_dim } => {
                    e.u8(0);
                    e.u32(*block_dim);
                }
                ReduceChoice::OneKernel {
                    arrays_per_block,
                    block_dim,
                } => {
                    e.u8(1);
                    e.usize(*arrays_per_block);
                    e.u32(*block_dim);
                }
                ReduceChoice::ThreadPerArray { block_dim } => {
                    e.u8(2);
                    e.u32(*block_dim);
                }
            }
        }
        SegChoice::Stencil { tile } => {
            e.u8(2);
            e.usize(tile.0);
            e.usize(tile.1);
        }
        SegChoice::HFused { fused } => {
            e.u8(3);
            e.bool(*fused);
        }
        SegChoice::MapSiblings => e.u8(4),
        SegChoice::Opaque => e.u8(5),
    }
}

fn dec_choice(d: &mut Dec<'_>) -> Result<SegChoice> {
    Ok(match d.u8()? {
        0 => SegChoice::Map {
            coarsen: d.usize()?,
        },
        1 => SegChoice::Reduce {
            choice: match d.u8()? {
                0 => ReduceChoice::TwoKernel {
                    block_dim: d.u32()?,
                },
                1 => ReduceChoice::OneKernel {
                    arrays_per_block: d.usize()?,
                    block_dim: d.u32()?,
                },
                2 => ReduceChoice::ThreadPerArray {
                    block_dim: d.u32()?,
                },
                t => return Err(ArtifactError::Malformed(format!("reduce tag {t}"))),
            },
        },
        2 => SegChoice::Stencil {
            tile: (d.usize()?, d.usize()?),
        },
        3 => SegChoice::HFused { fused: d.bool()? },
        4 => SegChoice::MapSiblings,
        5 => SegChoice::Opaque,
        t => return Err(ArtifactError::Malformed(format!("choice tag {t}"))),
    })
}

// ---------------------------------------------------------------------------
// Artifact payload types
// ---------------------------------------------------------------------------

/// The plan-time half of a compiled program: everything `compile` derives
/// from (program, device, axis, options) that is independent of any
/// launch. Paired at load time with a freshly rebuilt structure (the
/// segment list) to reconstitute a
/// [`CompiledProgram`](crate::CompiledProgram) without re-lowering.
#[derive(Debug, Clone)]
pub struct PlanArtifact {
    /// Per-segment bytecode, parallel to the rebuilt segment list.
    pub(crate) programs: Vec<SegPrograms>,
    /// Chosen layout per pipeline edge (`segments + 1` entries).
    pub(crate) edge_layouts: Vec<Layout>,
    /// The planner's variant table, ordered by `lo`.
    pub(crate) variants: Vec<Variant>,
}

impl PlanArtifact {
    pub(crate) fn new(
        programs: Vec<SegPrograms>,
        edge_layouts: Vec<Layout>,
        variants: Vec<Variant>,
    ) -> PlanArtifact {
        PlanArtifact {
            programs,
            edge_layouts,
            variants,
        }
    }

    /// Number of segments this plan was lowered for.
    pub fn segment_count(&self) -> usize {
        self.programs.len()
    }

    /// Number of variants in the persisted table.
    pub fn variant_count(&self) -> usize {
        self.variants.len()
    }

    /// Exact on-disk size of this plan's artifact file in bytes (framing
    /// included) — the per-device store footprint the fleet's variant-set
    /// pruning bounds. Computed by encoding, never by touching the
    /// filesystem.
    pub fn byte_size(&self) -> usize {
        let (code, table) = self.encode_records();
        let key = ArtifactKey {
            content: 0,
            device: 0,
        };
        encode_file(KIND_PLAN, key, &[code, table]).len()
    }

    /// Size of the variant-table record alone in bytes — the "plan table"
    /// share of [`byte_size`](Self::byte_size), which is what shrinks
    /// under pruning while the shared bytecode record stays put.
    pub fn table_bytes(&self) -> usize {
        self.encode_records().1.len()
    }

    fn encode_records(&self) -> (Vec<u8>, Vec<u8>) {
        // Record 1: bytecode programs + edge layouts.
        let mut e = Enc::default();
        e.count(self.programs.len());
        for sp in &self.programs {
            enc_seg_programs(&mut e, sp);
        }
        e.count(self.edge_layouts.len());
        for &l in &self.edge_layouts {
            e.u8(layout_tag(l));
        }
        let code = e.buf;

        // Record 2: the variant table.
        let mut e = Enc::default();
        e.count(self.variants.len());
        for v in &self.variants {
            e.i64(v.lo);
            e.i64(v.hi);
            e.count(v.choices.len());
            for c in &v.choices {
                enc_choice(&mut e, c);
            }
            e.count(v.tags.len());
            for &t in &v.tags {
                e.u8(opt_tag_tag(t));
            }
        }
        (code, e.buf)
    }

    fn decode_records(code: &[u8], table: &[u8]) -> Result<PlanArtifact> {
        let mut d = Dec::new(code);
        let n_segs = d.count()?;
        let mut programs = Vec::with_capacity(n_segs);
        for _ in 0..n_segs {
            programs.push(dec_seg_programs(&mut d)?);
        }
        let n_edges = d.count()?;
        let mut edge_layouts = Vec::with_capacity(n_edges);
        for _ in 0..n_edges {
            edge_layouts.push(layout_of(d.u8()?)?);
        }
        if !d.done() {
            return Err(ArtifactError::Malformed(
                "trailing bytes in code record".into(),
            ));
        }

        let mut d = Dec::new(table);
        let n_variants = d.count()?;
        let mut variants = Vec::with_capacity(n_variants);
        for _ in 0..n_variants {
            let lo = d.i64()?;
            let hi = d.i64()?;
            let n_choices = d.count()?;
            let mut choices = Vec::with_capacity(n_choices);
            for _ in 0..n_choices {
                choices.push(dec_choice(&mut d)?);
            }
            let n_tags = d.count()?;
            let mut tags = Vec::with_capacity(n_tags);
            for _ in 0..n_tags {
                tags.push(opt_tag_of(d.u8()?)?);
            }
            variants.push(Variant {
                lo,
                hi,
                choices,
                tags,
            });
        }
        if !d.done() {
            return Err(ArtifactError::Malformed(
                "trailing bytes in table record".into(),
            ));
        }
        Ok(PlanArtifact {
            programs,
            edge_layouts,
            variants,
        })
    }

    /// Structural fit against a freshly rebuilt program structure: the
    /// persisted plan must have one bytecode program per segment, one
    /// layout per edge, and a variant table whose rows cover every
    /// segment and exactly tile `[lo, hi]`.
    pub(crate) fn fits(&self, segments: usize, lo: i64, hi: i64) -> bool {
        self.programs.len() == segments
            && self.edge_layouts.len() == segments + 1
            && !self.variants.is_empty()
            && self.variants.iter().all(|v| v.choices.len() == segments)
            && self.variants.first().map(|v| v.lo) == Some(lo)
            && self.variants.last().map(|v| v.hi) == Some(hi)
            && self.variants.iter().all(|v| v.lo <= v.hi)
            && self.variants.windows(2).all(|w| w[0].hi + 1 == w[1].lo)
    }
}

/// The run-time *learned* state of a [`crate::KernelManager`]: the
/// recalibrated variant boundaries and the per-variant measured-feedback
/// histograms. This is exactly what a warm boot should inherit — and
/// exactly what a peer node can usefully import.
///
/// Deliberately **absent**: circuit-breaker/quarantine state, the logical
/// clock, and model-skew test knobs. Quarantine encodes "this device, in
/// this process, is currently failing" — shipping it forward would leave a
/// healthy process refusing healthy variants.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnedState {
    /// Current (recalibrated) sub-range per variant, tiling the axis.
    pub boundaries: Vec<(i64, i64)>,
    /// Per-variant measured-cost summaries, parallel to `boundaries`.
    pub histograms: Vec<VariantHistogram>,
}

impl LearnedState {
    fn encode_record(&self) -> Vec<u8> {
        let mut e = Enc::default();
        e.count(self.boundaries.len());
        for &(lo, hi) in &self.boundaries {
            e.i64(lo);
            e.i64(hi);
        }
        e.count(self.histograms.len());
        for h in &self.histograms {
            e.u64(h.samples);
            e.u64(h.since_move);
            e.f64(h.ratio);
            e.f64(h.sum_rel_err());
        }
        e.buf
    }

    fn decode_record(payload: &[u8]) -> Result<LearnedState> {
        let mut d = Dec::new(payload);
        let n = d.count()?;
        let mut boundaries = Vec::with_capacity(n);
        for _ in 0..n {
            boundaries.push((d.i64()?, d.i64()?));
        }
        let n = d.count()?;
        let mut histograms = Vec::with_capacity(n);
        for _ in 0..n {
            let samples = d.u64()?;
            let since_move = d.u64()?;
            let ratio = d.f64()?;
            let sum_rel_err = d.f64()?;
            if !(ratio.is_finite() && ratio > 0.0) {
                return Err(ArtifactError::Malformed(format!("ratio {ratio}")));
            }
            if !(sum_rel_err.is_finite() && sum_rel_err >= 0.0) {
                return Err(ArtifactError::Malformed(format!(
                    "sum_rel_err {sum_rel_err}"
                )));
            }
            histograms.push(VariantHistogram::from_raw(
                samples,
                since_move,
                ratio,
                sum_rel_err,
            ));
        }
        if !d.done() {
            return Err(ArtifactError::Malformed(
                "trailing bytes in learned record".into(),
            ));
        }
        if boundaries.len() != histograms.len() {
            return Err(ArtifactError::Malformed(
                "boundary/histogram count mismatch".into(),
            ));
        }
        Ok(LearnedState {
            boundaries,
            histograms,
        })
    }

    /// Whether this learned state can seed a table of `variants` entries
    /// over the axis `[lo, hi]`: one entry per variant, tiling exactly.
    pub fn fits(&self, variants: usize, lo: i64, hi: i64) -> bool {
        self.boundaries.len() == variants
            && self.histograms.len() == variants
            && self.boundaries.first().map(|r| r.0) == Some(lo)
            && self.boundaries.last().map(|r| r.1) == Some(hi)
            && self.boundaries.iter().all(|r| r.0 <= r.1)
            && self.boundaries.windows(2).all(|w| w[0].1 + 1 == w[1].0)
    }

    /// Serialize for shipping to a peer node (a self-contained artifact
    /// file image; the peer imports with [`LearnedState::from_bytes`]).
    pub fn to_bytes(&self, key: ArtifactKey) -> Vec<u8> {
        encode_file(KIND_LEARNED, key, &[self.encode_record()])
    }

    /// Decode a peer's exported learned state, verifying magic, version,
    /// key and checksums.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`] the decoder can produce; never panics.
    pub fn from_bytes(bytes: &[u8], key: ArtifactKey) -> Result<LearnedState> {
        let records = decode_file(bytes, KIND_LEARNED, key)?;
        let [payload] = records.as_slice() else {
            return Err(ArtifactError::Malformed(format!(
                "expected 1 record, found {}",
                records.len()
            )));
        };
        LearnedState::decode_record(payload)
    }
}

// ---------------------------------------------------------------------------
// File framing
// ---------------------------------------------------------------------------

/// `MAGIC | version | kind | key | n_records | (len | payload | fnv)*`.
fn encode_file(kind: u8, key: ArtifactKey, records: &[Vec<u8>]) -> Vec<u8> {
    let mut e = Enc::default();
    e.buf.extend_from_slice(&MAGIC);
    e.u32(FORMAT_VERSION);
    e.u8(kind);
    e.u64(key.content);
    e.u64(key.device);
    e.count(records.len());
    for r in records {
        e.u64(r.len() as u64);
        e.buf.extend_from_slice(r);
        e.u64(fnv1a64(r));
    }
    e.buf
}

fn decode_file(bytes: &[u8], kind: u8, key: ArtifactKey) -> Result<Vec<Vec<u8>>> {
    let mut d = Dec::new(bytes);
    if d.take(4).map_err(|_| ArtifactError::BadMagic)? != MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    let found = d.u32()?;
    if found != FORMAT_VERSION {
        return Err(ArtifactError::Version {
            found,
            expected: FORMAT_VERSION,
        });
    }
    let found_kind = d.u8()?;
    if found_kind != kind {
        return Err(ArtifactError::Malformed(format!("file kind {found_kind}")));
    }
    if (d.u64()?, d.u64()?) != (key.content, key.device) {
        return Err(ArtifactError::KeyMismatch);
    }
    let n = d.count()?;
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        let len = d.usize()?;
        let payload = d.take(len)?.to_vec();
        let sum = d.u64()?;
        if fnv1a64(&payload) != sum {
            return Err(ArtifactError::Checksum);
        }
        records.push(payload);
    }
    if !d.done() {
        return Err(ArtifactError::Malformed(
            "trailing bytes after records".into(),
        ));
    }
    Ok(records)
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// Point-in-time copy of a store's telemetry counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArtifactCounters {
    /// Loads satisfied from disk (plan or learned state).
    pub hits: u64,
    /// Loads that found no artifact (cold boot — the caller compiles or
    /// learns from scratch and writes back).
    pub misses: u64,
    /// Artifacts found but refused: corrupt, truncated, checksum or
    /// version mismatch, or structurally incompatible with the program.
    /// Always degrades to a miss, never a crash.
    pub rejects: u64,
}

/// A content-addressed, versioned on-disk artifact store.
///
/// One directory holds two file families, both named by
/// `(content hash, device fingerprint)`:
///
/// - `<key>.plan` — [`PlanArtifact`]: bytecode + variant tables;
/// - `<key>.kmu` — [`LearnedState`]: recalibrated boundaries + histograms.
///
/// All methods are infallible in the "never crash the runtime" sense:
/// loads degrade to counted misses/rejects, and store operations report
/// (but callers may ignore) I/O errors. `&ArtifactStore` is `Sync`;
/// counters are relaxed atomics and file replacement is atomic
/// (temp + rename).
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    rejects: AtomicU64,
}

impl ArtifactStore {
    /// A store rooted at `dir` (created lazily on first write).
    pub fn new(dir: impl Into<PathBuf>) -> ArtifactStore {
        ArtifactStore {
            dir: dir.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejects: AtomicU64::new(0),
        }
    }

    /// The store named by the `ADAPTIC_ARTIFACT_DIR` environment variable,
    /// or `None` when unset/empty (persistence disabled).
    pub fn from_env() -> Option<ArtifactStore> {
        match std::env::var("ADAPTIC_ARTIFACT_DIR") {
            Ok(dir) if !dir.is_empty() => Some(ArtifactStore::new(dir)),
            _ => None,
        }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Loads satisfied from disk.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Loads that found nothing (cold).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Artifacts found but refused (corrupt/version/incompatible).
    pub fn rejects(&self) -> u64 {
        self.rejects.load(Ordering::Relaxed)
    }

    /// All three counters at once.
    pub fn counters(&self) -> ArtifactCounters {
        ArtifactCounters {
            hits: self.hits(),
            misses: self.misses(),
            rejects: self.rejects(),
        }
    }

    fn plan_path(&self, key: ArtifactKey) -> PathBuf {
        self.dir.join(format!("{}.plan", key.stem()))
    }

    fn learned_path(&self, key: ArtifactKey) -> PathBuf {
        self.dir.join(format!("{}.kmu", key.stem()))
    }

    /// Load-or-miss a file: absent files count a miss, unreadable or
    /// undecodable files count a reject; only a fully validated decode
    /// counts a hit.
    fn load<T>(
        &self,
        path: &Path,
        decode: impl FnOnce(&[u8]) -> Result<T>,
        valid: impl FnOnce(&T) -> bool,
    ) -> Option<T> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(_) => {
                self.rejects.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode(&bytes) {
            Ok(v) if valid(&v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            _ => {
                self.rejects.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Load the plan artifact for `key`, validated against a freshly
    /// rebuilt structure of `segments` segments over the axis `[lo, hi]`.
    /// Returns `None` (a counted miss or reject) on any problem.
    pub fn load_plan(
        &self,
        key: ArtifactKey,
        segments: usize,
        lo: i64,
        hi: i64,
    ) -> Option<PlanArtifact> {
        self.load(
            &self.plan_path(key),
            |bytes| {
                let records = decode_file(bytes, KIND_PLAN, key)?;
                let [code, table] = records.as_slice() else {
                    return Err(ArtifactError::Malformed(format!(
                        "expected 2 records, found {}",
                        records.len()
                    )));
                };
                PlanArtifact::decode_records(code, table)
            },
            |p| p.fits(segments, lo, hi),
        )
    }

    /// Persist a plan artifact (atomic replace).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; the store's counters are untouched by
    /// writes.
    pub fn store_plan(&self, key: ArtifactKey, plan: &PlanArtifact) -> Result<()> {
        let (code, table) = plan.encode_records();
        self.write_atomic(
            &self.plan_path(key),
            &encode_file(KIND_PLAN, key, &[code, table]),
        )
    }

    /// Load the learned KMU state for `key`, validated against a table of
    /// `variants` entries over the axis `[lo, hi]`.
    pub fn load_learned(
        &self,
        key: ArtifactKey,
        variants: usize,
        lo: i64,
        hi: i64,
    ) -> Option<LearnedState> {
        self.load(
            &self.learned_path(key),
            |bytes| {
                let records = decode_file(bytes, KIND_LEARNED, key)?;
                let [payload] = records.as_slice() else {
                    return Err(ArtifactError::Malformed(format!(
                        "expected 1 record, found {}",
                        records.len()
                    )));
                };
                LearnedState::decode_record(payload)
            },
            |l| l.fits(variants, lo, hi),
        )
    }

    /// Persist learned KMU state (atomic replace).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn store_learned(&self, key: ArtifactKey, learned: &LearnedState) -> Result<()> {
        self.write_atomic(
            &self.learned_path(key),
            &encode_file(KIND_LEARNED, key, &[learned.encode_record()]),
        )
    }

    /// Write-temp + rename so readers never observe a partial file.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, bytes)?;
        match std::fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e.into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamir::ir::Stmt;

    fn key() -> ArtifactKey {
        ArtifactKey {
            content: 0x1122334455667788,
            device: 0x99aabbccddeeff00,
        }
    }

    fn learned() -> LearnedState {
        LearnedState {
            boundaries: vec![(1, 99), (100, 4096)],
            histograms: vec![
                VariantHistogram::from_raw(7, 3, 1.25, 0.5),
                VariantHistogram::from_raw(2, 2, 0.8, 0.1),
            ],
        }
    }

    #[test]
    fn learned_state_roundtrips_byte_for_byte() {
        let l = learned();
        let bytes = l.to_bytes(key());
        let back = LearnedState::from_bytes(&bytes, key()).unwrap();
        assert_eq!(back, l);
        // Re-serialization is bit-identical: the codec has one canonical
        // encoding per value.
        assert_eq!(back.to_bytes(key()), bytes);
    }

    #[test]
    fn learned_state_fits_checks_tiling() {
        let l = learned();
        assert!(l.fits(2, 1, 4096));
        assert!(!l.fits(3, 1, 4096), "wrong variant count");
        assert!(!l.fits(2, 1, 8192), "wrong hi endpoint");
        assert!(!l.fits(2, 0, 4096), "wrong lo endpoint");
        let gap = LearnedState {
            boundaries: vec![(1, 98), (100, 4096)],
            histograms: l.histograms.clone(),
        };
        assert!(!gap.fits(2, 1, 4096), "gap in tiling");
    }

    #[test]
    fn decoder_rejects_wrong_magic_version_key_and_kind() {
        let l = learned();
        let good = l.to_bytes(key());

        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            LearnedState::from_bytes(&bad, key()),
            Err(ArtifactError::BadMagic)
        ));

        let mut bad = good.clone();
        bad[4] = bad[4].wrapping_add(1); // version field
        assert!(matches!(
            LearnedState::from_bytes(&bad, key()),
            Err(ArtifactError::Version { .. })
        ));

        let other = ArtifactKey {
            content: 1,
            device: 2,
        };
        assert!(matches!(
            LearnedState::from_bytes(&good, other),
            Err(ArtifactError::KeyMismatch)
        ));

        // A learned file presented as a plan file is a kind mismatch.
        assert!(decode_file(&good, KIND_PLAN, key()).is_err());
    }

    #[test]
    fn decoder_rejects_truncation_and_bit_flips() {
        let l = learned();
        let good = l.to_bytes(key());
        for cut in 0..good.len() {
            assert!(
                LearnedState::from_bytes(&good[..cut], key()).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        // Flip one bit in the payload region: the checksum must catch it
        // (or a field validator must reject the mutated value).
        for byte in 25..good.len() {
            let mut bad = good.clone();
            bad[byte] ^= 0x01;
            assert!(
                LearnedState::from_bytes(&bad, key()).is_err(),
                "bit flip at byte {byte} decoded"
            );
        }
    }

    #[test]
    fn store_counts_misses_rejects_and_hits() {
        let dir = std::env::temp_dir().join(format!("adaptic_store_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::new(&dir);
        let l = learned();

        assert!(store.load_learned(key(), 2, 1, 4096).is_none());
        assert_eq!(store.counters().misses, 1);

        store.store_learned(key(), &l).unwrap();
        let back = store.load_learned(key(), 2, 1, 4096).unwrap();
        assert_eq!(back, l);
        assert_eq!(store.counters().hits, 1);

        // Structurally incompatible with the requesting table: reject.
        assert!(store.load_learned(key(), 5, 1, 4096).is_none());
        assert_eq!(store.counters().rejects, 1);

        // Corrupt the file on disk: counted reject, never a panic.
        let path = store.learned_path(key());
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.load_learned(key(), 2, 1, 4096).is_none());
        assert_eq!(store.counters().rejects, 2);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned test vectors: the content address must never drift
        // between builds, or every fleet artifact silently invalidates.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"adaptic"), 0x9be5001f999a6eb3);
    }

    #[test]
    fn bytecode_program_roundtrips() {
        use streamir::graph::bindings;
        let body = vec![
            Stmt::Assign {
                name: "acc".into(),
                expr: streamir::ir::Expr::Float(0.0),
            },
            Stmt::For {
                var: "i".into(),
                start: streamir::ir::Expr::Int(0),
                end: streamir::ir::Expr::var("N"),
                body: vec![Stmt::Assign {
                    name: "acc".into(),
                    expr: streamir::ir::Expr::bin(
                        BinOp::Add,
                        streamir::ir::Expr::var("acc"),
                        streamir::ir::Expr::Pop,
                    ),
                }],
            },
            Stmt::Push(streamir::ir::Expr::var("acc")),
        ];
        let prog = bytecode::compile_body(&body, &bindings(&[("N", 8)]), &[]).unwrap();
        let mut e = Enc::default();
        enc_program(&mut e, &prog);
        let bytes = e.buf;
        let mut d = Dec::new(&bytes);
        let back = dec_program(&mut d).unwrap();
        assert!(d.done());
        assert_eq!(back, prog);
        let mut e2 = Enc::default();
        enc_program(&mut e2, &back);
        assert_eq!(e2.buf, bytes, "re-serialization must be byte-identical");
    }
}
